"""Byte-for-byte stability of the lineage-handshake frames.

Every case must encode to exactly the hex stored in
``handshake_vectors.json`` on both simulated byte orders, and the
stored bytes must decode back to a payload whose canonical re-encode
is byte-identical — so a handshake layout change fails here before an
old fleet member meets a frame it can't parse.  CI's ``-k little`` /
``-k big`` golden steps pick up these ids too.
"""

import pytest

from repro.transport.messages import (
    FrameType, decode_frame, decode_lineage_req, decode_lineage_rsp,
    encode_lineage_req, encode_lineage_rsp, frame_bytes,
)
from tests.golden.cases import ARCHITECTURES
from tests.golden.handshake import (
    encode_handshake_case, grid_chain, handshake_names,
    load_handshake_vectors,
)

VECTORS = load_handshake_vectors()

PARAMS = [pytest.param(case, order, id=f"{case}-{order}")
          for case in handshake_names()
          for order in ARCHITECTURES]


@pytest.mark.parametrize("case,order", PARAMS)
def test_handshake_frame_matches_golden(case, order):
    frame = encode_handshake_case(case, ARCHITECTURES[order])
    assert frame.hex() == VECTORS[case][order], (
        f"{case}/{order}: handshake bytes changed; if intentional, "
        "rerun tests/golden/regen.py and note the compatibility break")


@pytest.mark.parametrize("case,order", PARAMS)
def test_golden_frame_reencodes_identically(case, order):
    """decode -> canonical re-encode is the identity on golden bytes."""
    wire = bytes.fromhex(VECTORS[case][order])
    frame = decode_frame(wire[4:])
    if frame.type is FrameType.LIN_REQ:
        name, offered = decode_lineage_req(frame.payload)
        again = encode_lineage_req(name, offered)
    else:
        assert frame.type is FrameType.LIN_RSP
        name, chosen, chain = decode_lineage_rsp(frame.payload)
        again = encode_lineage_rsp(name, chosen, chain)
    assert frame_bytes(frame.type, again) == wire


@pytest.mark.parametrize("order", sorted(ARCHITECTURES),
                         ids=lambda o: o)
def test_chains_differ_between_byte_orders(order):
    """Digests are layout-derived, so each order pins distinct bytes —
    the corpus would silently halve its coverage if they collided."""
    little = grid_chain(ARCHITECTURES["little"])
    big = grid_chain(ARCHITECTURES["big"])
    assert set(little).isdisjoint(big)
    assert len(set(grid_chain(ARCHITECTURES[order]))) == 3


def test_every_stored_case_is_still_defined():
    assert sorted(VECTORS) == sorted(handshake_names())
