#!/usr/bin/env python
"""Regenerate (or verify) the golden wire vectors.

Usage::

    PYTHONPATH=src python tests/golden/regen.py          # rewrite
    PYTHONPATH=src python tests/golden/regen.py --check  # verify only

``--check`` exits non-zero and lists the differing cases, without
touching the file — the CI-friendly mode.  Only rewrite after a wire
change that is *meant* to break compatibility, and say so in the
commit message.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2]))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="verify vectors.json instead of rewriting")
    args = parser.parse_args(argv)

    from tests.golden.cases import (
        VECTORS_PATH, compute_vectors, load_vectors,
    )
    from tests.golden.handshake import (
        HANDSHAKE_PATH, compute_handshake_vectors,
        load_handshake_vectors,
    )

    corpora = [
        ("vectors", VECTORS_PATH, compute_vectors, load_vectors),
        ("handshake vectors", HANDSHAKE_PATH,
         compute_handshake_vectors, load_handshake_vectors),
    ]

    if not args.check:
        for label, path, compute, _load in corpora:
            current = compute()
            path.write_text(json.dumps(current, indent=1,
                                       sort_keys=True) + "\n")
            total = sum(len(v) for v in current.values())
            print(f"wrote {total} {label} ({len(current)} cases) "
                  f"to {path}")
        return 0

    status = 0
    for label, _path, compute, load in corpora:
        current = compute()
        stored = load()
        bad = []
        for case, per_order in current.items():
            for order, hexed in per_order.items():
                if stored.get(case, {}).get(order) != hexed:
                    bad.append(f"{case}/{order}")
        for case in stored:
            if case not in current:
                bad.append(f"{case} (stale)")
        if bad:
            print(f"{label} differ:", ", ".join(sorted(bad)))
            status = 1
        else:
            print(f"{len(stored)} {label} cases match")
    return status


if __name__ == "__main__":
    sys.exit(main())
