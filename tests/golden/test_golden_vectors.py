"""Byte-for-byte wire stability, on both simulated byte orders.

Every case must encode to exactly the hex stored in ``vectors.json``,
with the fused fast path and the per-field baseline agreeing — so a
codec change that alters the wire, even one bit, fails here before it
reaches a peer that can't read it.  CI runs the little- and big-endian
halves as separate steps via ``-k little`` / ``-k big``.
"""

import pytest

from repro.pbio.decode import RecordDecoder
from repro.pbio.encode import (
    HEADER_LEN, RecordEncoder, is_batch, parse_header,
)
from tests.golden.cases import (
    ARCHITECTURES, build_format, bulk_case_names, bulk_record,
    case_names, case_record, encode_case, entry_matches, load_vectors,
)

VECTORS = load_vectors()

PARAMS = [pytest.param(case, order, id=f"{case}-{order}")
          for case in case_names()
          for order in ARCHITECTURES]

BULK_PARAMS = [pytest.param(case, order, source,
                            id=f"{case}-{order}-{source}")
               for case in bulk_case_names()
               for order in ARCHITECTURES
               for source in ("ndarray", "array")]


@pytest.mark.parametrize("case,order", PARAMS)
def test_wire_matches_golden(case, order):
    wire = encode_case(case, ARCHITECTURES[order])
    assert entry_matches(VECTORS[case][order], wire), (
        f"{case}/{order}: wire bytes changed; if intentional, rerun "
        "tests/golden/regen.py and note the compatibility break")


@pytest.mark.parametrize("case,order,source", BULK_PARAMS)
def test_bulk_sources_match_golden(case, order, source):
    """The bulk fast path (ndarray / array.array payloads) must write
    the exact bytes the per-element baseline pinned in vectors.json —
    zero wire-format drift, both byte orders."""
    arch = ARCHITECTURES[order]
    fmt = build_format(case, arch)
    bulk_wire = RecordEncoder(fmt, bulk=True).encode_wire(
        bulk_record(case, source))
    assert entry_matches(VECTORS[case][order], bulk_wire)
    baseline = RecordEncoder(fmt, bulk=False).encode_wire(
        bulk_record(case, "list"))
    assert bulk_wire == baseline
    parts = RecordEncoder(fmt, bulk=True).encode_wire_parts(
        bulk_record(case, source))
    assert b"".join(parts) == baseline


@pytest.mark.parametrize("case,order", PARAMS)
def test_fused_matches_per_field_baseline(case, order):
    arch = ARCHITECTURES[order]
    assert encode_case(case, arch, fuse=True) == \
        encode_case(case, arch, fuse=False)


@pytest.mark.parametrize("case,order", PARAMS)
def test_golden_wire_decodes_identically_both_paths(case, order):
    arch = ARCHITECTURES[order]
    entry = VECTORS[case][order]
    if isinstance(entry, dict):     # digest-pinned: rebuild the wire
        wire = encode_case(case, arch)
        assert entry_matches(entry, wire)
    else:
        wire = bytes.fromhex(entry)
    if is_batch(wire):
        return  # batch framing is covered by the byte tests above
    fmt = build_format(case, arch)
    _fid, body_len = parse_header(wire)
    body = wire[HEADER_LEN:HEADER_LEN + body_len]
    fused = RecordDecoder(fmt, fuse=True).decode(body)
    plain = RecordDecoder(fmt, fuse=False).decode(body)
    assert fused == plain
    record = case_record(case)
    assert fused["timestep" if "timestep" in record
                 else next(iter(record))] is not None


def test_every_stored_case_is_still_defined():
    assert sorted(VECTORS) == sorted(case_names())
