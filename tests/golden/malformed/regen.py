#!/usr/bin/env python
"""Regenerate (or verify) the malformed regression frames.

Usage::

    PYTHONPATH=src python tests/golden/malformed/regen.py          # rewrite
    PYTHONPATH=src python tests/golden/malformed/regen.py --check  # verify

The frames are derived from the pristine golden vectors, so they only
change when ``tests/golden/vectors.json`` does; ``--check`` is run in
CI next to the golden-vector check.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[3]))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="verify frames.json instead of rewriting")
    args = parser.parse_args(argv)

    from tests.golden.malformed.cases import (
        FRAMES_PATH, compute_frames, load_frames,
    )
    from tests.golden.malformed.handshake_cases import (
        HANDSHAKE_FRAMES_PATH, compute_handshake_frames,
        load_handshake_frames,
    )

    corpora = [
        ("malformed frames", FRAMES_PATH, compute_frames, load_frames),
        ("malformed handshake frames", HANDSHAKE_FRAMES_PATH,
         compute_handshake_frames, load_handshake_frames),
    ]

    if not args.check:
        for label, path, compute, _load in corpora:
            current = compute()
            path.write_text(json.dumps(current, indent=1,
                                       sort_keys=True) + "\n")
            total = sum(len(v) for v in current.values())
            print(f"wrote {total} {label} ({len(current)} cases) "
                  f"to {path}")
        return 0

    status = 0
    for label, _path, compute, load in corpora:
        current = compute()
        stored = load()
        bad = [name for name in set(current) | set(stored)
               if current.get(name) != stored.get(name)]
        if bad:
            print(f"{label} differ:", ", ".join(sorted(bad)))
            status = 1
        else:
            print(f"{len(stored)} {label} cases match")
    return status


if __name__ == "__main__":
    sys.exit(main())
