"""Minimized malformed-frame regression vectors.

Each entry is one frame the hardened decode layer must *reject* with a
typed :class:`~repro.errors.DecodeError` whose message matches
``match`` — a minimized reproduction of a bug class the fuzz harness
(:mod:`repro.testing.fuzz`) is meant to keep fixed:

* pointers aliasing the fixed region (silent misdecode before the
  pointer range check),
* pointers or self-sizing counters past the end of the record (raw
  ``struct.error`` escapes before normalization),
* smashed element counts (multi-GB allocations before the clamp),
* record headers and batch envelopes whose declared lengths lie about
  the buffer (``struct.error`` out of ``parse_batch``).

Frames are derived deterministically from the pristine golden vectors
(``tests/golden/vectors.json``) and committed as hex in
``frames.json`` — regenerate with ``python tests/golden/malformed/regen.py``
only alongside an intentional wire change.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path

from tests.golden.cases import ARCHITECTURES, build_format, load_vectors
from repro.pbio.encode import (
    FLAG_BATCH, HEADER_LEN, HEADER_MAGIC, HEADER_VERSION, _HEADER_STRUCT,
)

FRAMES_PATH = Path(__file__).with_name("frames.json")

_U32BE = struct.Struct(">I")


def _pristine(case: str, order: str) -> bytearray:
    return bytearray(bytes.fromhex(load_vectors()[case][order]))


def _arch(order: str):
    return ARCHITECTURES[order]


def _field(case: str, order: str, name: str):
    fmt = build_format(case, _arch(order))
    return fmt, fmt.field_list[name]


def _poke_pointer(wire: bytearray, case: str, order: str,
                  field_name: str, value: int) -> bytearray:
    """Overwrite *field_name*'s pointer slot in the body with *value*
    (arch byte order, arch pointer width)."""
    fmt, field = _field(case, order, field_name)
    width = fmt.architecture.sizeof("pointer")
    code = fmt.architecture.struct_byte_order_char + (
        "I" if width == 4 else "Q")
    struct.pack_into(code, wire, HEADER_LEN + field.offset, value)
    return wire

def _poke_scalar(wire: bytearray, case: str, order: str,
                 field_name: str, code: str, value: int) -> bytearray:
    fmt, field = _field(case, order, field_name)
    struct.pack_into(fmt.architecture.struct_byte_order_char + code,
                     wire, HEADER_LEN + field.offset, value)
    return wire


def _read_pointer(wire: bytearray, case: str, order: str,
                  field_name: str) -> int:
    fmt, field = _field(case, order, field_name)
    width = fmt.architecture.sizeof("pointer")
    code = fmt.architecture.struct_byte_order_char + (
        "I" if width == 4 else "Q")
    return struct.unpack_from(code, wire, HEADER_LEN + field.offset)[0]


def _batch_header(case: str, order: str, total: int) -> bytes:
    fmt = build_format(case, _arch(order))
    flags = FLAG_BATCH | (0x1 if order == "big" else 0)
    return _HEADER_STRUCT.pack(HEADER_MAGIC, HEADER_VERSION, flags,
                               fmt.format_id.to_bytes(), total)


# -- the vectors ------------------------------------------------------------

def _string_ptr_alias_fixed(order: str) -> bytearray:
    # channel's pointer re-aimed into EchoEvent's own fixed section:
    # pre-hardening this silently decoded fixed-region bytes as text
    wire = _pristine("EchoEvent", order)
    return _poke_pointer(wire, "EchoEvent", order, "channel", 8)


def _string_ptr_past_end(order: str) -> bytearray:
    wire = _pristine("EchoEvent", order)
    body_len = len(wire) - HEADER_LEN
    return _poke_pointer(wire, "EchoEvent", order, "channel", body_len)


def _var_ptr_alias_fixed(order: str) -> bytearray:
    # weights' data pointer aimed at the fixed section: pre-hardening
    # np.frombuffer happily decoded `n` doubles of unrelated fields
    wire = _pristine("NestedTelemetry", order)
    return _poke_pointer(wire, "NestedTelemetry", order, "weights", 16)


def _self_sized_count_truncated(order: str) -> bytearray:
    # payload's pointer lands 2 bytes before the end: its u32 element
    # count straddles the record boundary (raw struct.error before)
    wire = _pristine("EchoEvent", order)
    body_len = len(wire) - HEADER_LEN
    return _poke_pointer(wire, "EchoEvent", order, "payload",
                         body_len - 2)


def _self_sized_count_smashed(order: str) -> bytearray:
    # extra's in-band element count smashed to 2^31-1: ~16 GiB of
    # doubles; must be clamped before any allocation
    wire = _pristine("VarArrays", order)
    where = _read_pointer(wire, "VarArrays", order, "extra")
    fmt = build_format("VarArrays", _arch(order))
    struct.pack_into(fmt.architecture.struct_byte_order_char + "I",
                     wire, HEADER_LEN + where, 0x7FFFFFFF)
    return wire


def _sizing_field_smashed(order: str) -> bytearray:
    wire = _pristine("SimpleData", order)
    return _poke_scalar(wire, "SimpleData", order, "size", "i",
                        0x7FFFFFFF)


def _sizing_field_negative(order: str) -> bytearray:
    wire = _pristine("SimpleData", order)
    return _poke_scalar(wire, "SimpleData", order, "size", "i", -1)


def _header_body_len_lies(order: str) -> bytearray:
    wire = _pristine("SimpleData", order)
    body_len = len(wire) - HEADER_LEN
    _U32BE.pack_into(wire, 12, body_len + 100)
    return wire


def _batch_truncated_prefix(order: str) -> bytearray:
    # record 0's body eats into the bytes record 1's length prefix
    # needs, so that prefix straddles the end of the payload
    # (struct.error out of parse_batch before the bounds check)
    payload = (_U32BE.pack(2) + _U32BE.pack(3) + b"\x00" * 3
               + b"\x00\x00")
    return bytearray(
        _batch_header("SimpleData", order, len(payload)) + payload)


def _batch_record_len_lies(order: str) -> bytearray:
    payload = _U32BE.pack(1) + _U32BE.pack(100) + b"\x00" * 4
    return bytearray(
        _batch_header("SimpleData", order, len(payload)) + payload)


def _batch_count_impossible(order: str) -> bytearray:
    wire = _pristine("SimpleData__batch", order)
    _U32BE.pack_into(wire, HEADER_LEN, 0xFFFFFFFF)
    return wire


def _bulk_count_smashed(order: str) -> bytearray:
    # n sizes the 4 KiB bulk payload; smashed to 2^31-1 it claims
    # ~8 GiB of int32s — must be clamped before frombuffer/view
    wire = _pristine("BulkInt32_1k", order)
    return _poke_scalar(wire, "BulkInt32_1k", order, "n", "i",
                        0x7FFFFFFF)


def _bulk_count_negative(order: str) -> bytearray:
    wire = _pristine("BulkInt32_1k", order)
    return _poke_scalar(wire, "BulkInt32_1k", order, "n", "i", -17)


def _bulk_ptr_misaligned(order: str) -> bytearray:
    # values' pointer nudged +3 into the bulk interior: a stride
    # misalignment whose 4 KiB tail now reads past the record end
    wire = _pristine("BulkInt32_1k", order)
    where = _read_pointer(wire, "BulkInt32_1k", order, "values")
    return _poke_pointer(wire, "BulkInt32_1k", order, "values",
                         where + 3)


def _bulk_ptr_alias_fixed(order: str) -> bytearray:
    # extra's pointer spliced into the fixed section: a zero-copy
    # view over it would expose unrelated header fields as doubles
    wire = _pristine("BulkDouble_1k", order)
    return _poke_pointer(wire, "BulkDouble_1k", order, "extra", 4)


def _bulk_selfsized_count_smashed(order: str) -> bytearray:
    # extra's in-band u32 count smashed: 2^31-1 doubles from a 8 KiB
    # region — the bounds check fires before any slice is taken
    wire = _pristine("BulkDouble_1k", order)
    where = _read_pointer(wire, "BulkDouble_1k", order, "extra")
    fmt = build_format("BulkDouble_1k", _arch(order))
    struct.pack_into(fmt.architecture.struct_byte_order_char + "I",
                     wire, HEADER_LEN + where, 0x7FFFFFFF)
    return wire


_CASES: dict[str, tuple] = {
    # name: (builder, base case, expected DecodeError message substring)
    "string_ptr_alias_fixed": (
        _string_ptr_alias_fixed, "EchoEvent",
        "string pointer 8 outside variable region"),
    "string_ptr_past_end": (
        _string_ptr_past_end, "EchoEvent",
        "outside variable region"),
    "var_ptr_alias_fixed": (
        _var_ptr_alias_fixed, "NestedTelemetry",
        "data pointer 16 outside variable region"),
    "self_sized_count_truncated": (
        _self_sized_count_truncated, "EchoEvent",
        "element count at offset"),
    "self_sized_count_smashed": (
        _self_sized_count_smashed, "VarArrays",
        "outside record"),
    "sizing_field_smashed": (
        _sizing_field_smashed, "SimpleData",
        "outside record"),
    "sizing_field_negative": (
        _sizing_field_negative, "SimpleData",
        "negative element count"),
    "header_body_len_lies": (
        _header_body_len_lies, "SimpleData",
        "record truncated"),
    "batch_truncated_prefix": (
        _batch_truncated_prefix, "SimpleData",
        "truncated inside record 1's length prefix"),
    "batch_record_len_lies": (
        _batch_record_len_lies, "SimpleData",
        "extends past"),
    "batch_count_impossible": (
        _batch_count_impossible, "SimpleData__batch",
        "impossible"),
    "bulk_count_smashed": (
        _bulk_count_smashed, "BulkInt32_1k",
        "outside record"),
    "bulk_count_negative": (
        _bulk_count_negative, "BulkInt32_1k",
        "negative element count"),
    "bulk_ptr_misaligned": (
        _bulk_ptr_misaligned, "BulkInt32_1k",
        "outside record"),
    "bulk_ptr_alias_fixed": (
        _bulk_ptr_alias_fixed, "BulkDouble_1k",
        "data pointer 4 outside variable region"),
    "bulk_selfsized_count_smashed": (
        _bulk_selfsized_count_smashed, "BulkDouble_1k",
        "outside record"),
}


def malformed_names() -> list[str]:
    return sorted(_CASES)


def compute_frames() -> dict[str, dict[str, dict[str, str]]]:
    """All malformed vectors as {name: {order: {hex, case, match}}}."""
    out: dict[str, dict[str, dict[str, str]]] = {}
    for name, (builder, case, match) in _CASES.items():
        out[name] = {}
        for order in ARCHITECTURES:
            out[name][order] = {
                "case": case,
                "match": match,
                "hex": bytes(builder(order)).hex(),
            }
    return out


def load_frames() -> dict[str, dict[str, dict[str, str]]]:
    with FRAMES_PATH.open() as fh:
        return json.load(fh)
