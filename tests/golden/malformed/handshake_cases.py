"""Minimized malformed lineage-handshake regression vectors.

Each entry is one frame body (type byte + payload, the length prefix
already stripped) the handshake decode layer must *reject* with a
typed :class:`~repro.errors.ProtocolError` whose message matches
``match`` — one minimized representative per rejection class the
handshake fuzz campaign (``tests/transport/test_fuzz_handshake.py``)
exercises:

* truncation inside the name or the digest list,
* trailing bytes after a complete payload,
* lying u8 structure fields (empty name, overrunning name length,
  zero offered digests, out-of-range ok flag),
* digest forgery (unzeroed chosen under ok=0, chosen outside the
  advertised chain),
* non-UTF-8 names and unknown frame types.

Frames derive deterministically from the pristine handshake vectors
(``tests/golden/handshake_vectors.json``) and are committed as hex in
``handshake_frames.json`` — regenerate with
``python tests/golden/malformed/regen.py`` only alongside an
intentional wire change.
"""

from __future__ import annotations

import json
from pathlib import Path

from tests.golden.cases import ARCHITECTURES
from tests.golden.handshake import encode_handshake_case

HANDSHAKE_FRAMES_PATH = Path(__file__).with_name(
    "handshake_frames.json")

# "Grid" is 4 bytes, so within every frame body used below:
# body[0] = frame type, body[1] = name length, body[2:6] = name,
# body[6] = ok flag (rsp) / offered count (req),
# body[7:15] = chosen digest (rsp), body[15] = chain count (rsp).
_OK_FLAG = 6
_CHOSEN = slice(7, 15)


def _body(case: str, order: str) -> bytearray:
    """Pristine frame body (length prefix stripped)."""
    return bytearray(
        encode_handshake_case(case, ARCHITECTURES[order])[4:])


def _req_truncated_digests(order: str) -> bytearray:
    return _body("lin_req_full_lineage", order)[:-4]


def _req_trailing_bytes(order: str) -> bytearray:
    return _body("lin_req_single_version", order) + b"\x00\x00"


def _req_empty_name(order: str) -> bytearray:
    body = _body("lin_req_single_version", order)
    body[1] = 0
    return body


def _req_name_len_overruns(order: str) -> bytearray:
    body = _body("lin_req_single_version", order)
    body[1] = 0xFF
    return body


def _req_zero_offered(order: str) -> bytearray:
    body = _body("lin_req_single_version", order)
    body[6] = 0
    return body[:7]  # count says none; drop the digest bytes too


def _req_bad_utf8_name(order: str) -> bytearray:
    body = _body("lin_req_single_version", order)
    body[2:6] = b"\xff\xfe\xfd\xfc"
    return body


def _rsp_bad_ok_flag(order: str) -> bytearray:
    body = _body("lin_rsp_pinned_middle", order)
    body[_OK_FLAG] = 7
    return body


def _rsp_unzeroed_chosen(order: str) -> bytearray:
    body = _body("lin_rsp_no_common", order)
    body[8] = 0x5A  # inside the null digest that ok=0 promises
    return body


def _rsp_chosen_outside_chain(order: str) -> bytearray:
    body = _body("lin_rsp_pinned_middle", order)
    body[_CHOSEN] = bytes(b ^ 0xFF for b in body[_CHOSEN])
    return body


def _rsp_truncated_chain(order: str) -> bytearray:
    return _body("lin_rsp_pinned_middle", order)[:-7]


def _unknown_frame_type(order: str) -> bytearray:
    body = _body("lin_req_single_version", order)
    body[0] = 0xEE
    return body


_CASES: dict[str, tuple] = {
    # name: (builder, expected ProtocolError message substring)
    "req_truncated_digests": (
        _req_truncated_digests, "truncated at offered digest"),
    "req_trailing_bytes": (
        _req_trailing_bytes, "trailing bytes"),
    "req_empty_name": (
        _req_empty_name, "empty format name"),
    "req_name_len_overruns": (
        _req_name_len_overruns, "truncated at format name"),
    "req_zero_offered": (
        _req_zero_offered, "no offered digests"),
    "req_bad_utf8_name": (
        _req_bad_utf8_name, "not valid UTF-8"),
    "rsp_bad_ok_flag": (
        _rsp_bad_ok_flag, "bad ok flag"),
    "rsp_unzeroed_chosen": (
        _rsp_unzeroed_chosen, "not zeroed"),
    "rsp_chosen_outside_chain": (
        _rsp_chosen_outside_chain, "missing"),
    "rsp_truncated_chain": (
        _rsp_truncated_chain, "truncated at chain digest"),
    "unknown_frame_type": (
        _unknown_frame_type, "unknown frame type"),
}


def handshake_malformed_names() -> list[str]:
    return sorted(_CASES)


def compute_handshake_frames() -> dict[str, dict[str, dict[str, str]]]:
    """All malformed handshake bodies as {name: {order: {hex, match}}}."""
    out: dict[str, dict[str, dict[str, str]]] = {}
    for name, (builder, match) in _CASES.items():
        out[name] = {}
        for order in ARCHITECTURES:
            out[name][order] = {
                "match": match,
                "hex": bytes(builder(order)).hex(),
            }
    return out


def load_handshake_frames() -> dict[str, dict[str, dict[str, str]]]:
    with HANDSHAKE_FRAMES_PATH.open() as fh:
        return json.load(fh)
