"""Golden vectors for the lineage-handshake frames.

Each case pins the exact wire bytes (u32 length prefix + type byte +
payload) of one LIN_REQ or LIN_RSP frame for the canonical ``Grid``
lineage, on each simulated byte order.  The format digests embedded in
the payloads are computed from the architecture-specific layouts, so
the little- and big-endian vectors differ — a change to either the
frame layout, the handshake payload layout, or the digest derivation
breaks these bytes before it breaks a mixed-version fleet.

Regenerate with ``python tests/golden/regen.py`` (same script as the
record vectors) only alongside an *intentional* wire change.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.pbio.format import IOFormat
from repro.pbio.layout import compute_layout
from repro.transport.messages import (
    FrameType, encode_lineage_req, encode_lineage_rsp, frame_bytes,
)

from tests.golden.cases import ARCHITECTURES

HANDSHAKE_PATH = Path(__file__).with_name("handshake_vectors.json")

#: the canonical three-version lineage the fleet scenarios use
GRID_V1 = [("timestep", "integer"), ("size", "integer"),
           ("data", "float[size]")]
GRID_V2 = GRID_V1 + [("units", "string")]
GRID_V3 = GRID_V2 + [("quality", "float", 8)]
GRID_SPECS = (GRID_V1, GRID_V2, GRID_V3)


def grid_chain(architecture):
    """The Grid lineage digests (oldest first) on *architecture*."""
    out = []
    for specs in GRID_SPECS:
        layout = compute_layout(specs, architecture=architecture)
        out.append(IOFormat("Grid", layout.field_list).format_id)
    return tuple(out)


def _req_single(chain) -> bytes:
    # a v1-only subscriber offering its lone native binding
    return frame_bytes(FrameType.LIN_REQ,
                       encode_lineage_req("Grid", chain[:1]))


def _req_full(chain) -> bytes:
    # a fully upgraded subscriber offering the whole lineage
    return frame_bytes(FrameType.LIN_REQ,
                       encode_lineage_req("Grid", chain))


def _rsp_pinned_middle(chain) -> bytes:
    # publisher pins the peer to v2 and advertises its full chain
    return frame_bytes(FrameType.LIN_RSP,
                       encode_lineage_rsp("Grid", chain[1], chain))


def _rsp_latest_no_chain(chain) -> bytes:
    # cutover announcement form: chosen only, no chain attached
    return frame_bytes(FrameType.LIN_RSP,
                       encode_lineage_rsp("Grid", chain[-1]))


def _rsp_no_common(chain) -> bytes:
    # ok=0: zeroed chosen digest, chain still advertised
    return frame_bytes(FrameType.LIN_RSP,
                       encode_lineage_rsp("Grid", None, chain))


def _req_utf8_name(chain) -> bytes:
    # multi-byte UTF-8 name: the u8 length counts bytes, not chars
    return frame_bytes(FrameType.LIN_REQ,
                       encode_lineage_req("Grille·été", chain[:2]))


_CASES = {
    "lin_req_single_version": _req_single,
    "lin_req_full_lineage": _req_full,
    "lin_rsp_pinned_middle": _rsp_pinned_middle,
    "lin_rsp_latest_no_chain": _rsp_latest_no_chain,
    "lin_rsp_no_common": _rsp_no_common,
    "lin_req_utf8_name": _req_utf8_name,
}


def handshake_names() -> list[str]:
    return sorted(_CASES)


def encode_handshake_case(case: str, architecture) -> bytes:
    """The full frame bytes for *case* on *architecture*."""
    return _CASES[case](grid_chain(architecture))


def compute_handshake_vectors() -> dict[str, dict[str, str]]:
    return {case: {order: encode_handshake_case(case, arch).hex()
                   for order, arch in ARCHITECTURES.items()}
            for case in handshake_names()}


def load_handshake_vectors() -> dict[str, dict[str, str]]:
    with HANDSHAKE_PATH.open() as fh:
        return json.load(fh)
