"""Golden wire-vector definitions.

Each case pins one format plus one deterministic record; the stored
hex in ``vectors.json`` is the exact wire (header + body) the encoder
must produce for it on each simulated byte order.  Regenerate with
``python tests/golden/regen.py`` after an *intentional* wire change —
an unintentional diff here is a wire-compatibility break.
"""

from __future__ import annotations

import array
import hashlib
import json
from pathlib import Path

import numpy as np

from repro.hydrology.formats import GAUGE_COUNT, hydrology_field_specs
from repro.pbio.encode import RecordEncoder
from repro.pbio.format import IOFormat
from repro.pbio.layout import compute_layout
from repro.pbio.machine import SPARC_V9, X86_64

#: byte-order label -> simulated architecture
ARCHITECTURES = {"little": X86_64, "big": SPARC_V9}

VECTORS_PATH = Path(__file__).with_name("vectors.json")

_POINT3 = [("x", "double"), ("y", "double"), ("z", "double")]

#: Non-hydrology cases: specs, optional subformats/enums, the record.
_EXTRA_CASES: dict[str, dict] = {
    # an ECho-style event: string + fused unsigned run + enum +
    # self-sized char payload
    "EchoEvent": {
        "specs": [
            ("channel", "string"),
            ("sequence", "unsigned integer", 8),
            ("timestamp", "unsigned integer", 8),
            ("kind", "enumeration", 4),
            ("payload", "char[*]"),
        ],
        "enums": {"kind": ("OPEN", "DATA", "CLOSE")},
        "record": {
            "channel": "wx/updates",
            "sequence": 7,
            "timestamp": 1_700_000_000,
            "kind": "DATA",
            "payload": b"\x01\x02\x03\x04",
        },
    },
    # nested subformat, fixed subformat array, dimensionName var-array
    "NestedTelemetry": {
        "specs": [
            ("tag", "integer", 4),
            ("origin", "Point3"),
            ("trail", "Point3[2]"),
            ("n", "integer", 4),
            ("weights", "double[n]", 8),
        ],
        "subformats": {"Point3": _POINT3},
        "record": {
            "tag": 9,
            "origin": {"x": 1.0, "y": -2.5, "z": 0.125},
            "trail": [
                {"x": 0.0, "y": 0.5, "z": 1.5},
                {"x": -1.0, "y": 2.0, "z": -3.5},
            ],
            "n": 3,
            "weights": [0.25, 0.5, 0.75],
        },
    },
    # every dynamic-array spelling in one record
    "VarArrays": {
        "specs": [
            ("label", "string"),
            ("n", "integer", 4),
            ("values", "float[n]", 4),
            ("extra", "double[*]", 8),
        ],
        "record": {
            "label": "gauges",
            "n": 4,
            "values": [0.5, 1.5, -2.25, 8.0],
            "extra": [3.141592653589793, -0.001],
        },
    },
    # mixed scalar sizes: alignment holes become struct pad codes
    "MixedRuns": {
        "specs": [
            ("a", "integer", 2),
            ("b", "integer", 4),
            ("c", "double"),
            ("flag", "boolean"),
            ("ch", "char"),
            ("u", "unsigned integer", 8),
        ],
        "record": {
            "a": -7, "b": 123456, "c": 2.5,
            "flag": True, "ch": "Q", "u": 2 ** 40 + 5,
        },
    },
}

#: Deterministic records for the shared hydrology formats.
_HYDROLOGY_RECORDS: dict[str, dict] = {
    "SimpleData": {
        "timestep": 42, "size": 3, "data": [0.5, -1.25, 3.75],
    },
    "JoinRequest": {
        "name": "gauge-07", "server": 1, "ip_addr": 3232235777,
        "pid": 1234, "ds_addr": 281474976710655,
    },
    "FlowParams": {
        "timestep": 3, "nx": 64, "ny": 64, "dx": 30.0, "dy": 30.0,
        "dt": 1.5, "viscosity": 0.125, "rainfall": 0.0625,
        "iterations": 100, "flags": 0, "elapsed": 12.5,
    },
    "GridMeta": {
        "timestep": 3, "nx": 64, "ny": 64, "west": 0.0, "east": 1920.0,
        "south": 0.0, "north": 1920.0, "cell_size": 30.0,
        "no_data": -9999.0, "min_depth": 0.0, "max_depth": 2.5,
        "mean_depth": 0.25, "total_volume": 1234.5,
        "gauge_count": GAUGE_COUNT,
        "gauges": [i / 4 for i in range(GAUGE_COUNT)],
    },
    "ControlMsg": {
        "command": "set_viscosity", "target": "flow2d",
        "timestep": 5, "value": 0.375,
    },
}

#: Case name -> batch of records locked as one shared-header batch
#: vector (exercises the DATA_BATCH payload layout byte for byte).
_BATCH_CASES: dict[str, str] = {"SimpleData__batch": "SimpleData"}


def _bulk_ints(count: int) -> list[int]:
    """Deterministic int32 walk covering sign and magnitude."""
    return [((i * 2654435761 + 97) % (1 << 32)) - (1 << 31)
            for i in range(count)]


def _bulk_floats(count: int) -> list[float]:
    """Deterministic float32-exact values (IEEE-representable)."""
    return (np.arange(count, dtype=np.float32) * np.float32(0.375)
            - np.float32(1017.5)).tolist()


def _bulk_doubles(count: int) -> list[float]:
    """Deterministic float64 values built from exact dyadics."""
    return (np.arange(count, dtype=np.float64) * 0.001953125
            - 3.25).tolist()


#: Bulk-array cases: large fixed-stride payloads pinning the zero-copy
#: fast path to the element-wise wire bytes.  ``arrays`` maps each
#: array field to (native numpy dtype, array.array typecode), the two
#: typed sources the bulk path accepts.  Records are built as plain
#: lists so the stored vector is what the per-element baseline writes.
_BULK_CASES: dict[str, dict] = {
    "BulkInt32_1k": {
        "specs": [("n", "integer", 4), ("values", "integer[n]", 4)],
        "arrays": {"values": ("i4", "i")},
        "build": lambda: {"n": 1024, "values": _bulk_ints(1024)},
    },
    "BulkFloat_1k": {
        "specs": [("label", "string"), ("n", "integer", 4),
                  ("values", "float[n]", 4)],
        "arrays": {"values": ("f4", "f")},
        "build": lambda: {"label": "grid-f32", "n": 1024,
                          "values": _bulk_floats(1024)},
    },
    "BulkDouble_1k": {
        # self-sized: exercises the count prefix + alignment pad
        "specs": [("label", "string"), ("extra", "double[*]", 8)],
        "arrays": {"extra": ("f8", "d")},
        "build": lambda: {"label": "grid-f64",
                          "extra": _bulk_doubles(1024)},
    },
    "BulkInt32_64k": {
        "specs": [("n", "integer", 4), ("values", "integer[n]", 4)],
        "arrays": {"values": ("i4", "i")},
        "build": lambda: {"n": 65536, "values": _bulk_ints(65536)},
    },
    "BulkFloat_64k": {
        "specs": [("label", "string"), ("n", "integer", 4),
                  ("values", "float[n]", 4)],
        "arrays": {"values": ("f4", "f")},
        "build": lambda: {"label": "grid-f32", "n": 65536,
                          "values": _bulk_floats(65536)},
    },
    "BulkDouble_64k": {
        "specs": [("label", "string"), ("extra", "double[*]", 8)],
        "arrays": {"extra": ("f8", "d")},
        "build": lambda: {"label": "grid-f64",
                          "extra": _bulk_doubles(65536)},
    },
}

#: Cases whose wire is too large to store as hex: ``vectors.json``
#: keeps ``{"sha256", "nbytes"}`` instead — equally drift-proof.
DIGEST_CASES = frozenset(name for name in _BULK_CASES
                         if name.endswith("_64k"))


def vector_entry(wire: bytes, case: str):
    """The ``vectors.json`` entry for *wire*: hex, or a digest record
    for :data:`DIGEST_CASES`."""
    if case in DIGEST_CASES:
        return {"sha256": hashlib.sha256(wire).hexdigest(),
                "nbytes": len(wire)}
    return wire.hex()


def entry_matches(entry, wire: bytes) -> bool:
    """True when *wire* is the exact bytes a stored entry pins."""
    if isinstance(entry, dict):
        return (entry.get("nbytes") == len(wire) and entry.get("sha256")
                == hashlib.sha256(wire).hexdigest())
    return entry == wire.hex()


def bulk_case_names() -> list[str]:
    return sorted(_BULK_CASES)


def bulk_record(case: str, source: str) -> dict:
    """The bulk case's record with array payloads as *source*:
    ``"list"`` (baseline), ``"ndarray"`` (native-order numpy) or
    ``"array"`` (stdlib ``array.array``)."""
    record = case_record(case)
    for fname, (dt, typecode) in _BULK_CASES[case]["arrays"].items():
        if source == "ndarray":
            record[fname] = np.asarray(record[fname], dtype=dt)
        elif source == "array":
            record[fname] = array.array(typecode, record[fname])
        elif source != "list":
            raise ValueError(f"unknown bulk source {source!r}")
    return record


def case_names() -> list[str]:
    return (sorted(_HYDROLOGY_RECORDS) + sorted(_EXTRA_CASES)
            + sorted(_BATCH_CASES) + bulk_case_names())


def build_format(case: str, architecture) -> IOFormat:
    base = _BATCH_CASES.get(case, case)
    if base in _HYDROLOGY_RECORDS:
        specs = hydrology_field_specs(architecture)[base]
        layout = compute_layout(specs, architecture=architecture)
        return IOFormat(base, layout.field_list)
    if base in _BULK_CASES:
        layout = compute_layout(_BULK_CASES[base]["specs"],
                                architecture=architecture)
        return IOFormat(base, layout.field_list)
    spec = _EXTRA_CASES[base]
    subformats = {
        name: compute_layout(sub, architecture=architecture).field_list
        for name, sub in spec.get("subformats", {}).items()}
    layout = compute_layout(spec["specs"], architecture=architecture,
                            subformats=subformats or None)
    return IOFormat(base, layout.field_list, spec.get("enums"))


def case_record(case: str) -> dict:
    base = _BATCH_CASES.get(case, case)
    if base in _HYDROLOGY_RECORDS:
        return dict(_HYDROLOGY_RECORDS[base])
    if base in _BULK_CASES:
        return _BULK_CASES[base]["build"]()
    return dict(_EXTRA_CASES[base]["record"])


def encode_case(case: str, architecture, *, fuse: bool = True) -> bytes:
    """The full wire bytes for *case* on *architecture*."""
    fmt = build_format(case, architecture)
    encoder = RecordEncoder(fmt, fuse=fuse)
    record = case_record(case)
    if case in _BATCH_CASES:
        batch = [dict(record, timestep=t) for t in range(3)]
        return encoder.encode_batch(batch)
    return encoder.encode_wire(record)


def compute_vectors() -> dict[str, dict]:
    """All golden vectors as {case: {order: hex-or-digest}}."""
    return {case: {order: vector_entry(encode_case(case, arch), case)
                   for order, arch in ARCHITECTURES.items()}
            for case in case_names()}


def load_vectors() -> dict[str, dict[str, str]]:
    with VECTORS_PATH.open() as fh:
        return json.load(fh)
