"""HTTP server/client over loopback sockets."""

import pytest

from repro.errors import HTTPError
from repro.http.client import http_get
from repro.http.server import DocumentStore, MetadataHTTPServer
from repro.http.urls import fetch


@pytest.fixture(scope="module")
def server():
    store = DocumentStore()
    store.put("/formats/a.xsd", "<a/>")
    store.put("b.xsd", "<b/>")  # leading slash added by put
    store.put("/big", "x" * 300_000)
    with MetadataHTTPServer(store) as srv:
        yield srv


class TestDocumentStore:
    def test_put_normalizes_path(self):
        store = DocumentStore()
        assert store.put("rel.xsd", "x") == "/rel.xsd"
        assert store.get("/rel.xsd") == b"x"

    def test_hit_miss_counters(self):
        store = DocumentStore()
        store.put("/a", "1")
        store.get("/a")
        store.get("/nope")
        assert store.hits == 1 and store.misses == 1

    def test_paths(self):
        store = DocumentStore()
        store.put("/b", "1")
        store.put("/a", "1")
        assert store.paths() == ("/a", "/b")


class TestServer:
    def test_get_ok(self, server):
        response = http_get(server.host, server.port, "/formats/a.xsd")
        assert response.status == 200
        assert response.body == b"<a/>"
        assert response.headers["content-length"] == "4"

    def test_get_normalized_path(self, server):
        assert http_get(server.host, server.port, "b.xsd").body == \
            b"<b/>"

    def test_404(self, server):
        response = http_get(server.host, server.port, "/none")
        assert response.status == 404

    def test_large_body(self, server):
        response = http_get(server.host, server.port, "/big")
        assert len(response.body) == 300_000

    def test_url_for_and_fetch_integration(self, server):
        url = server.url_for("formats/a.xsd")
        assert fetch(url) == b"<a/>"

    def test_fetch_404_raises_with_status(self, server):
        with pytest.raises(HTTPError) as info:
            fetch(server.url_for("/gone"))
        assert info.value.status == 404

    def test_connection_refused(self):
        with pytest.raises(HTTPError, match="failed"):
            http_get("127.0.0.1", 1, "/x", timeout=2)

    def test_concurrent_requests(self, server):
        import threading
        results = []

        def get():
            results.append(
                http_get(server.host, server.port,
                         "/formats/a.xsd").status)
        threads = [threading.Thread(target=get) for _ in range(10)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == [200] * 10

    def test_close_is_idempotent(self):
        srv = MetadataHTTPServer(DocumentStore())
        srv.close()
        srv.close()


class TestClientParsing:
    def _respond(self, raw: bytes) -> "HTTPResponse":
        import socket as _socket
        import threading as _threading
        from repro.http.client import http_get

        listener = _socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()

        def serve():
            conn, _ = listener.accept()
            conn.recv(65536)
            conn.sendall(raw)
            conn.close()
        thread = _threading.Thread(target=serve, daemon=True)
        thread.start()
        try:
            return http_get(host, port, "/x", timeout=5)
        finally:
            listener.close()
            thread.join(5)

    def test_body_truncated_to_content_length(self):
        response = self._respond(
            b"HTTP/1.0 200 OK\r\nContent-Length: 3\r\n\r\nabcEXTRA")
        assert response.body == b"abc"

    def test_short_body_rejected(self):
        from repro.errors import HTTPError
        with pytest.raises(HTTPError, match="truncated"):
            self._respond(
                b"HTTP/1.0 200 OK\r\nContent-Length: 99\r\n\r\nabc")

    def test_malformed_status_line(self):
        from repro.errors import HTTPError
        with pytest.raises(HTTPError, match="status"):
            self._respond(b"NOT-HTTP nonsense\r\n\r\n")

    def test_headers_case_insensitive(self):
        response = self._respond(
            b"HTTP/1.0 200 OK\r\nX-Custom: Value\r\n"
            b"Content-Length: 0\r\n\r\n")
        assert response.headers["x-custom"] == "Value"

    def test_no_header_terminator(self):
        from repro.errors import HTTPError
        with pytest.raises(HTTPError, match="terminator"):
            self._respond(b"HTTP/1.0 200 OK\r\nnever-ends")

    def test_non_numeric_content_length(self):
        """A garbage Content-Length must surface as HTTPError, not a
        bare ValueError (regression, alongside the truncated-body
        case above)."""
        from repro.errors import HTTPError
        with pytest.raises(HTTPError, match="[Cc]ontent-[Ll]ength"):
            self._respond(
                b"HTTP/1.0 200 OK\r\nContent-Length: banana\r\n\r\nabc")

    def test_non_numeric_content_length_is_typed(self):
        from repro.errors import DiscoveryError
        with pytest.raises(DiscoveryError):
            self._respond(
                b"HTTP/1.0 200 OK\r\nContent-Length: 12abc\r\n\r\nabc")


class TestClientRetry:
    def test_http_get_retries_dropped_connections(self):
        from repro.http.retry import RetryPolicy
        from repro.http.server import DocumentStore
        from repro.testing import DROP, FaultyHTTPServer

        store = DocumentStore()
        store.put("/doc", "<ok/>")
        with FaultyHTTPServer(store, faults=[DROP, DROP]) as server:
            response = http_get(
                server.host, server.port, "/doc",
                retry=RetryPolicy(attempts=3, base_delay=0.001))
            assert response.status == 200
            assert response.body == b"<ok/>"

    def test_http_get_without_retry_still_fails_fast(self):
        from repro.http.server import DocumentStore
        from repro.testing import DROP, FaultyHTTPServer

        store = DocumentStore()
        store.put("/doc", "<ok/>")
        with FaultyHTTPServer(store, faults=[DROP]) as server:
            with pytest.raises(HTTPError):
                http_get(server.host, server.port, "/doc")
