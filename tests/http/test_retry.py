"""Retry policy and backoff-schedule properties."""

import pytest

from repro.errors import (
    DiscoveryError, HTTPError, MetadataNotFoundError, SchemaParseError,
)
from repro.http.retry import (
    DiscoveryStats, RetryPolicy, call_with_retry, default_retryable,
)

SEEDS = range(40)
POLICY_SHAPES = [
    dict(attempts=5, base_delay=0.05, multiplier=2.0, max_delay=2.0,
         jitter=0.1),
    dict(attempts=8, base_delay=0.01, multiplier=3.0, max_delay=0.2,
         jitter=0.5),
    dict(attempts=4, base_delay=1.0, multiplier=1.0, max_delay=10.0,
         jitter=1.0),
    dict(attempts=6, base_delay=0.5, multiplier=2.0, max_delay=0.5,
         jitter=0.25),
]


def _no_sleep(_delay: float) -> None:
    pass


class TestBackoffSchedule:
    @pytest.mark.parametrize("shape", POLICY_SHAPES,
                             ids=lambda s: f"x{s['multiplier']}")
    def test_monotone_non_decreasing_for_every_seed(self, shape):
        for seed in SEEDS:
            delays = RetryPolicy(seed=seed, **shape).delays()
            assert len(delays) == shape["attempts"] - 1
            assert all(a <= b for a, b in zip(delays, delays[1:])), \
                (seed, delays)

    @pytest.mark.parametrize("shape", POLICY_SHAPES,
                             ids=lambda s: f"x{s['multiplier']}")
    def test_bounded_by_cap(self, shape):
        for seed in SEEDS:
            delays = RetryPolicy(seed=seed, **shape).delays()
            assert all(0.0 <= d <= shape["max_delay"] for d in delays), \
                (seed, delays)

    def test_exactly_reproducible_for_fixed_seed(self):
        for seed in SEEDS:
            policy = RetryPolicy(attempts=6, seed=seed)
            again = RetryPolicy(attempts=6, seed=seed)
            assert policy.delays() == policy.delays()
            assert policy.delays() == again.delays()

    def test_seed_actually_jitters(self):
        schedules = {RetryPolicy(attempts=4, seed=s).delays()
                     for s in SEEDS}
        assert len(schedules) > 1

    def test_zero_jitter_is_pure_exponential(self):
        delays = RetryPolicy(attempts=4, base_delay=0.1,
                             multiplier=2.0, max_delay=100.0,
                             jitter=0.0).delays()
        assert delays == (pytest.approx(0.1), pytest.approx(0.2),
                          pytest.approx(0.4))

    def test_single_attempt_has_no_delays(self):
        assert RetryPolicy(attempts=1).delays() == ()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)


class TestRetryableClassification:
    def test_connection_level_http_error_is_retryable(self):
        assert default_retryable(HTTPError("connection refused"))

    def test_5xx_is_retryable_4xx_is_not(self):
        assert default_retryable(HTTPError("boom", status=500))
        assert default_retryable(HTTPError("boom", status=503))
        assert not default_retryable(HTTPError("gone", status=404))
        assert not default_retryable(HTTPError("nope", status=400))

    def test_missing_document_is_not_retryable(self):
        assert not default_retryable(MetadataNotFoundError("missing"))

    def test_generic_discovery_error_is_retryable(self):
        assert default_retryable(DiscoveryError("transient"))
        assert default_retryable(OSError("reset"))

    def test_malformed_schema_is_not_retryable(self):
        assert not default_retryable(SchemaParseError("bad schema"))
        assert not default_retryable(ValueError("unrelated"))


class TestCallWithRetry:
    def _policy(self, attempts=4):
        return RetryPolicy(attempts=attempts, base_delay=0.01,
                           seed=3, sleep=_no_sleep)

    def test_stops_on_first_success(self):
        stats = DiscoveryStats()
        calls = []
        result = call_with_retry(lambda: calls.append(1) or "doc",
                                 self._policy(), stats=stats)
        assert result == "doc"
        assert len(calls) == 1
        assert stats.fetch_attempts == 1 and stats.retries == 0

    def test_succeeds_within_budget(self):
        stats = DiscoveryStats()
        state = {"n": 0}

        def flaky():
            state["n"] += 1
            if state["n"] < 3:
                raise DiscoveryError("transient")
            return b"ok"

        assert call_with_retry(flaky, self._policy(),
                               stats=stats) == b"ok"
        assert stats.fetch_attempts == 3
        assert stats.retries == 2
        assert stats.fetch_failures == 0

    def test_exhausted_budget_raises_and_counts_failure(self):
        stats = DiscoveryStats()
        calls = []

        def dead():
            calls.append(1)
            raise DiscoveryError("still down")

        with pytest.raises(DiscoveryError):
            call_with_retry(dead, self._policy(attempts=3),
                            stats=stats)
        assert len(calls) == 3
        assert stats.fetch_attempts == 3
        assert stats.retries == 2
        assert stats.fetch_failures == 1

    def test_non_retryable_error_stops_immediately(self):
        stats = DiscoveryStats()
        calls = []

        def gone():
            calls.append(1)
            raise HTTPError("not found", status=404)

        with pytest.raises(HTTPError):
            call_with_retry(gone, self._policy(), stats=stats)
        assert len(calls) == 1
        assert stats.retries == 0
        assert stats.fetch_failures == 1

    def test_sleeps_follow_the_schedule(self):
        slept = []
        policy = RetryPolicy(attempts=4, base_delay=0.25, seed=11,
                             sleep=slept.append)

        def dead():
            raise DiscoveryError("down")

        with pytest.raises(DiscoveryError):
            call_with_retry(dead, policy)
        assert tuple(slept) == policy.delays()

    def test_custom_retryable_predicate(self):
        calls = []

        def boom():
            calls.append(1)
            raise KeyError("x")

        with pytest.raises(KeyError):
            call_with_retry(boom, self._policy(),
                            retryable=lambda e: False)
        assert len(calls) == 1


class TestDiscoveryStats:
    def test_counts_and_snapshot(self):
        stats = DiscoveryStats()
        stats.count("cache_hits")
        stats.count("cache_hits", 2)
        assert stats.cache_hits == 3
        snap = stats.snapshot()
        assert snap["cache_hits"] == 3
        assert set(snap) == set(DiscoveryStats._COUNTERS)

    def test_unknown_counter_rejected(self):
        with pytest.raises(AttributeError):
            DiscoveryStats().count("typo")

    def test_repr_mentions_counters(self):
        assert "fetch_attempts=0" in repr(DiscoveryStats())
