"""URL parsing and resolver chain."""

import pytest

from repro.errors import DiscoveryError
from repro.http.urls import (
    fetch, parse_url, publish_document, register_resolver,
    unpublish_document,
)


class TestParseURL:
    def test_http_with_port(self):
        u = parse_url("http://host.example:8080/a/b.xsd")
        assert (u.scheme, u.host, u.port, u.path) == \
            ("http", "host.example", 8080, "/a/b.xsd")

    def test_http_default_port_unset(self):
        u = parse_url("http://host/x")
        assert u.port is None

    def test_http_bare_host(self):
        assert parse_url("http://host").path == "/"

    def test_mem(self):
        u = parse_url("mem:formats/hydrology.xsd")
        assert u.scheme == "mem"
        assert u.host is None
        assert u.path == "formats/hydrology.xsd"

    def test_file(self):
        u = parse_url("file:///tmp/x.xsd")
        assert u.scheme == "file"
        assert u.path == "/tmp/x.xsd"

    def test_scheme_case_insensitive(self):
        assert parse_url("HTTP://h/x").scheme == "http"

    def test_str_roundtrip(self):
        for text in ("http://h:99/p", "mem:name"):
            assert str(parse_url(text)) == text

    def test_missing_scheme(self):
        with pytest.raises(DiscoveryError, match="scheme"):
            parse_url("/no/scheme")


class TestMemScheme:
    def test_publish_fetch(self):
        url = publish_document("t1.xsd", "<doc/>")
        assert url == "mem:t1.xsd"
        assert fetch(url) == b"<doc/>"

    def test_bytes_content(self):
        url = publish_document("t2.bin", b"\x00\x01")
        assert fetch(url) == b"\x00\x01"

    def test_republish_replaces(self):
        publish_document("t3", "one")
        publish_document("t3", "two")
        assert fetch("mem:t3") == b"two"

    def test_unpublish(self):
        publish_document("t4", "x")
        unpublish_document("t4")
        with pytest.raises(DiscoveryError, match="no document"):
            fetch("mem:t4")

    def test_unpublish_missing_is_noop(self):
        unpublish_document("never-existed")


class TestFileScheme:
    def test_read(self, tmp_path):
        path = tmp_path / "f.xsd"
        path.write_text("<f/>")
        assert fetch(f"file://{path}") == b"<f/>"

    def test_missing_file(self, tmp_path):
        with pytest.raises(DiscoveryError, match="cannot read"):
            fetch(f"file://{tmp_path}/missing.xsd")


class TestResolverChain:
    def test_unknown_scheme(self):
        with pytest.raises(DiscoveryError, match="no resolver"):
            fetch("gopher://x/y")

    def test_custom_resolver(self):
        register_resolver("test-custom", lambda u: b"custom:" +
                          u.path.encode())
        assert fetch("test-custom:abc") == b"custom:abc"

    def test_fetch_accepts_parsed(self):
        publish_document("t5", "z")
        assert fetch(parse_url("mem:t5")) == b"z"
