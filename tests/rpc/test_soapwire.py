"""SOAP-style envelopes."""

import pytest

from repro.errors import WireFormatError
from repro.rpc import RPCClient, RPCFault, RPCServer, SOAPCodec
from repro.rpc.soapwire import SOAP_NS
from repro.transport.inproc import channel_pair
from repro.xmlcore.parser import parse


class TestEnvelopes:
    def test_call_shape(self):
        codec = SOAPCodec()
        data = codec.encode_call("stats", {"count": 2,
                                           "values": [1.5, 2.5]})
        root = parse(data.decode()).root
        assert root.local_name == "Envelope"
        assert root.namespace == SOAP_NS
        body = root.find("Body", namespace=SOAP_NS)
        operation = next(iter(body))
        assert operation.local_name == "stats"
        assert len(operation.find_all("values")) == 2

    def test_call_roundtrip(self):
        codec = SOAPCodec(array_fields={"values"})
        data = codec.encode_call("stats", {"count": 2,
                                           "values": [1.5, 2.5],
                                           "label": "x"})
        method, params = codec.decode_call(data)
        assert method == "stats"
        assert params == {"count": 2, "values": [1.5, 2.5],
                          "label": "x"}

    def test_single_element_array_fixed(self):
        codec = SOAPCodec(array_fields={"values"})
        data = codec.encode_call("m", {"values": [7.0]})
        _, params = codec.decode_call(data)
        assert params["values"] == [7.0]

    def test_nested_struct(self):
        codec = SOAPCodec()
        record = {"origin": {"x": 1.0, "y": 2.0}, "id": 3}
        data = codec.encode_call("track", record)
        _, params = codec.decode_call(data)
        assert params == record

    def test_reply_roundtrip(self):
        codec = SOAPCodec()
        data = codec.encode_reply("stats", {"mean": 2.0})
        assert codec.decode_reply("stats", data) == {"mean": 2.0}

    def test_reply_method_mismatch(self):
        codec = SOAPCodec()
        data = codec.encode_reply("stats", {"mean": 2.0})
        with pytest.raises(WireFormatError, match="expected"):
            codec.decode_reply("other", data)

    def test_fault_roundtrip(self):
        codec = SOAPCodec()
        data = codec.encode_fault(3, "went wrong")
        out = codec.decode_reply("anything", data)
        assert out["__fault__"]["faultCode"] == 3
        assert out["__fault__"]["faultString"] == "went wrong"

    def test_booleans_and_strings(self):
        codec = SOAPCodec()
        record = {"flag": True, "off": False, "name": "word",
                  "num_like": "12abc"}
        _, params = codec.decode_call(codec.encode_call("m", record))
        assert params == record

    def test_not_an_envelope(self):
        with pytest.raises(WireFormatError, match="envelope"):
            SOAPCodec().decode_call(b"<notsoap/>")


class TestSOAPEndpoints:
    def test_full_call_over_channel(self):
        client_ch, server_ch = channel_pair()
        server = RPCServer(SOAPCodec(array_fields={"values"}),
                           server_ch)
        server.register("stats", lambda p: {
            "mean": sum(p["values"]) / len(p["values"])})
        thread = server.serve_in_thread()
        client = RPCClient(SOAPCodec(array_fields={"values"}),
                           client_ch)
        assert client.call("stats", {"values": [2.0, 4.0]}) == \
            {"mean": 3.0}
        with pytest.raises(RPCFault):
            client.call("missing", {"values": [1.0]})
        client.close()
        thread.join(5)
