"""RPC endpoints over channels, both protocols."""

import pytest

from repro.errors import WireFormatError
from repro.rpc import (
    BinaryRPCCodec, RPCClient, RPCFault, RPCServer, XMLRPCCodec,
)
from repro.transport.inproc import channel_pair
from repro.transport.tcp import tcp_pair

SIGNATURES = """\
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="statsParams">
    <xsd:element name="n" type="xsd:int" />
    <xsd:element name="values" type="xsd:double" maxOccurs="*"
                 dimensionName="n" />
  </xsd:complexType>
  <xsd:complexType name="statsResult">
    <xsd:element name="mean" type="xsd:double" />
    <xsd:element name="minimum" type="xsd:double" />
    <xsd:element name="maximum" type="xsd:double" />
  </xsd:complexType>
  <xsd:complexType name="echoParams">
    <xsd:element name="text" type="xsd:string" />
  </xsd:complexType>
  <xsd:complexType name="echoResult">
    <xsd:element name="text" type="xsd:string" />
  </xsd:complexType>
</xsd:schema>
"""


def stats_handler(params: dict) -> dict:
    values = params["values"]
    return {"mean": sum(values) / len(values),
            "minimum": min(values), "maximum": max(values)}


def echo_handler(params: dict) -> dict:
    return {"text": params["text"]}


def make_codec(protocol: str):
    if protocol == "xml":
        return XMLRPCCodec()
    return BinaryRPCCodec(SIGNATURES)


@pytest.fixture(params=["xml", "pbio"])
def rpc_pair(request):
    client_ch, server_ch = channel_pair()
    server = RPCServer(make_codec(request.param), server_ch)
    server.register("stats", stats_handler)
    server.register("echo", echo_handler)
    thread = server.serve_in_thread()
    client = RPCClient(make_codec(request.param), client_ch)
    yield client, server, request.param
    client.close()
    thread.join(5)


class TestCalls:
    def test_simple_call(self, rpc_pair):
        client, server, _ = rpc_pair
        result = client.call("stats", {"values": [1.0, 2.0, 6.0]})
        assert result == {"mean": 3.0, "minimum": 1.0, "maximum": 6.0}
        assert server.calls_served == 1

    def test_multiple_sequential_calls(self, rpc_pair):
        client, server, _ = rpc_pair
        for i in range(1, 6):
            result = client.call("echo", {"text": f"msg-{i}"})
            assert result == {"text": f"msg-{i}"}
        assert server.calls_served == 5

    def test_handler_exception_becomes_fault(self, rpc_pair):
        client, server, _ = rpc_pair

        def broken(params):
            raise RuntimeError("handler exploded")
        server.register("broken", broken)
        if server.codec.protocol_name == "pbio":
            # typed protocol: the client cannot even encode a call to
            # an undeclared method — skip to the declared-but-broken
            # case via a declared signature
            with pytest.raises(WireFormatError):
                client.call("broken", {})
            return
        with pytest.raises(RPCFault, match="handler exploded"):
            client.call("broken", {})

    def test_unknown_method_faults(self, rpc_pair):
        client, server, protocol = rpc_pair
        if protocol == "pbio":
            with pytest.raises(WireFormatError):
                client.call("nope", {"text": "x"})
        else:
            with pytest.raises(RPCFault, match="no such method"):
                client.call("nope", {"text": "x"})
            assert server.faults_returned == 1

    def test_declared_method_with_broken_handler_faults(self):
        """pbio path: method IS declared, handler raises -> fault."""
        client_ch, server_ch = channel_pair()
        server = RPCServer(make_codec("pbio"), server_ch)

        def broken(params):
            raise RuntimeError("declared but broken")
        server.register("echo", broken)
        thread = server.serve_in_thread()
        client = RPCClient(make_codec("pbio"), client_ch)
        with pytest.raises(RPCFault, match="declared but broken"):
            client.call("echo", {"text": "x"})
        client.close()
        thread.join(5)


class TestOverTCP:
    def test_stats_over_tcp(self):
        client_ch, server_ch = tcp_pair()
        server = RPCServer(make_codec("pbio"), server_ch)
        server.register("stats", stats_handler)
        thread = server.serve_in_thread()
        client = RPCClient(make_codec("pbio"), client_ch)
        result = client.call("stats", {"values": [4.0, 8.0]})
        assert result["mean"] == 6.0
        client.close()
        thread.join(5)


class TestBinaryCodec:
    def test_methods_derived_from_signatures(self):
        codec = BinaryRPCCodec(SIGNATURES)
        assert codec.methods() == ("echo", "stats")

    def test_signature_from_url(self):
        from repro.http.urls import publish_document
        url = publish_document("rpc-sigs.xsd", SIGNATURES)
        codec = BinaryRPCCodec(url)
        assert "statsParams" in codec.xmit.format_names

    def test_reply_format_mismatch_detected(self):
        codec = BinaryRPCCodec(SIGNATURES)
        reply = codec.encode_reply("echo", {"text": "x"})
        with pytest.raises(WireFormatError, match="does not match"):
            codec.decode_reply("stats", reply)

    def test_call_payloads_are_binary_and_small(self):
        codec = BinaryRPCCodec(SIGNATURES)
        xml_codec = XMLRPCCodec()
        params = {"values": [float(i) for i in range(100)]}
        binary = codec.encode_call("stats", dict(params, n=100))
        xml = xml_codec.encode_call("stats", params)
        assert len(binary) < len(xml) / 3
