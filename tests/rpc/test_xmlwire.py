"""XML-RPC message encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import WireFormatError
from repro.rpc.xmlwire import (
    decode_call, decode_response, encode_call, encode_fault,
    encode_response,
)


class TestCalls:
    def test_roundtrip_scalars(self):
        method, params = decode_call(encode_call(
            "compute", [7, 2.5, "text", True, None]))
        assert method == "compute"
        assert params == [7, 2.5, "text", True, None]

    def test_roundtrip_struct_and_array(self):
        params = [{"name": "x", "values": [1, 2, 3],
                   "nested": {"deep": False}}]
        _, out = decode_call(encode_call("m", params))
        assert out == params

    def test_empty_params(self):
        method, params = decode_call(encode_call("ping", []))
        assert method == "ping" and params == []

    def test_document_shape(self):
        text = encode_call("add", [1]).decode()
        assert "<methodCall>" in text
        assert "<methodName>add</methodName>" in text
        assert "<int>1</int>" in text

    def test_wrong_root_rejected(self):
        with pytest.raises(WireFormatError, match="methodCall"):
            decode_call(b"<notACall/>")


class TestResponses:
    def test_roundtrip_result(self):
        assert decode_response(encode_response({"ok": True})) == \
            {"ok": True}

    def test_fault_roundtrip(self):
        out = decode_response(encode_fault(42, "boom"))
        assert out == {"__fault__": {"faultCode": 42,
                                     "faultString": "boom"}}

    def test_wrong_root_rejected(self):
        with pytest.raises(WireFormatError, match="methodResponse"):
            decode_response(b"<methodCall/>")

    def test_unknown_value_type_rejected(self):
        with pytest.raises(WireFormatError, match="unknown"):
            decode_response(
                b"<methodResponse><params><param>"
                b"<value><complex>1</complex></value>"
                b"</param></params></methodResponse>")


_values = st.recursive(
    st.one_of(
        st.integers(-2**31, 2**31 - 1),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=20).filter(
            lambda s: all(ord(c) >= 0x20 or c in "\t\n" for c in s)),
        st.booleans(),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(
            st.text(
                alphabet="abcdefghijklmnopqrstuvwxyz",
                min_size=1, max_size=8),
            children, max_size=4),
    ),
    max_leaves=12,
)


@given(st.lists(_values, max_size=4))
def test_property_call_roundtrip(params):
    _, out = decode_call(encode_call("m", params))
    assert out == params
