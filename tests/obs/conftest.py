"""Telemetry tests share process-global state; restore it per test."""

from __future__ import annotations

import pytest

from repro.obs import runtime


@pytest.fixture(autouse=True)
def _restore_runtime():
    """Every obs test gets the default switches back afterwards."""
    saved = (runtime.enabled, runtime.sample_mask,
             runtime.trace_capacity)
    yield
    runtime.enabled, runtime.sample_mask, runtime.trace_capacity = \
        saved
