"""Registry primitives and the thread-safety of every stats class.

The hammer tests are the satellite fix for the bare-``+=`` drift:
``BroadcastStats`` and ``ContextStats`` used to mutate counters with
unlocked read-modify-write, which silently drops updates under
concurrent writers.  Every migrated class must now produce *exact*
totals when hammered from many threads.
"""

from __future__ import annotations

import threading

import pytest

from repro.http.retry import DiscoveryStats
from repro.obs.registry import (
    AtomicCounter, MetricsRegistry, log_buckets,
)
from repro.pbio.context import ContextStats
from repro.transport.broadcast import BroadcastStats

THREADS = 8
PER_THREAD = 5_000


def hammer(fn) -> None:
    """Run *fn* from THREADS threads, PER_THREAD times each."""
    def work():
        for _ in range(PER_THREAD):
            fn()
    workers = [threading.Thread(target=work) for _ in range(THREADS)]
    for t in workers:
        t.start()
    for t in workers:
        t.join()


class TestPrimitives:
    def test_counter_inc_and_labels(self):
        reg = MetricsRegistry()
        c = reg.counter("t_total", "help", labels=("kind",))
        c.labels(kind="a").inc()
        c.labels("a").inc(2)
        c.labels(kind="b").inc()
        snap = reg.snapshot()["t_total"]
        values = {s["labels"]["kind"]: s["value"]
                  for s in snap["series"]}
        assert values == {"a": 3, "b": 1}

    def test_unlabeled_delegation(self):
        reg = MetricsRegistry()
        g = reg.gauge("t_gauge")
        g.set(7)
        g.inc()
        g.dec(3)
        assert g.value == 5
        assert reg.snapshot()["t_gauge"]["series"] == [
            {"labels": {}, "value": 5}]

    def test_labeled_metric_rejects_bare_inc(self):
        reg = MetricsRegistry()
        c = reg.counter("t_total", labels=("kind",))
        with pytest.raises(ValueError, match="use .labels"):
            c.inc()

    def test_label_arity_and_names_checked(self):
        reg = MetricsRegistry()
        c = reg.counter("t_total", labels=("a", "b"))
        with pytest.raises(ValueError, match="expected 2"):
            c.labels("x")
        with pytest.raises(ValueError, match="missing label"):
            c.labels(a="x")
        with pytest.raises(ValueError, match="unknown labels"):
            c.labels(a="x", b="y", c="z")

    def test_redeclare_same_is_same_object(self):
        reg = MetricsRegistry()
        a = reg.counter("t_total", labels=("k",))
        b = reg.counter("t_total", labels=("k",))
        assert a is b

    def test_redeclare_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("t_total")
        with pytest.raises(ValueError, match="already declared"):
            reg.gauge("t_total")
        with pytest.raises(ValueError, match="already declared"):
            reg.counter("t_total", labels=("k",))

    def test_histogram_buckets_and_observe(self):
        reg = MetricsRegistry()
        h = reg.histogram("t_seconds", buckets=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.005, 0.005, 5.0):
            h.observe(value)
        series = reg.snapshot()["t_seconds"]["series"][0]
        assert series["bounds"] == [0.001, 0.01, 0.1]
        assert series["counts"] == [1, 2, 0, 1]  # last is +Inf
        assert series["count"] == 4
        assert series["sum"] == pytest.approx(5.0105)

    def test_log_buckets(self):
        buckets = log_buckets(1.0, 2.0, 4)
        assert buckets == (1.0, 2.0, 4.0, 8.0)
        with pytest.raises(ValueError):
            log_buckets(0.0, 2.0, 4)

    def test_gauge_high_water(self):
        reg = MetricsRegistry()
        g = reg.gauge("t_high")
        g._require_default().max(10)
        g._require_default().max(3)
        assert g.value == 10

    def test_reset_zeroes_but_keeps_children(self):
        reg = MetricsRegistry()
        c = reg.counter("t_total", labels=("k",))
        child = c.labels(k="x")
        child.inc(5)
        reg.reset()
        assert child.value == 0
        child.inc()
        assert c.labels(k="x").value == 1


class TestCollectors:
    def test_collector_samples_merge_by_summing(self):
        reg = MetricsRegistry()
        sample = {"name": "t_total", "type": "counter", "help": "",
                  "labels": {"k": "x"}, "value": 2}
        reg.register_collector(lambda: [dict(sample)])
        reg.register_collector(lambda: [dict(sample)])
        snap = reg.snapshot()
        assert snap["t_total"]["series"] == [
            {"labels": {"k": "x"}, "value": 4}]

    def test_collector_sums_into_declared_metric(self):
        reg = MetricsRegistry()
        g = reg.gauge("t_gauge")
        g.set(1)
        reg.register_collector(lambda: [
            {"name": "t_gauge", "type": "gauge", "help": "",
             "labels": {}, "value": 2}])
        assert reg.snapshot()["t_gauge"]["series"][0]["value"] == 3

    def test_bound_method_collector_held_weakly(self):
        class Source:
            def collect(self):
                return [{"name": "t_gauge", "type": "gauge",
                         "help": "", "labels": {}, "value": 1}]

        reg = MetricsRegistry()
        source = Source()
        reg.register_collector(source.collect)
        assert reg.snapshot()["t_gauge"]["series"][0]["value"] == 1
        del source
        assert "t_gauge" not in reg.snapshot()
        assert not reg._collectors  # pruned


class TestAtomicCounter:
    def test_exact_under_hammer(self):
        counter = AtomicCounter()
        hammer(counter.add)
        assert counter.value == THREADS * PER_THREAD


class TestStatsClassesExactUnderThreads:
    """The satellite-2 regression tests: every migrated stats class
    keeps exact totals when hammered concurrently."""

    def test_discovery_stats(self):
        stats = DiscoveryStats()
        hammer(lambda: stats.count("fetch_attempts"))
        assert stats.fetch_attempts == THREADS * PER_THREAD
        assert stats.snapshot()["fetch_attempts"] == \
            THREADS * PER_THREAD

    def test_discovery_stats_mirrors_to_registry(self):
        from repro.obs.metrics import DISCOVERY_EVENTS
        series = DISCOVERY_EVENTS.labels(event="retries")
        before = series.value
        stats = DiscoveryStats()
        hammer(lambda: stats.count("retries"))
        assert series.value - before == THREADS * PER_THREAD

    def test_context_stats(self):
        stats = ContextStats()
        before = ContextStats.totals_snapshot()
        hammer(lambda: stats.count_encoded(1, 10))
        hammer(lambda: stats.count_decoded(2, 20))
        expected = THREADS * PER_THREAD
        assert stats.records_encoded == expected
        assert stats.bytes_encoded == expected * 10
        assert stats.records_decoded == expected * 2
        assert stats.bytes_decoded == expected * 20
        after = ContextStats.totals_snapshot()
        assert after["records_encoded"] - \
            before["records_encoded"] == expected
        assert after["bytes_decoded"] - \
            before["bytes_decoded"] == expected * 20

    def test_context_stats_assignment_compat(self):
        """Direct attribute assignment (the old dataclass style) still
        works and keeps the process totals truthful."""
        stats = ContextStats()
        before = ContextStats.totals_snapshot()["records_encoded"]
        stats.records_encoded += 5
        stats.records_encoded = 3
        assert stats.records_encoded == 3
        delta = ContextStats.totals_snapshot()["records_encoded"] \
            - before
        assert delta == 3

    def test_broadcast_stats(self):
        stats = BroadcastStats()
        before = BroadcastStats.totals_snapshot()
        hammer(lambda: stats.count("frames_enqueued"))
        expected = THREADS * PER_THREAD
        assert stats.frames_enqueued == expected
        after = BroadcastStats.totals_snapshot()
        assert after["frames_enqueued"] - \
            before["frames_enqueued"] == expected

    def test_broadcast_high_water_is_max(self):
        stats = BroadcastStats()
        stats.max_update("queue_high_water", 100)
        stats.max_update("queue_high_water", 40)
        assert stats.queue_high_water == 100
        assert BroadcastStats.high_water_snapshot()[
            "queue_high_water"] >= 100
        assert stats.as_dict()["queue_high_water"] == 100
