"""The fault harness feeds the registry: injected faults are counted
by kind, so retry/fallback metrics can be asserted exactly."""

from __future__ import annotations

from repro import obs
from repro.core.toolkit import XMIT
from repro.obs.metrics import FAULTS_INJECTED
from repro.testing.faults import FAIL, HTTP_500, FaultInjectingResolver

XSD = """
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="SimpleData">
    <xsd:element name="timestep" type="xsd:integer" />
  </xsd:complexType>
</xsd:schema>
"""


class TestFaultCounters:
    def test_injected_faults_counted_by_kind(self):
        resolver = FaultInjectingResolver("obsfaults").install()
        url = resolver.publish("doc.xsd", XSD,
                               faults=[FAIL, HTTP_500])
        fails = FAULTS_INJECTED.labels(kind=FAIL)
        errors = FAULTS_INJECTED.labels(kind=HTTP_500)
        fail_before, error_before = fails.value, errors.value

        xmit = XMIT()
        assert xmit.load_url(url) == ("SimpleData",)

        # exactly the scripted faults, nothing more: the healthy
        # third attempt (and every later OK serve) does not count
        assert fails.value == fail_before + 1
        assert errors.value == error_before + 1
        assert xmit.discovery_stats.retries == 2

    def test_healthy_serves_do_not_count(self):
        resolver = FaultInjectingResolver("obsclean").install()
        url = resolver.publish("doc.xsd", XSD)
        fails = FAULTS_INJECTED.labels(kind=FAIL)
        before = fails.value
        assert XMIT().load_url(url) == ("SimpleData",)
        assert fails.value == before

    def test_disabled_telemetry_skips_the_mirror(self):
        resolver = FaultInjectingResolver("obsoff").install()
        url = resolver.publish("doc.xsd", XSD, faults=[FAIL])
        fails = FAULTS_INJECTED.labels(kind=FAIL)
        before = fails.value
        with obs.disabled():
            assert XMIT().load_url(url) == ("SimpleData",)
        assert fails.value == before
