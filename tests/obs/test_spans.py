"""Span semantics: phase mapping, nesting, no-op mode, trace ring."""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.obs import runtime
from repro.obs.metrics import PHASE_SECONDS
from repro.obs.spans import _NOOP


class TestSpan:
    def test_records_into_named_phase(self):
        series = PHASE_SECONDS.labels(phase="bind/compile")
        before = series.count
        with obs.span("register", format="T"):
            pass
        assert series.count == before + 1

    def test_unknown_name_lands_in_other(self):
        series = PHASE_SECONDS.labels(phase="other")
        before = series.count
        with obs.span("mystery"):
            pass
        assert series.count == before + 1

    def test_explicit_phase_overrides(self):
        series = PHASE_SECONDS.labels(phase="transport")
        before = series.count
        with obs.span("register", phase="transport"):
            pass
        assert series.count == before + 1

    def test_invalid_phase_rejected(self):
        with pytest.raises(ValueError, match="unknown phase"):
            obs.span("x", phase="nonsense")

    def test_duration_measured(self):
        with obs.span("register") as sp:
            time.sleep(0.01)
        assert sp.duration_ns >= 5_000_000

    def test_nesting_records_both(self):
        outer = PHASE_SECONDS.labels(phase="discover")
        inner = PHASE_SECONDS.labels(phase="bind/compile")
        o, i = outer.count, inner.count
        with obs.span("fetch"):
            with obs.span("compile"):
                pass
        assert outer.count == o + 1
        assert inner.count == i + 1

    def test_disabled_returns_shared_noop(self):
        obs.set_enabled(False)
        try:
            sp = obs.span("register")
            assert sp is _NOOP
            with sp:
                pass  # records nothing, raises nothing
        finally:
            obs.set_enabled(True)

    def test_disabled_context_manager(self):
        assert obs.is_enabled()
        with obs.disabled():
            assert not obs.is_enabled()
        assert obs.is_enabled()


class TestSampling:
    def test_mask_zero_times_every_operation(self):
        obs.configure(sample_mask=0)
        assert all(obs.sample_t0() for _ in range(10))

    def test_mask_filters(self):
        obs.configure(sample_mask=15)
        hits = sum(1 for _ in range(160) if obs.sample_t0())
        assert hits == 10  # exactly 1 in 16

    def test_disabled_always_zero(self):
        obs.set_enabled(False)
        obs.configure(sample_mask=0)
        assert obs.sample_t0() == 0

    def test_mask_must_be_pow2_minus_1(self):
        with pytest.raises(ValueError, match="2\\*\\*k - 1"):
            obs.configure(sample_mask=5)

    def test_observe_phase_pairs_with_t0(self):
        series = PHASE_SECONDS.labels(phase="marshal")
        before = series.count
        obs.configure(sample_mask=0)
        t0 = obs.sample_t0()
        assert t0 > 0
        obs.observe_phase("marshal", t0)
        assert series.count == before + 1


class TestTraceRing:
    def test_disabled_by_default(self):
        with obs.span("register"):
            pass
        # capacity 0: nothing retained
        assert runtime.trace_capacity == 0

    def test_capacity_bounds_and_content(self):
        obs.configure(trace_capacity=4)
        try:
            for i in range(10):
                with obs.span("register", index=i):
                    pass
            spans = obs.recent_spans()
            assert len(spans) == 4
            assert spans[-1]["tags"]["index"] == 9
            assert spans[-1]["phase"] == "bind/compile"
            assert spans[-1]["duration_ns"] > 0
        finally:
            obs.configure(trace_capacity=0)
