"""Exposition renderers: golden Prometheus text, JSON round-trip."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import obs
from repro.obs.exposition import (
    PROMETHEUS_CONTENT_TYPE, parse_json, render_json,
    render_prometheus,
)
from repro.obs.registry import MetricsRegistry

GOLDEN = Path(__file__).parent / "golden" / "metrics.prom"


def build_reference_registry() -> MetricsRegistry:
    """A deterministic registry covering all three metric types,
    label escaping, and the histogram bucket explosion."""
    reg = MetricsRegistry()
    requests = reg.counter("demo_requests_total",
                           "Requests served", labels=("path", "code"))
    requests.labels(path="/metrics", code="200").inc(3)
    requests.labels(path='/we"ird\\path\n', code="404").inc()
    queue = reg.gauge("demo_queue_depth", "Queued items")
    queue.set(7)
    latency = reg.histogram("demo_latency_seconds",
                            "Request latency",
                            buckets=(0.001, 0.01, 0.1))
    for value in (0.0005, 0.002, 0.05, 2.0):
        latency.observe(value)
    return reg


class TestPrometheus:
    def test_golden_file(self):
        text = render_prometheus(build_reference_registry().snapshot())
        assert text == GOLDEN.read_text()

    def test_help_and_type_preambles(self):
        text = render_prometheus(build_reference_registry().snapshot())
        assert "# HELP demo_requests_total Requests served" in text
        assert "# TYPE demo_requests_total counter" in text
        assert "# TYPE demo_queue_depth gauge" in text
        assert "# TYPE demo_latency_seconds histogram" in text

    def test_label_escaping(self):
        text = render_prometheus(build_reference_registry().snapshot())
        assert r'path="/we\"ird\\path\n"' in text

    def test_histogram_triple(self):
        text = render_prometheus(build_reference_registry().snapshot())
        lines = [ln for ln in text.splitlines()
                 if ln.startswith("demo_latency_seconds")]
        assert lines == [
            'demo_latency_seconds_bucket{le="0.001"} 1',
            'demo_latency_seconds_bucket{le="0.01"} 2',
            'demo_latency_seconds_bucket{le="0.1"} 3',
            'demo_latency_seconds_bucket{le="+Inf"} 4',
            "demo_latency_seconds_sum 2.0525",
            "demo_latency_seconds_count 4",
        ]

    def test_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("h_seconds", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        h.observe(99.0)
        text = render_prometheus(reg.snapshot())
        assert 'h_seconds_bucket{le="1"} 1' in text
        assert 'h_seconds_bucket{le="2"} 2' in text
        assert 'h_seconds_bucket{le="+Inf"} 3' in text

    def test_content_type_is_prometheus_004(self):
        assert "version=0.0.4" in PROMETHEUS_CONTENT_TYPE


class TestJSON:
    def test_round_trip_identity(self):
        snapshot = build_reference_registry().snapshot()
        assert parse_json(render_json(snapshot)) == snapshot

    def test_global_registry_snapshot_round_trips(self):
        snapshot = obs.snapshot()
        assert parse_json(render_json(snapshot)) == snapshot

    def test_parse_rejects_non_object(self):
        with pytest.raises(ValueError, match="must be an object"):
            parse_json("[1, 2]")

    def test_parse_rejects_missing_series(self):
        with pytest.raises(ValueError, match="missing series"):
            parse_json('{"m": {"type": "counter"}}')

    def test_parse_rejects_malformed_histogram(self):
        bad = ('{"m": {"type": "histogram", "series": '
               '[{"labels": {}, "bounds": [], "counts": []}]}}')
        with pytest.raises(ValueError, match="missing 'sum'"):
            parse_json(bad)
