"""Cross-process snapshot merge/aggregate semantics + golden text."""

from __future__ import annotations

from pathlib import Path

from repro.obs.exposition import render_prometheus
from repro.obs.merge import aggregate_snapshot, merge_snapshots
from repro.obs.registry import MetricsRegistry

GOLDEN = Path(__file__).parent / "golden" / "merged.prom"


def shard_registry(clients: int, high_water: int,
                   latencies: tuple[float, ...]) -> MetricsRegistry:
    """A deterministic stand-in for one worker's registry."""
    reg = MetricsRegistry()
    served = reg.counter("shard_frames_total", "Frames served",
                         labels=("kind",))
    served.labels(kind="data").inc(clients * 10)
    served.labels(kind="meta").inc(clients)
    reg.gauge("shard_clients", "Connected clients").set(clients)
    reg.gauge("shard_queue_high_water",
              "Deepest queue observed").set(high_water)
    hist = reg.histogram("shard_latency_seconds", "Delivery latency",
                         buckets=(0.001, 0.01, 0.1))
    for value in latencies:
        hist.observe(value)
    return reg


def fleet_snapshots() -> dict[str, dict]:
    return {
        "w0": shard_registry(3, 4096, (0.0005, 0.002)).snapshot(),
        "w1": shard_registry(5, 1024, (0.05, 2.0)).snapshot(),
    }


class TestMerge:
    def test_series_gain_worker_label(self):
        merged = merge_snapshots(fleet_snapshots())
        for metric in merged.values():
            assert metric["label_names"][-1] == "worker"
            for series in metric["series"]:
                assert series["labels"]["worker"] in ("w0", "w1")

    def test_nothing_is_lost(self):
        merged = merge_snapshots(fleet_snapshots())
        frames = merged["shard_frames_total"]["series"]
        assert len(frames) == 4  # 2 kinds x 2 workers
        by_key = {(s["labels"]["kind"], s["labels"]["worker"]):
                  s["value"] for s in frames}
        assert by_key[("data", "w0")] == 30
        assert by_key[("data", "w1")] == 50
        assert by_key[("meta", "w1")] == 5

    def test_existing_worker_label_is_kept(self):
        reg = MetricsRegistry()
        reg.counter("pre_labeled_total", "",
                    labels=("worker",)).labels(worker="w7").inc(2)
        merged = merge_snapshots({"publisher": reg.snapshot()})
        (series,) = merged["pre_labeled_total"]["series"]
        assert series["labels"]["worker"] == "w7"
        assert merged["pre_labeled_total"]["label_names"] == ["worker"]

    def test_merge_then_render_golden(self):
        text = render_prometheus(merge_snapshots(fleet_snapshots()))
        assert text == GOLDEN.read_text()


class TestAggregate:
    def test_counters_and_gauges_sum(self):
        agg = aggregate_snapshot(merge_snapshots(fleet_snapshots()))
        by_kind = {s["labels"]["kind"]: s["value"]
                   for s in agg["shard_frames_total"]["series"]}
        assert by_kind == {"data": 80, "meta": 8}
        (clients,) = agg["shard_clients"]["series"]
        assert clients["value"] == 8

    def test_high_water_gauges_take_max(self):
        agg = aggregate_snapshot(merge_snapshots(fleet_snapshots()))
        (hw,) = agg["shard_queue_high_water"]["series"]
        assert hw["value"] == 4096

    def test_worker_label_is_dropped(self):
        agg = aggregate_snapshot(merge_snapshots(fleet_snapshots()))
        for metric in agg.values():
            assert "worker" not in metric["label_names"]
            for series in metric["series"]:
                assert "worker" not in series["labels"]

    def test_histograms_merge_bucket_wise(self):
        agg = aggregate_snapshot(merge_snapshots(fleet_snapshots()))
        (hist,) = agg["shard_latency_seconds"]["series"]
        assert hist["bounds"] == [0.001, 0.01, 0.1]
        # w0 observed 0.0005, 0.002; w1 observed 0.05, 2.0 — the last
        # slot is the +Inf overflow bucket and must survive the merge
        assert hist["counts"] == [1, 1, 1, 1]
        assert hist["count"] == 4
        assert abs(hist["sum"] - 2.0525) < 1e-9

    def test_mismatched_bounds_merge_by_value(self):
        a = MetricsRegistry()
        a.histogram("h_seconds", buckets=(1.0, 2.0)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("h_seconds", buckets=(2.0, 4.0)).observe(3.0)
        agg = aggregate_snapshot(merge_snapshots(
            {"w0": a.snapshot(), "w1": b.snapshot()}))
        (hist,) = agg["h_seconds"]["series"]
        assert hist["bounds"] == [1.0, 2.0, 4.0]
        assert hist["counts"] == [1, 0, 1, 0]
        assert hist["count"] == 2

    def test_aggregate_is_idempotent_on_plain_snapshot(self):
        snap = shard_registry(2, 10, (0.002,)).snapshot()
        agg = aggregate_snapshot(snap)
        (series,) = agg["shard_clients"]["series"]
        assert series["value"] == 2
