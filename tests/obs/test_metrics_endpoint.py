"""The live exposure paths: GET /metrics over a real socket and the
STATS_REQ/STATS_RSP frames on a broadcast publisher.

The acceptance check: after exercising discovery, codec and transport,
one scrape must contain at least one counter, one gauge and one
histogram from each of the three subsystems.
"""

from __future__ import annotations

import json
import socket
import urllib.request

from repro import obs
from repro.core.toolkit import XMIT
from repro.http.server import DocumentStore, MetadataHTTPServer
from repro.http.urls import publish_document
from repro.pbio.context import IOContext
from repro.pbio.format_server import FormatServer
from repro.transport.broadcast import BroadcastPublisher
from repro.transport.connection import Connection
from repro.transport.eventloop import iter_frames
from repro.transport.messages import Frame, FrameType, frame_bytes
from repro.transport.tcp import TCPChannel

XSD = """
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Reading">
    <xsd:element name="station" type="xsd:integer" />
    <xsd:element name="level" type="xsd:float" />
  </xsd:complexType>
</xsd:schema>
"""


def exercise_all_subsystems() -> IOContext:
    """Discovery (XMIT over a mem: URL), codec (encode/decode), and
    transport (one publisher, one subscriber)."""
    url = publish_document("obs-endpoint.xsd", XSD)
    xmit = XMIT()
    xmit.load_url(url)
    ctx = IOContext(format_server=FormatServer())
    xmit.register_with_context(ctx, "Reading")
    for station in range(32):
        wire = ctx.encode("Reading", {"station": station,
                                      "level": 1.5})
        ctx.decode(wire)
    with BroadcastPublisher(ctx) as pub:
        sub_ctx = IOContext(format_server=FormatServer())
        with Connection(sub_ctx, TCPChannel.connect(
                pub.host, pub.port)) as conn:
            pub.wait_for_subscribers(1, timeout=5)
            pub.publish("Reading", {"station": 1, "level": 2.0})
            pub.flush(timeout=5)
            msg = conn.receive(timeout=5)
            assert msg is not None and msg.format_name == "Reading"
    return ctx


def scrape(server: MetadataHTTPServer, path: str) -> tuple[int, bytes]:
    request = urllib.request.Request(server.url_for(path))
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, response.read()


class TestMetricsEndpoint:
    def test_prometheus_scrape_covers_three_subsystems(self):
        exercise_all_subsystems()
        with MetadataHTTPServer(DocumentStore()) as server:
            status, body = scrape(server, "/metrics")
        assert status == 200
        text = body.decode("utf-8")

        # discovery: counter + histogram
        assert "# TYPE repro_discovery_events_total counter" in text
        assert 'repro_discovery_events_total{event="compiles"}' in text
        assert "repro_discovery_compile_seconds_bucket" in text
        # codec: counter + histogram (sampled marshal phase)
        assert 'repro_codec_events_total{event="records_encoded"}' \
            in text
        assert "repro_phase_seconds_bucket" in text
        # transport: gauge + counters + histogram
        assert "# TYPE repro_transport_clients gauge" in text
        assert 'repro_transport_frames_total{direction="out"}' in text
        assert "repro_transport_sendmsg_batch_frames_bucket" in text
        # broadcast counters rode along
        assert 'repro_broadcast_events_total{' \
            'event="messages_broadcast"}' in text

    def test_json_scrape_parses_and_matches_shape(self):
        with MetadataHTTPServer(DocumentStore()) as server:
            status, body = scrape(server, "/metrics.json")
        assert status == 200
        snapshot = obs.parse_json(body)
        assert "repro_discovery_events_total" in snapshot

    def test_metrics_can_be_disabled_per_server(self):
        store = DocumentStore()
        store.put("/metrics", "<not-the-registry/>")
        with MetadataHTTPServer(store, metrics=False) as server:
            status, body = scrape(server, "/metrics")
        assert status == 200
        assert body == b"<not-the-registry/>"

    def test_documents_still_served(self):
        store = DocumentStore()
        store.put("/f.xsd", XSD)
        with MetadataHTTPServer(store) as server:
            status, body = scrape(server, "/f.xsd")
        assert status == 200
        assert b"Reading" in body

    def test_http_requests_counter_moves(self):
        from repro.obs.metrics import HTTP_REQUESTS
        series = HTTP_REQUESTS.labels(status="200")
        before = series.value
        with MetadataHTTPServer(DocumentStore()) as server:
            scrape(server, "/metrics")
        assert series.value > before


class TestStatsFrame:
    def test_stats_req_returns_snapshot(self):
        ctx = IOContext(format_server=FormatServer())
        ctx.register_layout("Reading", [("station", "integer"),
                                        ("level", "float")])
        with BroadcastPublisher(ctx) as pub:
            with socket.create_connection((pub.host, pub.port),
                                          timeout=5) as sock:
                pub.wait_for_subscribers(1, timeout=5)
                pub.publish("Reading", {"station": 7, "level": 0.5})
                sock.sendall(frame_bytes(FrameType.STATS_REQ, b""))
                sock.settimeout(5)
                buffer = bytearray()
                reply: Frame | None = None
                while reply is None:
                    chunk = sock.recv(65536)
                    assert chunk, "publisher closed before STATS_RSP"
                    buffer.extend(chunk)
                    for frame in iter_frames(buffer):
                        if frame.type == FrameType.STATS_RSP:
                            reply = frame
                            break
        payload = json.loads(reply.payload.decode("utf-8"))
        assert set(payload) == {"metrics", "publisher"}
        assert payload["publisher"]["messages_broadcast"] >= 1
        snapshot = obs.parse_json(json.dumps(payload["metrics"]))
        assert "repro_broadcast_events_total" in snapshot
