"""The acceptance test: the paper's RDM, computed from live telemetry.

Register a format (discovery + bind/compile phases), marshal records
through an instrumented IOContext (marshal phase), then compute the
registration-vs-marshal cost split from the obs snapshot *alone* —
no stopwatch in the test.  With ``sample_mask=0`` every codec
operation is timed, so the marshal mean is exact.
"""

from __future__ import annotations

from repro import obs
from repro.core.toolkit import XMIT
from repro.http.urls import publish_document
from repro.obs.spans import phase_seconds, rdm_from_snapshot
from repro.pbio.context import IOContext
from repro.pbio.format_server import FormatServer

XSD = """
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Sample">
    <xsd:element name="step" type="xsd:integer" />
    <xsd:element name="size" type="xsd:integer" />
    <xsd:element name="data" type="xsd:float" maxOccurs="*"
                 dimensionName="size" />
  </xsd:complexType>
</xsd:schema>
"""

N_RECORDS = 256


def marshal_mean(snapshot: dict) -> float:
    marshal = phase_seconds(snapshot)["marshal"]
    return marshal["sum"] / marshal["count"]


class TestLiveRDM:
    def test_rdm_computable_from_snapshot_alone(self):
        obs.configure(sample_mask=0)  # time every codec operation
        obs.reset()

        url = publish_document("live-rdm.xsd", XSD)
        xmit = XMIT()
        xmit.load_url(url)                       # discover + compile
        ctx = IOContext(format_server=FormatServer())
        xmit.register_with_context(ctx, "Sample")   # bind/compile
        record = {"step": 1, "size": 64,
                  "data": [0.5] * 64}
        for step in range(N_RECORDS):
            record["step"] = step
            ctx.encode("Sample", record)

        reading = rdm_from_snapshot(obs.snapshot())
        assert reading["marshal_records_sampled"] >= N_RECORDS
        assert reading["registration_seconds"] > 0
        per_record = reading["marshal_seconds_per_record"]
        assert per_record is not None and per_record > 0
        rdm = reading["rdm"]
        assert rdm is not None and rdm > 0
        assert rdm == (reading["registration_seconds"] / per_record)
        # the paper's qualitative claim: registration costs orders of
        # magnitude more than marshaling one record, hence amortize
        assert rdm > 1

    def test_marshal_cost_does_not_grow_with_registrations(self):
        """Steady-state marshal cost must be independent of how many
        formats have been registered (the amortization claim)."""
        obs.configure(sample_mask=0)
        obs.reset()

        ctx = IOContext(format_server=FormatServer())
        ctx.register_layout("Sample", [
            ("step", "integer"), ("size", "integer"),
            ("data", "float[size]")])
        record = {"step": 0, "size": 64, "data": [0.5] * 64}
        for _ in range(64):   # warm the plan cache
            ctx.encode("Sample", record)

        obs.reset()
        for _ in range(N_RECORDS):
            ctx.encode("Sample", record)
        before = marshal_mean(obs.snapshot())

        # register 20 more formats, then marshal the same record again
        for i in range(20):
            ctx.register_layout(f"Other{i}", [
                ("a", "integer"), ("b", "float")])
        obs.reset()
        for _ in range(N_RECORDS):
            ctx.encode("Sample", record)
        after = marshal_mean(obs.snapshot())

        # identical work; allow generous scheduling noise
        assert after < before * 3

    def test_rdm_none_before_any_marshal(self):
        obs.reset()
        reading = rdm_from_snapshot(obs.snapshot())
        assert reading["marshal_seconds_per_record"] is None
        assert reading["rdm"] is None
