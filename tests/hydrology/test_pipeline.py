"""The full Fig. 5 pipeline."""

import pytest

from repro.hydrology.datagen import generate_watershed
from repro.hydrology.pipeline import build_pipeline, run_pipeline


class TestRunPipeline:
    def test_all_frames_delivered_to_both_guis(self):
        report = run_pipeline(timesteps=5, grid=16)
        assert report.frames_per_gui == (5, 5)
        assert report.total_frames == 10

    def test_component_message_accounting(self):
        report = run_pipeline(timesteps=4, grid=16)
        msgs = report.component_messages
        assert msgs["reader"]["out"] == {"GridMeta": 4,
                                         "SimpleData": 4}
        assert msgs["presend"]["in"]["SimpleData"] == 4
        assert msgs["flow2d"]["out"]["FlowParams"] == 4
        # coupler fans out to two GUIs
        assert msgs["coupler"]["out"]["SimpleData"] == 8

    def test_presend_reduces_cells(self):
        report = run_pipeline(timesteps=2, grid=16, presend_factor=4)
        assert report.gui_stats[0][0]["cells"] == 16  # (16/4)^2

    def test_gui_stats_are_physical(self):
        report = run_pipeline(timesteps=3, grid=16)
        for frames in report.gui_stats:
            for frame in frames:
                assert frame["min"] <= frame["mean"] <= frame["max"]

    def test_dataset_can_be_supplied(self):
        ds = generate_watershed(nx=8, ny=8, timesteps=2, seed=99)
        report = run_pipeline(dataset=ds)
        assert report.timesteps == 2

    def test_tcp_transport(self):
        report = run_pipeline(timesteps=3, grid=16, transport="tcp")
        assert report.frames_per_gui == (3, 3)

    def test_feedback_disabled(self):
        report = run_pipeline(timesteps=4, grid=16, feedback_every=0)
        assert report.control_messages_applied == 0


class TestBuildPipeline:
    def test_components_in_order(self):
        ds = generate_watershed(nx=8, ny=8, timesteps=1)
        components = build_pipeline(ds)
        names = [c.component_name for c in components]
        assert names == ["reader", "presend", "flow2d", "coupler",
                         "vis5d-1", "vis5d-2"]

    def test_unknown_transport_rejected(self):
        ds = generate_watershed(nx=8, ny=8, timesteps=1)
        with pytest.raises(Exception, match="unknown transport"):
            build_pipeline(ds, transport="carrier-pigeon")


class TestMixedArchitecturePipeline:
    def test_sparc_presend_in_native_pipeline(self):
        """Receiver-makes-right inside the application: one component
        runs as a big-endian ILP32 'SPARC host' and the pipeline is
        none the wiser."""
        from repro.hydrology.components import (
            Coupler, DataFileReader, Flow2D, Presend, Vis5DSink,
        )
        from repro.hydrology.formats import publish_hydrology_schema
        from repro.pbio.machine import SPARC_32
        from repro.transport.inproc import channel_pair

        ds = generate_watershed(nx=16, ny=16, timesteps=3)
        schema_url = publish_hydrology_schema()
        r_out, p_in = channel_pair()
        p_out, f_in = channel_pair()
        f_out, c_in = channel_pair()
        c_g1, g1_in = channel_pair()

        reader = DataFileReader(schema_url, ds, r_out)
        presend = Presend(schema_url, p_in, p_out,
                          architecture=SPARC_32)
        flow = Flow2D(schema_url, f_in, f_out)
        coupler = Coupler(schema_url, c_in, [c_g1])
        gui = Vis5DSink(schema_url, g1_in)
        assert presend.context.architecture is SPARC_32

        components = [reader, presend, flow, coupler, gui]
        for comp in components:
            comp.start()
        for comp in components:
            comp.join(30)
            assert comp.error is None, comp.error
        assert len(gui.frames) == 3
        assert gui.frames[0]["cells"] == 64  # 16/2 squared


class TestPublisherPipeline:
    def test_broadcast_reaches_every_subscriber(self):
        from repro.hydrology.pipeline import run_publisher_pipeline

        report = run_publisher_pipeline(subscribers=3, timesteps=4,
                                        grid=8)
        assert report.subscribers == 3
        assert report.frames_per_subscriber == (4, 4, 4)
        # each subscriber decoded the whole stream: grid metadata,
        # flow parameters and the data frames
        for counts in report.records_per_subscriber:
            assert counts["SimpleData"] == 4
            assert counts["GridMeta"] >= 1
            assert counts["FlowParams"] == 4
        stats = report.publisher_stats
        assert stats["clients_evicted"] == 0
        assert stats["frames_dropped"] == 0
        # one announcement per format per subscriber, not per record
        assert stats["formats_announced"] <= 3 * 3

    def test_drop_oldest_policy_plumbs_through(self):
        from repro.hydrology.pipeline import run_publisher_pipeline

        report = run_publisher_pipeline(subscribers=2, timesteps=3,
                                        grid=8, policy="drop-oldest")
        assert report.frames_per_subscriber == (3, 3)
        assert report.publisher_stats["clients_evicted"] == 0
