"""Synthetic watershed generator."""

import numpy as np
import pytest

from repro.hydrology.datagen import generate_watershed


class TestGeneration:
    def test_shape_and_count(self):
        ds = generate_watershed(nx=16, ny=24, timesteps=5)
        assert ds.timesteps == 5
        assert ds.frame(0).shape == (24, 16)
        assert ds.frame(0).dtype == np.float32

    def test_deterministic_for_seed(self):
        a = generate_watershed(nx=8, ny=8, timesteps=3, seed=1)
        b = generate_watershed(nx=8, ny=8, timesteps=3, seed=1)
        for t in range(3):
            assert np.array_equal(a.frame(t), b.frame(t))

    def test_different_seeds_differ(self):
        a = generate_watershed(nx=8, ny=8, timesteps=2, seed=1)
        b = generate_watershed(nx=8, ny=8, timesteps=2, seed=2)
        assert not np.array_equal(a.frame(1), b.frame(1))

    def test_depths_nonnegative_and_finite(self):
        ds = generate_watershed(nx=16, ny=16, timesteps=8)
        for t in range(ds.timesteps):
            frame = ds.frame(t)
            assert np.isfinite(frame).all()
            assert (frame >= 0).all()

    def test_water_accumulates_in_low_cells(self):
        ds = generate_watershed(nx=32, ny=32, timesteps=6)
        last = ds.frame(ds.timesteps - 1).astype(np.float64)
        low = ds.elevation < np.percentile(ds.elevation, 25)
        high = ds.elevation > np.percentile(ds.elevation, 75)
        assert last[low].mean() > last[high].mean()


class TestRecords:
    def test_as_record_matches_simple_data(self):
        ds = generate_watershed(nx=4, ny=4, timesteps=2)
        record = ds.as_record(1)
        assert record["timestep"] == 1
        assert record["size"] == 16
        assert len(record["data"]) == 16

    def test_meta_record_fields(self):
        ds = generate_watershed(nx=8, ny=8, timesteps=2,
                                gauge_count=5)
        meta = ds.meta_record(0)
        assert meta["nx"] == 8 and meta["ny"] == 8
        assert meta["gauge_count"] == 5
        assert len(meta["gauges"]) == 5
        assert meta["min_depth"] <= meta["mean_depth"] <= \
            meta["max_depth"]

    def test_gauges_sample_the_grid(self):
        ds = generate_watershed(nx=8, ny=8, timesteps=1,
                                gauge_count=3)
        gauges = ds.gauges(0)
        frame = ds.frame(0)
        for value in gauges:
            assert value in frame

    def test_records_encode_with_hydrology_formats(self):
        from repro.hydrology.formats import hydrology_field_specs
        from repro.pbio.context import IOContext
        from repro.pbio.format_server import FormatServer
        ds = generate_watershed(nx=8, ny=8, timesteps=1,
                                gauge_count=24)
        ctx = IOContext(format_server=FormatServer())
        specs = hydrology_field_specs(ctx.architecture)
        ctx.register_layout("SimpleData", specs["SimpleData"])
        ctx.register_layout("GridMeta", specs["GridMeta"])
        assert ctx.roundtrip("SimpleData",
                             ds.as_record(0))["size"] == 64
        out = ctx.roundtrip("GridMeta", ds.meta_record(0))
        assert out["gauge_count"] == 24
