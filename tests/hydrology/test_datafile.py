"""Watershed data files and file-driven pipelines."""

import pytest

from repro.hydrology.datafile import (
    read_watershed_records, write_watershed_file,
)
from repro.hydrology.datagen import generate_watershed
from repro.hydrology.pipeline import run_pipeline
from repro.pbio.iofile import scan_file
from repro.pbio.machine import SPARC_32


@pytest.fixture
def dataset():
    return generate_watershed(nx=16, ny=16, timesteps=4)


class TestWatershedFiles:
    def test_write_and_scan(self, dataset, tmp_path):
        path = tmp_path / "w.pbio"
        assert write_watershed_file(path, dataset) == 8
        summary = scan_file(path)
        assert summary["records"] == {"GridMeta": 4, "SimpleData": 4}

    def test_read_back_matches_dataset(self, dataset, tmp_path):
        path = tmp_path / "w.pbio"
        write_watershed_file(path, dataset)
        records = list(read_watershed_records(path))
        assert [name for name, _ in records] == \
            ["GridMeta", "SimpleData"] * 4
        _, frame0 = records[1]
        assert frame0["size"] == 256
        assert frame0["data"] == dataset.as_record(0)["data"].tolist()

    def test_big_endian_ilp32_file_reads_natively(self, dataset,
                                                  tmp_path):
        path = tmp_path / "sparc.pbio"
        write_watershed_file(path, dataset, architecture=SPARC_32)
        records = list(read_watershed_records(path))
        assert len(records) == 8
        _, meta0 = records[0]
        assert meta0["nx"] == 16


class TestFileDrivenPipeline:
    def test_pipeline_from_file(self, dataset, tmp_path):
        path = tmp_path / "w.pbio"
        write_watershed_file(path, dataset)
        report = run_pipeline(data_file=path)
        assert report.frames_per_gui == (4, 4)
        assert report.timesteps == 4

    def test_file_and_memory_pipelines_agree(self, dataset, tmp_path):
        path = tmp_path / "w.pbio"
        write_watershed_file(path, dataset)
        from_file = run_pipeline(data_file=path, feedback_every=0)
        from_memory = run_pipeline(dataset=dataset, feedback_every=0)
        assert from_file.frames_per_gui == from_memory.frames_per_gui
        for a, b in zip(from_file.gui_stats[0],
                        from_memory.gui_stats[0]):
            assert a["cells"] == b["cells"]
            assert a["mean"] == pytest.approx(b["mean"], rel=1e-5)
