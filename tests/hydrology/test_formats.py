"""Hydrology format set: paper sizes and dual discovery paths."""

import pytest

from repro.core.toolkit import XMIT
from repro.hydrology.formats import (
    GAUGE_COUNT, HYDROLOGY_FRAGMENTS, HYDROLOGY_SCHEMA_XSD,
    hydrology_field_specs, hydrology_xmit, hydrology_xsd_for,
    publish_hydrology_schema,
)
from repro.pbio.context import IOContext
from repro.pbio.format_server import FormatServer
from repro.pbio.layout import field_list_for
from repro.pbio.machine import SPARC_32, X86_32

FORMAT_NAMES = ("SimpleData", "JoinRequest", "FlowParams", "GridMeta",
                "ControlMsg")


class TestPaperSizes:
    """The ILP32 byte sizes Fig. 6's x axis reports."""

    @pytest.mark.parametrize("name,expected", [
        ("SimpleData", 12),   # {int; int; float*}
        ("JoinRequest", 20),  # 5 x 4-byte words
        ("FlowParams", 44),   # 11 words
        ("GridMeta", 152),    # 14 words + 24 gauge floats
    ])
    def test_ilp32_struct_size(self, name, expected):
        specs = hydrology_field_specs(SPARC_32)[name]
        fl = field_list_for(specs, architecture=SPARC_32)
        assert fl.record_length == expected

    def test_gauge_count_consistent(self):
        specs = hydrology_field_specs(X86_32)["GridMeta"]
        gauges = [s for s in specs if s[0] == "gauges"][0]
        assert gauges[1] == f"float[{GAUGE_COUNT}]"


class TestDualPaths:
    """XSD discovery and compiled-in specs must yield identical
    formats (same wire metadata, hence same format IDs)."""

    @pytest.mark.parametrize("name", FORMAT_NAMES)
    def test_xmit_equals_compiled_in(self, name):
        xmit = XMIT()
        xmit.load_text(hydrology_xsd_for(name))
        ctx_a = IOContext(format_server=FormatServer())
        via_xmit = xmit.register_with_context(ctx_a, name)
        ctx_b = IOContext(format_server=FormatServer())
        compiled = ctx_b.register_layout(
            name, hydrology_field_specs(ctx_b.architecture)[name])
        assert via_xmit == compiled
        assert via_xmit.format_id == compiled.format_id


class TestHelpers:
    def test_fragments_cover_all_formats(self):
        assert set(HYDROLOGY_FRAGMENTS) == set(FORMAT_NAMES)

    def test_full_schema_contains_all(self):
        for name in FORMAT_NAMES:
            assert f'name="{name}"' in HYDROLOGY_SCHEMA_XSD

    def test_publish_and_load(self):
        url = publish_hydrology_schema("test-hydrology.xsd")
        xmit = XMIT()
        assert set(xmit.load_url(url)) == set(FORMAT_NAMES)

    def test_hydrology_xmit_preloaded(self):
        xmit = hydrology_xmit()
        assert set(xmit.format_names) == set(FORMAT_NAMES)
