"""Individual pipeline components, driven over real connections."""

import numpy as np
import pytest

from repro.hydrology.components import (
    Coupler, DataFileReader, Flow2D, Presend, Vis5DSink,
)
from repro.hydrology.datagen import generate_watershed
from repro.hydrology.formats import publish_hydrology_schema
from repro.pbio.context import IOContext
from repro.pbio.format_server import FormatServer
from repro.transport.connection import Connection
from repro.transport.inproc import channel_pair


@pytest.fixture(scope="module")
def schema_url():
    return publish_hydrology_schema("components-test.xsd")


def drain(channel, timeout=5):
    """Collect every message a component wrote to *channel*.

    Loads the shared schema like a real component would, so format IDs
    resolve locally without negotiation (send-only components do not
    service metadata requests).
    """
    from repro.core.toolkit import XMIT
    ctx = IOContext(format_server=FormatServer())
    xmit = XMIT()
    for name in xmit.load_url(publish_hydrology_schema()):
        xmit.register_with_context(ctx, name)
    conn = Connection(ctx, channel)
    messages = []
    while True:
        msg = conn.receive(timeout=timeout)
        if msg is None:
            return messages
        messages.append(msg)


class TestDataFileReader:
    def test_emits_meta_and_data_per_timestep(self, schema_url):
        ds = generate_watershed(nx=8, ny=8, timesteps=3)
        out, sink = channel_pair()
        reader = DataFileReader(schema_url, ds, out)
        reader.start()
        messages = drain(sink)
        reader.join(5)
        assert reader.error is None
        kinds = [m.format_name for m in messages]
        assert kinds == ["GridMeta", "SimpleData"] * 3
        assert messages[1].record["size"] == 64
        assert reader.stats.sent == {"GridMeta": 3, "SimpleData": 3}


class TestPresend:
    def test_downsamples_by_factor(self, schema_url):
        ds = generate_watershed(nx=8, ny=8, timesteps=2)
        src_out, presend_in = channel_pair()
        presend_out, sink = channel_pair()
        reader = DataFileReader(schema_url, ds, src_out)
        presend = Presend(schema_url, presend_in, presend_out,
                          factor=2)
        reader.start()
        presend.start()
        messages = drain(sink)
        reader.join(5)
        presend.join(5)
        assert presend.error is None
        metas = [m for m in messages if m.format_name == "GridMeta"]
        frames = [m for m in messages if m.format_name == "SimpleData"]
        assert metas[0].record["nx"] == 4
        assert frames[0].record["size"] == 16

    def test_mean_pooling_preserves_mass(self, schema_url):
        presend = Presend(schema_url, None, None, factor=2)
        grid = np.arange(16, dtype=np.float32).reshape(4, 4)
        reduced = presend._downsample(grid)
        assert reduced.shape == (2, 2)
        assert float(reduced.mean()) == pytest.approx(
            float(grid.mean()))

    def test_factor_one_is_identity(self, schema_url):
        presend = Presend(schema_url, None, None, factor=1)
        grid = np.random.default_rng(0).random((4, 4)) \
            .astype(np.float32)
        assert np.array_equal(presend._downsample(grid), grid)

    def test_bad_factor_rejected(self, schema_url):
        with pytest.raises(ValueError):
            Presend(schema_url, None, None, factor=0)


class TestFlow2D:
    def test_emits_flow_params_and_field(self, schema_url):
        ds = generate_watershed(nx=8, ny=8, timesteps=2)
        src_out, flow_in = channel_pair()
        flow_out, sink = channel_pair()
        reader = DataFileReader(schema_url, ds, src_out)
        flow = Flow2D(schema_url, flow_in, flow_out)
        reader.start()
        flow.start()
        messages = drain(sink)
        reader.join(5)
        flow.join(5)
        assert flow.error is None
        kinds = [m.format_name for m in messages]
        assert kinds.count("FlowParams") == 2
        assert kinds.count("SimpleData") == 2
        params = [m.record for m in messages
                  if m.format_name == "FlowParams"][0]
        assert params["nx"] == 8 and params["viscosity"] == \
            pytest.approx(0.2)

    def test_flow_field_shape_and_finiteness(self, schema_url):
        flow = Flow2D(schema_url, None, None)
        flow._meta = {"nx": 8, "ny": 8, "cell_size": 30.0}
        field = flow._flow_field(
            np.random.default_rng(1).random(64).astype(np.float32))
        assert field.shape == (8, 8)
        assert np.isfinite(field).all()


class TestVis5DSink:
    def test_collects_stats(self, schema_url):
        ds = generate_watershed(nx=8, ny=8, timesteps=3)
        src_out, gui_in = channel_pair()
        reader = DataFileReader(schema_url, ds, src_out)
        gui = Vis5DSink(schema_url, gui_in)
        reader.start()
        gui.start()
        reader.join(5)
        gui.join(5)
        assert gui.error is None
        assert len(gui.frames) == 3
        assert len(gui.metas) == 3
        frame = gui.frames[0]
        assert frame["cells"] == 64
        assert frame["min"] <= frame["mean"] <= frame["max"]


class TestRenderAscii:
    def test_shape_and_palette(self):
        import numpy as np
        from repro.hydrology.components import render_ascii
        grid = np.arange(64 * 64, dtype=float).reshape(64, 64)
        art = render_ascii(grid, width=32)
        lines = art.split("\n")
        assert all(len(line) == len(lines[0]) for line in lines)
        assert set(art) - {"\n"} <= set(" .:-=+*#%@")
        # monotone field: darkest at top-left, brightest at bottom-right
        assert lines[0][0] == " "
        assert lines[-1][-1] == "@"

    def test_constant_field(self):
        import numpy as np
        from repro.hydrology.components import render_ascii
        art = render_ascii(np.ones((16, 16)), width=8)
        assert set(art) - {"\n"} == {" "}

    def test_rejects_non_2d(self):
        import numpy as np
        import pytest as _pytest
        from repro.hydrology.components import render_ascii
        with _pytest.raises(ValueError):
            render_ascii(np.ones(16))
