"""XSD document parsing into the component model."""

import pytest

from repro.errors import SchemaParseError
from repro.schema.model import FIXED, SCALAR, VARIABLE
from repro.schema.parser import parse_schema_text

XSD_NS = 'xmlns:xsd="http://www.w3.org/2001/XMLSchema"'


def wrap(body: str) -> str:
    return f"<xsd:schema {XSD_NS}>{body}</xsd:schema>"


class TestComplexTypes:
    def test_flattened_style(self):
        # the paper's Fig. 2 style: elements directly under complexType
        s = parse_schema_text(wrap("""
          <xsd:complexType name="ASDOffEvent">
            <xsd:element name="centerID" type="xsd:string" />
            <xsd:element name="airline" type="xsd:string" />
            <xsd:element name="flightNum" type="xsd:integer" />
            <xsd:element name="off" type="xsd:unsignedLong" />
          </xsd:complexType>"""))
        ct = s.complex_type("ASDOffEvent")
        assert ct.field_names() == ("centerID", "airline", "flightNum",
                                    "off")
        assert ct.element("off").type_name == "unsignedLong"

    def test_sequence_style(self):
        s = parse_schema_text(wrap("""
          <xsd:complexType name="T">
            <xsd:sequence>
              <xsd:element name="a" type="xsd:int" />
              <xsd:element name="b" type="xsd:float" />
            </xsd:sequence>
          </xsd:complexType>"""))
        assert s.complex_type("T").field_names() == ("a", "b")

    def test_bare_complex_type_root(self):
        s = parse_schema_text(
            f'<xsd:complexType {XSD_NS} name="T">'
            '<xsd:element name="a" type="xsd:int" /></xsd:complexType>')
        assert "T" in s.complex_types

    def test_user_type_reference(self):
        s = parse_schema_text(wrap("""
          <xsd:complexType name="Inner">
            <xsd:element name="v" type="xsd:int" />
          </xsd:complexType>
          <xsd:complexType name="Outer">
            <xsd:element name="inner" type="Inner" />
          </xsd:complexType>"""))
        assert s.complex_type("Outer").element("inner").type_name == \
            "Inner"

    def test_documentation_captured(self):
        s = parse_schema_text(wrap("""
          <xsd:complexType name="T">
            <xsd:annotation>
              <xsd:documentation>About T.</xsd:documentation>
            </xsd:annotation>
            <xsd:element name="a" type="xsd:int" />
          </xsd:complexType>"""))
        assert s.complex_type("T").documentation == "About T."

    def test_target_namespace_recorded(self):
        s = parse_schema_text(
            f'<xsd:schema {XSD_NS} targetNamespace="urn:me">'
            '<xsd:complexType name="T">'
            '<xsd:element name="a" type="xsd:int" />'
            "</xsd:complexType></xsd:schema>")
        assert s.target_namespace == "urn:me"


class TestArraySpecs:
    def make(self, attrs: str):
        s = parse_schema_text(wrap(f"""
          <xsd:complexType name="T">
            <xsd:element name="size" type="xsd:int" />
            <xsd:element name="data" type="xsd:float" {attrs} />
          </xsd:complexType>"""))
        return s.complex_type("T").element("data").array

    def test_scalar_by_default(self):
        assert self.make("").kind == SCALAR

    def test_numeric_max_occurs(self):
        spec = self.make('maxOccurs="12"')
        assert spec.kind == FIXED and spec.size == 12

    def test_max_occurs_one_is_scalar(self):
        assert self.make('maxOccurs="1"').kind == SCALAR

    def test_star_is_dynamic(self):
        spec = self.make('maxOccurs="*"')
        assert spec.kind == VARIABLE and spec.length_field is None

    def test_unbounded_is_dynamic(self):
        assert self.make('maxOccurs="unbounded"').kind == VARIABLE

    def test_named_field_max_occurs(self):
        # section 3.1: a string maxOccurs names the sizing field
        spec = self.make('maxOccurs="size"')
        assert spec.kind == VARIABLE and spec.length_field == "size"

    def test_dimension_name_fig4_style(self):
        spec = self.make('minOccurs="0" maxOccurs="*" '
                         'dimensionName="size" '
                         'dimensionPlacement="before"')
        assert spec.kind == VARIABLE
        assert spec.length_field == "size"
        assert spec.placement == "before"

    def test_dimension_name_with_fixed_max_occurs_rejected(self):
        with pytest.raises(SchemaParseError, match="contradictory"):
            self.make('maxOccurs="5" dimensionName="size"')

    def test_zero_max_occurs_rejected(self):
        with pytest.raises(SchemaParseError):
            self.make('maxOccurs="0"')


class TestSimpleTypes:
    def test_enumeration(self):
        s = parse_schema_text(wrap("""
          <xsd:simpleType name="Color">
            <xsd:restriction base="xsd:string">
              <xsd:enumeration value="red" />
              <xsd:enumeration value="green" />
              <xsd:enumeration value="blue" />
            </xsd:restriction>
          </xsd:simpleType>
          <xsd:complexType name="Pixel">
            <xsd:element name="c" type="Color" />
          </xsd:complexType>"""))
        enum = s.enumerations["Color"]
        assert enum.values == ("red", "green", "blue")
        assert s.resolve("Color") is enum

    def test_enumeration_without_restriction_rejected(self):
        with pytest.raises(SchemaParseError):
            parse_schema_text(wrap(
                '<xsd:simpleType name="E"><xsd:list /></xsd:simpleType>'))


class TestParserErrors:
    def test_non_schema_root(self):
        with pytest.raises(SchemaParseError, match="expected an XML"):
            parse_schema_text("<not-a-schema/>")

    def test_unnamed_complex_type(self):
        with pytest.raises(SchemaParseError, match="name"):
            parse_schema_text(wrap(
                '<xsd:complexType><xsd:element name="a" '
                'type="xsd:int" /></xsd:complexType>'))

    def test_element_without_type(self):
        with pytest.raises(SchemaParseError, match="anonymous"):
            parse_schema_text(wrap(
                '<xsd:complexType name="T">'
                '<xsd:element name="a" /></xsd:complexType>'))

    def test_empty_complex_type(self):
        with pytest.raises(SchemaParseError, match="no fields"):
            parse_schema_text(wrap(
                '<xsd:complexType name="T"></xsd:complexType>'))

    def test_dangling_type_reference(self):
        with pytest.raises(Exception):
            parse_schema_text(wrap(
                '<xsd:complexType name="T">'
                '<xsd:element name="a" type="Ghost" />'
                "</xsd:complexType>"))

    def test_attribute_particles_rejected(self):
        with pytest.raises(SchemaParseError, match="attribute"):
            parse_schema_text(wrap(
                '<xsd:complexType name="T">'
                '<xsd:element name="a" type="xsd:int" />'
                '<xsd:attribute name="x" type="xsd:int" />'
                "</xsd:complexType>"))

    def test_negative_min_occurs(self):
        with pytest.raises(SchemaParseError):
            parse_schema_text(wrap(
                '<xsd:complexType name="T">'
                '<xsd:element name="a" type="xsd:int" '
                'minOccurs="-1" /></xsd:complexType>'))

    def test_1999_namespace_accepted(self):
        s = parse_schema_text(
            '<xsd:schema '
            'xmlns:xsd="http://www.w3.org/1999/XMLSchema">'
            '<xsd:complexType name="T">'
            '<xsd:element name="a" type="xsd:int" />'
            "</xsd:complexType></xsd:schema>")
        assert "T" in s.complex_types
