"""Instance validation: record dicts and XML instances."""

import pytest

from repro.errors import SchemaValidationError
from repro.schema.parser import parse_schema_text
from repro.schema.validator import (
    load_instance, match_format, validate_record,
)
from repro.xmlcore import parse

SCHEMA = parse_schema_text("""
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:simpleType name="Mode">
    <xsd:restriction base="xsd:string">
      <xsd:enumeration value="fast" />
      <xsd:enumeration value="safe" />
    </xsd:restriction>
  </xsd:simpleType>
  <xsd:complexType name="Point">
    <xsd:element name="x" type="xsd:double" />
    <xsd:element name="y" type="xsd:double" />
  </xsd:complexType>
  <xsd:complexType name="Msg">
    <xsd:element name="id" type="xsd:int" />
    <xsd:element name="label" type="xsd:string" minOccurs="0" />
    <xsd:element name="mode" type="Mode" />
    <xsd:element name="origin" type="Point" />
    <xsd:element name="size" type="xsd:int" />
    <xsd:element name="data" type="xsd:float" minOccurs="0"
                 maxOccurs="*" dimensionName="size" />
    <xsd:element name="pair" type="xsd:int" maxOccurs="2" />
  </xsd:complexType>
</xsd:schema>
""")


def good_record():
    return {"id": 1, "label": "L", "mode": "fast",
            "origin": {"x": 1.0, "y": 2.0}, "size": 2,
            "data": [1.5, 2.5], "pair": [7, 8]}


class TestValidateRecord:
    def test_valid(self):
        out = validate_record(SCHEMA, "Msg", good_record())
        assert out["origin"] == {"x": 1.0, "y": 2.0}

    def test_optional_field_may_be_absent(self):
        rec = good_record()
        del rec["label"]
        out = validate_record(SCHEMA, "Msg", rec)
        assert "label" not in out

    def test_required_field_missing(self):
        rec = good_record()
        del rec["id"]
        with pytest.raises(SchemaValidationError, match="id"):
            validate_record(SCHEMA, "Msg", rec)

    def test_unknown_field(self):
        rec = good_record() | {"bogus": 1}
        with pytest.raises(SchemaValidationError, match="bogus"):
            validate_record(SCHEMA, "Msg", rec)

    def test_type_violation(self):
        rec = good_record() | {"id": "one"}
        with pytest.raises(SchemaValidationError):
            validate_record(SCHEMA, "Msg", rec)

    def test_enum_violation(self):
        rec = good_record() | {"mode": "reckless"}
        with pytest.raises(SchemaValidationError):
            validate_record(SCHEMA, "Msg", rec)

    def test_nested_violation_reports_path(self):
        rec = good_record()
        rec["origin"] = {"x": 1.0}
        with pytest.raises(SchemaValidationError, match="origin"):
            validate_record(SCHEMA, "Msg", rec)

    def test_fixed_array_size_enforced(self):
        rec = good_record() | {"pair": [1]}
        with pytest.raises(SchemaValidationError, match="fixed array"):
            validate_record(SCHEMA, "Msg", rec)

    def test_length_field_mismatch(self):
        rec = good_record() | {"size": 5}
        with pytest.raises(SchemaValidationError, match="length field"):
            validate_record(SCHEMA, "Msg", rec)

    def test_scalar_where_array_expected(self):
        rec = good_record() | {"data": 1.5}
        with pytest.raises(SchemaValidationError, match="sequence"):
            validate_record(SCHEMA, "Msg", rec)

    def test_non_dict_record(self):
        with pytest.raises(SchemaValidationError):
            validate_record(SCHEMA, "Msg", [1, 2])


INSTANCE = """
<Msg>
  <id>5</id>
  <mode>safe</mode>
  <origin><x>0.5</x><y>1.5</y></origin>
  <size>3</size>
  <data>1.0</data><data>2.0</data><data>3.0</data>
  <pair>1</pair><pair>2</pair>
</Msg>
"""


class TestLoadInstance:
    def test_load(self):
        rec = load_instance(SCHEMA, "Msg", parse(INSTANCE).root)
        assert rec["id"] == 5
        assert rec["mode"] == "safe"
        assert rec["origin"] == {"x": 0.5, "y": 1.5}
        assert rec["data"] == [1.0, 2.0, 3.0]
        assert rec["pair"] == [1, 2]
        assert "label" not in rec

    def test_duplicate_scalar_rejected(self):
        text = INSTANCE.replace("<id>5</id>", "<id>5</id><id>6</id>")
        with pytest.raises(SchemaValidationError, match="scalar"):
            load_instance(SCHEMA, "Msg", parse(text).root)

    def test_unexpected_element_rejected(self):
        text = INSTANCE.replace("<id>5</id>", "<id>5</id><zz>1</zz>")
        with pytest.raises(SchemaValidationError, match="zz"):
            load_instance(SCHEMA, "Msg", parse(text).root)

    def test_missing_required_rejected(self):
        text = INSTANCE.replace("<mode>safe</mode>", "")
        with pytest.raises(SchemaValidationError, match="mode"):
            load_instance(SCHEMA, "Msg", parse(text).root)

    def test_length_field_cross_check(self):
        text = INSTANCE.replace("<size>3</size>", "<size>2</size>")
        with pytest.raises(SchemaValidationError, match="length field"):
            load_instance(SCHEMA, "Msg", parse(text).root)

    def test_fixed_occurrence_count(self):
        text = INSTANCE.replace("<pair>2</pair>", "")
        with pytest.raises(SchemaValidationError, match="pair"):
            load_instance(SCHEMA, "Msg", parse(text).root)


class TestMatchFormat:
    def test_matches_by_structure(self):
        # the paper: schema checking applied to live messages "to
        # determine which of several structure definitions a message
        # best matches"
        assert match_format(SCHEMA, parse(INSTANCE).root) == "Msg"

    def test_match_point(self):
        doc = parse("<Anything><x>1.0</x><y>2.0</y></Anything>")
        assert match_format(SCHEMA, doc.root) == "Point"

    def test_no_match(self):
        doc = parse("<W><only>1</only></W>")
        assert match_format(SCHEMA, doc.root) is None

    def test_prefers_name_match(self):
        doc = parse("<Point><x>1.0</x><y>2.0</y></Point>")
        assert match_format(SCHEMA, doc.root) == "Point"
