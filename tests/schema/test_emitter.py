"""Schema emission and parse/emit round-trips."""

from repro.schema.emitter import emit_schema
from repro.schema.model import (
    ArraySpec, ComplexType, ElementDecl, EnumerationType, FIXED, Schema,
    VARIABLE,
)
from repro.schema.parser import parse_schema, parse_schema_text
from repro.xmlcore import serialize


def build_schema() -> Schema:
    s = Schema()
    s.add(EnumerationType(name="Mode", values=("fast", "safe")))
    s.add(ComplexType(name="Point", elements=(
        ElementDecl(name="x", type_name="double"),
        ElementDecl(name="y", type_name="double"),
    )))
    s.add(ComplexType(name="Msg", elements=(
        ElementDecl(name="id", type_name="int"),
        ElementDecl(name="label", type_name="string", min_occurs=0),
        ElementDecl(name="mode", type_name="Mode"),
        ElementDecl(name="origin", type_name="Point"),
        ElementDecl(name="size", type_name="int"),
        ElementDecl(name="data", type_name="float",
                    array=ArraySpec(kind=VARIABLE, length_field="size"),
                    min_occurs=0),
        ElementDecl(name="pair", type_name="int",
                    array=ArraySpec(kind=FIXED, size=2)),
    )))
    s.check_references()
    return s


def assert_equivalent(a: Schema, b: Schema) -> None:
    assert set(a.complex_types) == set(b.complex_types)
    assert set(a.enumerations) == set(b.enumerations)
    for name, enum in a.enumerations.items():
        assert b.enumerations[name].values == enum.values
    for name, ct in a.complex_types.items():
        other = b.complex_types[name]
        assert other.field_names() == ct.field_names()
        for decl in ct.elements:
            mirror = other.element(decl.name)
            assert mirror.type_name == decl.type_name
            assert mirror.array == decl.array
            assert mirror.min_occurs == decl.min_occurs


class TestEmit:
    def test_roundtrip_full_schema(self):
        original = build_schema()
        text = serialize(emit_schema(original), indent="  ")
        reparsed = parse_schema_text(text)
        assert_equivalent(original, reparsed)

    def test_subset_emission(self):
        original = build_schema()
        doc = emit_schema(original, names=["Point"])
        reparsed = parse_schema(doc)
        assert set(reparsed.complex_types) == {"Point"}

    def test_subset_includes_referenced_enums(self):
        original = build_schema()
        # Msg references Mode and Point; Point must be passed in the
        # subset explicitly, enums come along automatically.
        doc = emit_schema(original, names=["Point", "Msg"])
        reparsed = parse_schema(doc)
        assert "Mode" in reparsed.enumerations

    def test_target_namespace_preserved(self):
        s = build_schema()
        s.target_namespace = "urn:hydrology"
        doc = emit_schema(s)
        assert doc.root.get("targetNamespace") == "urn:hydrology"

    def test_dimension_attributes_emitted(self):
        text = serialize(emit_schema(build_schema()))
        assert 'dimensionName="size"' in text
        assert 'maxOccurs="*"' in text

    def test_documentation_emitted(self):
        s = Schema()
        s.add(ComplexType(name="T", documentation="About T.", elements=(
            ElementDecl(name="a", type_name="int"),)))
        text = serialize(emit_schema(s))
        assert "About T." in text
        reparsed = parse_schema_text(text)
        assert reparsed.complex_type("T").documentation == "About T."
