"""Schema component model invariants."""

import pytest

from repro.errors import SchemaParseError, SchemaTypeError
from repro.schema.model import (
    ArraySpec, ComplexType, ElementDecl, EnumerationType, FIXED, SCALAR,
    Schema, VARIABLE,
)


def ct(name, *decls):
    return ComplexType(name=name, elements=tuple(decls))


def el(name, type_name, **kw):
    return ElementDecl(name=name, type_name=type_name, **kw)


class TestArraySpec:
    def test_scalar_default(self):
        spec = ArraySpec()
        assert spec.kind == SCALAR and not spec.is_array

    def test_fixed_requires_size(self):
        with pytest.raises(SchemaParseError):
            ArraySpec(kind=FIXED)
        with pytest.raises(SchemaParseError):
            ArraySpec(kind=FIXED, size=0)

    def test_bad_kind(self):
        with pytest.raises(SchemaParseError):
            ArraySpec(kind="jagged")

    def test_bad_placement(self):
        with pytest.raises(SchemaParseError):
            ArraySpec(kind=VARIABLE, placement="middle")


class TestComplexType:
    def test_duplicate_fields_rejected(self):
        with pytest.raises(SchemaParseError, match="duplicate"):
            ct("T", el("x", "int"), el("x", "float"))

    def test_field_lookup(self):
        t = ct("T", el("a", "int"), el("b", "float"))
        assert t.element("b").type_name == "float"
        assert t.field_names() == ("a", "b")
        with pytest.raises(SchemaTypeError):
            t.element("c")


class TestEnumeration:
    def test_empty_rejected(self):
        with pytest.raises(SchemaParseError):
            EnumerationType(name="E", values=())

    def test_duplicates_rejected(self):
        with pytest.raises(SchemaParseError):
            EnumerationType(name="E", values=("a", "a"))

    def test_index_of(self):
        e = EnumerationType(name="E", values=("x", "y"))
        assert e.index_of("y") == 1
        with pytest.raises(SchemaTypeError):
            e.index_of("z")


class TestSchema:
    def test_add_and_resolve(self):
        s = Schema()
        s.add(ct("T", el("a", "int")))
        assert s.complex_type("T").name == "T"
        assert s.resolve("T").name == "T"
        assert s.resolve("int").name == "int"

    def test_name_collision_with_primitive(self):
        s = Schema()
        with pytest.raises(SchemaParseError, match="collides"):
            s.add(ct("string", el("a", "int")))

    def test_name_collision_between_components(self):
        s = Schema()
        s.add(ct("T", el("a", "int")))
        with pytest.raises(SchemaParseError):
            s.add(EnumerationType(name="T", values=("x",)))

    def test_unknown_type_lookup(self):
        with pytest.raises(SchemaTypeError, match="unknown complexType"):
            Schema().complex_type("Nope")

    def test_merge(self):
        a, b = Schema(), Schema()
        a.add(ct("A", el("x", "int")))
        b.add(ct("B", el("y", "int")))
        a.merge(b)
        assert set(a.complex_types) == {"A", "B"}


class TestReferenceChecking:
    def test_dangling_reference(self):
        s = Schema()
        s.add(ct("T", el("p", "Missing")))
        with pytest.raises(SchemaTypeError):
            s.check_references()

    def test_direct_recursion_rejected(self):
        s = Schema()
        s.add(ct("T", el("next", "T")))
        with pytest.raises(SchemaTypeError, match="recursive"):
            s.check_references()

    def test_mutual_recursion_rejected(self):
        s = Schema()
        s.add(ct("A", el("b", "B")))
        s.add(ct("B", el("a", "A")))
        with pytest.raises(SchemaTypeError, match="recursive"):
            s.check_references()

    def test_diamond_composition_allowed(self):
        s = Schema()
        s.add(ct("Leaf", el("v", "int")))
        s.add(ct("L", el("leaf", "Leaf")))
        s.add(ct("R", el("leaf", "Leaf")))
        s.add(ct("Top", el("l", "L"), el("r", "R")))
        s.check_references()

    def test_length_field_must_exist(self):
        s = Schema()
        s.add(ct("T", el("data", "float",
                         array=ArraySpec(kind=VARIABLE,
                                         length_field="n"))))
        with pytest.raises(SchemaTypeError):
            s.check_references()

    def test_length_field_must_be_integer(self):
        s = Schema()
        s.add(ct("T", el("n", "string"),
                 el("data", "float",
                    array=ArraySpec(kind=VARIABLE, length_field="n"))))
        with pytest.raises(SchemaTypeError, match="integer"):
            s.check_references()

    def test_length_field_cannot_be_array(self):
        s = Schema()
        s.add(ct("T",
                 el("n", "int", array=ArraySpec(kind=FIXED, size=2)),
                 el("data", "float",
                    array=ArraySpec(kind=VARIABLE, length_field="n"))))
        with pytest.raises(SchemaTypeError, match="array"):
            s.check_references()

    def test_valid_length_field(self):
        s = Schema()
        s.add(ct("T", el("n", "int"),
                 el("data", "float",
                    array=ArraySpec(kind=VARIABLE, length_field="n"))))
        s.check_references()
