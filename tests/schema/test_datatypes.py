"""Primitive datatype lexical <-> value behaviour."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import SchemaTypeError, SchemaValidationError
from repro.schema.datatypes import all_datatypes, lookup_datatype


class TestLookup:
    def test_known_types(self):
        for name in ("string", "integer", "int", "long", "short",
                     "byte", "unsignedLong", "unsignedInt",
                     "unsignedShort", "unsignedByte", "float", "double",
                     "boolean"):
            assert lookup_datatype(name).name == name

    def test_unknown_type(self):
        with pytest.raises(SchemaTypeError, match="unknown"):
            lookup_datatype("quaternion")

    def test_registry_copy_is_defensive(self):
        table = all_datatypes()
        table["string"] = None
        assert lookup_datatype("string") is not None


class TestIntegerParsing:
    def test_basic(self):
        assert lookup_datatype("int").parse("42") == 42
        assert lookup_datatype("int").parse("-7") == -7
        assert lookup_datatype("int").parse("  13  ") == 13

    def test_int_range(self):
        int_t = lookup_datatype("int")
        assert int_t.parse("2147483647") == 2**31 - 1
        with pytest.raises(SchemaValidationError, match="out of range"):
            int_t.parse("2147483648")
        with pytest.raises(SchemaValidationError, match="out of range"):
            int_t.parse("-2147483649")

    def test_byte_range(self):
        byte_t = lookup_datatype("byte")
        assert byte_t.parse("-128") == -128
        with pytest.raises(SchemaValidationError):
            byte_t.parse("128")

    def test_unsigned_rejects_negative(self):
        with pytest.raises(SchemaValidationError):
            lookup_datatype("unsignedLong").parse("-1")

    def test_unsigned_long_max(self):
        assert lookup_datatype("unsignedLong").parse(
            "18446744073709551615") == 2**64 - 1
        with pytest.raises(SchemaValidationError):
            lookup_datatype("unsignedLong").parse("18446744073709551616")

    def test_unbounded_integer(self):
        huge = "9" * 40
        assert lookup_datatype("integer").parse(huge) == int(huge)

    def test_garbage_rejected(self):
        for bad in ("", "abc", "1.5", "0x10"):
            with pytest.raises(SchemaValidationError):
                lookup_datatype("int").parse(bad)

    def test_format_rejects_non_int(self):
        with pytest.raises(SchemaValidationError):
            lookup_datatype("int").format("42")
        with pytest.raises(SchemaValidationError):
            lookup_datatype("int").format(True)


class TestFloatParsing:
    def test_basic(self):
        assert lookup_datatype("float").parse("12.5") == 12.5
        assert lookup_datatype("double").parse("-1e10") == -1e10

    def test_special_values(self):
        f = lookup_datatype("float")
        assert f.parse("INF") == math.inf
        assert f.parse("-INF") == -math.inf
        assert math.isnan(f.parse("NaN"))

    def test_special_values_format(self):
        f = lookup_datatype("float")
        assert f.format(math.inf) == "INF"
        assert f.format(-math.inf) == "-INF"
        assert f.format(math.nan) == "NaN"

    def test_garbage_rejected(self):
        with pytest.raises(SchemaValidationError):
            lookup_datatype("float").parse("fast")

    def test_int_accepted_as_float_value(self):
        assert lookup_datatype("float").format(3) == "3.0"


class TestBoolean:
    @pytest.mark.parametrize("text,value", [
        ("true", True), ("1", True), ("false", False), ("0", False),
    ])
    def test_lexical_forms(self, text, value):
        assert lookup_datatype("boolean").parse(text) is value

    def test_bad_forms(self):
        for bad in ("TRUE", "yes", "2", ""):
            with pytest.raises(SchemaValidationError):
                lookup_datatype("boolean").parse(bad)

    def test_format(self):
        b = lookup_datatype("boolean")
        assert b.format(True) == "true"
        assert b.format(False) == "false"
        with pytest.raises(SchemaValidationError):
            b.format(1)


class TestString:
    def test_identity(self):
        s = lookup_datatype("string")
        assert s.parse("hello world ") == "hello world "

    def test_non_string_rejected(self):
        with pytest.raises(SchemaValidationError):
            lookup_datatype("string").format(42)


# -- property-based: format/parse is the identity on the value space ---------

@given(st.integers(-(2**31), 2**31 - 1))
def test_int_roundtrip(value):
    t = lookup_datatype("int")
    assert t.parse(t.format(value)) == value


@given(st.integers(0, 2**64 - 1))
def test_unsigned_long_roundtrip(value):
    t = lookup_datatype("unsignedLong")
    assert t.parse(t.format(value)) == value


@given(st.floats(allow_nan=False))
def test_double_roundtrip(value):
    t = lookup_datatype("double")
    assert t.parse(t.format(value)) == value


@given(st.text())
def test_string_roundtrip(value):
    t = lookup_datatype("string")
    assert t.parse(t.format(value)) == value
