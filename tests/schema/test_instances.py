"""dump_instance / load_instance symmetry."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.schema.parser import parse_schema_text
from repro.schema.validator import dump_instance, load_instance
from repro.xmlcore.serializer import serialize
from repro.xmlcore.parser import parse

SCHEMA = parse_schema_text("""
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Point">
    <xsd:element name="x" type="xsd:double" />
    <xsd:element name="y" type="xsd:double" />
  </xsd:complexType>
  <xsd:complexType name="Msg">
    <xsd:element name="id" type="xsd:int" />
    <xsd:element name="label" type="xsd:string" minOccurs="0" />
    <xsd:element name="origin" type="Point" />
    <xsd:element name="size" type="xsd:int" />
    <xsd:element name="data" type="xsd:float" minOccurs="0"
                 maxOccurs="*" dimensionName="size" />
  </xsd:complexType>
</xsd:schema>
""")


def sample():
    return {"id": 7, "label": "L", "origin": {"x": 1.5, "y": -2.0},
            "size": 2, "data": [0.5, 1.5]}


class TestDumpInstance:
    def test_document_shape(self):
        elem = dump_instance(SCHEMA, "Msg", sample())
        text = serialize(elem)
        assert text.startswith("<Msg>")
        assert "<id>7</id>" in text
        assert text.count("<data>") == 2
        assert "<origin><x>1.5</x>" in text

    def test_roundtrip(self):
        elem = dump_instance(SCHEMA, "Msg", sample())
        assert load_instance(SCHEMA, "Msg", elem) == sample()

    def test_roundtrip_through_text(self):
        text = serialize(dump_instance(SCHEMA, "Msg", sample()))
        reparsed = parse(text).root
        assert load_instance(SCHEMA, "Msg", reparsed) == sample()

    def test_optional_omitted(self):
        record = sample()
        del record["label"]
        text = serialize(dump_instance(SCHEMA, "Msg", record))
        assert "<label>" not in text

    def test_invalid_record_rejected(self):
        from repro.errors import SchemaValidationError
        record = sample() | {"id": "seven"}
        with pytest.raises(SchemaValidationError):
            dump_instance(SCHEMA, "Msg", record)


_records = st.fixed_dictionaries({
    "id": st.integers(-2**31, 2**31 - 1),
    "label": st.text(
        alphabet=st.characters(codec="utf-8",
                               blacklist_categories=("Cs", "Cc")),
        max_size=15),
    "origin": st.fixed_dictionaries({
        "x": st.floats(allow_nan=False),
        "y": st.floats(allow_nan=False)}),
    "data": st.lists(st.floats(width=32, allow_nan=False),
                     max_size=6),
}).map(lambda r: dict(r, size=len(r["data"])))


@settings(max_examples=60, deadline=None)
@given(_records)
def test_property_dump_load_identity(record):
    elem = dump_instance(SCHEMA, "Msg", record)
    assert load_instance(SCHEMA, "Msg", elem) == record
