"""Per-codec behaviour and cross-codec agreement."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WireFormatError
from repro.pbio.format import IOFormat
from repro.pbio.layout import field_list_for
from repro.pbio.machine import SPARC_32, X86_64
from repro.wire import (
    CDRWireCodec, MPIWireCodec, PBIOWireCodec, XDRWireCodec,
    XMLWireCodec, all_codecs, codec_by_name,
)

from tests.strategies import assert_record_roundtrip, format_case

ALL_CODECS = (XMLWireCodec, MPIWireCodec, CDRWireCodec, XDRWireCodec,
              PBIOWireCodec)


def simple_format(arch=X86_64):
    return IOFormat("SimpleData", field_list_for(
        [("timestep", "integer", 4), ("size", "integer", 4),
         ("data", "float[size]", 4)], architecture=arch))


def sample_record(n=16):
    return {"timestep": 9, "size": n,
            "data": [float(i) + 0.5 for i in range(n)]}


class TestRegistry:
    def test_all_registered(self):
        assert set(all_codecs()) == {"xml", "mpi", "cdr", "xdr", "pbio"}

    def test_instantiate_by_name(self):
        codec = codec_by_name("xml", simple_format())
        assert isinstance(codec, XMLWireCodec)

    def test_unknown_name(self):
        with pytest.raises(WireFormatError):
            codec_by_name("carrier-pigeon", simple_format())


@pytest.mark.parametrize("codec_cls", ALL_CODECS,
                         ids=[c.codec_name for c in ALL_CODECS])
class TestEveryCodec:
    def test_roundtrip_simple(self, codec_cls):
        codec = codec_cls(simple_format())
        record = sample_record()
        out = codec.roundtrip(record)
        assert out["timestep"] == 9
        assert out["size"] == 16
        assert out["data"] == record["data"]

    def test_roundtrip_empty_array(self, codec_cls):
        codec = codec_cls(simple_format())
        out = codec.roundtrip({"timestep": 1, "size": 0, "data": []})
        assert out["size"] == 0
        assert list(out["data"] or []) == []

    def test_roundtrip_strings(self, codec_cls):
        fmt = IOFormat("Msg", field_list_for(
            [("name", "string"), ("x", "integer", 4)]))
        codec = codec_cls(fmt)
        out = codec.roundtrip({"name": "hello world", "x": -3})
        assert out == {"name": "hello world", "x": -3}

    def test_roundtrip_nested(self, codec_cls):
        point = field_list_for([("x", "double", 8), ("y", "double", 8)])
        fmt = IOFormat("Track", field_list_for(
            [("id", "integer", 4), ("origin", "Point")],
            subformats={"Point": point}))
        codec = codec_cls(fmt)
        record = {"id": 1, "origin": {"x": 1.5, "y": 2.5}}
        assert codec.roundtrip(record) == record

    def test_roundtrip_big_endian_format(self, codec_cls):
        codec = codec_cls(simple_format(arch=SPARC_32))
        record = sample_record(4)
        assert codec.roundtrip(record)["data"] == record["data"]

    def test_missing_field_raises(self, codec_cls):
        codec = codec_cls(simple_format())
        with pytest.raises(Exception):
            codec.encode({"timestep": 1})

    def test_encoded_size_positive(self, codec_cls):
        codec = codec_cls(simple_format())
        assert codec.encoded_size(sample_record()) > 0


class TestSizeExpansion:
    """Fig. 1: XML representation is several times larger."""

    def test_xml_is_largest(self):
        fmt = simple_format()
        record = sample_record(256)
        sizes = {cls.codec_name: cls(fmt).encoded_size(record)
                 for cls in ALL_CODECS}
        assert sizes["xml"] > 3 * sizes["pbio"]
        assert sizes["xml"] == max(sizes.values())

    def test_binary_codecs_are_close(self):
        fmt = simple_format()
        record = sample_record(256)
        binary = [cls(fmt).encoded_size(record)
                  for cls in (MPIWireCodec, CDRWireCodec,
                              XDRWireCodec, PBIOWireCodec)]
        assert max(binary) < 1.2 * min(binary)


class TestXMLWireSpecifics:
    def test_document_shape_matches_fig1(self):
        codec = XMLWireCodec(simple_format())
        text = codec.encode(sample_record(3)).decode()
        assert text.startswith("<SimpleData>")
        assert text.count("<data>") == 3
        assert "<timestep>9</timestep>" in text

    def test_wrong_root_rejected(self):
        codec = XMLWireCodec(simple_format())
        with pytest.raises(WireFormatError, match="expected"):
            codec.decode(b"<Other><timestep>1</timestep></Other>")

    def test_unparseable_number_rejected(self):
        codec = XMLWireCodec(simple_format())
        with pytest.raises(WireFormatError):
            codec.decode(b"<SimpleData><timestep>NIL</timestep>"
                         b"<size>0</size></SimpleData>")

    def test_control_characters_unrepresentable(self):
        # binary formats carry any byte; XML 1.0 cannot even escape
        # U+0008 — the codec must fail loudly rather than emit an
        # unparseable document
        fmt = IOFormat("Msg", field_list_for([("s", "string")]))
        with pytest.raises(WireFormatError, match="cannot represent"):
            XMLWireCodec(fmt).encode({"s": "bell\x08"})


class TestCDRSpecifics:
    def test_byte_order_flag(self):
        little = CDRWireCodec(simple_format(X86_64))
        big = CDRWireCodec(simple_format(SPARC_32))
        assert little.encode(sample_record(1))[0] == 1
        assert big.encode(sample_record(1))[0] == 0

    def test_reader_makes_right(self):
        # encode with a big-endian sender, decode with a codec bound
        # to a little-endian format: the flag drives interpretation
        record = sample_record(4)
        data = CDRWireCodec(simple_format(SPARC_32)).encode(record)
        out = CDRWireCodec(simple_format(X86_64)).decode(data)
        assert out["data"] == record["data"]

    def test_alignment_padding_present(self):
        fmt = IOFormat("T", field_list_for(
            [("c", "char", 1), ("d", "double", 8)]))
        data = CDRWireCodec(fmt).encode({"c": "x", "d": 1.0})
        # 1 flag byte + 1 char + 6 pad + 8 double
        assert len(data) == 16

    def test_empty_payload_rejected(self):
        with pytest.raises(WireFormatError):
            CDRWireCodec(simple_format()).decode(b"")


class TestXDRSpecifics:
    def test_always_big_endian(self):
        record = {"timestep": 258, "size": 0, "data": []}
        for arch in (X86_64, SPARC_32):
            data = XDRWireCodec(simple_format(arch)).encode(record)
            assert data[:4] == (258).to_bytes(4, "big")

    def test_four_byte_units(self):
        fmt = IOFormat("T", field_list_for([("c", "char", 1)]))
        data = XDRWireCodec(fmt).encode({"c": "x"})
        assert len(data) == 4  # chars widen to a full XDR unit

    def test_string_padding(self):
        fmt = IOFormat("T", field_list_for([("s", "string")]))
        data = XDRWireCodec(fmt).encode({"s": "abcde"})
        assert len(data) == 4 + 8  # length + 5 bytes padded to 8

    def test_cross_endian_exchange(self):
        record = sample_record(4)
        data = XDRWireCodec(simple_format(SPARC_32)).encode(record)
        out = XDRWireCodec(simple_format(X86_64)).decode(data)
        assert out["data"] == record["data"]


class TestMPISpecifics:
    def test_typemap_packs_fixed_section_contiguously(self):
        fmt = IOFormat("T", field_list_for(
            [("a", "integer", 4), ("b", "integer", 4)]))
        data = MPIWireCodec(fmt).encode({"a": 1, "b": 2})
        assert len(data) == 8  # no header, no padding

    def test_enumeration_roundtrip(self):
        fmt = IOFormat("T", field_list_for(
            [("mode", "enumeration", 4)]),
            {"mode": ("fast", "safe")})
        # MPI codec carries enums as raw indices
        out = MPIWireCodec(fmt).roundtrip({"mode": 1})
        assert out["mode"] == 1


class TestPBIOCodecSpecifics:
    def test_wrong_format_id_rejected(self):
        a = PBIOWireCodec(simple_format())
        other = IOFormat("Other", field_list_for([("x", "integer", 4)]))
        b = PBIOWireCodec(other)
        with pytest.raises(WireFormatError, match="does not match"):
            b.decode(a.encode(sample_record(1)))


# -- property: every codec agrees with PBIO on every record -----------------

_CODEC_CLASSES = st.sampled_from(
    [XMLWireCodec, MPIWireCodec, CDRWireCodec, XDRWireCodec])


@settings(max_examples=40, deadline=None)
@given(case=format_case(max_fields=4), data=st.data(),
       codec_cls=_CODEC_CLASSES)
def test_codecs_roundtrip_matches_input(case, data, codec_cls):
    from hypothesis import assume
    from repro.xmlcore.chars import is_xml_char
    specs, record_strategy = case
    record = data.draw(record_strategy)
    if codec_cls is XMLWireCodec:
        # XML cannot represent control characters at all; the codec
        # rejects them (covered by a dedicated test below)
        assume(all(is_xml_char(c)
                   for v in record.values() if isinstance(v, str)
                   for c in v))
    fmt = IOFormat("P", field_list_for(specs))
    codec = codec_cls(fmt)
    decoded = codec.roundtrip(record)
    # None strings flatten to "" in text/length-prefixed codecs;
    # align on that before comparing.
    reference = dict(record)
    for key, value in reference.items():
        if value is None and codec_cls is not XMLWireCodec:
            reference[key] = ""
    if codec_cls is XMLWireCodec:
        for key, value in list(reference.items()):
            if value is None:
                reference[key] = ""
            if decoded.get(key) is None and reference[key] == "":
                decoded[key] = ""
    assert_record_roundtrip(reference, decoded, specs)
