"""Known-answer vectors for the standardized wire formats.

XDR byte layouts are fixed by RFC 1014 and CDR's by the CORBA spec;
these tests pin our encoders to the published representations, byte
for byte.
"""

import struct

from repro.pbio.format import IOFormat
from repro.pbio.layout import field_list_for
from repro.pbio.machine import SPARC_32, X86_64
from repro.wire import CDRWireCodec, XDRWireCodec


def fmt(specs, arch=X86_64):
    return IOFormat("V", field_list_for(specs, architecture=arch))


class TestXDRVectors:
    def test_int(self):
        data = XDRWireCodec(fmt([("v", "integer", 4)])) \
            .encode({"v": 1})
        assert data == b"\x00\x00\x00\x01"

    def test_negative_int_twos_complement(self):
        data = XDRWireCodec(fmt([("v", "integer", 4)])) \
            .encode({"v": -2})
        assert data == b"\xff\xff\xff\xfe"

    def test_small_ints_widen_to_four_bytes(self):
        data = XDRWireCodec(fmt([("v", "integer", 2)])) \
            .encode({"v": 259})
        assert data == b"\x00\x00\x01\x03"

    def test_hyper(self):
        data = XDRWireCodec(fmt([("v", "integer", 8)])) \
            .encode({"v": 1})
        assert data == b"\x00" * 7 + b"\x01"

    def test_float_ieee_big_endian(self):
        data = XDRWireCodec(fmt([("v", "float", 4)])) \
            .encode({"v": 1.0})
        assert data == struct.pack(">f", 1.0) == b"\x3f\x80\x00\x00"

    def test_boolean_is_u32(self):
        codec = XDRWireCodec(fmt([("v", "boolean", 1)]))
        assert codec.encode({"v": True}) == b"\x00\x00\x00\x01"
        assert codec.encode({"v": False}) == b"\x00\x00\x00\x00"

    def test_string_rfc1014_example(self):
        # RFC 1014 section 3.11's canonical picture: length + bytes +
        # pad to 4
        data = XDRWireCodec(fmt([("s", "string")])) \
            .encode({"s": "sillyprog"})
        assert data == (b"\x00\x00\x00\x09"
                        b"sillyprog" + b"\x00" * 3)

    def test_variable_array_count_prefix(self):
        data = XDRWireCodec(fmt([("n", "integer", 4),
                                 ("v", "float[n]", 4)])) \
            .encode({"n": 2, "v": [1.0, -1.0]})
        assert data == (b"\x00\x00\x00\x02"          # n field
                        b"\x00\x00\x00\x02"          # array count
                        + struct.pack(">ff", 1.0, -1.0))

    def test_output_always_multiple_of_four(self):
        codec = XDRWireCodec(fmt([("c", "char", 1), ("s", "string")]))
        for s in ("", "a", "ab", "abc", "abcd"):
            assert len(codec.encode({"c": "x", "s": s})) % 4 == 0


class TestCDRVectors:
    def test_byte_order_flag_little(self):
        data = CDRWireCodec(fmt([("v", "integer", 4)])) \
            .encode({"v": 1})
        assert data[0] == 1  # little-endian encapsulation
        assert data[1:4] == b"\x00\x00\x00"  # pad to 4 for the long
        assert data[4:8] == b"\x01\x00\x00\x00"

    def test_byte_order_flag_big(self):
        data = CDRWireCodec(fmt([("v", "integer", 4)],
                                arch=SPARC_32)).encode({"v": 1})
        assert data[0] == 0
        assert data[4:8] == b"\x00\x00\x00\x01"

    def test_string_includes_nul_in_length(self):
        data = CDRWireCodec(fmt([("s", "string")])) \
            .encode({"s": "hi"})
        # flag, pad(3), u32 len=3 (includes NUL), 'h','i',NUL
        assert data == (b"\x01\x00\x00\x00"
                        b"\x03\x00\x00\x00"
                        b"hi\x00")

    def test_alignment_relative_to_encapsulation(self):
        data = CDRWireCodec(fmt([("c", "char", 1),
                                 ("d", "double", 8)])) \
            .encode({"c": "A", "d": 1.0})
        # flag(1) + char at 1 + pad to 8 + double
        assert data[1] == ord("A")
        assert data[2:8] == b"\x00" * 6
        assert data[8:16] == struct.pack("<d", 1.0)

    def test_sequence_count_prefix(self):
        data = CDRWireCodec(fmt([("n", "integer", 4),
                                 ("v", "float[n]", 4)])) \
            .encode({"n": 1, "v": [2.0]})
        # flag, pad, n=1, count=1, float
        assert data[4:8] == b"\x01\x00\x00\x00"
        assert data[8:12] == b"\x01\x00\x00\x00"
        assert data[12:16] == struct.pack("<f", 2.0)
