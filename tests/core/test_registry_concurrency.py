"""Concurrent discovery: one compile per digest, serialized listeners."""

import threading

import pytest

from repro.core.registry import FormatRegistry
from repro.core.toolkit import XMIT
from repro.http.retry import RetryPolicy
from repro.http.urls import publish_document

from tests.conftest import SIMPLE_DATA_XSD

THREADS = 12
ROUNDS = 5


def _fast_policy():
    return RetryPolicy(attempts=3, base_delay=0.001, max_delay=0.01)


def _hammer(target, n_threads=THREADS):
    """Run *target(i)* on n threads; re-raise the first failure."""
    errors = []
    barrier = threading.Barrier(n_threads)

    def run(i):
        try:
            barrier.wait(timeout=10)
            target(i)
        except Exception as exc:  # noqa: BLE001 - collected for re-raise
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(i,))
               for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert not any(t.is_alive() for t in threads), "deadlocked"
    if errors:
        raise errors[0]


class TestOneCompilePerDigest:
    def test_concurrent_load_url_compiles_once(self):
        url = publish_document("conc-load.xsd", SIMPLE_DATA_XSD)
        registry = FormatRegistry(retry=_fast_policy())
        results = [None] * THREADS

        def load(i):
            for _ in range(ROUNDS):
                results[i] = registry.load_url(url)

        _hammer(load)
        assert all(r == ("SimpleData",) for r in results)
        assert registry.stats.compiles == 1
        # only the winning thread fetched; everyone else hit the cache
        assert registry.stats.fetch_attempts == 1
        assert registry.stats.cache_hits == THREADS * ROUNDS - 1

    def test_mixed_load_and_refresh_same_digest(self):
        url = publish_document("conc-mixed.xsd", SIMPLE_DATA_XSD)
        registry = FormatRegistry(retry=_fast_policy())
        registry.load_url(url)

        def churn(i):
            for _ in range(ROUNDS):
                if i % 2 == 0:
                    assert registry.load_url(url) == ("SimpleData",)
                else:
                    assert registry.refresh(url) == ()

        _hammer(churn)
        # refresh re-fetches by design, but an unchanged digest never
        # triggers a second compile
        assert registry.stats.compiles == 1
        assert "SimpleData" in registry.ir.formats

    def test_two_urls_same_content_share_the_compile(self):
        url_a = publish_document("conc-dup-a.xsd", SIMPLE_DATA_XSD)
        url_b = publish_document("conc-dup-b.xsd", SIMPLE_DATA_XSD)
        registry = FormatRegistry(retry=_fast_policy())

        def load(i):
            registry.load_url(url_a if i % 2 == 0 else url_b)

        _hammer(load)
        assert registry.stats.compiles == 1
        assert set(registry.urls()) == {url_a, url_b}


class TestListenerIntegrity:
    def test_no_torn_notifications_under_concurrent_refresh(self):
        """Listener callbacks never interleave: the registry holds its
        lock across a refresh's whole notification batch."""
        name = "conc-notify.xsd"
        url = publish_document(name, SIMPLE_DATA_XSD)
        xmit = XMIT(retry=_fast_policy(), cache_ttl=0.0)
        xmit.load_url(url)

        v2 = SIMPLE_DATA_XSD.replace(
            "</xsd:complexType>",
            '<xsd:element name="units" type="xsd:string" />'
            "</xsd:complexType>")
        docs = [SIMPLE_DATA_XSD, v2]

        in_listener = threading.Lock()
        violations = []
        events = []

        def listener(event, fmt_name, fmt):
            if not in_listener.acquire(blocking=False):
                violations.append((event, fmt_name))
                return
            try:
                events.append((event, fmt_name, fmt))
            finally:
                in_listener.release()

        xmit.subscribe(listener)

        def churn(i):
            for round_no in range(ROUNDS):
                publish_document(name, docs[(i + round_no) % 2])
                xmit.refresh(url)

        _hammer(churn, n_threads=8)
        assert not violations
        # every event is a coherent (event, name, payload) triple
        for event, fmt_name, fmt in events:
            assert event in ("added", "changed", "removed")
            assert fmt_name == "SimpleData"
            assert (fmt is None) == (event == "removed")

    def test_subscribe_during_notification_storm_is_safe(self):
        name = "conc-subscribe.xsd"
        url = publish_document(name, SIMPLE_DATA_XSD)
        registry = FormatRegistry(retry=_fast_policy(), cache_ttl=0.0)
        registry.load_url(url)
        v2 = SIMPLE_DATA_XSD.replace("SimpleData", "Other")
        docs = [SIMPLE_DATA_XSD, v2]

        def churn(i):
            if i % 3 == 0:
                for _ in range(ROUNDS):
                    listener = lambda *a: None  # noqa: E731
                    registry.subscribe(listener)
                    registry.unsubscribe(listener)
            else:
                for round_no in range(ROUNDS):
                    publish_document(name, docs[(i + round_no) % 2])
                    registry.refresh(url)

        _hammer(churn, n_threads=9)


class TestConcurrentFailure:
    def test_fallback_under_concurrency_keeps_formats(self):
        from repro.testing import FAIL, FaultInjectingResolver

        resolver = FaultInjectingResolver("conc-fault").install()
        url = resolver.publish("doc.xsd", SIMPLE_DATA_XSD)
        registry = FormatRegistry(retry=_fast_policy(),
                                  cache_ttl=0.0, negative_ttl=0.0)
        registry.load_url(url)
        resolver.set_faults("doc.xsd", [FAIL], repeat_last=True)

        def churn(i):
            for _ in range(ROUNDS):
                assert registry.load_url(url) == ("SimpleData",)
                assert registry.refresh(url) == ()

        _hammer(churn, n_threads=6)
        assert "SimpleData" in registry.ir.formats
        assert registry.stats.fallbacks == 6 * ROUNDS * 2
