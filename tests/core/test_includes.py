"""xsd:include / xsd:import resolution across hosted documents."""

import pytest

from repro.core.toolkit import XMIT
from repro.errors import DiscoveryError, SchemaParseError
from repro.http.server import DocumentStore, MetadataHTTPServer
from repro.http.urls import publish_document, resolve_url

XSD_NS = 'xmlns:xsd="http://www.w3.org/2001/XMLSchema"'

COMMON = f"""
<xsd:schema {XSD_NS}>
  <xsd:complexType name="Point">
    <xsd:element name="x" type="xsd:double" />
    <xsd:element name="y" type="xsd:double" />
  </xsd:complexType>
</xsd:schema>
"""


def main_doc(location: str) -> str:
    return f"""
<xsd:schema {XSD_NS}>
  <xsd:include schemaLocation="{location}" />
  <xsd:complexType name="Track">
    <xsd:element name="id" type="xsd:int" />
    <xsd:element name="origin" type="Point" />
  </xsd:complexType>
</xsd:schema>
"""


class TestResolveURL:
    @pytest.mark.parametrize("base,ref,expected", [
        ("http://h:1/a/b.xsd", "c.xsd", "http://h:1/a/c.xsd"),
        ("http://h:1/a/b.xsd", "/c.xsd", "http://h:1/c.xsd"),
        ("http://h:1/a/b.xsd", "../c.xsd", "http://h:1/c.xsd"),
        ("http://h:1/a/b.xsd", "./c.xsd", "http://h:1/a/c.xsd"),
        ("http://h:1/b.xsd", "sub/c.xsd", "http://h:1/sub/c.xsd"),
        ("mem:dir/b.xsd", "c.xsd", "mem:dir/c.xsd"),
        ("mem:b.xsd", "c.xsd", "mem:c.xsd"),
        ("file:///tmp/a/b.xsd", "c.xsd", "file:/tmp/a/c.xsd"),
        ("http://h/a.xsd", "http://other/x.xsd",
         "http://other/x.xsd"),
    ])
    def test_resolution(self, base, ref, expected):
        assert resolve_url(base, ref) == expected


class TestIncludes:
    def test_include_via_mem(self):
        publish_document("inc/common.xsd", COMMON)
        url = publish_document("inc/main.xsd", main_doc("common.xsd"))
        xmit = XMIT()
        names = xmit.load_url(url)
        assert set(names) == {"Point", "Track"}
        assert xmit.ir.format("Track").field("origin").type \
            .format_name == "Point"

    def test_include_via_http_relative(self):
        store = DocumentStore()
        store.put("/formats/common.xsd", COMMON)
        store.put("/formats/main.xsd", main_doc("common.xsd"))
        with MetadataHTTPServer(store) as server:
            xmit = XMIT()
            names = xmit.load_url(server.url_for("/formats/main.xsd"))
        assert set(names) == {"Point", "Track"}

    def test_nested_and_diamond_includes(self):
        publish_document("dia/leaf.xsd", COMMON)
        publish_document("dia/left.xsd", f"""
            <xsd:schema {XSD_NS}>
              <xsd:include schemaLocation="leaf.xsd" />
              <xsd:complexType name="Left">
                <xsd:element name="p" type="Point" />
              </xsd:complexType>
            </xsd:schema>""")
        publish_document("dia/right.xsd", f"""
            <xsd:schema {XSD_NS}>
              <xsd:include schemaLocation="leaf.xsd" />
              <xsd:complexType name="Right">
                <xsd:element name="p" type="Point" />
              </xsd:complexType>
            </xsd:schema>""")
        url = publish_document("dia/top.xsd", f"""
            <xsd:schema {XSD_NS}>
              <xsd:include schemaLocation="left.xsd" />
              <xsd:include schemaLocation="right.xsd" />
              <xsd:complexType name="Top">
                <xsd:element name="l" type="Left" />
                <xsd:element name="r" type="Right" />
              </xsd:complexType>
            </xsd:schema>""")
        xmit = XMIT()
        assert set(xmit.load_url(url)) == {"Point", "Left", "Right",
                                           "Top"}

    def test_circular_include_terminates(self):
        publish_document("circ/a.xsd", f"""
            <xsd:schema {XSD_NS}>
              <xsd:include schemaLocation="b.xsd" />
              <xsd:complexType name="A">
                <xsd:element name="x" type="xsd:int" />
              </xsd:complexType>
            </xsd:schema>""")
        publish_document("circ/b.xsd", f"""
            <xsd:schema {XSD_NS}>
              <xsd:include schemaLocation="a.xsd" />
              <xsd:complexType name="B">
                <xsd:element name="a" type="A" />
              </xsd:complexType>
            </xsd:schema>""")
        xmit = XMIT()
        names = xmit.load_url("mem:circ/a.xsd")
        assert set(names) == {"A", "B"}

    def test_missing_include_errors(self):
        url = publish_document("miss/main.xsd",
                               main_doc("never-published.xsd"))
        with pytest.raises(DiscoveryError):
            XMIT().load_url(url)

    def test_conflicting_definitions_rejected(self):
        publish_document("dup/one.xsd", COMMON)
        url = publish_document("dup/main.xsd", f"""
            <xsd:schema {XSD_NS}>
              <xsd:include schemaLocation="one.xsd" />
              <xsd:complexType name="Point">
                <xsd:element name="z" type="xsd:int" />
              </xsd:complexType>
            </xsd:schema>""")
        with pytest.raises(SchemaParseError, match="collides"):
            XMIT().load_url(url)

    def test_end_to_end_binding_across_documents(self):
        publish_document("e2e/common.xsd", COMMON)
        url = publish_document("e2e/main.xsd",
                               main_doc("common.xsd"))
        from repro.pbio.context import IOContext
        from repro.pbio.format_server import FormatServer
        xmit = XMIT()
        xmit.load_url(url)
        ctx = IOContext(format_server=FormatServer())
        xmit.register_with_context(ctx, "Track")
        record = {"id": 1, "origin": {"x": 2.0, "y": 3.0}}
        assert ctx.roundtrip("Track", record) == record
