"""Property: IR -> exported XSD -> reparsed IR is the identity.

Exercises the full publication loop the paper's deployment depends on
(XMIT exporting formats for other components to discover) over
randomly generated format sets.
"""

import string

from hypothesis import given, settings, strategies as st

from repro.core.ir import ArrayIR, EnumIR, FieldIR, FormatIR, IRSet, TypeRef
from repro.core.schema_compiler import compile_schema
from repro.core.toolkit import XMIT
from repro.schema.parser import parse_schema_text

_names = st.builds(
    lambda a, b: a + b,
    st.sampled_from(string.ascii_lowercase),
    st.text(alphabet=string.ascii_lowercase + string.digits,
            max_size=6))

_prim_types = st.sampled_from([
    ("integer", 8), ("integer", 16), ("integer", 32), ("integer", 64),
    ("integer", None),
    ("unsigned", 8), ("unsigned", 16), ("unsigned", 32),
    ("unsigned", 64),
    ("float", 32), ("float", 64), ("boolean", 8), ("string", None),
])


@st.composite
def _ir_sets(draw) -> IRSet:
    ir = IRSet()
    n_formats = draw(st.integers(1, 3))
    fmt_names = draw(st.lists(
        _names.map(lambda s: "F" + s), min_size=n_formats,
        max_size=n_formats, unique=True))
    for i, fmt_name in enumerate(fmt_names):
        n_fields = draw(st.integers(1, 5))
        field_names = draw(st.lists(_names, min_size=n_fields,
                                    max_size=n_fields, unique=True))
        fields = []
        int_fields = []
        for fname in field_names:
            kind, bits = draw(_prim_types)
            tref = TypeRef(kind=kind, bits=bits)
            shape = draw(st.integers(0, 3))
            array = None
            if kind != "string":
                if shape == 1:
                    # size 1 normalizes to scalar through XSD
                    # (maxOccurs="1"); generate real arrays only
                    array = ArrayIR(fixed_size=draw(
                        st.integers(2, 8)))
                elif shape == 2:
                    array = ArrayIR()
                elif shape == 3 and int_fields:
                    # length-linked to an earlier *scalar* integer
                    array = ArrayIR(length_field=draw(
                        st.sampled_from(int_fields)))
            if kind in ("integer", "unsigned") and array is None:
                int_fields.append(fname)
            fields.append(FieldIR(name=fname, type=tref, array=array))
        # nested reference to a previously declared format
        if i > 0 and draw(st.booleans()):
            nested_name = draw(st.sampled_from(fmt_names[:i]))
            fields.append(FieldIR(
                name=f"nested{i}", type=TypeRef(format_name=nested_name)))
        ir.add_format(FormatIR(name=fmt_name, fields=tuple(fields)))
    return ir


def _assert_ir_equal(a: IRSet, b: IRSet) -> None:
    assert set(a.formats) == set(b.formats)
    for name, fmt in a.formats.items():
        other = b.formats[name]
        assert other.field_names() == fmt.field_names()
        for field in fmt.fields:
            mirror = other.field(field.name)
            assert mirror.type == field.type, (name, field.name)
            assert mirror.array == field.array, (name, field.name)


@settings(max_examples=50, deadline=None)
@given(_ir_sets())
def test_export_then_load_is_identity(ir):
    xmit = XMIT()
    xmit.registry.ir.merge(ir)
    text = xmit.export_schema()
    schema = parse_schema_text(text)
    reparsed = compile_schema(schema)
    _assert_ir_equal(ir, reparsed)


def test_enums_roundtrip_through_export():
    ir = IRSet()
    ir.add_enum(EnumIR(name="Mode", values=("a", "b", "c")))
    ir.add_format(FormatIR(name="F", fields=(
        FieldIR(name="m", type=TypeRef(enum_name="Mode")),)))
    xmit = XMIT()
    xmit.registry.ir.merge(ir)
    reparsed = compile_schema(parse_schema_text(xmit.export_schema()))
    assert reparsed.enums["Mode"].values == ("a", "b", "c")
    assert reparsed.format("F").field("m").type.enum_name == "Mode"
