"""The XMIT facade: discovery, binding, refresh propagation."""

import pytest

from repro.core.toolkit import XMIT
from repro.errors import XMITError
from repro.http.server import DocumentStore, MetadataHTTPServer
from repro.http.urls import publish_document
from repro.pbio.context import IOContext
from repro.pbio.format_server import FormatServer
from repro.pbio.machine import SPARC_32
from repro.schema.parser import parse_schema_text

XSD_V1 = """
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="SimpleData">
    <xsd:element name="timestep" type="xsd:integer" />
    <xsd:element name="size" type="xsd:integer" />
    <xsd:element name="data" type="xsd:float" maxOccurs="*"
                 dimensionName="size" />
  </xsd:complexType>
</xsd:schema>
"""

XSD_V2 = XSD_V1.replace(
    "</xsd:complexType>",
    '  <xsd:element name="units" type="xsd:string" />\n'
    "</xsd:complexType>")


class TestDiscovery:
    def test_load_text(self):
        xmit = XMIT()
        assert xmit.load_text(XSD_V1) == ("SimpleData",)
        assert xmit.format_names == ("SimpleData",)

    def test_load_mem_url(self):
        url = publish_document("toolkit-t1.xsd", XSD_V1)
        xmit = XMIT()
        assert xmit.load_url(url) == ("SimpleData",)

    def test_load_http_url(self):
        store = DocumentStore()
        store.put("/f.xsd", XSD_V1)
        with MetadataHTTPServer(store) as server:
            xmit = XMIT()
            assert xmit.load_url(server.url_for("/f.xsd")) == \
                ("SimpleData",)

    def test_load_file_url(self, tmp_path):
        path = tmp_path / "f.xsd"
        path.write_text(XSD_V1)
        xmit = XMIT()
        assert xmit.load_url(f"file://{path}") == ("SimpleData",)

    def test_multiple_documents_merge(self):
        other = XSD_V1.replace("SimpleData", "OtherData")
        xmit = XMIT()
        xmit.load_text(XSD_V1)
        xmit.load_text(other)
        assert set(xmit.format_names) == {"SimpleData", "OtherData"}


class TestBinding:
    def test_bind_unknown_format(self):
        with pytest.raises(XMITError, match="not been discovered"):
            XMIT().bind("Ghost")

    def test_bind_caches_tokens(self):
        xmit = XMIT()
        xmit.load_text(XSD_V1)
        assert xmit.bind("SimpleData") is xmit.bind("SimpleData")

    def test_bind_cache_distinguishes_options(self):
        xmit = XMIT()
        xmit.load_text(XSD_V1)
        a = xmit.bind("SimpleData", architecture=SPARC_32)
        b = xmit.bind("SimpleData")
        assert a is not b
        assert a.artifact.architecture is SPARC_32

    def test_register_with_context(self):
        xmit = XMIT()
        xmit.load_text(XSD_V1)
        ctx = IOContext(format_server=FormatServer())
        fmt = xmit.register_with_context(ctx, "SimpleData")
        assert ctx.lookup_format("SimpleData") is fmt
        record = {"timestep": 1, "data": [2.0]}
        assert ctx.roundtrip("SimpleData", record)["data"] == [2.0]

    def test_generators(self):
        xmit = XMIT()
        xmit.load_text(XSD_V1)
        assert "class SimpleData" in \
            xmit.generate_java_source("SimpleData")
        assert "typedef struct _SimpleData" in \
            xmit.generate_c_source("SimpleData")
        cls = xmit.generate_python_class("SimpleData")
        assert cls.FORMAT_NAME == "SimpleData"


class TestRefresh:
    def test_refresh_unchanged_is_noop(self):
        url = publish_document("toolkit-r1.xsd", XSD_V1)
        xmit = XMIT()
        xmit.load_url(url)
        assert xmit.refresh(url) == ()

    def test_refresh_detects_change_and_notifies(self):
        url = publish_document("toolkit-r2.xsd", XSD_V1)
        xmit = XMIT()
        xmit.load_url(url)
        events = []
        xmit.subscribe(lambda ev, name, fmt: events.append((ev, name)))
        publish_document("toolkit-r2.xsd", XSD_V2)
        assert xmit.refresh(url) == ("SimpleData",)
        assert events == [("changed", "SimpleData")]
        assert "units" in xmit.ir.format("SimpleData").field_names()

    def test_refresh_invalidates_bindings(self):
        url = publish_document("toolkit-r3.xsd", XSD_V1)
        xmit = XMIT()
        xmit.load_url(url)
        before = xmit.bind("SimpleData")
        publish_document("toolkit-r3.xsd", XSD_V2)
        xmit.refresh(url)
        after = xmit.bind("SimpleData")
        assert before is not after
        assert "units" in after.artifact.field_list

    def test_refresh_reports_added_formats(self):
        url = publish_document("toolkit-r4.xsd", XSD_V1)
        xmit = XMIT()
        xmit.load_url(url)
        extra = XSD_V1.replace(
            "</xsd:schema>",
            '<xsd:complexType name="Extra">'
            '<xsd:element name="x" type="xsd:int" /></xsd:complexType>'
            "</xsd:schema>")
        publish_document("toolkit-r4.xsd", extra)
        assert set(xmit.refresh(url)) == {"Extra"}


class TestExport:
    def test_export_round_trips(self):
        xmit = XMIT()
        xmit.load_text(XSD_V1)
        text = xmit.export_schema()
        schema = parse_schema_text(text)
        assert "SimpleData" in schema.complex_types
        ct = schema.complex_type("SimpleData")
        assert ct.element("data").array.length_field == "size"

    def test_export_subset(self):
        xmit = XMIT()
        xmit.load_text(XSD_V1)
        xmit.load_text(XSD_V1.replace("SimpleData", "Other"))
        text = xmit.export_schema(["Other"])
        schema = parse_schema_text(text)
        assert set(schema.complex_types) == {"Other"}

    def test_export_feeds_another_toolkit(self):
        """Publish-and-rediscover loop: XMIT A exports, XMIT B loads."""
        a = XMIT()
        a.load_text(XSD_V1)
        url = publish_document("toolkit-x1.xsd", a.export_schema())
        b = XMIT()
        assert b.load_url(url) == ("SimpleData",)
        assert b.ir.format("SimpleData") == a.ir.format("SimpleData")
