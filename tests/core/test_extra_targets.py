"""IDL and C++ source targets (paper sections 5/6 extensions)."""

import pytest

from repro.core.schema_compiler import compile_schema
from repro.core.targets import available_targets
from repro.core.targets.cpp_target import CppSourceTarget
from repro.core.targets.idl_target import IDLSourceTarget
from repro.errors import TargetError
from repro.schema.parser import parse_schema_text

XSD = """
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:simpleType name="Mode">
    <xsd:restriction base="xsd:string">
      <xsd:enumeration value="fast" />
      <xsd:enumeration value="safe" />
    </xsd:restriction>
  </xsd:simpleType>
  <xsd:complexType name="Point">
    <xsd:element name="x" type="xsd:double" />
    <xsd:element name="y" type="xsd:double" />
  </xsd:complexType>
  <xsd:complexType name="Track">
    <xsd:element name="id" type="xsd:int" />
    <xsd:element name="seq" type="xsd:unsignedLong" />
    <xsd:element name="mode" type="Mode" />
    <xsd:element name="origin" type="Point" />
    <xsd:element name="n" type="xsd:int" />
    <xsd:element name="path" type="Point" maxOccurs="*"
                 dimensionName="n" />
    <xsd:element name="tags" type="xsd:byte" maxOccurs="4" />
    <xsd:element name="label" type="xsd:string" />
  </xsd:complexType>
</xsd:schema>
"""


@pytest.fixture(scope="module")
def ir():
    return compile_schema(parse_schema_text(XSD))


class TestRegistry:
    def test_new_targets_registered(self):
        assert {"idl", "cpp"} <= set(available_targets())


class TestIDLTarget:
    def test_struct_shape(self, ir):
        source = IDLSourceTarget().generate(ir, "Track").artifact
        assert "module xmit {" in source
        assert "enum Mode { fast, safe };" in source
        assert "struct Point {" in source
        assert "struct Track {" in source
        assert "long id;" in source
        assert "unsigned long long seq;" in source
        assert "sequence<Point> path;" in source
        assert "octet tags[4];" in source
        assert "string label;" in source

    def test_dependencies_precede_dependents(self, ir):
        source = IDLSourceTarget().generate(ir, "Track").artifact
        assert source.index("struct Point") < source.index(
            "struct Track")

    def test_module_option(self, ir):
        source = IDLSourceTarget().generate(
            ir, "Point", module="hydrology").artifact
        assert source.startswith("module hydrology {")

    def test_unknown_option(self, ir):
        with pytest.raises(TargetError):
            IDLSourceTarget().generate(ir, "Point", package="x")


class TestCppTarget:
    def test_class_shape(self, ir):
        source = CppSourceTarget().generate(ir, "Track").artifact
        assert "#ifndef XMIT_GENERATED_TRACK_HPP" in source
        assert "namespace xmit {" in source
        assert "enum class Mode { fast, safe };" in source
        assert "class Point {" in source
        assert "int32_t id{};" in source
        assert "uint64_t seq{};" in source
        assert "std::vector<Point> path{};" in source
        assert "std::array<int8_t, 4> tags{};" in source
        assert "std::string label{};" in source
        assert '"Track"' in source

    def test_includes_present(self, ir):
        source = CppSourceTarget().generate(ir, "Track").artifact
        for header in ("<array>", "<cstdint>", "<string>", "<vector>"):
            assert f"#include {header}" in source

    def test_namespace_option(self, ir):
        source = CppSourceTarget().generate(
            ir, "Point", namespace="hydro").artifact
        assert "namespace hydro {" in source
        assert "} // namespace hydro" in source

    def test_balanced_braces(self, ir):
        source = CppSourceTarget().generate(ir, "Track").artifact
        assert source.count("{") == source.count("}")
