"""Live-message matching and endpoint statistics."""

import pytest

from repro.core.toolkit import XMIT
from repro.hydrology.formats import hydrology_xsd_for
from repro.pbio.context import IOContext
from repro.pbio.format_server import FormatServer


class TestMatchMessage:
    @pytest.fixture
    def xmit(self):
        toolkit = XMIT()
        toolkit.load_text(hydrology_xsd_for("SimpleData",
                                            "ControlMsg"))
        return toolkit

    def test_matches_by_name_and_structure(self, xmit):
        message = ("<SimpleData><timestep>1</timestep>"
                   "<size>2</size><data>1.0</data><data>2.0</data>"
                   "</SimpleData>")
        assert xmit.match_message(message) == "SimpleData"

    def test_matches_structurally_despite_foreign_name(self, xmit):
        message = ("<Telemetry><command>go</command>"
                   "<target>flow2d</target><timestep>5</timestep>"
                   "<value>0.5</value></Telemetry>")
        assert xmit.match_message(message) == "ControlMsg"

    def test_bytes_accepted(self, xmit):
        message = (b"<ControlMsg><command>go</command>"
                   b"<target>x</target><timestep>1</timestep>"
                   b"<value>1.0</value></ControlMsg>")
        assert xmit.match_message(message) == "ControlMsg"

    def test_no_match(self, xmit):
        assert xmit.match_message("<X><only>1</only></X>") is None


class TestContextStats:
    def test_counters_accumulate(self):
        ctx = IOContext(format_server=FormatServer())
        ctx.register_layout("T", [("a", "integer", 4)])
        for i in range(3):
            wire = ctx.encode("T", {"a": i})
            ctx.decode(wire)
        stats = ctx.stats.as_dict()
        assert stats["records_encoded"] == 3
        assert stats["records_decoded"] == 3
        assert stats["bytes_encoded"] == stats["bytes_decoded"] == 60

    def test_conversion_planned_once(self):
        server = FormatServer()
        sender = IOContext(format_server=server)
        receiver = IOContext(format_server=server)
        sender.register_layout("T", [("a", "integer", 4),
                                     ("b", "integer", 4)])
        receiver.register_layout("T", [("a", "integer", 4)])
        for i in range(4):
            wire = sender.encode("T", {"a": i, "b": i})
            receiver.decode_as(wire, "T")
        assert receiver.stats.conversions_planned == 1
        assert receiver.stats.records_decoded == 4
