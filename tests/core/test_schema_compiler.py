"""Schema -> IR compilation."""

import pytest

from repro.core.schema_compiler import compile_schema
from repro.schema.parser import parse_schema_text

XSD = """
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:simpleType name="Mode">
    <xsd:restriction base="xsd:string">
      <xsd:enumeration value="fast" />
      <xsd:enumeration value="safe" />
    </xsd:restriction>
  </xsd:simpleType>
  <xsd:complexType name="Point">
    <xsd:element name="x" type="xsd:double" />
    <xsd:element name="y" type="xsd:double" />
  </xsd:complexType>
  <xsd:complexType name="Msg">
    <xsd:element name="id" type="xsd:int" />
    <xsd:element name="big" type="xsd:long" />
    <xsd:element name="tiny" type="xsd:byte" />
    <xsd:element name="uword" type="xsd:unsignedShort" />
    <xsd:element name="generic" type="xsd:integer" />
    <xsd:element name="ratio" type="xsd:float" />
    <xsd:element name="precise" type="xsd:double" />
    <xsd:element name="ok" type="xsd:boolean" />
    <xsd:element name="label" type="xsd:string" minOccurs="0" />
    <xsd:element name="mode" type="Mode" />
    <xsd:element name="origin" type="Point" />
    <xsd:element name="size" type="xsd:int" />
    <xsd:element name="data" type="xsd:float" maxOccurs="*"
                 dimensionName="size" dimensionPlacement="after" />
    <xsd:element name="pair" type="xsd:int" maxOccurs="2" />
    <xsd:element name="free" type="xsd:float" maxOccurs="unbounded" />
  </xsd:complexType>
</xsd:schema>
"""


@pytest.fixture(scope="module")
def ir():
    return compile_schema(parse_schema_text(XSD))


class TestDatatypeMapping:
    @pytest.mark.parametrize("field,kind,bits", [
        ("id", "integer", 32), ("big", "integer", 64),
        ("tiny", "integer", 8), ("uword", "unsigned", 16),
        ("generic", "integer", None), ("ratio", "float", 32),
        ("precise", "float", 64), ("ok", "boolean", 8),
        ("label", "string", None),
    ])
    def test_primitives(self, ir, field, kind, bits):
        tref = ir.format("Msg").field(field).type
        assert tref.kind == kind
        assert tref.bits == bits

    def test_enum_reference(self, ir):
        assert ir.format("Msg").field("mode").type.enum_name == "Mode"
        assert ir.enums["Mode"].values == ("fast", "safe")

    def test_nested_reference(self, ir):
        assert ir.format("Msg").field("origin").type.format_name == \
            "Point"


class TestArrayMapping:
    def test_scalar(self, ir):
        assert ir.format("Msg").field("id").array is None

    def test_fixed(self, ir):
        array = ir.format("Msg").field("pair").array
        assert array.fixed_size == 2

    def test_length_linked_with_placement(self, ir):
        array = ir.format("Msg").field("data").array
        assert array.length_field == "size"
        assert array.placement == "after"

    def test_self_sized(self, ir):
        array = ir.format("Msg").field("free").array
        assert array.fixed_size is None
        assert array.length_field is None


class TestFlags:
    def test_optional(self, ir):
        assert ir.format("Msg").field("label").optional
        assert not ir.format("Msg").field("id").optional

    def test_field_order_preserved(self, ir):
        names = ir.format("Msg").field_names()
        assert names[:3] == ("id", "big", "tiny")
