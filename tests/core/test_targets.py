"""Metadata targets: pbio, python, java, c."""

import pytest

from repro.core.schema_compiler import compile_schema
from repro.core.targets import (
    available_targets, target_by_name,
)
from repro.core.targets.pbio_target import PBIOTarget
from repro.core.targets.python_target import (
    GENERATED_MODULE, PythonClassTarget,
)
from repro.core.targets.java_target import JavaSourceTarget
from repro.core.targets.c_target import CSourceTarget
from repro.errors import TargetError
from repro.pbio.context import IOContext
from repro.pbio.format_server import FormatServer
from repro.pbio.machine import SPARC_32, X86_64
from repro.schema.parser import parse_schema_text

XSD = """
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:simpleType name="Mode">
    <xsd:restriction base="xsd:string">
      <xsd:enumeration value="fast" />
      <xsd:enumeration value="safe" />
    </xsd:restriction>
  </xsd:simpleType>
  <xsd:complexType name="Point">
    <xsd:element name="x" type="xsd:double" />
    <xsd:element name="y" type="xsd:double" />
  </xsd:complexType>
  <xsd:complexType name="Track">
    <xsd:element name="id" type="xsd:int" />
    <xsd:element name="mode" type="Mode" />
    <xsd:element name="origin" type="Point" />
    <xsd:element name="n" type="xsd:int" />
    <xsd:element name="path" type="Point" maxOccurs="*"
                 dimensionName="n" />
    <xsd:element name="label" type="xsd:string" />
  </xsd:complexType>
</xsd:schema>
"""


@pytest.fixture(scope="module")
def ir():
    return compile_schema(parse_schema_text(XSD))


class TestRegistry:
    def test_available(self):
        assert set(available_targets()) >= {"pbio", "python", "java",
                                            "c"}

    def test_unknown(self):
        with pytest.raises(TargetError, match="unknown"):
            target_by_name("cobol")

    def test_unknown_option_rejected(self, ir):
        with pytest.raises(TargetError, match="does not accept"):
            PBIOTarget().generate(ir, "Point", colour="blue")


class TestPBIOTarget:
    def test_generates_registerable_format(self, ir):
        token = PBIOTarget().generate(ir, "Track")
        ctx = IOContext(format_server=FormatServer())
        ctx.register(token.artifact)
        record = {"id": 1, "mode": "safe",
                  "origin": {"x": 0.0, "y": 0.0},
                  "path": [{"x": 1.0, "y": 2.0}], "label": "t"}
        out = ctx.roundtrip("Track", record)
        assert out == record | {"n": 1}

    def test_architecture_option(self, ir):
        t64 = PBIOTarget().generate(ir, "Point", architecture=X86_64)
        t32 = PBIOTarget().generate(ir, "Point",
                                    architecture=SPARC_32)
        assert t64.artifact.architecture is X86_64
        assert t32.artifact.architecture is SPARC_32

    def test_enum_table_attached(self, ir):
        token = PBIOTarget().generate(ir, "Track")
        assert token.artifact.enums["mode"] == ("fast", "safe")

    def test_subformats_in_details(self, ir):
        token = PBIOTarget().generate(ir, "Track")
        assert "Point" in token.details["subformats"]

    def test_type_strings(self, ir):
        token = PBIOTarget().generate(ir, "Track")
        fl = token.artifact.field_list
        assert fl["path"].type == "Point[n]"
        assert fl["mode"].type == "enumeration"
        assert fl["label"].type == "string"


class TestPythonTarget:
    def test_class_generated_and_installed(self, ir):
        token = PythonClassTarget().generate(ir, "Track")
        cls = token.artifact
        assert cls.__name__ == "Track"
        assert cls.FORMAT_NAME == "Track"
        module = __import__(GENERATED_MODULE, fromlist=["Track"])
        assert module.Track is cls

    def test_instances_and_record_bridge(self, ir):
        cls = PythonClassTarget().generate(ir, "Track").artifact
        point_cls = PythonClassTarget().generate(ir, "Point").artifact
        track = cls(id=7, mode="fast",
                    origin=point_cls(x=1.0, y=2.0),
                    path=[point_cls(x=3.0, y=4.0)], label="hello")
        record = track.to_record()
        assert record["origin"] == {"x": 1.0, "y": 2.0}
        assert record["n"] == 1  # sizing field auto-synced
        back = cls.from_record(record)
        assert back == track

    def test_defaults(self, ir):
        cls = PythonClassTarget().generate(ir, "Track").artifact
        track = cls()
        assert track.id == 0
        assert track.mode == "fast"  # first enum label
        assert track.path == []
        assert track.label is None

    def test_unknown_kwarg_rejected(self, ir):
        cls = PythonClassTarget().generate(ir, "Track").artifact
        with pytest.raises(TypeError, match="no fields"):
            cls(bogus=1)

    def test_slots_enforced(self, ir):
        cls = PythonClassTarget().generate(ir, "Point").artifact
        p = cls()
        with pytest.raises(AttributeError):
            p.z = 3.0

    def test_repr_and_eq(self, ir):
        cls = PythonClassTarget().generate(ir, "Point").artifact
        assert cls(x=1.0, y=2.0) == cls(x=1.0, y=2.0)
        assert cls(x=1.0, y=2.0) != cls(x=1.0, y=3.0)
        assert "x=1.0" in repr(cls(x=1.0, y=2.0))

    def test_pbio_integration(self, ir):
        """Generated class -> record -> PBIO -> record -> class."""
        cls = PythonClassTarget().generate(ir, "Point").artifact
        token = PBIOTarget().generate(ir, "Point")
        ctx = IOContext(format_server=FormatServer())
        ctx.register(token.artifact)
        wire = ctx.encode("Point", cls(x=2.5, y=-1.5).to_record())
        assert cls.from_record(ctx.decode(wire).record) == \
            cls(x=2.5, y=-1.5)


class TestJavaTarget:
    def test_source_shape(self, ir):
        token = JavaSourceTarget().generate(ir, "Track")
        source = token.artifact
        assert "public class Track implements java.io.Serializable" \
            in source
        assert "private String label;" in source
        assert "private Point origin;" in source
        assert "private Point[] path;" in source
        assert "public int getId()" in source
        assert "public void setId(int value)" in source

    def test_dependency_units(self, ir):
        token = JavaSourceTarget().generate(ir, "Track")
        assert set(token.details["units"]) == {"Point", "Track"}
        assert "public class Point" in token.details["units"]["Point"]

    def test_package_option(self, ir):
        token = JavaSourceTarget().generate(ir, "Point",
                                            package="org.example")
        assert token.artifact.startswith("package org.example;")

    def test_unsigned_widening(self, ir):
        # unsignedShort must widen to a type that can hold 65535
        xsd = XSD.replace('type="xsd:int" />',
                          'type="xsd:unsignedShort" />', 1)
        ir2 = compile_schema(parse_schema_text(xsd))
        token = JavaSourceTarget().generate(ir2, "Track")
        assert "private int id;" in token.artifact


class TestCTarget:
    def test_struct_matches_paper_fig2_shape(self, ir):
        source = CSourceTarget().generate(
            ir, "Track", architecture=SPARC_32).artifact
        assert "typedef struct _Track {" in source
        assert "char* label" in source
        assert "Point origin" in source
        assert "Point *path" in source
        assert "enum Mode { fast, safe };" in source

    def test_iofield_list_present(self, ir):
        source = CSourceTarget().generate(ir, "Track").artifact
        assert "IOField TrackFields[] = {" in source
        assert '{ "label", "string", 8, ' in source
        assert "{ NULL, NULL, 0, 0 }," in source

    def test_offsets_match_pbio_target(self, ir):
        c_src = CSourceTarget().generate(
            ir, "Point", architecture=X86_64).artifact
        token = PBIOTarget().generate(ir, "Point",
                                      architecture=X86_64)
        for field in token.artifact.field_list:
            assert (f'{{ "{field.name}", "{field.type}", '
                    f"{field.size}, {field.offset} }},") in c_src
