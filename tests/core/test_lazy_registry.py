"""Lazy schema compilation in the FormatRegistry.

With ``lazy=True`` a loaded document is parsed and reference-checked,
its enums compiled, and every complexType *deferred*: IR is produced
on first lookup only.  These tests pin the contract — membership and
iteration see deferred names, compilation happens exactly once and
only for types actually bound (nested dependencies included), bulk
consumers materialize, and refresh/TTL/negative-cache semantics are
unchanged from the eager registry (a re-ingested document must never
serve stale deferred IR)."""

from __future__ import annotations

import itertools

import pytest

from repro.core.registry import FormatRegistry
from repro.core.schema_compiler import compile_schema
from repro.core.toolkit import XMIT
from repro.errors import DiscoveryError, SchemaTypeError
from repro.http.urls import publish_document, unpublish_document
from repro.schema.parser import parse_schema
from repro.xmlcore.parser import parse

_SEQ = itertools.count()

CATALOG = """
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Inner">
    <xsd:element name="x" type="xsd:int" />
  </xsd:complexType>
  <xsd:complexType name="Outer">
    <xsd:element name="inner" type="Inner" />
    <xsd:element name="n" type="xsd:int" />
  </xsd:complexType>
  <xsd:complexType name="Standalone">
    <xsd:element name="m" type="xsd:double" />
  </xsd:complexType>
</xsd:schema>
"""

CATALOG_V2 = CATALOG.replace(
    '<xsd:element name="m" type="xsd:double" />',
    '<xsd:element name="m" type="xsd:double" />\n'
    '    <xsd:element name="extra" type="xsd:int" />')


def _publish(text: str) -> str:
    return publish_document(f"lazy/cat{next(_SEQ)}.xsd", text)


class TestDeferral:
    def test_load_defers_every_complex_type(self):
        registry = FormatRegistry(lazy=True)
        names = registry.load_text(CATALOG)
        assert set(names) == {"Inner", "Outer", "Standalone"}
        assert registry.stats.deferred_formats == 3
        assert registry.stats.lazy_compiles == 0
        assert registry.stats.compiles == 0  # no document compile
        fmap = registry.ir.formats
        assert set(fmap.pending_names()) == set(names)
        assert fmap.compiled_names() == ()

    def test_membership_and_iteration_see_pending(self):
        registry = FormatRegistry(lazy=True)
        registry.load_text(CATALOG)
        fmap = registry.ir.formats
        assert "Outer" in fmap
        assert set(fmap) == {"Inner", "Outer", "Standalone"}
        assert len(fmap) == 3
        assert set(fmap.keys()) == {"Inner", "Outer", "Standalone"}
        # none of the above compiled anything
        assert registry.stats.lazy_compiles == 0

    def test_first_lookup_compiles_exactly_one(self):
        registry = FormatRegistry(lazy=True)
        registry.load_text(CATALOG)
        fmt = registry.ir.formats["Standalone"]
        assert fmt.name == "Standalone"
        assert registry.stats.lazy_compiles == 1
        assert registry.ir.formats.pending_names() == \
            ("Inner", "Outer")
        # second lookup is a plain dict hit
        assert registry.ir.formats["Standalone"] is fmt
        assert registry.stats.lazy_compiles == 1

    def test_lazy_ir_equals_eager_ir(self):
        lazy = FormatRegistry(lazy=True)
        lazy.load_text(CATALOG)
        eager = compile_schema(parse_schema(parse(CATALOG)))
        for name in ("Inner", "Outer", "Standalone"):
            assert lazy.ir.formats[name] == eager.formats[name]

    def test_binding_compiles_nested_dependency(self):
        xmit = XMIT(lazy=True)
        xmit.load_url(_publish(CATALOG))
        assert set(xmit.format_names) == \
            {"Inner", "Outer", "Standalone"}
        assert xmit.discovery_stats.lazy_compiles == 0
        xmit.bind("Outer", target="pbio")
        # Outer plus its nested Inner compiled; Standalone untouched
        assert xmit.discovery_stats.lazy_compiles == 2
        assert xmit.registry.ir.formats.pending_names() == \
            ("Standalone",)

    def test_materialize_via_export(self):
        xmit = XMIT(lazy=True)
        xmit.load_url(_publish(CATALOG))
        text = xmit.export_schema()
        for name in ("Inner", "Outer", "Standalone"):
            assert name in text
        assert xmit.registry.ir.formats.pending_names() == ()
        assert xmit.discovery_stats.lazy_compiles == 3

    def test_unknown_name_still_raises(self):
        registry = FormatRegistry(lazy=True)
        registry.load_text(CATALOG)
        with pytest.raises(KeyError):
            registry.ir.formats["Nope"]
        assert registry.ir.formats.get("Nope") is None

    def test_subset_compile_rejects_unknown_name(self):
        schema = parse_schema(parse(CATALOG))
        with pytest.raises(SchemaTypeError):
            compile_schema(schema, names=("Nope",))


class TestStaleness:
    """Satellite audit: deferred entries and the registry's document
    TTL / negative cache must not serve stale data."""

    def test_refresh_replaces_pending_schema(self):
        """A changed document re-defers against the *new* schema even
        for names never compiled — the old parse can't leak through a
        later first-lookup."""
        url = _publish(CATALOG)
        registry = FormatRegistry(lazy=True)
        registry.load_url(url)
        publish_document(url[len("mem:"):], CATALOG_V2)
        changed = registry.refresh(url)
        assert "Standalone" in changed
        fields = [f.name for f in
                  registry.ir.formats["Standalone"].fields]
        assert fields == ["m", "extra"]

    def test_refresh_invalidates_compiled_ir(self):
        """Already-compiled IR of a changed format is dropped and
        recompiled from the new document (defer(replace=True))."""
        url = _publish(CATALOG)
        registry = FormatRegistry(lazy=True)
        registry.load_url(url)
        old = registry.ir.formats["Standalone"]  # compile v1
        publish_document(url[len("mem:"):], CATALOG_V2)
        changed = registry.refresh(url)
        assert "Standalone" in changed
        new = registry.ir.formats["Standalone"]
        assert new != old
        assert [f.name for f in new.fields] == ["m", "extra"]
        # lineage recorded both versions, oldest first
        assert registry.lineage("Standalone") == (old, new)

    def test_document_ttl_serves_cached_copy(self):
        clock = [0.0]
        url = _publish(CATALOG)
        registry = FormatRegistry(lazy=True, cache_ttl=300.0,
                                  clock=lambda: clock[0])
        registry.load_url(url)
        misses = registry.stats.cache_misses
        registry.load_url(url)  # inside the TTL: no fetch
        assert registry.stats.cache_hits == 1
        assert registry.stats.cache_misses == misses
        clock[0] = 301.0
        registry.load_url(url)  # TTL expired: counted as a miss
        assert registry.stats.cache_misses == misses + 1

    def test_negative_cache_fails_fast_in_lazy_mode(self):
        clock = [0.0]
        registry = FormatRegistry(lazy=True, negative_ttl=5.0,
                                  clock=lambda: clock[0])
        url = "mem:lazy/absent.xsd"
        unpublish_document("lazy/absent.xsd")
        with pytest.raises(DiscoveryError):
            registry.load_url(url)
        with pytest.raises(DiscoveryError):
            registry.load_url(url)
        assert registry.stats.negative_hits == 1
        clock[0] = 6.0  # negative entry expired: real fetch again
        with pytest.raises(DiscoveryError):
            registry.load_url(url)
        assert registry.stats.negative_hits == 1

    def test_same_digest_reload_does_not_redefer(self):
        """Re-loading an unchanged document is served from the
        compiled-digest table, not re-deferred."""
        url = _publish(CATALOG)
        registry = FormatRegistry(lazy=True, cache_ttl=0.0)
        registry.load_url(url)
        registry.ir.formats["Standalone"]
        deferred = registry.stats.deferred_formats
        registry.load_url(url)  # TTL 0 forces refetch; digest equal
        assert registry.stats.deferred_formats == deferred
        # the compiled entry survived the reload
        assert registry.stats.lazy_compiles == 1
        assert set(registry.ir.formats.pending_names()) == \
            {"Inner", "Outer"}
