"""Client-customized format views (runtime type extension)."""

import pytest

from repro.core.toolkit import XMIT
from repro.core.views import derive_view, view_conversion_names
from repro.errors import XMITError
from repro.hydrology.formats import hydrology_xsd_for
from repro.pbio.context import IOContext
from repro.pbio.format_server import FormatServer


@pytest.fixture
def xmit():
    toolkit = XMIT()
    toolkit.load_text(hydrology_xsd_for("GridMeta", "SimpleData"))
    return toolkit


class TestDeriveView:
    def test_field_subset(self, xmit):
        view = derive_view(xmit.ir, "GridMeta",
                           fields=["timestep", "min_depth",
                                   "max_depth"])
        assert view.name == "GridMetaView"
        assert view.field_names() == ("timestep", "min_depth",
                                      "max_depth")

    def test_order_follows_base(self, xmit):
        view = derive_view(xmit.ir, "GridMeta",
                           fields=["max_depth", "timestep"])
        assert view.field_names() == ("timestep", "max_depth")

    def test_sizing_fields_pulled_in(self, xmit):
        view = derive_view(xmit.ir, "SimpleData", fields=["data"])
        assert set(view.field_names()) == {"size", "data"}

    def test_drop_arrays_removes_orphan_sizers(self, xmit):
        view = derive_view(xmit.ir, "SimpleData", drop_arrays=True)
        assert view.field_names() == ("timestep",)

    def test_reduce_floats(self, xmit):
        xmit.load_text("""
        <xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
          <xsd:complexType name="Precise">
            <xsd:element name="a" type="xsd:double" />
            <xsd:element name="b" type="xsd:float" />
          </xsd:complexType>
        </xsd:schema>""")
        view = derive_view(xmit.ir, "Precise", reduce_floats=True)
        assert view.field("a").type.bits == 32
        assert view.field("b").type.bits == 32

    def test_unknown_field_rejected(self, xmit):
        with pytest.raises(XMITError, match="unknown fields"):
            derive_view(xmit.ir, "GridMeta", fields=["bogus"])

    def test_empty_view_rejected(self, xmit):
        with pytest.raises(XMITError, match="no fields"):
            derive_view(xmit.ir, "GridMeta", fields=[])

    def test_shadowing_rejected(self, xmit):
        with pytest.raises(XMITError, match="shadow"):
            derive_view(xmit.ir, "GridMeta", fields=["timestep"],
                        name="GridMeta")

    def test_conversion_names(self, xmit):
        view = derive_view(xmit.ir, "GridMeta", fields=["timestep"])
        kept, dropped = view_conversion_names(
            xmit.ir.format("GridMeta"), view)
        assert kept == ("timestep",)
        assert "gauges" in dropped


class TestHandheldScenario:
    """The paper's future-work scenario end to end: a handheld binds a
    reduced view and consumes full records from unmodified peers."""

    def test_full_records_project_onto_view(self, xmit):
        server = FormatServer()
        # unmodified sender: full GridMeta
        sender = IOContext(format_server=server)
        xmit.register_with_context(sender, "GridMeta")

        # handheld: derives and binds a 3-field view
        view = derive_view(xmit.ir, "GridMeta",
                           fields=["timestep", "min_depth",
                                   "max_depth"],
                           name="GridMetaHandheld")
        xmit.ir.add_format(view)
        handheld = IOContext(format_server=server)
        xmit.register_with_context(handheld, "GridMetaHandheld")

        full_record = {
            "timestep": 3, "nx": 64, "ny": 64, "west": 0.0,
            "east": 1920.0, "south": 0.0, "north": 1920.0,
            "cell_size": 30.0, "no_data": -9999.0,
            "min_depth": 0.25, "max_depth": 2.5, "mean_depth": 0.7,
            "total_volume": 4032.0, "gauge_count": 24,
            "gauges": [0.0] * 24}
        wire = sender.encode("GridMeta", full_record)
        small = handheld.decode_as(wire, "GridMetaHandheld")
        assert small == {"timestep": 3, "min_depth": 0.25,
                         "max_depth": 2.5}

    def test_view_binds_through_all_targets(self, xmit):
        view = derive_view(xmit.ir, "GridMeta",
                           fields=["timestep", "mean_depth"],
                           name="TinyMeta")
        xmit.ir.add_format(view)
        assert "TinyMeta" in xmit.generate_c_source("TinyMeta")
        assert "class TinyMeta" in xmit.generate_java_source("TinyMeta")
        cls = xmit.generate_python_class("TinyMeta")
        assert cls.FIELD_NAMES == ("timestep", "mean_depth")
