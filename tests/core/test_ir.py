"""IR construction and queries."""

import pytest

from repro.core.ir import ArrayIR, EnumIR, FieldIR, FormatIR, IRSet, TypeRef
from repro.errors import XMITError


class TestTypeRef:
    def test_exactly_one_identity(self):
        with pytest.raises(XMITError):
            TypeRef()
        with pytest.raises(XMITError):
            TypeRef(kind="integer", enum_name="E")

    def test_unknown_kind(self):
        with pytest.raises(XMITError):
            TypeRef(kind="complex")

    def test_predicates(self):
        assert TypeRef(kind="integer", bits=32).is_primitive
        assert TypeRef(enum_name="E").is_enum
        assert TypeRef(format_name="F").is_nested

    def test_describe(self):
        assert TypeRef(kind="integer", bits=32).describe() == \
            "integer/32"
        assert TypeRef(kind="string").describe() == "string/text"
        assert TypeRef(enum_name="E").describe() == "enum:E"


class TestArrayIR:
    def test_fixed_and_linked_exclusive(self):
        with pytest.raises(XMITError):
            ArrayIR(fixed_size=3, length_field="n")

    def test_positive_size(self):
        with pytest.raises(XMITError):
            ArrayIR(fixed_size=0)


def make_ir() -> IRSet:
    ir = IRSet()
    ir.add_enum(EnumIR(name="Mode", values=("a", "b")))
    ir.add_format(FormatIR(name="Leaf", fields=(
        FieldIR(name="v", type=TypeRef(kind="float", bits=32)),)))
    ir.add_format(FormatIR(name="Mid", fields=(
        FieldIR(name="leaf", type=TypeRef(format_name="Leaf")),
        FieldIR(name="n", type=TypeRef(kind="integer", bits=32)),)))
    ir.add_format(FormatIR(name="Top", fields=(
        FieldIR(name="mid", type=TypeRef(format_name="Mid")),
        FieldIR(name="also_leaf", type=TypeRef(format_name="Leaf")),
        FieldIR(name="mode", type=TypeRef(enum_name="Mode")),)))
    return ir


class TestIRSet:
    def test_lookup(self):
        ir = make_ir()
        assert ir.format("Top").field("mode").type.enum_name == "Mode"
        assert ir.enum("Mode").values == ("a", "b")

    def test_unknown_lookups(self):
        ir = make_ir()
        with pytest.raises(XMITError, match="no format"):
            ir.format("Ghost")
        with pytest.raises(XMITError, match="no enum"):
            ir.enum("Ghost")
        with pytest.raises(XMITError, match="no field"):
            ir.format("Top").field("ghost")

    def test_dependencies_ordered(self):
        ir = make_ir()
        deps = ir.dependencies("Top")
        assert deps == ("Leaf", "Mid")  # dependencies first

    def test_dependencies_deduplicated(self):
        # Leaf reached via Mid and directly; appears once
        ir = make_ir()
        assert ir.dependencies("Top").count("Leaf") == 1

    def test_leaf_has_no_dependencies(self):
        assert make_ir().dependencies("Leaf") == ()

    def test_complexity(self):
        ir = make_ir()
        assert ir.complexity("Leaf") == 1
        assert ir.complexity("Mid") == 3  # 2 own + 1 Leaf
        assert ir.complexity("Top") == 6  # 3 own + Leaf(1) + Mid(2)

    def test_merge(self):
        a, b = make_ir(), IRSet()
        b.add_format(FormatIR(name="Extra", fields=(
            FieldIR(name="x", type=TypeRef(kind="integer", bits=32)),)))
        a.merge(b)
        assert "Extra" in a.formats
