"""IOContext: registration, caching, decode paths."""

import pytest

from repro.errors import (
    DecodeError, FormatRegistrationError, UnknownFormatError,
)
from repro.pbio.context import IOContext
from repro.pbio.format_server import FormatServer
from repro.pbio.machine import SPARC_32, X86_64


class TestRegistration:
    def test_register_layout(self, context):
        fmt = context.register_layout("T", [("a", "integer", 4)])
        assert context.lookup_format("T") is fmt
        assert "T" in context.format_names

    def test_reregistering_same_format_ok(self, context):
        a = context.register_layout("T", [("a", "integer", 4)])
        b = context.register_layout("T", [("a", "integer", 4)])
        assert a == b

    def test_conflicting_reregistration_rejected(self, context):
        context.register_layout("T", [("a", "integer", 4)])
        with pytest.raises(FormatRegistrationError, match="different"):
            context.register_layout("T", [("a", "float", 4)])

    def test_unknown_format_lookup(self, context):
        with pytest.raises(UnknownFormatError):
            context.lookup_format("Ghost")

    def test_register_pushes_to_server(self, context, format_server):
        fmt = context.register_layout("T", [("a", "integer", 4)])
        assert format_server.lookup(fmt.format_id) == fmt


class TestEncodeDecode:
    def test_roundtrip_helper(self, context, simple_data_specs):
        context.register_layout("SimpleData", simple_data_specs)
        record = {"timestep": 3, "size": 2, "data": [1.0, 2.0]}
        assert context.roundtrip("SimpleData", record) == record

    def test_decode_reports_format(self, context):
        context.register_layout("T", [("a", "integer", 4)])
        out = context.decode(context.encode("T", {"a": 5}))
        assert out.format_name == "T"
        assert out.record == {"a": 5}
        assert out.format_id == context.lookup_format("T").format_id

    def test_encode_accepts_format_object(self, context):
        fmt = context.register_layout("T", [("a", "integer", 4)])
        wire = context.encode(fmt, {"a": 1})
        assert context.decode(wire).record == {"a": 1}

    def test_encoded_size_includes_header(self, context):
        context.register_layout("T", [("a", "integer", 4)])
        assert context.encoded_size("T", {"a": 1}) == 16 + \
            context.lookup_format("T").field_list.record_length

    def test_encoder_decoder_caching(self, context):
        fmt = context.register_layout("T", [("a", "integer", 4)])
        assert context.encoder_for(fmt) is context.encoder_for(fmt)
        assert context.decoder_for(fmt) is context.decoder_for(fmt)

    def test_truncated_wire_rejected(self, context):
        context.register_layout("T", [("a", "integer", 4)])
        wire = context.encode("T", {"a": 1})
        with pytest.raises(DecodeError, match="truncated"):
            context.decode(wire[:-2])

    def test_unknown_wire_format(self, context):
        other = IOContext(format_server=FormatServer())
        other.register_layout("T", [("a", "integer", 4)])
        wire = other.encode("T", {"a": 1})
        with pytest.raises(UnknownFormatError):
            context.decode(wire)


class TestCrossContextViaServer:
    def test_receiver_resolves_via_server(self, format_server):
        sender = IOContext(architecture=SPARC_32,
                           format_server=format_server)
        receiver = IOContext(architecture=X86_64,
                             format_server=format_server)
        sender.register_layout("T", [("a", "integer", 4),
                                     ("s", "string")])
        wire = sender.encode("T", {"a": 7, "s": "hi"})
        out = receiver.decode(wire)
        assert out.record == {"a": 7, "s": "hi"}

    def test_decode_as_receiver_view(self, format_server):
        sender = IOContext(format_server=format_server)
        receiver = IOContext(format_server=format_server)
        # sender's format has an extra field the receiver predates
        sender.register_layout("T", [("a", "integer", 4),
                                     ("extra", "integer", 4)])
        receiver.register_layout("T", [("a", "integer", 4),
                                       ("newer", "float", 8)])
        wire = sender.encode("T", {"a": 1, "extra": 2})
        out = receiver.decode_as(wire, "T")
        assert out == {"a": 1, "newer": 0.0}

    def test_decode_as_identity_when_same(self, format_server):
        ctx = IOContext(format_server=format_server)
        ctx.register_layout("T", [("a", "integer", 4)])
        wire = ctx.encode("T", {"a": 1})
        assert ctx.decode_as(wire, "T") == {"a": 1}


class TestUnregister:
    def test_reregister_after_change(self, context):
        context.register_layout("T", [("a", "integer", 4)])
        with pytest.raises(FormatRegistrationError):
            context.register_layout("T", [("a", "float", 4)])
        context.unregister("T")
        changed = context.register_layout("T", [("a", "float", 4)])
        assert context.lookup_format("T") is changed

    def test_unregister_unknown(self, context):
        with pytest.raises(UnknownFormatError):
            context.unregister("Ghost")

    def test_old_wire_records_still_decode(self, context):
        old = context.register_layout("T", [("a", "integer", 4)])
        wire = context.encode("T", {"a": 5})
        context.unregister("T")
        context.register_layout("T", [("a", "integer", 4),
                                      ("b", "float", 8)])
        # the old record resolves by ID regardless of the re-binding
        assert context.decode(wire).record == {"a": 5}
        assert context.decode(wire).format_id == old.format_id
