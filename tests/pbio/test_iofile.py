"""PBIO data files."""

import io

import pytest

from repro.errors import DecodeError
from repro.pbio.context import IOContext
from repro.pbio.format_server import FormatServer
from repro.pbio.iofile import IOFileReader, IOFileWriter, scan_file
from repro.pbio.machine import SPARC_32


def writer_context(arch=None):
    ctx = IOContext(format_server=FormatServer(),
                    **({"architecture": arch} if arch else {}))
    ctx.register_layout("SimpleData", [
        ("timestep", "integer", 4), ("size", "integer", 4),
        ("data", "float[size]", 4)])
    ctx.register_layout("Note", [("text", "string")])
    return ctx


class TestRoundTrip:
    def test_write_read_single_format(self, tmp_path):
        path = tmp_path / "data.pbio"
        ctx = writer_context()
        with IOFileWriter(path, ctx) as writer:
            for t in range(5):
                writer.write("SimpleData",
                             {"timestep": t, "data": [float(t)] * 3})
        with IOFileReader(path) as reader:
            records = reader.read_all()
        assert len(records) == 5
        assert records[2].format_name == "SimpleData"
        assert records[2].record["data"] == [2.0, 2.0, 2.0]

    def test_mixed_formats_and_filter(self, tmp_path):
        path = tmp_path / "mixed.pbio"
        ctx = writer_context()
        with IOFileWriter(path, ctx) as writer:
            writer.write("Note", {"text": "begin"})
            writer.write("SimpleData", {"timestep": 1, "data": []})
            writer.write("Note", {"text": "end"})
        with IOFileReader(path) as reader:
            notes = reader.read_all("Note")
        assert [n.record["text"] for n in notes] == ["begin", "end"]

    def test_metadata_written_once_per_format(self, tmp_path):
        path = tmp_path / "meta.pbio"
        ctx = writer_context()
        with IOFileWriter(path, ctx) as writer:
            for t in range(10):
                writer.write("SimpleData", {"timestep": t, "data": []})
        # only one metadata chunk despite ten records
        summary = scan_file(path)
        assert summary["records"] == {"SimpleData": 10}

    def test_self_contained_no_prior_registration(self, tmp_path):
        path = tmp_path / "self.pbio"
        with IOFileWriter(path, writer_context()) as writer:
            writer.write("Note", {"text": "portable"})
        # a completely fresh reader context decodes it
        with IOFileReader(path) as reader:
            (record,) = reader.read_all()
        assert record.record == {"text": "portable"}
        assert "Note" in reader.formats_seen

    def test_cross_architecture_file(self, tmp_path):
        path = tmp_path / "sparc.pbio"
        ctx = writer_context(arch=SPARC_32)
        with IOFileWriter(path, ctx) as writer:
            writer.write("SimpleData",
                         {"timestep": 9, "data": [1.5, 2.5]})
        with IOFileReader(path) as reader:
            (record,) = reader.read_all()
        assert record.record == {"timestep": 9, "size": 2,
                                 "data": [1.5, 2.5]}

    def test_in_memory_streams(self):
        buffer = io.BytesIO()
        with IOFileWriter(buffer, writer_context()) as writer:
            writer.write("Note", {"text": "ram"})
        buffer.seek(0)
        with IOFileReader(buffer) as reader:
            (record,) = reader.read_all()
        assert record.record["text"] == "ram"

    def test_iteration_protocol(self, tmp_path):
        path = tmp_path / "iter.pbio"
        ctx = writer_context()
        with IOFileWriter(path, ctx) as writer:
            for t in range(3):
                writer.write("SimpleData", {"timestep": t, "data": []})
        with IOFileReader(path) as reader:
            timesteps = [r.record["timestep"] for r in reader]
        assert timesteps == [0, 1, 2]
        assert reader.records_read == 3

    def test_empty_file_has_no_records(self, tmp_path):
        path = tmp_path / "empty.pbio"
        with IOFileWriter(path, writer_context()):
            pass
        with IOFileReader(path) as reader:
            assert reader.read() is None


class TestFailureModes:
    def test_not_a_pbio_file(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"definitely not pbio data")
        with pytest.raises(DecodeError, match="magic"):
            IOFileReader(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.bin"
        path.write_bytes(b"PBIO")
        with pytest.raises(DecodeError, match="truncated"):
            IOFileReader(path)

    def test_truncated_chunk(self, tmp_path):
        path = tmp_path / "cut.pbio"
        ctx = writer_context()
        with IOFileWriter(path, ctx) as writer:
            writer.write("Note", {"text": "whole"})
        data = path.read_bytes()
        path.write_bytes(data[:-4])
        with IOFileReader(path) as reader:
            with pytest.raises(DecodeError, match="truncated"):
                reader.read_all()

    def test_unknown_chunk_type(self, tmp_path):
        path = tmp_path / "weird.pbio"
        with IOFileWriter(path, writer_context()):
            pass
        with open(path, "ab") as stream:
            stream.write(bytes([9]) + (0).to_bytes(4, "big"))
        with IOFileReader(path) as reader:
            with pytest.raises(DecodeError, match="unknown chunk"):
                reader.read()

    def test_unregistered_format_name_rejected_on_write(self, tmp_path):
        path = tmp_path / "x.pbio"
        with IOFileWriter(path, writer_context()) as writer:
            with pytest.raises(Exception):
                writer.write("Ghost", {})
