"""Property-based marshaling invariants for the fused codec path.

Across randomly generated formats and records, the fused fast path
must be indistinguishable from the per-field baseline: identical wire
bytes out, identical records back.  Combined with the golden vectors
this locks the optimization to the wire contract.
"""

from hypothesis import given, settings, strategies as st

from repro.pbio.decode import RecordDecoder
from repro.pbio.encode import RecordEncoder
from repro.pbio.format import IOFormat
from repro.pbio.layout import field_list_for
from repro.pbio.machine import SPARC_V9, X86_64

from tests.strategies import (
    assert_record_roundtrip, format_case, scalar_run_case,
)

ARCHS = (X86_64, SPARC_V9)


def _format_for(specs, arch):
    return IOFormat("P", field_list_for(specs, architecture=arch))


@settings(max_examples=200, deadline=None)
@given(case=format_case(), arch=st.sampled_from(ARCHS),
       data=st.data())
def test_roundtrip_is_identity(case, arch, data):
    specs, record_strategy = case
    record = data.draw(record_strategy)
    fmt = _format_for(specs, arch)
    body = RecordEncoder(fmt).encode_body(record)
    decoded = RecordDecoder(fmt).decode(body)
    assert_record_roundtrip(record, decoded, specs)


@settings(max_examples=200, deadline=None)
@given(case=format_case(), arch=st.sampled_from(ARCHS),
       data=st.data())
def test_fused_bytes_equal_per_field_bytes(case, arch, data):
    specs, record_strategy = case
    record = data.draw(record_strategy)
    fmt = _format_for(specs, arch)
    fused = RecordEncoder(fmt, fuse=True).encode_body(record)
    plain = RecordEncoder(fmt, fuse=False).encode_body(record)
    assert bytes(fused) == bytes(plain)
    assert RecordDecoder(fmt, fuse=True).decode(fused) == \
        RecordDecoder(fmt, fuse=False).decode(fused)


@settings(max_examples=150, deadline=None)
@given(case=scalar_run_case(), arch=st.sampled_from(ARCHS),
       data=st.data())
def test_guaranteed_runs_agree_with_baseline(case, arch, data):
    specs, record_strategy = case
    record = data.draw(record_strategy)
    fmt = _format_for(specs, arch)
    encoder = RecordEncoder(fmt, fuse=True)
    assert encoder.fused_fields >= 2  # the run actually fused
    body = encoder.encode_body(record)
    assert bytes(body) == bytes(
        RecordEncoder(fmt, fuse=False).encode_body(record))
    decoded = RecordDecoder(fmt, fuse=True).decode(body)
    assert_record_roundtrip(record, decoded, specs)
