"""The CI fuzz smoke: seeded mutations over the golden corpus.

Every mutated frame must either decode (with all oracle invariants —
fused/unfused agreement, bounded allocation, lossless re-encode) or
raise a typed ``DecodeError``/``ProtocolError``.  The run is fully
deterministic: ``REPRO_FUZZ_ITERATIONS`` scales the budget (CI smoke
uses the 10,000 default), the seed is pinned so a CI failure replays
locally byte for byte.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.errors import DecodeError
from repro.testing.fuzz import (
    FrameMutator, FuzzReport, InvariantViolation, WireOracle,
    records_equal, run_fuzz,
)
from tests.golden.cases import (
    ARCHITECTURES, DIGEST_CASES, build_format, case_names, encode_case,
)

ITERATIONS = int(os.environ.get("REPRO_FUZZ_ITERATIONS", "10000"))
SEED = 20260805


def _corpus():
    # the digest-pinned 64k cases are 256 KiB frames kept for wire
    # stability, far too heavy to mutate by the thousand; their 1 KiB
    # siblings exercise the identical bulk code paths here
    formats, corpus = [], {}
    for case in case_names():
        if case in DIGEST_CASES:
            continue
        for order, arch in ARCHITECTURES.items():
            formats.append(build_format(case, arch))
            corpus[f"{case}/{order}"] = encode_case(case, arch)
    return formats, corpus


def test_pristine_corpus_passes_every_invariant():
    formats, corpus = _corpus()
    oracle = WireOracle(formats)
    for name, wire in corpus.items():
        outcome = oracle.check(wire)
        assert outcome["decoded"] >= 1, name
        assert outcome["reencoded"] == outcome["decoded"], name


def test_fuzz_smoke_no_invariant_violations():
    formats, corpus = _corpus()
    oracle = WireOracle(formats)
    report = run_fuzz(corpus, oracle, iterations=ITERATIONS,
                      seed=SEED)
    report.raise_for_failures()
    assert report.ok
    assert report.iterations == ITERATIONS
    # the mutator must actually exercise both sides of the contract
    assert report.rejected > 0
    assert report.decoded_ok > 0
    assert report.reencoded_ok > 0


def test_run_is_deterministic_for_a_seed():
    formats, corpus = _corpus()
    oracle = WireOracle(formats)
    a = run_fuzz(corpus, oracle, iterations=300, seed=7)
    b = run_fuzz(corpus, oracle, iterations=300, seed=7)
    assert (a.rejected, a.decoded_ok, a.reencoded_ok) == \
        (b.rejected, b.decoded_ok, b.reencoded_ok)
    c = run_fuzz(corpus, oracle, iterations=300, seed=8)
    assert (a.rejected, a.decoded_ok) != (c.rejected, c.decoded_ok)


def test_mutator_is_deterministic():
    frame = bytes(range(64))
    runs = []
    for _ in range(2):
        mut = FrameMutator(random.Random(42), [frame, frame[::-1]])
        runs.append([mut.mutate(frame) for _ in range(50)])
    assert runs[0] == runs[1]


def test_oracle_flags_unbounded_allocation():
    """A decoder that fabricates data the frame cannot justify must
    trip the allocation bound — the oracle is not vacuous."""
    fmt = build_format("SimpleData", ARCHITECTURES["little"])
    oracle = WireOracle([fmt])
    entry = oracle._by_id[fmt.format_id]

    class Fabricator:
        def decode(self, body):
            return {"data": [0.0] * 100_000, "timestep": 1, "size": 3}

    oracle._by_id[fmt.format_id] = (entry[0], Fabricator(),
                                    Fabricator(), entry[3], entry[4])
    wire = encode_case("SimpleData", ARCHITECTURES["little"])
    with pytest.raises(InvariantViolation, match="unbounded"):
        oracle.check(wire)


def test_report_failure_carries_replayable_frame():
    from repro.testing.fuzz import FuzzFailure
    report = FuzzReport()
    assert report.ok
    report.failures.append(FuzzFailure(
        case="x", iteration=3, mutations=("flip_byte",),
        frame_hex="deadbeef", error="ValueError: boom"))
    assert report.failures[0].frame() == b"\xde\xad\xbe\xef"
    with pytest.raises(InvariantViolation, match="ValueError: boom"):
        report.raise_for_failures()


def test_records_equal_handles_nan_and_nesting():
    nan = float("nan")
    assert records_equal({"a": [nan, 1.0]}, {"a": [nan, 1.0]})
    assert not records_equal({"a": [nan, 1.0]}, {"a": [nan, 2.0]})
    assert not records_equal({"a": 1}, {"b": 1})
    assert records_equal([{"x": nan}], [{"x": nan}])


def test_untyped_exception_is_reported_not_raised():
    """run_fuzz classifies a stray exception as a FuzzFailure rather
    than aborting the campaign."""
    fmt = build_format("MixedRuns", ARCHITECTURES["little"])
    oracle = WireOracle([fmt])
    entry = oracle._by_id[fmt.format_id]

    class Exploder:
        def decode(self, body):
            raise ValueError("raw escape")

    oracle._by_id[fmt.format_id] = (entry[0], Exploder(), Exploder(),
                                    entry[3], entry[4])
    wire = encode_case("MixedRuns", ARCHITECTURES["little"])
    report = run_fuzz({"m": wire}, oracle, iterations=50, seed=1)
    assert not report.ok
    bad = report.failures[0]
    assert "ValueError" in bad.error
    with pytest.raises(InvariantViolation):
        report.raise_for_failures()


def test_rejections_are_the_allowed_types_only():
    formats, corpus = _corpus()
    oracle = WireOracle(formats)
    rng = random.Random(99)
    mutator = FrameMutator(rng, list(corpus.values()))
    names = sorted(corpus)
    for i in range(500):
        frame, _ = mutator.mutate(corpus[names[i % len(names)]])
        try:
            oracle.check(frame)
        except DecodeError:
            pass  # the contract: typed rejection
