"""C-structure layout computation, including property-based invariants."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import LayoutError
from repro.pbio.layout import compute_layout, field_list_for
from repro.pbio.machine import SPARC_32, SPARC_V9, X86_32, X86_64

ARCHS = (SPARC_32, SPARC_V9, X86_32, X86_64)


class TestScalarLayout:
    def test_packed_when_aligned(self):
        fl = field_list_for([("a", "integer", 4), ("b", "integer", 4)],
                            architecture=X86_64)
        assert [f.offset for f in fl] == [0, 4]
        assert fl.record_length == 8

    def test_padding_before_wider_member(self):
        fl = field_list_for([("c", "char"), ("i", "integer", 4)],
                            architecture=X86_64)
        assert fl["i"].offset == 4
        assert fl.record_length == 8

    def test_trailing_padding(self):
        fl = field_list_for([("i", "integer", 4), ("c", "char")],
                            architecture=X86_64)
        assert fl.record_length == 8  # rounded to int alignment

    def test_double_alignment_differs_by_abi(self):
        specs = [("c", "char"), ("d", "double", 8)]
        assert field_list_for(specs,
                              architecture=SPARC_32)["d"].offset == 8
        assert field_list_for(specs,
                              architecture=X86_32)["d"].offset == 4

    def test_fig2_asdoff_layout_ilp32(self):
        # the paper's Fig. 2 struct on an ILP32 machine
        fl = field_list_for([
            ("centerID", "string"), ("airline", "string"),
            ("flight", "integer", 4), ("off", "unsigned integer", 4),
        ], architecture=SPARC_32)
        assert [f.offset for f in fl] == [0, 4, 8, 12]
        assert fl.record_length == 16

    def test_simple_data_sizes(self):
        # {int timestep; int size; float *data;}: 12 bytes ILP32,
        # 16 bytes LP64 (pointer alignment)
        specs = [("timestep", "integer", 4), ("size", "integer", 4),
                 ("data", "float[size]", 4)]
        assert field_list_for(specs,
                              architecture=SPARC_32).record_length == 12
        assert field_list_for(specs,
                              architecture=X86_64).record_length == 16


class TestArrayLayout:
    def test_fixed_array_inline(self):
        fl = field_list_for([("v", "float[8]", 4), ("t", "integer", 4)],
                            architecture=X86_64)
        assert fl["t"].offset == 32
        assert fl.record_length == 36

    def test_dynamic_array_is_pointer(self):
        fl = field_list_for([("n", "integer", 4), ("v", "float[n]", 4)],
                            architecture=X86_64)
        assert fl["v"].offset == 8  # pointer-aligned
        assert fl.record_length == 16

    def test_char_array(self):
        fl = field_list_for([("name", "char[13]"), ("x", "integer", 4)],
                            architecture=X86_64)
        assert fl["x"].offset == 16


class TestNestedLayout:
    def test_subformat_inline(self):
        point = field_list_for([("x", "double", 8), ("y", "double", 8)],
                               architecture=X86_64)
        fl = field_list_for([("id", "integer", 4), ("p", "Point")],
                            architecture=X86_64,
                            subformats={"Point": point})
        assert fl["p"].offset == 8
        assert fl.record_length == 24

    def test_subformat_array(self):
        point = field_list_for([("x", "double", 8), ("y", "double", 8)],
                               architecture=X86_64)
        fl = field_list_for([("ps", "Point[3]")], architecture=X86_64,
                            subformats={"Point": point})
        assert fl.record_length == 48

    def test_subformat_arch_mismatch_rejected(self):
        point = field_list_for([("x", "double", 8)],
                               architecture=X86_64)
        with pytest.raises(LayoutError, match="laid out for"):
            field_list_for([("p", "Point")], architecture=SPARC_32,
                           subformats={"Point": point})

    def test_unknown_subformat(self):
        with pytest.raises(LayoutError, match="unknown subformat"):
            field_list_for([("p", "Ghost")], architecture=X86_64)


class TestSpecErrors:
    def test_bad_spec_shape(self):
        with pytest.raises(LayoutError):
            compute_layout([("just-a-name",)])


# -- property-based invariants ---------------------------------------------------

_atomic = st.sampled_from([
    ("integer", 1), ("integer", 2), ("integer", 4), ("integer", 8),
    ("unsigned integer", 4), ("float", 4), ("float", 8),
    ("char", 1), ("boolean", 1), ("string", None),
])


@st.composite
def _spec_lists(draw):
    n = draw(st.integers(1, 10))
    specs = []
    for i in range(n):
        base, size = draw(_atomic)
        if size is None:
            specs.append((f"f{i}", base))
        else:
            specs.append((f"f{i}", base, size))
    return specs


@given(_spec_lists(), st.sampled_from(ARCHS))
def test_offsets_strictly_increase_and_never_overlap(specs, arch):
    fl = field_list_for(specs, architecture=arch)
    end = 0
    for field in fl:
        assert field.offset >= end
        end = field.offset + fl.inline_extent(field)
    assert fl.record_length >= end


@given(_spec_lists(), st.sampled_from(ARCHS))
def test_every_field_is_naturally_aligned(specs, arch):
    layout = compute_layout(specs, architecture=arch)
    fl = layout.field_list
    for field in fl:
        ftype = fl.field_type(field.name)
        if ftype.is_inline:
            align = min(field.size, arch.max_alignment)
        else:
            align = arch.alignof("pointer")
        assert field.offset % align == 0
    assert fl.record_length % layout.alignment == 0


@given(_spec_lists(), st.sampled_from(ARCHS))
def test_layout_is_deterministic(specs, arch):
    a = field_list_for(specs, architecture=arch)
    b = field_list_for(specs, architecture=arch)
    assert [(f.name, f.offset, f.size) for f in a] == \
        [(f.name, f.offset, f.size) for f in b]
    assert a.record_length == b.record_length


@given(_spec_lists())
def test_ilp32_never_larger_than_lp64(specs):
    # pointers and longs only shrink going to ILP32; with identical
    # explicit sizes the ILP32 layout can never exceed LP64's.
    small = field_list_for(specs, architecture=X86_32).record_length
    large = field_list_for(specs, architecture=X86_64).record_length
    assert small <= large
