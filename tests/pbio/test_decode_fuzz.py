"""Decode fuzzing: corrupt wire bytes must fail with *typed* errors.

A receiver on an open network sees garbage; the decoder's contract is
that any byte sequence either decodes to a record or raises a
``PBIOError`` subclass — never an unhandled ``struct.error``,
``UnicodeDecodeError``, ``IndexError``, ``MemoryError`` or similar.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PBIOError
from repro.pbio.context import IOContext
from repro.pbio.decode import RecordDecoder
from repro.pbio.format import IOFormat
from repro.pbio.format_server import FormatServer
from repro.pbio.layout import field_list_for

SPECS = [
    ("tag", "char"), ("count", "integer", 4), ("label", "string"),
    ("values", "float[count]", 4), ("blob", "char[*]", 1),
    ("fixed", "integer[3]", 2),
]
RECORD = {"tag": "x", "label": "hello world", "values": [1.0, 2.0],
          "blob": "payload", "fixed": [1, 2, 3]}


def _wire() -> bytes:
    ctx = IOContext(format_server=FormatServer())
    ctx.register_layout("Fuzz", SPECS)
    return ctx.encode("Fuzz", RECORD)


_BASE_WIRE = _wire()


def _fresh_context() -> IOContext:
    ctx = IOContext(format_server=FormatServer())
    ctx.register_layout("Fuzz", SPECS)
    return ctx


@settings(max_examples=300, deadline=None)
@given(
    position=st.integers(0, len(_BASE_WIRE) - 1),
    value=st.integers(0, 255),
)
def test_single_byte_corruption_is_typed(position, value):
    wire = bytearray(_BASE_WIRE)
    wire[position] = value
    ctx = _fresh_context()
    try:
        out = ctx.decode(bytes(wire))
        assert isinstance(out.record, dict)
    except PBIOError:
        pass  # typed rejection is the other acceptable outcome


@settings(max_examples=150, deadline=None)
@given(data=st.binary(min_size=0, max_size=200))
def test_random_bytes_are_typed(data):
    ctx = _fresh_context()
    try:
        ctx.decode(data)
    except PBIOError:
        pass


@settings(max_examples=150, deadline=None)
@given(body=st.binary(min_size=0, max_size=120))
def test_random_body_against_real_format(body):
    fmt = IOFormat("Fuzz", field_list_for(SPECS))
    decoder = RecordDecoder(fmt)
    try:
        record = decoder.decode(body)
        assert isinstance(record, dict)
    except PBIOError:
        pass


@settings(max_examples=100, deadline=None)
@given(cut=st.integers(0, len(_BASE_WIRE)))
def test_every_truncation_is_typed(cut):
    ctx = _fresh_context()
    try:
        ctx.decode(_BASE_WIRE[:cut])
    except PBIOError:
        pass
