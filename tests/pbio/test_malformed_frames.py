"""The committed malformed frames must stay rejected — typed, named.

``tests/golden/malformed/frames.json`` holds one minimized frame per
bug class the hardening fixed (pointer aliasing, smashed counts, lying
envelope lengths).  Every frame must raise :class:`DecodeError` with
the recorded message under both the fused and per-field decode plans;
a frame that starts decoding again is a regression, a frame that
raises anything untyped is a contract break.
"""

from __future__ import annotations

import re
import struct

import pytest

from repro.errors import DecodeError, EncodeError
from repro.pbio.context import IOContext
from repro.pbio.decode import RecordDecoder
from repro.pbio.encode import (
    HEADER_LEN, RecordEncoder, build_batch, is_batch, parse_batch,
    parse_header,
)
from repro.pbio.format import FormatID, IOFormat
from repro.pbio.layout import compute_layout
from repro.pbio.machine import X86_64
from tests.golden.cases import ARCHITECTURES, build_format
from tests.golden.malformed.cases import compute_frames, load_frames

FRAMES = load_frames()
_ENTRIES = [(name, order) for name in sorted(FRAMES)
            for order in sorted(FRAMES[name])]


def _strict_decode(fmt, wire: bytes, *, fuse: bool):
    """The receiving pipeline with no leniency: envelope length checks
    plus a validated decoder, as Connection/iofile run it."""
    decoder = RecordDecoder(fmt, fuse=fuse)
    if is_batch(wire):
        _fid, _big, bodies = parse_batch(wire)
        return [decoder.decode(bytes(b)) for b in bodies]
    _fid, body_len = parse_header(wire, require_body=True)
    return decoder.decode(wire[HEADER_LEN:HEADER_LEN + body_len])


def test_committed_frames_in_sync():
    # frames.json derives from vectors.json; regen both together
    assert compute_frames() == FRAMES


@pytest.mark.parametrize("fuse", [True, False], ids=["fused", "plain"])
@pytest.mark.parametrize("name,order", _ENTRIES)
def test_frame_rejected(name: str, order: str, fuse: bool):
    entry = FRAMES[name][order]
    fmt = build_format(entry["case"], ARCHITECTURES[order])
    wire = bytes.fromhex(entry["hex"])
    with pytest.raises(DecodeError,
                       match=re.escape(entry["match"])):
        _strict_decode(fmt, wire, fuse=fuse)


_BULK_ENTRIES = [(name, order) for name, order in _ENTRIES
                 if name.startswith("bulk_")]


@pytest.mark.parametrize("name,order", _BULK_ENTRIES)
def test_bulk_frame_rejected_by_view_decoder(name: str, order: str):
    """The zero-copy decode mode rides the same bounds checks: a
    corrupt bulk frame must be rejected before any view over the
    receive buffer is handed out."""
    entry = FRAMES[name][order]
    fmt = build_format(entry["case"], ARCHITECTURES[order])
    wire = bytes.fromhex(entry["hex"])
    _fid, body_len = parse_header(wire, require_body=True)
    body = wire[HEADER_LEN:HEADER_LEN + body_len]
    with pytest.raises(DecodeError,
                       match=re.escape(entry["match"])):
        RecordDecoder(fmt, arrays="view").decode(body)


def test_alias_was_a_silent_misdecode_before_validation():
    """The pre-hardening closures decode the aliased string without
    any error — fixed-region bytes come back as text — which is
    exactly what the pointer range check exists to stop."""
    entry = FRAMES["string_ptr_alias_fixed"]["little"]
    fmt = build_format(entry["case"], ARCHITECTURES["little"])
    wire = bytes.fromhex(entry["hex"])
    _fid, body_len = parse_header(wire, require_body=True)
    body = wire[HEADER_LEN:HEADER_LEN + body_len]
    legacy = RecordDecoder(fmt, validate=False).decode(body)
    assert legacy["channel"] != "wx/updates"   # garbage, no error
    with pytest.raises(DecodeError):
        RecordDecoder(fmt).decode(body)


def test_context_rejects_lying_header():
    entry = FRAMES["header_body_len_lies"]["little"]
    ctx = IOContext()
    fmt = build_format(entry["case"], ARCHITECTURES["little"])
    ctx.register(fmt)
    with pytest.raises(DecodeError, match="truncated"):
        ctx.decode(bytes.fromhex(entry["hex"]))


class TestVarSubformatPointer:
    """The nested (subformat array) decode path shares the pointer
    discipline; the golden corpus has no var subformat array, so pin
    it with a purpose-built format."""

    def _format(self) -> IOFormat:
        sub = compute_layout([("x", "double"), ("y", "double")],
                             architecture=X86_64).field_list
        layout = compute_layout(
            [("tag", "integer", 4), ("points", "Point2[*]")],
            architecture=X86_64, subformats={"Point2": sub})
        return IOFormat("VarSub", layout.field_list)

    def _body(self, fmt: IOFormat) -> bytearray:
        record = {"tag": 5, "points": [{"x": 1.0, "y": 2.0},
                                       {"x": -3.0, "y": 4.5}]}
        wire = RecordEncoder(fmt).encode_wire(record)
        return bytearray(wire[HEADER_LEN:])

    @pytest.mark.parametrize("fuse", [True, False])
    def test_pointer_aliasing_fixed_region(self, fuse):
        fmt = self._format()
        body = self._body(fmt)
        field = fmt.field_list["points"]
        struct.pack_into("<Q", body, field.offset, 4)  # inside fixed
        with pytest.raises(DecodeError,
                           match="pointer 4 outside variable region"):
            RecordDecoder(fmt, fuse=fuse).decode(bytes(body))

    def test_pointer_past_end(self):
        fmt = self._format()
        body = self._body(fmt)
        field = fmt.field_list["points"]
        struct.pack_into("<Q", body, field.offset, len(body) + 64)
        with pytest.raises(DecodeError, match="outside variable"):
            RecordDecoder(fmt).decode(bytes(body))

    def test_count_clamped_before_list_build(self):
        fmt = self._format()
        body = self._body(fmt)
        field = fmt.field_list["points"]
        where = struct.unpack_from("<Q", body, field.offset)[0]
        struct.pack_into("<I", body, where, 0x7FFFFFFF)
        with pytest.raises(DecodeError, match="outside record"):
            RecordDecoder(fmt).decode(bytes(body))


class TestParseBatchLies:
    """parse_batch against envelopes whose lengths lie about the
    buffer — every rejection typed, none via raw struct.error."""

    FID = FormatID(0x1234)

    def _frame(self, payload: bytes) -> bytes:
        good = build_batch(self.FID, [b"abcd"], big_endian=False)
        header = bytearray(good[:HEADER_LEN])
        struct.pack_into(">I", header, 12, len(payload))
        return bytes(header) + payload

    def test_payload_shorter_than_declared(self):
        good = build_batch(self.FID, [b"abcd"], big_endian=False)
        with pytest.raises(DecodeError, match="batch truncated"):
            parse_batch(good[:-1])

    def test_total_cannot_hold_count(self):
        with pytest.raises(DecodeError, match="cannot hold a count"):
            parse_batch(self._frame(b"\x00\x00"))

    def test_count_impossible_for_payload(self):
        payload = struct.pack(">I", 1000) + b"\x00" * 8
        with pytest.raises(DecodeError, match="impossible"):
            parse_batch(self._frame(payload))

    def test_record_length_extends_past_payload(self):
        payload = struct.pack(">II", 1, 100) + b"\x00" * 4
        with pytest.raises(DecodeError, match="extends past"):
            parse_batch(self._frame(payload))

    def test_length_prefix_straddles_end(self):
        # record 0 consumes the bytes record 1's prefix needs
        payload = (struct.pack(">II", 2, 3) + b"\x00" * 3 + b"\x00\x00")
        with pytest.raises(DecodeError,
                           match="inside record 1's length prefix"):
            parse_batch(self._frame(payload))

    def test_rejections_also_satisfy_legacy_encode_type(self):
        # WireParseError bridges both hierarchies: parse-layer callers
        # that predate the hardening catch EncodeError
        with pytest.raises(EncodeError):
            parse_batch(self._frame(b"\x00\x00"))
        with pytest.raises(EncodeError):
            parse_header(b"XX" + b"\x00" * 14)
