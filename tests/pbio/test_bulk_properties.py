"""Property-based differential battery for the bulk-array fast path.

Every bulk decision the codec can make — zero-copy view, byteswap
convert, spill segment, small-array fallback — must be byte-for-byte
indistinguishable from the per-element baseline, across element type,
byte order, payload source (list / ndarray / array.array), fuse mode,
validation mode and batching.  The decode side must agree across its
three representations (``list`` / ``numpy`` / ``view``), and the
zero-copy views must honor the buffer-lifetime contract: read-only,
alive views pin the buffer, and a materialized copy survives anything
done to the buffer afterwards.
"""

from __future__ import annotations

import array

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.pbio.encode as encode_mod
from repro.errors import EncodeError
from repro.pbio.decode import RecordDecoder, materialize_record
from repro.pbio.encode import (
    BULK_STATS, HEADER_LEN, RecordEncoder, numpy_dtype, parse_batch,
)
from repro.pbio.format import IOFormat
from repro.pbio.layout import field_list_for
from repro.pbio.machine import SPARC_V9, X86_64

ARCHS = (X86_64, SPARC_V9)

#: (type string, size, numpy dtype code, array.array typecode) for
#: every element type the bulk path accepts.  The typecodes are the
#: fixed-width ones ('l'/'L' are platform-sized and intentionally
#: left to the typecode-mismatch fallback).
_ELEMENT_TYPES = [
    ("integer", 1, "i1", "b"), ("integer", 2, "i2", "h"),
    ("integer", 4, "i4", "i"), ("integer", 8, "i8", "q"),
    ("unsigned integer", 1, "u1", "B"),
    ("unsigned integer", 2, "u2", "H"),
    ("unsigned integer", 4, "u4", "I"),
    ("unsigned integer", 8, "u8", "Q"),
    ("float", 4, "f4", "f"), ("float", 8, "f8", "d"),
]


def _element_values(type_string: str, size: int) -> st.SearchStrategy:
    if type_string == "float":
        return st.floats(width=32, allow_nan=False) if size == 4 \
            else st.floats(allow_nan=False)
    if type_string == "unsigned integer":
        return st.integers(0, (1 << (8 * size)) - 1)
    half = 1 << (8 * size - 1)
    return st.integers(-half, half - 1)


@st.composite
def bulk_case(draw, max_arrays: int = 3, max_elements: int = 24):
    """(specs, record-with-list-payloads, [(name, dtype, typecode)]).

    Mixes length-linked and self-sized numeric arrays (empty through
    *max_elements* elements) with a leading scalar and an optional
    trailing string, so the variable region holds more than just the
    bulk payloads.
    """
    specs: list[tuple] = [("tag", "integer", 4)]
    record: dict = {"tag": draw(st.integers(-1000, 1000))}
    arrays: list[tuple[str, str, str]] = []
    for i in range(draw(st.integers(1, max_arrays))):
        name = f"arr{i}"
        t, size, np_code, typecode = draw(st.sampled_from(
            _ELEMENT_TYPES))
        values = draw(st.lists(_element_values(t, size), min_size=0,
                               max_size=max_elements))
        if draw(st.booleans()):
            specs.append((f"{name}_n", "integer", 4))
            specs.append((name, f"{t}[{name}_n]", size))
            record[f"{name}_n"] = len(values)
        else:
            specs.append((name, f"{t}[*]", size))
        record[name] = values
        arrays.append((name, np_code, typecode))
    if draw(st.booleans()):
        specs.append(("note", "string"))
        record["note"] = draw(st.text(max_size=8).filter(
            lambda s: "\x00" not in s))
    return specs, record, arrays


def _as_source(record: dict, arrays, source: str) -> dict:
    out = dict(record)
    for name, np_code, typecode in arrays:
        if source == "ndarray":
            out[name] = np.asarray(record[name], dtype=np_code)
        elif source == "array":
            out[name] = array.array(typecode, record[name])
    return out


def _format_for(specs, arch) -> IOFormat:
    return IOFormat("B", field_list_for(specs, architecture=arch))


# -- encode: bulk == per-element baseline, all sources ----------------------

@settings(max_examples=150, deadline=None)
@given(case=bulk_case(), arch=st.sampled_from(ARCHS),
       source=st.sampled_from(("ndarray", "array")),
       fuse=st.booleans(), data=st.data())
def test_bulk_wire_equals_baseline(case, arch, source, fuse, data):
    specs, record, arrays = case
    fmt = _format_for(specs, arch)
    baseline = RecordEncoder(fmt, fuse=fuse,
                             bulk=False).encode_wire(record)
    typed = _as_source(record, arrays, source)
    encoder = RecordEncoder(fmt, fuse=fuse)
    assert encoder.encode_wire(typed) == baseline
    assert b"".join(encoder.encode_wire_parts(typed)) == baseline


@settings(max_examples=80, deadline=None)
@given(case=bulk_case(max_elements=64), arch=st.sampled_from(ARCHS),
       source=st.sampled_from(("ndarray", "array")))
def test_parts_join_matches_wire_with_spills(case, arch, source):
    """With the spill threshold forced down, every bulk payload leaves
    the body as a zero-copy segment — the virtual-length bookkeeping
    (pointers, counts, pads around the cut points) must still produce
    the baseline bytes exactly."""
    specs, record, arrays = case
    fmt = _format_for(specs, arch)
    baseline = RecordEncoder(fmt, bulk=False).encode_wire(record)
    before = BULK_STATS.snapshot()["spilled_segments"]
    old = encode_mod.SPILL_MIN_BYTES
    encode_mod.SPILL_MIN_BYTES = 1
    try:
        parts = RecordEncoder(fmt).encode_wire_parts(
            _as_source(record, arrays, source))
        joined = b"".join(parts)
    finally:
        encode_mod.SPILL_MIN_BYTES = old
    assert joined == baseline
    if any(record[name] for name, _d, _t in arrays):
        assert BULK_STATS.snapshot()["spilled_segments"] > before


@settings(max_examples=60, deadline=None)
@given(case=bulk_case(max_arrays=2), arch=st.sampled_from(ARCHS),
       source=st.sampled_from(("list", "ndarray", "array")))
def test_batch_bulk_equals_baseline(case, arch, source):
    specs, record, arrays = case
    fmt = _format_for(specs, arch)
    batch = [dict(record, tag=t) for t in range(3)]
    baseline = RecordEncoder(fmt, bulk=False).encode_batch(batch)
    typed = [_as_source(r, arrays, source) for r in batch]
    assert RecordEncoder(fmt).encode_batch(typed) == baseline
    _fid, _big, bodies = parse_batch(baseline)
    listed = RecordDecoder(fmt).decode_many(
        [bytes(b) for b in bodies])
    viewed = RecordDecoder(fmt, arrays="view").decode_many(
        [bytes(b) for b in bodies])
    assert [materialize_record(r) for r in viewed] == listed


# -- decode: list / numpy / view representations agree ----------------------

@settings(max_examples=100, deadline=None)
@given(case=bulk_case(), arch=st.sampled_from(ARCHS),
       fuse=st.booleans(), validate=st.booleans())
def test_decode_representations_agree(case, arch, fuse, validate):
    specs, record, arrays = case
    fmt = _format_for(specs, arch)
    wire = RecordEncoder(fmt, bulk=False).encode_wire(record)
    body = wire[HEADER_LEN:]
    listed = RecordDecoder(fmt, fuse=fuse,
                           validate=validate).decode(body)
    for mode in ("numpy", "view"):
        decoded = RecordDecoder(fmt, arrays=mode, fuse=fuse,
                                validate=validate).decode(body)
        assert materialize_record(decoded) == listed
        if mode == "view":
            for name, _d, _t in arrays:
                assert not decoded[name].flags.writeable


# -- buffer-lifetime contract ----------------------------------------------

def _grid_format():
    specs = [("n", "integer", 4), ("data", "float[n]", 8),
             ("label", "string")]
    return specs, _format_for(specs, X86_64)


def test_materialized_copy_survives_buffer_mutation():
    _specs, fmt = _grid_format()
    record = {"n": 256, "data": [i * 0.5 for i in range(256)],
              "label": "grid"}
    wire = RecordEncoder(fmt).encode_wire(record)
    body = bytearray(wire[HEADER_LEN:])
    decoded = RecordDecoder(fmt, arrays="view").decode(body)
    view = decoded["data"]
    copied = materialize_record(decoded)
    body[:] = b"\xff" * len(body)      # receive buffer reused/poisoned
    assert copied["data"] == record["data"]    # the copy is immune
    assert np.isnan(view).all()        # the view is proven zero-copy


def test_view_is_read_only_and_pins_the_buffer():
    _specs, fmt = _grid_format()
    record = {"n": 8, "data": [0.25] * 8, "label": None}
    wire = RecordEncoder(fmt).encode_wire(record)
    body = bytearray(wire[HEADER_LEN:])
    decoded = RecordDecoder(fmt, arrays="view").decode(body)
    view = decoded["data"]
    with pytest.raises(ValueError, match="read-only"):
        view[0] = 1.0
    # a live view holds a buffer export: the owner cannot resize (and
    # so a pool cannot recycle) the buffer out from under it
    with pytest.raises(BufferError):
        body.clear()
    del decoded, view
    body.clear()                       # dropping the views releases it


def test_materialize_numpy_copies_out_of_the_buffer():
    _specs, fmt = _grid_format()
    record = {"n": 4, "data": [1.0, 2.0, 3.0, 4.0], "label": "x"}
    wire = RecordEncoder(fmt).encode_wire(record)
    body = bytearray(wire[HEADER_LEN:])
    decoded = RecordDecoder(fmt, arrays="view").decode(body)
    owned = materialize_record(decoded, arrays="numpy")
    assert isinstance(owned["data"], np.ndarray)
    assert owned["data"].flags.owndata and owned["data"].flags.writeable
    body[:] = b"\x00" * len(body)
    assert owned["data"].tolist() == record["data"]


def test_parts_are_stable_once_joined_and_encoder_is_reusable():
    _specs, fmt = _grid_format()
    grid = np.arange(1024, dtype="f8")
    record = {"n": 1024, "data": grid, "label": "g"}
    encoder = RecordEncoder(fmt)
    baseline = RecordEncoder(fmt, bulk=False).encode_wire(
        {**record, "data": grid.tolist()})
    joined = b"".join(encoder.encode_wire_parts(record))
    assert joined == baseline
    grid += 1.0       # parts were consumed; the join already copied
    assert joined == baseline
    again = b"".join(encoder.encode_wire_parts(
        {**record, "data": grid}))   # pooled body reused, new payload
    assert again == RecordEncoder(fmt, bulk=False).encode_wire(
        {**record, "data": grid.tolist()})
    assert again != baseline


# -- bulk eligibility edges -------------------------------------------------

def test_strided_and_wrong_dtype_sources_still_match_baseline():
    specs = [("n", "integer", 4), ("values", "integer[n]", 4)]
    fmt = _format_for(specs, X86_64)
    strided = np.arange(64, dtype="i4")[::2]  # non-contiguous
    widened = np.arange(32, dtype="i8")       # wrong dtype
    before = BULK_STATS.snapshot()
    for values in (strided, widened):
        baseline = RecordEncoder(fmt, bulk=False).encode_wire(
            {"n": 32, "values": values.tolist()})
        assert RecordEncoder(fmt).encode_wire(
            {"n": 32, "values": values}) == baseline
    after = BULK_STATS.snapshot()
    assert after["bulk_converts"] >= before["bulk_converts"] + 2


def test_2d_array_falls_back_to_baseline_counter():
    specs = [("values", "integer[*]", 4)]
    fmt = _format_for(specs, X86_64)
    arr2d = np.arange(6, dtype="i4").reshape(2, 3)
    before = BULK_STATS.snapshot()["fallback_arrays"]
    # a 2-D payload has no 1-D bulk view: the counted fallback hands
    # it to the per-element baseline, whatever that path does with it
    bulk_wire = RecordEncoder(fmt).encode_wire({"values": arr2d})
    assert BULK_STATS.snapshot()["fallback_arrays"] > before
    assert bulk_wire == RecordEncoder(
        fmt, bulk=False).encode_wire({"values": arr2d})


# -- error attribution (the _bulk_bytes regression) -------------------------

def test_numpy_dtype_error_names_the_field():
    with pytest.raises(EncodeError,
                       match="field 'payload': no bulk representation "
                             "for kind char"):
        numpy_dtype("char", 1, "little", field_name="payload")
    with pytest.raises(EncodeError,
                       match="^no bulk representation for kind char"):
        numpy_dtype("char", 1, "little")


def test_encode_bodies_names_the_offending_record():
    specs = [("values", "integer[3]", 4)]
    fmt = _format_for(specs, X86_64)
    good = {"values": [1, 2, 3]}
    bad = {"values": np.arange(4, dtype="i4")}
    with pytest.raises(EncodeError,
                       match=r"record\[2\]: field 'values': fixed "
                             r"array of 3, got 4 elements"):
        RecordEncoder(fmt).encode_bodies([good, good, bad])


def test_wrong_length_bulk_fixed_array_names_the_field():
    specs = [("values", "integer[3]", 4)]
    fmt = _format_for(specs, X86_64)
    with pytest.raises(EncodeError, match="field 'values'"):
        RecordEncoder(fmt).encode_wire(
            {"values": np.arange(5, dtype="i4")})
