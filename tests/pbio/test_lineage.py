"""Lineage registry, server-side negotiation, context evolution and
the sender-side DownConverter — the version-skew machinery the fleet
scenario suite (tests/integration/test_evolution_fleet.py) exercises
end to end."""

import pytest

from repro.errors import (
    ConversionError, FormatRegistrationError, UnknownFormatError,
)
from repro.pbio.context import IOContext
from repro.pbio.evolution import (
    DownConverter, down_converter,
)
from repro.pbio.format import IOFormat
from repro.pbio.format_server import FormatServer
from repro.pbio.layout import compute_layout
from repro.pbio.lineage import LineageRegistry
from repro.pbio.machine import NATIVE

V1 = [("timestep", "integer"), ("size", "integer"),
      ("data", "float[size]")]
V2 = V1 + [("units", "string")]
V3 = V2 + [("quality", "float", 8)]

REC_V2 = {"timestep": 9, "data": [1.5, -2.5, 4.0], "units": "m/s"}
REC_V3 = REC_V2 | {"quality": 0.75}


def fmt(specs, name="Grid", architecture=NATIVE) -> IOFormat:
    layout = compute_layout(specs, architecture=architecture)
    return IOFormat(name, layout.field_list)


@pytest.fixture
def versions():
    return fmt(V1), fmt(V2), fmt(V3)


class TestLineageRegistry:
    def test_chain_grows_oldest_first(self, versions):
        v1, v2, v3 = versions
        reg = LineageRegistry()
        reg.append(v1, v2)
        reg.append(v2, v3)
        assert reg.chain("Grid") == (v1.format_id, v2.format_id,
                                     v3.format_id)
        assert reg.latest("Grid") == v3.format_id
        assert reg.version_index("Grid", v1.format_id) == 0
        assert reg.version_index("Grid", v3.format_id) == 2

    def test_append_is_idempotent_at_tail(self, versions):
        v1, v2, _ = versions
        reg = LineageRegistry()
        reg.append(v1, v2)
        reg.append(v1, v2)
        assert len(reg.chain("Grid")) == 2

    def test_rerecording_earlier_link_is_a_no_op(self, versions):
        # a second context sharing the server replays v1 -> v2 after
        # the chain has already grown to v3
        v1, v2, v3 = versions
        reg = LineageRegistry()
        reg.append(v1, v2)
        reg.append(v2, v3)
        reg.append(v1, v2)
        assert reg.chain("Grid") == (v1.format_id, v2.format_id,
                                     v3.format_id)

    def test_name_change_rejected(self, versions):
        v1, _, _ = versions
        other = fmt(V2, name="Other")
        reg = LineageRegistry()
        with pytest.raises(FormatRegistrationError,
                           match="keep the format name"):
            reg.append(v1, other)

    def test_field_removal_rejected(self, versions):
        v1, _, _ = versions
        shrunk = fmt([("timestep", "integer")])
        reg = LineageRegistry()
        with pytest.raises(FormatRegistrationError,
                           match="not a restricted evolution"):
            reg.append(v1, shrunk)

    def test_only_tail_evolves(self, versions):
        v1, v2, v3 = versions
        reg = LineageRegistry()
        reg.append(v1, v2)
        reg.append(v2, v3)
        with pytest.raises(FormatRegistrationError,
                           match="latest version"):
            reg.append(v1, fmt(V1 + [("fork", "integer")]))

    def test_devolution_rejected(self, versions):
        v1, v2, v3 = versions
        reg = LineageRegistry()
        reg.append(v1, v2)
        reg.append(v2, v3)
        # going back down the chain removes fields, which the
        # restricted-evolution rule itself forbids
        with pytest.raises(FormatRegistrationError,
                           match="not a restricted evolution"):
            reg.append(v3, v1)

    def test_highest_common(self, versions):
        v1, v2, v3 = versions
        reg = LineageRegistry()
        reg.append(v1, v2)
        reg.append(v2, v3)
        offered = {v1.format_id, v2.format_id}
        assert reg.highest_common("Grid", offered) == v2.format_id
        assert reg.highest_common("Grid", [v1.format_id]) \
            == v1.format_id
        assert reg.highest_common("Grid", []) is None
        assert reg.highest_common("Unknown", offered) is None

    def test_ensure_root_keeps_established_root(self, versions):
        v1, v2, _ = versions
        reg = LineageRegistry()
        reg.append(v1, v2)
        reg.ensure_root(v2)  # no-op: root already v1
        assert reg.chain("Grid")[0] == v1.format_id

    def test_latest_unknown_raises(self):
        with pytest.raises(UnknownFormatError):
            LineageRegistry().latest("Nope")

    def test_as_dict_snapshot(self, versions):
        v1, v2, _ = versions
        reg = LineageRegistry()
        reg.append(v1, v2)
        assert reg.as_dict() == {
            "Grid": (str(v1.format_id), str(v2.format_id))}
        assert len(reg) == 1


class TestFormatServerNegotiation:
    def test_register_evolution_registers_both(self, versions):
        v1, v2, _ = versions
        server = FormatServer()
        assert server.register_evolution(v1, v2) == v2.format_id
        assert server.lookup(v1.format_id) == v1
        assert server.lookup(v2.format_id) == v2
        assert server.lineage("Grid") == (v1.format_id, v2.format_id)

    def test_negotiate_picks_newest_common(self, versions):
        v1, v2, v3 = versions
        server = FormatServer()
        server.register_evolution(v1, v2)
        server.register_evolution(v2, v3)
        assert server.negotiate(
            "Grid", [v1.format_id, v2.format_id]) == v2.format_id
        assert server.negotiate("Grid", [v1.format_id]) == v1.format_id
        assert server.negotiate(
            "Grid", [fmt(V1, name="X").format_id]) is None

    def test_negotiate_without_lineage_falls_back(self, versions):
        v1, _, _ = versions
        server = FormatServer()
        server.register(v1)
        assert server.negotiate("Grid", [v1.format_id]) == v1.format_id
        assert server.negotiate("Other", [v1.format_id]) is None


class TestContextEvolution:
    def test_register_evolution_rebinds_name(self, versions):
        v1, v2, _ = versions
        ctx = IOContext(format_server=FormatServer())
        ctx.register(v1)
        ctx.register_evolution(v2)
        assert ctx.lookup_format("Grid") == v2
        assert ctx.decodable_versions("Grid") == (v1.format_id,
                                                  v2.format_id)
        assert ctx.version_for("Grid", v1.format_id) == v1

    def test_first_version_is_plain_registration(self, versions):
        v1, _, _ = versions
        ctx = IOContext(format_server=FormatServer())
        ctx.register_evolution(v1)
        assert ctx.decodable_versions("Grid") == (v1.format_id,)

    def test_encode_uses_newest_version(self, versions):
        v1, v2, _ = versions
        ctx = IOContext(format_server=FormatServer())
        ctx.register(v1)
        ctx.register_evolution(v2)
        wire = ctx.encode("Grid", REC_V2)
        assert ctx.decode(wire).format_id == v2.format_id

    def test_illegal_evolution_rejected(self, versions):
        v1, _, _ = versions
        ctx = IOContext(format_server=FormatServer())
        ctx.register(v1)
        with pytest.raises(FormatRegistrationError):
            ctx.register_evolution(fmt([("timestep", "integer")]))

    def test_unregister_clears_versions(self, versions):
        v1, v2, _ = versions
        ctx = IOContext(format_server=FormatServer())
        ctx.register(v1)
        ctx.register_evolution(v2)
        ctx.unregister("Grid")
        with pytest.raises(UnknownFormatError):
            ctx.decodable_versions("Grid")

    def test_version_for_unknown_raises(self, versions):
        v1, v2, _ = versions
        ctx = IOContext(format_server=FormatServer())
        ctx.register(v1)
        with pytest.raises(UnknownFormatError):
            ctx.version_for("Grid", v2.format_id)


class TestDownConverter:
    def test_record_projection_drops_appended(self, versions):
        v1, _, v3 = versions
        conv = DownConverter(v3, v1)
        out = conv.convert_record(REC_V3)
        assert set(out) == {"timestep", "data"}

    def test_encode_record_decodes_natively(self, versions):
        v1, _, v3 = versions
        ctx = IOContext(format_server=FormatServer())
        ctx.register(v1)
        wire = DownConverter(v3, v1).encode_record(REC_V3)
        decoded = ctx.decode(wire)
        assert decoded.format_id == v1.format_id
        assert decoded.record == {"timestep": 9, "size": 3,
                                  "data": [1.5, -2.5, 4.0]}

    def test_encode_batch(self, versions):
        v1, _, v3 = versions
        ctx = IOContext(format_server=FormatServer())
        ctx.register(v1)
        batch = DownConverter(v3, v1).encode_batch(
            [REC_V3, REC_V3 | {"timestep": 10}])
        records = ctx.decode_many(batch)
        assert [r.record["timestep"] for r in records] == [9, 10]
        assert all(r.format_id == v1.format_id for r in records)

    def test_convert_wire_roundtrip(self, versions):
        v1, _, v3 = versions
        sender = IOContext(format_server=FormatServer())
        sender.register(v3)
        receiver = IOContext(format_server=FormatServer())
        receiver.register(v1)
        new_wire = sender.encode("Grid", REC_V3)
        old_wire = DownConverter(v3, v1).convert_wire(new_wire)
        assert receiver.decode(old_wire).record["data"] == \
            [1.5, -2.5, 4.0]

    def test_convert_wire_rejects_other_format(self, versions):
        v1, v2, v3 = versions
        sender = IOContext(format_server=FormatServer())
        sender.register(v2)
        wire = sender.encode("Grid", REC_V2)
        with pytest.raises(ConversionError, match="expects"):
            DownConverter(v3, v1).convert_wire(wire)

    def test_incompatible_pair_rejected(self, versions):
        v1, _, _ = versions
        shrunk = fmt([("timestep", "integer")])
        with pytest.raises(ConversionError):
            DownConverter(shrunk, v1)
        with pytest.raises(ConversionError):
            DownConverter(fmt(V1, name="Other"), v1)

    def test_identity(self, versions):
        v1, _, _ = versions
        conv = DownConverter(v1, v1)
        assert conv.is_identity
        assert conv.convert_record(REC_V3)["units"] == "m/s"

    def test_process_wide_cache_shares_plans(self, versions):
        v1, _, v3 = versions
        assert down_converter(v3, v1) is down_converter(v3, v1)
        assert down_converter(v3, v1, fuse=False) is not \
            down_converter(v3, v1)
