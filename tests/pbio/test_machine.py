"""Architecture models."""

import pytest

from repro.errors import LayoutError
from repro.pbio.machine import (
    Architecture, NATIVE, SPARC_32, SPARC_V9, X86_32, X86_64,
    all_architectures, architecture_by_name, register_architecture,
)


class TestModels:
    def test_ilp32_sizes(self):
        for arch in (SPARC_32, X86_32):
            assert arch.sizeof("int") == 4
            assert arch.sizeof("long") == 4
            assert arch.sizeof("pointer") == 4
            assert arch.sizeof("long_long") == 8

    def test_lp64_sizes(self):
        for arch in (SPARC_V9, X86_64):
            assert arch.sizeof("long") == 8
            assert arch.sizeof("pointer") == 8
            assert arch.sizeof("int") == 4

    def test_endianness(self):
        assert SPARC_32.byte_order == "big"
        assert SPARC_V9.byte_order == "big"
        assert X86_32.byte_order == "little"
        assert X86_64.byte_order == "little"

    def test_struct_prefix(self):
        assert SPARC_32.struct_byte_order_char == ">"
        assert X86_64.struct_byte_order_char == "<"

    def test_ia32_alignment_cap(self):
        # classic IA-32 quirk: 8-byte doubles align to 4 in structs
        assert X86_32.alignof("double") == 4
        assert SPARC_32.alignof("double") == 8

    def test_native_is_lp64(self):
        assert NATIVE.sizeof("pointer") == 8


class TestIntSizeFor:
    def test_default_is_int(self):
        assert X86_64.int_size_for(None) == 4

    @pytest.mark.parametrize("bits,size", [
        (8, 1), (16, 2), (32, 4), (64, 8),
    ])
    def test_width_selection(self, bits, size):
        assert X86_64.int_size_for(bits) == size

    def test_odd_widths_round_up(self):
        assert X86_64.int_size_for(12) == 2
        assert X86_64.int_size_for(33) == 8


class TestRegistry:
    def test_lookup(self):
        assert architecture_by_name("sparc-solaris") is SPARC_32

    def test_unknown(self):
        with pytest.raises(LayoutError, match="unknown architecture"):
            architecture_by_name("pdp-11")

    def test_register_custom(self):
        custom = Architecture(name="test-weird", byte_order="big",
                              sizes=dict(X86_64.sizes),
                              max_alignment=2)
        register_architecture(custom)
        assert architecture_by_name("test-weird") is custom
        assert custom in all_architectures()


class TestValidation:
    def test_bad_byte_order(self):
        with pytest.raises(LayoutError):
            Architecture(name="x", byte_order="middle",
                         sizes=dict(X86_64.sizes))

    def test_missing_sizes(self):
        with pytest.raises(LayoutError, match="missing sizes"):
            Architecture(name="x", byte_order="big",
                         sizes={"int": 4})

    def test_unknown_atomic_sizeof(self):
        with pytest.raises(LayoutError):
            X86_64.sizeof("int128")
