"""Seeded fuzz campaign aimed at the bulk-array fast path.

The zero-copy machinery adds three attack surfaces the generic
campaign barely touches: element-count prefixes sizing multi-KiB
payloads, stride alignment of the bulk region, and pointers that can
be spliced *inside* the record where naive length checks pass.
:data:`~repro.testing.fuzz.BULK_KINDS` opts into mutations built for
each, and the oracle differentially checks the ``arrays="view"``
decode against the copying plan on every frame that decodes — so a
view that diverges, or a rejection only one plan performs, fails here
deterministically.

The default :class:`FrameMutator` kinds tuple must never grow (seeded
campaigns replay byte for byte); this file pins that too.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.pbio.decode import RecordDecoder
from repro.pbio.encode import HEADER_LEN, parse_header
from repro.testing.fuzz import (
    BULK_KINDS, FrameMutator, InvariantViolation, WireOracle, run_fuzz,
)
from tests.golden.cases import (
    ARCHITECTURES, build_format, bulk_case_names, encode_case,
)

ITERATIONS = int(os.environ.get("REPRO_FUZZ_ITERATIONS", "10000")) // 2
SEED = 20260805

#: the 1k bulk cases (4-8 KiB frames: big enough that every payload
#: mutation lands in the bulk region, small enough to mutate by the
#: thousand) plus VarArrays for pointer/count interplay
_CASES = [c for c in bulk_case_names() if c.endswith("_1k")]
_CASES.append("VarArrays")


def _corpus():
    formats, corpus = [], {}
    for case in _CASES:
        for order, arch in ARCHITECTURES.items():
            formats.append(build_format(case, arch))
            corpus[f"{case}/{order}"] = encode_case(case, arch)
    return formats, corpus


def test_pristine_bulk_corpus_passes_every_invariant():
    formats, corpus = _corpus()
    oracle = WireOracle(formats)
    for name, wire in corpus.items():
        outcome = oracle.check(wire)
        assert outcome["decoded"] == outcome["reencoded"] == 1, name


def test_bulk_fuzz_no_invariant_violations():
    formats, corpus = _corpus()
    oracle = WireOracle(formats)
    report = run_fuzz(corpus, oracle, iterations=ITERATIONS,
                      seed=SEED, kinds=BULK_KINDS)
    report.raise_for_failures()
    assert report.ok
    assert report.iterations == ITERATIONS
    assert report.rejected > 0
    assert report.decoded_ok > 0


def test_default_kinds_tuple_is_frozen():
    """BULK_KINDS widens a new campaign; the historical default set
    must not grow, or existing seeds stop replaying byte for byte."""
    mutator = FrameMutator(random.Random(0))
    assert mutator.kinds == (
        "flip_byte", "flip_bit", "truncate", "extend", "smash_u32",
        "zero_run", "ff_run", "duplicate_run", "splice_header",
        "crossover")
    for kind in ("smash_array_len", "misalign_stride",
                 "splice_bulk_ptr"):
        assert kind not in mutator.kinds
        assert kind in BULK_KINDS


def test_bulk_kinds_are_deterministic():
    frame = encode_case("BulkInt32_1k", ARCHITECTURES["little"])
    runs = []
    for _ in range(2):
        mut = FrameMutator(random.Random(11), [frame],
                           kinds=BULK_KINDS)
        runs.append([mut.mutate(frame) for _ in range(64)])
    assert runs[0] == runs[1]


@pytest.mark.parametrize("kind", ["smash_array_len",
                                  "misalign_stride",
                                  "splice_bulk_ptr"])
def test_each_bulk_kind_actually_mutates(kind):
    frame = encode_case("BulkInt32_1k", ARCHITECTURES["little"])
    mut = FrameMutator(random.Random(3), [frame], kinds=(kind,))
    changed = sum(mut.mutate(frame, rounds=1)[0] != frame
                  for _ in range(32))
    assert changed > 24  # near-always effective on a 4 KiB frame


def test_misalign_stride_keeps_frame_well_framed():
    """The point of the kind: corruption *inside* a well-framed
    record, so decode reaches the pointer checks instead of bailing
    at the envelope."""
    frame = encode_case("BulkDouble_1k", ARCHITECTURES["little"])
    mut = FrameMutator(random.Random(5), [frame],
                       kinds=("misalign_stride",))
    for _ in range(32):
        mutated, _ = mut.mutate(frame, rounds=1)
        _fid, body_len = parse_header(mutated, require_body=True)
        assert body_len == len(mutated) - HEADER_LEN


def test_oracle_flags_view_divergence():
    """A view decoder that returns different values than the copying
    plan must trip the differential — the view check is not vacuous."""
    fmt = build_format("BulkInt32_1k", ARCHITECTURES["little"])
    oracle = WireOracle([fmt])
    entry = oracle._by_id[fmt.format_id]

    class Shifter:
        def decode(self, body):
            record = RecordDecoder(fmt).decode(bytes(body))
            record["values"] = [v + 1 for v in record["values"]]
            return record

    oracle._by_id[fmt.format_id] = (entry[0], entry[1], entry[2],
                                    Shifter(), entry[4])
    wire = encode_case("BulkInt32_1k", ARCHITECTURES["little"])
    with pytest.raises(InvariantViolation, match="view decode"):
        oracle.check(wire)
