"""The networked format-server service."""

import pytest

from repro.errors import UnknownFormatError
from repro.pbio.context import IOContext
from repro.pbio.format import FormatID, IOFormat
from repro.pbio.format_server import FormatServer
from repro.pbio.layout import field_list_for
from repro.pbio.remote_server import (
    FormatServerService, RemoteFormatServer,
)


def make_format(name="T"):
    return IOFormat(name, field_list_for(
        [("a", "integer", 4), ("s", "string")]))


@pytest.fixture
def service():
    with FormatServerService() as svc:
        yield svc


@pytest.fixture
def remote(service):
    client = RemoteFormatServer.connect(service.host, service.port)
    yield client
    client.close()


class TestProtocol:
    def test_register_and_lookup(self, service, remote):
        fid = remote.register(make_format())
        assert service.backing.lookup(fid) == make_format()
        assert remote.lookup(fid) == make_format()

    def test_lookup_from_second_client(self, service, remote):
        fid = remote.register(make_format())
        other = RemoteFormatServer.connect(service.host, service.port)
        try:
            assert other.lookup(fid) == make_format()
        finally:
            other.close()

    def test_unknown_id_errors(self, remote):
        with pytest.raises(UnknownFormatError):
            remote.lookup(FormatID(0xDEAD))

    def test_lookup_cached_after_first_fetch(self, service, remote):
        fid = remote.register(make_format())
        other = RemoteFormatServer.connect(service.host, service.port)
        try:
            other.lookup(fid)
            other.lookup(fid)
            other.lookup(fid)
            assert other.network_lookups == 1
        finally:
            other.close()

    def test_register_idempotent_without_network(self, remote):
        remote.register(make_format())
        remote.register(make_format())
        assert remote.network_registrations == 1

    def test_import_bytes(self, remote):
        canonical = make_format().canonical_bytes()
        fid = remote.import_bytes(canonical)
        assert fid == make_format().format_id


class TestReconnectRetry:
    def _retry(self):
        from repro.http.retry import RetryPolicy
        return RetryPolicy(attempts=3, base_delay=0.001, seed=2)

    def test_request_survives_a_dropped_connection(self, service):
        client = RemoteFormatServer.connect(service.host, service.port,
                                            retry=self._retry())
        try:
            fid = client.register(make_format())
            # sever the TCP channel underneath the client; the next
            # uncached request must reconnect and succeed
            client._channel.close()
            client._cache.clear()
            assert client.lookup(fid) == make_format()
            assert client.network_retries >= 1
        finally:
            client.close()

    def test_without_retry_a_dropped_connection_raises(self, service):
        from repro.errors import TransportError
        client = RemoteFormatServer.connect(service.host, service.port)
        try:
            fid = client.register(make_format())
            client._channel.close()
            client._cache.clear()
            with pytest.raises(TransportError):
                client.lookup(fid)
        finally:
            client.close()

    def test_connect_retries_until_service_is_up(self, service):
        # connecting to a live service with a retry policy is a no-op
        client = RemoteFormatServer.connect(service.host, service.port,
                                            retry=self._retry())
        try:
            assert client.known_ids() == ()
        finally:
            client.close()


class TestContextIntegration:
    def test_contexts_share_formats_through_the_service(self, service):
        sender_server = RemoteFormatServer.connect(service.host,
                                                   service.port)
        receiver_server = RemoteFormatServer.connect(service.host,
                                                     service.port)
        try:
            sender = IOContext(format_server=sender_server)
            receiver = IOContext(format_server=receiver_server)
            sender.register_layout("Msg", [("x", "integer", 4),
                                           ("s", "string")])
            wire = sender.encode("Msg", {"x": 7, "s": "over the net"})
            out = receiver.decode(wire)
            assert out.record == {"x": 7, "s": "over the net"}
            assert receiver_server.network_lookups == 1
        finally:
            sender_server.close()
            receiver_server.close()

    def test_service_backed_by_existing_server(self):
        backing = FormatServer()
        fid = backing.register(make_format())
        with FormatServerService(backing) as svc:
            client = RemoteFormatServer.connect(svc.host, svc.port)
            try:
                assert client.lookup(fid) == make_format()
            finally:
                client.close()
