"""Conversion planning between wire and native formats."""

import pytest

from repro.errors import ConversionError
from repro.pbio.convert import default_value, plan_conversion
from repro.pbio.format import IOFormat
from repro.pbio.layout import field_list_for
from repro.pbio.types import parse_field_type


def fmt(name, specs, subformats=None):
    return IOFormat(name, field_list_for(specs, subformats=subformats))


class TestPlanning:
    def test_identity_plan(self):
        a = fmt("T", [("x", "integer", 4)])
        plan = plan_conversion(a, a)
        assert plan.is_identity
        record = {"x": 1}
        assert plan.apply(record) is record

    def test_dropped_fields(self):
        wire = fmt("T", [("x", "integer", 4), ("added", "float", 4)])
        native = fmt("T", [("x", "integer", 4)])
        plan = plan_conversion(wire, native)
        assert plan.dropped == ("added",)
        assert plan.apply({"x": 1, "added": 2.0}) == {"x": 1}

    def test_defaulted_fields(self):
        wire = fmt("T", [("x", "integer", 4)])
        native = fmt("T", [("x", "integer", 4), ("label", "string"),
                           ("w", "double", 8)])
        plan = plan_conversion(wire, native)
        out = plan.apply({"x": 5})
        assert out == {"x": 5, "label": None, "w": 0.0}

    def test_integer_widening_allowed(self):
        wire = fmt("T", [("x", "integer", 2)])
        native = fmt("T", [("x", "integer", 8)])
        assert plan_conversion(wire, native).matched == ("x",)

    def test_int_to_float_allowed(self):
        wire = fmt("T", [("x", "integer", 4)])
        native = fmt("T", [("x", "float", 8)])
        plan_conversion(wire, native)

    def test_float_to_int_rejected(self):
        wire = fmt("T", [("x", "float", 4)])
        native = fmt("T", [("x", "integer", 4)])
        with pytest.raises(ConversionError, match="lossy"):
            plan_conversion(wire, native)

    def test_string_to_int_rejected(self):
        wire = fmt("T", [("x", "string")])
        native = fmt("T", [("x", "integer", 4)])
        with pytest.raises(ConversionError):
            plan_conversion(wire, native)

    def test_fixed_array_size_mismatch_rejected(self):
        wire = fmt("T", [("v", "float[4]", 4)])
        native = fmt("T", [("v", "float[8]", 4)])
        with pytest.raises(ConversionError, match="sizes differ"):
            plan_conversion(wire, native)

    def test_dynamic_to_fixed_rejected(self):
        wire = fmt("T", [("n", "integer", 4), ("v", "float[n]", 4)])
        native = fmt("T", [("n", "integer", 4), ("v", "float[4]", 4)])
        with pytest.raises(ConversionError, match="dynamic"):
            plan_conversion(wire, native)

    def test_fixed_to_dynamic_allowed(self):
        wire = fmt("T", [("v", "float[4]", 4)])
        native = fmt("T", [("n", "integer", 4), ("v", "float[n]", 4)])
        plan = plan_conversion(wire, native)
        out = plan.apply({"v": [1.0] * 4})
        assert out["v"] == [1.0] * 4
        assert out["n"] == 0  # defaulted; sender had no n

    def test_nested_compatibility_checked(self):
        old_point = field_list_for([("x", "double", 8)])
        new_point = field_list_for([("x", "string")])
        wire = fmt("T", [("p", "P")], subformats={"P": old_point})
        native = fmt("T", [("p", "P")], subformats={"P": new_point})
        with pytest.raises(ConversionError):
            plan_conversion(wire, native)

    def test_subformat_vs_scalar_rejected(self):
        point = field_list_for([("x", "double", 8)])
        wire = fmt("T", [("p", "P")], subformats={"P": point})
        native = fmt("T", [("p", "integer", 4)])
        with pytest.raises(ConversionError):
            plan_conversion(wire, native)


class TestDefaults:
    def test_scalar_defaults(self):
        fl = field_list_for([("i", "integer", 4), ("f", "float", 4),
                             ("b", "boolean", 1), ("c", "char", 1),
                             ("s", "string")])
        assert default_value(fl, parse_field_type("integer")) == 0
        assert default_value(fl, parse_field_type("float")) == 0.0
        assert default_value(fl, parse_field_type("boolean")) is False
        assert default_value(fl, parse_field_type("string")) is None

    def test_array_defaults(self):
        fl = field_list_for([("v", "float[3]", 4)])
        assert default_value(fl, parse_field_type("float[3]")) == \
            [0.0, 0.0, 0.0]
        assert default_value(fl, parse_field_type("float[*]")) == []
        assert default_value(fl, parse_field_type("char[8]")) == ""

    def test_nested_default(self):
        point = field_list_for([("x", "double", 8), ("y", "double", 8)])
        fl = field_list_for([("p", "Point")],
                            subformats={"Point": point})
        assert default_value(fl, parse_field_type("Point")) == \
            {"x": 0.0, "y": 0.0}

    def test_nested_fixed_array_default(self):
        point = field_list_for([("x", "double", 8)])
        fl = field_list_for([("ps", "Point[2]")],
                            subformats={"Point": point})
        assert default_value(fl, parse_field_type("Point[2]")) == \
            [{"x": 0.0}, {"x": 0.0}]
