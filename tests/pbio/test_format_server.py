"""Format server registration and lookup."""

import threading

import pytest

from repro.errors import UnknownFormatError
from repro.pbio.format import FormatID, IOFormat
from repro.pbio.format_server import FormatServer, global_format_server
from repro.pbio.layout import field_list_for


def fmt(name="T", extra=None):
    specs = [("a", "integer", 4)]
    if extra:
        specs.append(extra)
    return IOFormat(name, field_list_for(specs))


class TestServer:
    def test_register_and_lookup(self):
        server = FormatServer()
        fid = server.register(fmt())
        back = server.lookup(fid)
        assert back == fmt()
        assert back.name == "T"

    def test_registration_idempotent(self):
        server = FormatServer()
        assert server.register(fmt()) == server.register(fmt())
        assert len(server) == 1

    def test_unknown_id(self):
        with pytest.raises(UnknownFormatError):
            FormatServer().lookup(FormatID(42))

    def test_lookup_bytes_and_import(self):
        a, b = FormatServer(), FormatServer()
        fid = a.register(fmt())
        metadata = a.lookup_bytes(fid)
        assert b.import_bytes(metadata) == fid
        assert b.lookup(fid) == fmt()

    def test_known_ids(self):
        server = FormatServer()
        fid1 = server.register(fmt("A"))
        fid2 = server.register(fmt("B"))
        assert set(server.known_ids()) == {fid1, fid2}

    def test_stats(self):
        server = FormatServer()
        fid = server.register(fmt())
        server.register(fmt())
        server.lookup(fid)
        stats = server.stats
        assert stats["registrations"] == 2
        assert stats["lookups"] == 1
        assert stats["formats"] == 1

    def test_global_server_is_singleton(self):
        assert global_format_server() is global_format_server()

    def test_concurrent_registration(self):
        server = FormatServer()
        formats = [fmt(f"T{i}") for i in range(20)]
        errors = []

        def register_all():
            try:
                for f in formats:
                    server.register(f)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=register_all)
                   for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(server) == 20
