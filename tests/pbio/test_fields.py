"""IOField / FieldList validation."""

import pytest

from repro.errors import LayoutError
from repro.pbio.fields import FieldList, IOField
from repro.pbio.layout import field_list_for
from repro.pbio.machine import X86_64


def fl(fields, **kw):
    return FieldList(fields, architecture=X86_64, **kw)


class TestIOField:
    def test_valid(self):
        f = IOField(name="x", type="integer", size=4, offset=0)
        assert f.field_type.kind == "integer"

    def test_empty_name(self):
        with pytest.raises(LayoutError):
            IOField(name="", type="integer", size=4, offset=0)

    def test_bad_size(self):
        with pytest.raises(LayoutError):
            IOField(name="x", type="integer", size=0, offset=0)

    def test_negative_offset(self):
        with pytest.raises(LayoutError):
            IOField(name="x", type="integer", size=4, offset=-4)


class TestFieldListValidation:
    def test_empty_rejected(self):
        with pytest.raises(LayoutError):
            fl([])

    def test_duplicate_names(self):
        with pytest.raises(LayoutError, match="duplicate"):
            fl([IOField("x", "integer", 4, 0),
                IOField("x", "integer", 4, 4)])

    def test_overlap_rejected(self):
        with pytest.raises(LayoutError, match="overlaps"):
            fl([IOField("a", "integer", 4, 0),
                IOField("b", "integer", 4, 2)])

    def test_field_beyond_record_length(self):
        with pytest.raises(LayoutError, match="beyond"):
            fl([IOField("a", "integer", 4, 0)], record_length=2)

    def test_gap_allowed_as_padding(self):
        lst = fl([IOField("c", "char", 1, 0),
                  IOField("i", "integer", 4, 4)])
        assert lst.record_length == 8

    def test_float_size_restricted(self):
        with pytest.raises(LayoutError, match="float size"):
            fl([IOField("f", "float", 2, 0)])

    def test_integer_size_restricted(self):
        with pytest.raises(LayoutError, match="integer size"):
            fl([IOField("i", "integer", 3, 0)])

    def test_char_must_be_one_byte(self):
        with pytest.raises(LayoutError):
            fl([IOField("c", "char", 2, 0)])

    def test_string_must_be_pointer_sized(self):
        with pytest.raises(LayoutError, match="pointer"):
            fl([IOField("s", "string", 4, 0)])
        fl([IOField("s", "string", 8, 0)])  # 8 = x86_64 pointer

    def test_sizing_field_must_exist(self):
        with pytest.raises(LayoutError, match="sizing field"):
            fl([IOField("v", "float[count]", 4, 0)])

    def test_sizing_field_must_be_integer(self):
        with pytest.raises(LayoutError, match="scalar integer"):
            fl([IOField("count", "float", 4, 0),
                IOField("v", "float[count]", 4, 8)])

    def test_unknown_subformat_rejected(self):
        with pytest.raises(LayoutError, match="unknown subformat"):
            fl([IOField("p", "Ghost", 8, 0)])


class TestFieldListAccess:
    def test_ordering_by_offset(self):
        lst = fl([IOField("b", "integer", 4, 4),
                  IOField("a", "integer", 4, 0)])
        assert lst.names() == ("a", "b")

    def test_contains_and_getitem(self):
        lst = fl([IOField("a", "integer", 4, 0)])
        assert "a" in lst and "z" not in lst
        assert lst["a"].offset == 0
        with pytest.raises(LayoutError):
            lst["z"]

    def test_len_and_iter(self):
        lst = fl([IOField("a", "integer", 4, 0),
                  IOField("b", "integer", 4, 4)])
        assert len(lst) == 2
        assert [f.name for f in lst] == ["a", "b"]


class TestDynamicContent:
    def test_static_format(self):
        lst = field_list_for([("a", "integer", 4), ("b", "float[4]", 4)])
        assert not lst.has_dynamic_content()

    def test_string_is_dynamic(self):
        lst = field_list_for([("s", "string")])
        assert lst.has_dynamic_content()

    def test_dynamic_array_is_dynamic(self):
        lst = field_list_for([("n", "integer", 4),
                              ("v", "float[n]", 4)])
        assert lst.has_dynamic_content()

    def test_nested_dynamic_detected(self):
        inner = field_list_for([("s", "string")])
        outer = field_list_for([("i", "Inner")],
                               subformats={"Inner": inner})
        assert outer.has_dynamic_content()

    def test_nested_static(self):
        inner = field_list_for([("x", "double", 8)])
        outer = field_list_for([("i", "Inner")],
                               subformats={"Inner": inner})
        assert not outer.has_dynamic_content()
