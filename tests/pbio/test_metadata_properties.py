"""Property-based invariants on format metadata and conversion."""

from hypothesis import given, settings, strategies as st

from repro.pbio.convert import plan_conversion
from repro.pbio.format import IOFormat, deserialize_format, serialize_format
from repro.pbio.layout import field_list_for
from repro.pbio.machine import SPARC_32, SPARC_V9, X86_32, X86_64

from tests.strategies import format_case

ARCHS = (SPARC_32, SPARC_V9, X86_32, X86_64)


@settings(max_examples=60, deadline=None)
@given(case=format_case(), arch=st.sampled_from(ARCHS))
def test_metadata_roundtrips_canonically(case, arch):
    """serialize -> deserialize is the identity on formats, and the
    canonical bytes (hence the format ID) are a fixpoint."""
    specs, _ = case
    fmt = IOFormat("P", field_list_for(specs, architecture=arch))
    data = serialize_format(fmt)
    back = deserialize_format(data)
    assert back == fmt
    assert serialize_format(back) == data
    assert back.format_id == fmt.format_id


@settings(max_examples=60, deadline=None)
@given(case=format_case(), arch_a=st.sampled_from(ARCHS),
       arch_b=st.sampled_from(ARCHS))
def test_format_id_depends_only_on_metadata(case, arch_a, arch_b):
    """Same specs + same architecture -> same ID; different
    architectures -> different IDs (layout differs or at least the
    architecture stanza does)."""
    specs, _ = case
    a1 = IOFormat("P", field_list_for(specs, architecture=arch_a))
    a2 = IOFormat("P", field_list_for(specs, architecture=arch_a))
    b = IOFormat("P", field_list_for(specs, architecture=arch_b))
    assert a1.format_id == a2.format_id
    if arch_a is not arch_b:
        assert a1.format_id != b.format_id


@settings(max_examples=60, deadline=None)
@given(case=format_case(min_fields=2), data=st.data())
def test_conversion_plan_projects_exactly_native_fields(case, data):
    """For any wire format and any subset-native format, applying the
    plan yields exactly the native field set, with wire values where
    shared and defaults where not."""
    specs, record_strategy = case
    record = data.draw(record_strategy)
    keep = data.draw(st.sets(
        st.sampled_from([s[0] for s in specs]), min_size=1))
    native_specs = [s for s in specs if s[0] in keep]
    # sizing fields must survive with their arrays
    names = {s[0] for s in native_specs}
    for s in specs:
        type_string = s[1]
        if "[" in type_string and s[0] in names:
            dim = type_string[type_string.index("[") + 1:
                              type_string.index("]")]
            if dim not in ("", "*") and not dim.isdigit():
                if dim not in names:
                    native_specs = [t for t in specs
                                    if t[0] in names | {dim}]
                    names.add(dim)

    wire = IOFormat("P", field_list_for(specs))
    native = IOFormat("P", field_list_for(native_specs))
    plan = plan_conversion(wire, native)
    out = plan.apply(record)
    assert set(out) == {s[0] for s in native_specs}
    for name in out:
        if name in record:
            assert out[name] == record[name]


@settings(max_examples=40, deadline=None)
@given(case=format_case(), extra=format_case(max_fields=2),
       data=st.data())
def test_evolution_superset_always_plans(case, extra, data):
    """Adding fresh fields to a format never breaks conversion to the
    original (the restricted-evolution guarantee), regardless of the
    added fields' types."""
    specs, _ = case
    extra_specs, _ = extra
    taken = {s[0] for s in specs}
    added = [s for s in extra_specs if s[0] not in taken]
    evolved_specs = specs + added
    old = IOFormat("P", field_list_for(specs))
    new = IOFormat("P", field_list_for(evolved_specs))
    plan = plan_conversion(new, old)  # new sender -> old receiver
    assert set(plan.dropped) == {s[0] for s in added}
    assert not plan.defaulted
