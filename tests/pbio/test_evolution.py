"""Restricted format evolution (paper section 5)."""

from repro.pbio.context import IOContext
from repro.pbio.evolution import can_evolve, evolution_report
from repro.pbio.format import IOFormat
from repro.pbio.format_server import FormatServer
from repro.pbio.layout import field_list_for


def fmt(name, specs):
    return IOFormat(name, field_list_for(specs))


V1 = [("timestep", "integer", 4), ("size", "integer", 4),
      ("data", "float[size]", 4)]
V2 = V1 + [("units", "string"), ("quality", "float", 8)]


class TestEvolutionReports:
    def test_added_fields_are_compatible(self):
        report = evolution_report(fmt("S", V1), fmt("S", V2))
        assert report.added == ("quality", "units")
        assert report.removed == ()
        assert report.compatible
        assert can_evolve(fmt("S", V1), fmt("S", V2))

    def test_removed_fields_break_compatibility(self):
        report = evolution_report(fmt("S", V2), fmt("S", V1))
        assert report.removed == ("quality", "units")
        assert not report.compatible

    def test_type_change_breaks_compatibility(self):
        changed = [("timestep", "float", 4), ("size", "integer", 4),
                   ("data", "float[size]", 4)]
        report = evolution_report(fmt("S", V1), fmt("S", changed))
        assert "timestep" in report.incompatible
        assert not report.compatible

    def test_widening_is_compatible(self):
        widened = [("timestep", "integer", 8), ("size", "integer", 4),
                   ("data", "float[size]", 4)]
        assert can_evolve(fmt("S", V1), fmt("S", widened))

    def test_identical_formats(self):
        report = evolution_report(fmt("S", V1), fmt("S", V1))
        assert report.added == () and report.removed == ()
        assert report.compatible


class TestRuntimeEvolution:
    """The paper's scenario end to end: a new sender adds fields and
    an old receiver keeps working."""

    def test_old_receiver_new_sender(self):
        server = FormatServer()
        new_sender = IOContext(format_server=server)
        old_receiver = IOContext(format_server=server)
        new_sender.register_layout("S", V2)
        old_receiver.register_layout("S_old", V1)
        # receiver registered under its own name; convert explicitly
        wire = new_sender.encode("S", {
            "timestep": 1, "size": 2, "data": [1.0, 2.0],
            "units": "m", "quality": 0.9})
        # sender-view decode sees everything
        assert old_receiver.decode(wire).record["units"] == "m"

    def test_new_receiver_old_sender_gets_defaults(self):
        server = FormatServer()
        old_sender = IOContext(format_server=server)
        new_receiver = IOContext(format_server=server)
        old_sender.register_layout("S", V1)
        new_receiver.register_layout("S", V2)
        wire = old_sender.encode("S", {"timestep": 1, "size": 1,
                                       "data": [5.0]})
        out = new_receiver.decode_as(wire, "S")
        assert out["data"] == [5.0]
        assert out["units"] is None
        assert out["quality"] == 0.0

    def test_old_receiver_drops_new_fields(self):
        server = FormatServer()
        new_sender = IOContext(format_server=server)
        old_receiver = IOContext(format_server=server)
        new_sender.register_layout("S", V2)
        old_receiver.register_layout("S", V1)
        wire = new_sender.encode("S", {
            "timestep": 1, "size": 1, "data": [5.0],
            "units": "m", "quality": 0.9})
        out = old_receiver.decode_as(wire, "S")
        assert out == {"timestep": 1, "size": 1, "data": [5.0]}
