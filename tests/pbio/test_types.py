"""PBIO field-type grammar."""

import pytest

from repro.errors import LayoutError
from repro.pbio.types import FieldType, parse_field_type


class TestScalars:
    @pytest.mark.parametrize("text,kind", [
        ("integer", "integer"),
        ("unsigned integer", "unsigned"),
        ("unsigned", "unsigned"),
        ("float", "float"),
        ("double", "float"),
        ("char", "char"),
        ("string", "string"),
        ("boolean", "boolean"),
        ("enumeration", "enumeration"),
    ])
    def test_atomic_kinds(self, text, kind):
        ftype = parse_field_type(text)
        assert ftype.kind == kind
        assert ftype.is_atomic
        assert not ftype.dims

    def test_subformat(self):
        ftype = parse_field_type("Point")
        assert ftype.kind == "subformat"
        assert not ftype.is_atomic

    def test_whitespace_normalization(self):
        assert parse_field_type("  unsigned   integer ").base == \
            "unsigned integer"

    def test_int_alias(self):
        assert parse_field_type("int").base == "integer"


class TestDimensions:
    def test_fixed(self):
        ftype = parse_field_type("float[16]")
        assert ftype.static_dims == (16,)
        assert ftype.is_inline
        assert ftype.static_element_count == 16

    def test_multi_fixed_row_major(self):
        ftype = parse_field_type("integer[4][8]")
        assert ftype.static_dims == (4, 8)
        assert ftype.static_element_count == 32

    def test_length_field(self):
        ftype = parse_field_type("float[size]")
        assert not ftype.is_inline
        assert ftype.dynamic_dim.length_field == "size"

    def test_star(self):
        ftype = parse_field_type("float[*]")
        assert ftype.dynamic_dim is not None
        assert ftype.dynamic_dim.length_field is None

    def test_empty_brackets_mean_star(self):
        assert parse_field_type("float[]").dynamic_dim is not None

    def test_dynamic_then_fixed(self):
        # float (*data)[3] analog: dynamic rows of 3
        ftype = parse_field_type("float[n][3]")
        assert ftype.dynamic_dim.length_field == "n"
        assert ftype.static_element_count == 3

    def test_string_round_trips(self):
        for text in ("integer", "float[4]", "Point[n][2]", "char[12]"):
            assert str(parse_field_type(text)) == text


class TestGrammarErrors:
    @pytest.mark.parametrize("bad", [
        "", "[4]", "float[4", "float]4[", "float[4]x", "float[-2]",
        "float[0]", "float[a b!]",
    ])
    def test_malformed(self, bad):
        with pytest.raises(LayoutError):
            parse_field_type(bad)

    def test_two_dynamic_dims(self):
        with pytest.raises(LayoutError, match="one dynamic"):
            parse_field_type("float[n][m]")

    def test_dynamic_dim_must_be_first(self):
        with pytest.raises(LayoutError, match="first"):
            parse_field_type("float[3][n]")

    def test_string_arrays_rejected(self):
        with pytest.raises(LayoutError, match="string"):
            parse_field_type("string[4]")


class TestProperties:
    def test_is_string(self):
        assert parse_field_type("string").is_string
        assert not parse_field_type("char[4]").is_string

    def test_char_array_is_inline(self):
        assert parse_field_type("char[8]").is_inline
        assert not parse_field_type("char[*]").is_inline
