"""Error attribution through the fused encode path.

A fused run packs many fields in one ``struct`` call, whose errors
don't say which argument was at fault.  The encoder must re-diagnose
and name the *specific* offending field — identically to the
per-field baseline — or marshaling failures become unactionable.
"""

import pytest

from repro.errors import DecodeError, EncodeError
from repro.pbio.decode import RecordDecoder
from repro.pbio.encode import RecordEncoder
from repro.pbio.format import IOFormat
from repro.pbio.layout import field_list_for

SPECS = [("alpha", "integer", 4), ("beta", "integer", 4),
         ("gamma", "float", 8), ("delta", "unsigned integer", 2)]


@pytest.fixture
def fmt():
    return IOFormat("Probe", field_list_for(SPECS))


@pytest.fixture
def encoder(fmt):
    enc = RecordEncoder(fmt)
    assert enc.fused_fields == len(SPECS)  # one run covers everything
    return enc


GOOD = {"alpha": 1, "beta": 2, "gamma": 3.0, "delta": 4}


class TestEncodeAttribution:
    def test_missing_run_member_is_named(self, encoder):
        record = dict(GOOD)
        del record["beta"]
        with pytest.raises(EncodeError, match=r"beta"):
            encoder.encode_body(record)

    def test_bad_value_mid_run_is_named(self, encoder):
        with pytest.raises(EncodeError,
                           match=r"field 'beta'.*integer expected"):
            encoder.encode_body(dict(GOOD, beta="five"))

    def test_out_of_range_value_is_named(self, encoder):
        with pytest.raises(EncodeError, match=r"field 'delta'"):
            encoder.encode_body(dict(GOOD, delta=1 << 20))

    def test_float_field_rejects_non_number_by_name(self, encoder):
        with pytest.raises(EncodeError, match=r"field 'gamma'"):
            encoder.encode_body(dict(GOOD, gamma=object()))

    @pytest.mark.parametrize("bad", [
        {"beta": "five"}, {"delta": -1}, {"alpha": 2 ** 40}])
    def test_fused_message_matches_baseline(self, fmt, encoder, bad):
        plain = RecordEncoder(fmt, fuse=False)
        record = dict(GOOD, **bad)
        with pytest.raises(EncodeError) as fused_err:
            encoder.encode_body(record)
        with pytest.raises(EncodeError) as plain_err:
            plain.encode_body(record)
        assert str(fused_err.value) == str(plain_err.value)

    def test_first_failing_field_wins(self, encoder):
        # two bad fields: diagnosis names the earliest, like the
        # per-field baseline would
        with pytest.raises(EncodeError, match=r"field 'alpha'"):
            encoder.encode_body(dict(GOOD, alpha="x", gamma="y"))


class TestDecodeAttribution:
    def test_truncated_body_reports_requirement(self, fmt):
        body = RecordEncoder(fmt).encode_body(GOOD)
        with pytest.raises(DecodeError, match=r"requires at least"):
            RecordDecoder(fmt).decode(body[:6])

    def test_fused_decode_error_matches_baseline(self, fmt):
        body = RecordEncoder(fmt).encode_body(GOOD)[:6]
        with pytest.raises(DecodeError) as fused_err:
            RecordDecoder(fmt, fuse=True).decode(body)
        with pytest.raises(DecodeError) as plain_err:
            RecordDecoder(fmt, fuse=False).decode(body)
        assert str(fused_err.value) == str(plain_err.value)
