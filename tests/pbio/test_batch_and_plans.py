"""Record batches and compiled codec plans.

Covers the shared-header batch framing (:func:`build_batch` /
:func:`parse_batch` / :func:`explode_batch`), the batch encode/decode
APIs, the process-wide plan caches, and the encode buffer pool.
"""

import pytest

from repro.errors import DecodeError, EncodeError
from repro.pbio.context import IOContext
from repro.pbio.decode import (
    RecordDecoder, clear_decoder_cache, decode_batch, decoder_for_format,
)
from repro.pbio.encode import (
    BufferPool, RecordEncoder, build_batch, clear_encoder_cache,
    encoder_for_format, explode_batch, is_batch, parse_batch,
)
from repro.pbio.format_server import FormatServer
from repro.pbio.machine import SPARC_V9, X86_64

SPECS = [("timestep", "integer"), ("size", "integer"),
         ("data", "float[size]")]


@pytest.fixture
def ctx():
    return IOContext(architecture=X86_64, format_server=FormatServer())


@pytest.fixture
def fmt(ctx):
    return ctx.register_layout("SimpleData", SPECS)


def records(n):
    return [{"timestep": i, "data": [float(i)] * (i % 3)}
            for i in range(n)]


class TestBatchFraming:
    def test_roundtrip(self, fmt):
        encoder = encoder_for_format(fmt)
        bodies = encoder.encode_bodies(records(4))
        wire = encoder.encode_batch(records(4))
        assert is_batch(wire)
        fid, big_endian, parsed = parse_batch(wire)
        assert fid == fmt.format_id
        assert big_endian is False
        assert [bytes(p) for p in parsed] == [bytes(b) for b in bodies]

    def test_big_endian_flag_preserved(self):
        ctx = IOContext(architecture=SPARC_V9,
                        format_server=FormatServer())
        fmt = ctx.register_layout("SimpleData", SPECS)
        wire = encoder_for_format(fmt).encode_batch(records(2))
        _fid, big_endian, _bodies = parse_batch(wire)
        assert big_endian is True

    def test_single_record_wire_is_not_batch(self, fmt):
        wire = encoder_for_format(fmt).encode_wire(records(1)[0])
        assert not is_batch(wire)
        with pytest.raises(EncodeError, match="FLAG_BATCH"):
            parse_batch(wire)

    def test_empty_batch(self, fmt):
        wire = build_batch(fmt.format_id, [], big_endian=False)
        _fid, _big, bodies = parse_batch(wire)
        assert bodies == []
        assert explode_batch(wire) == []

    def test_explode_yields_standalone_wires(self, ctx, fmt):
        wire = encoder_for_format(fmt).encode_batch(records(3))
        singles = explode_batch(wire)
        assert len(singles) == 3
        decoded = [ctx.decode(s) for s in singles]
        assert [d.record["timestep"] for d in decoded] == [0, 1, 2]

    def test_truncated_batch_rejected(self, fmt):
        wire = encoder_for_format(fmt).encode_batch(records(3))
        with pytest.raises(EncodeError, match="truncated"):
            parse_batch(wire[:len(wire) - 5])

    def test_corrupt_count_rejected(self, fmt):
        wire = bytearray(encoder_for_format(fmt).encode_batch(
            records(2)))
        wire[16:20] = (2 ** 31).to_bytes(4, "big")  # absurd count
        with pytest.raises(EncodeError, match="count"):
            parse_batch(bytes(wire))


class TestBatchCodecs:
    def test_decode_batch(self, fmt):
        wire = encoder_for_format(fmt).encode_batch(records(5))
        out = decode_batch(fmt, wire)
        assert [r["timestep"] for r in out] == [0, 1, 2, 3, 4]

    def test_decode_batch_rejects_foreign_format(self, ctx, fmt):
        other = ctx.register_layout("Other", [("x", "integer")])
        wire = encoder_for_format(fmt).encode_batch(records(1))
        with pytest.raises(DecodeError, match="format"):
            decode_batch(other, wire)

    def test_context_encode_many_decode_many(self, ctx, fmt):
        wire = ctx.encode_many("SimpleData", records(4))
        out = ctx.decode_many(wire)
        assert [d.record["timestep"] for d in out] == [0, 1, 2, 3]
        assert all(d.format_name == "SimpleData" for d in out)
        assert ctx.stats.records_encoded == 4
        assert ctx.stats.records_decoded == 4

    def test_context_decode_rejects_batch(self, ctx, fmt):
        wire = ctx.encode_many("SimpleData", records(2))
        with pytest.raises(DecodeError, match="decode_many"):
            ctx.decode(wire)

    def test_decode_many_matches_per_record_decode(self, ctx, fmt):
        recs = records(6)
        wire = ctx.encode_many("SimpleData", recs)
        batch = [d.record for d in ctx.decode_many(wire)]
        singles = [ctx.decode(s).record for s in explode_batch(wire)]
        assert batch == singles


class TestPlanCaches:
    def test_encoder_cache_shares_plans(self, fmt):
        clear_encoder_cache()
        first = encoder_for_format(fmt)
        assert encoder_for_format(fmt) is first
        assert encoder_for_format(fmt, fuse=False) is not first

    def test_decoder_cache_keyed_by_arrays_mode(self, fmt):
        clear_decoder_cache()
        as_list = decoder_for_format(fmt)
        assert decoder_for_format(fmt) is as_list
        assert decoder_for_format(fmt, arrays="numpy") is not as_list

    def test_contexts_share_process_plans(self, fmt):
        clear_encoder_cache()
        ctx_a = IOContext(architecture=X86_64,
                          format_server=FormatServer())
        ctx_b = IOContext(architecture=X86_64,
                          format_server=FormatServer())
        assert ctx_a.encoder_for(fmt) is ctx_b.encoder_for(fmt)

    def test_fused_and_unfused_plans_agree(self, fmt):
        rec = {"timestep": 12, "data": [1.5, -2.25, 0.0]}
        fused = RecordEncoder(fmt, fuse=True)
        plain = RecordEncoder(fmt, fuse=False)
        assert fused.fused_fields >= 2
        assert plain.fused_runs == 0
        body = fused.encode_body(rec)
        assert bytes(body) == bytes(plain.encode_body(rec))
        assert RecordDecoder(fmt, fuse=True).decode(body) == \
            RecordDecoder(fmt, fuse=False).decode(body)


class TestBufferPool:
    def test_reuse_and_zeroing(self):
        pool = BufferPool(max_buffers=2)
        buf = pool.acquire(32)
        buf[0] = 0xFF
        pool.release(buf)
        again = pool.acquire(32)
        assert again is buf
        assert bytes(again) == b"\x00" * 32
        assert pool.reuses == 1

    def test_pool_bounded(self):
        pool = BufferPool(max_buffers=1)
        a, b = pool.acquire(8), pool.acquire(8)
        pool.release(a)
        pool.release(b)  # over capacity: dropped
        assert pool.acquire(8) is a
        assert pool.acquire(8) is not b

    def test_encode_reuses_pooled_buffer(self, fmt):
        encoder = RecordEncoder(fmt)
        for i in range(5):
            encoder.encode({"timestep": i, "data": [1.0]})
        assert encoder._pool.reuses >= 4
