"""IOFormat identity and canonical metadata round-trips."""

import pytest

from repro.errors import (
    FormatRegistrationError, UnknownFormatError,
)
from repro.pbio.format import (
    FormatID, IOFormat, deserialize_format, serialize_format,
)
from repro.pbio.layout import field_list_for
from repro.pbio.machine import SPARC_32, X86_64


def make_format(name="T", arch=X86_64, enums=None):
    fl = field_list_for([
        ("label", "string"), ("n", "integer", 4),
        ("values", "float[n]", 4), ("mode", "enumeration", 4),
    ], architecture=arch)
    return IOFormat(name, fl, enums or {"mode": ("fast", "safe")})


class TestFormatID:
    def test_roundtrip(self):
        fid = FormatID(0x1234_5678_9ABC_DEF0)
        assert FormatID.from_bytes(fid.to_bytes()) == fid

    def test_range_check(self):
        with pytest.raises(FormatRegistrationError):
            FormatID(-1)
        with pytest.raises(FormatRegistrationError):
            FormatID(1 << 64)

    def test_bad_byte_length(self):
        with pytest.raises(UnknownFormatError):
            FormatID.from_bytes(b"\x00" * 7)

    def test_string_form(self):
        assert str(FormatID(0xAB)) == "00000000000000ab"


class TestIdentity:
    def test_same_metadata_same_id(self):
        assert make_format().format_id == make_format().format_id

    def test_different_name_different_id(self):
        assert make_format("A").format_id != make_format("B").format_id

    def test_different_arch_different_id(self):
        assert make_format(arch=X86_64).format_id != \
            make_format(arch=SPARC_32).format_id

    def test_different_enums_different_id(self):
        a = make_format(enums={"mode": ("fast", "safe")})
        b = make_format(enums={"mode": ("safe", "fast")})
        assert a.format_id != b.format_id

    def test_equality_and_hash(self):
        assert make_format() == make_format()
        assert len({make_format(), make_format()}) == 1


class TestMetadataRoundtrip:
    def test_roundtrip_preserves_everything(self):
        original = make_format()
        data = serialize_format(original)
        back = deserialize_format(data)
        assert back == original
        assert back.name == original.name
        assert back.enums == original.enums
        assert back.architecture.byte_order == "little"
        assert [(f.name, f.type, f.size, f.offset)
                for f in back.field_list] == \
            [(f.name, f.type, f.size, f.offset)
             for f in original.field_list]

    def test_roundtrip_with_subformats(self):
        point = field_list_for([("x", "double", 8), ("y", "double", 8)])
        fl = field_list_for([("id", "integer", 4), ("p", "Point"),
                             ("trail", "Point[*]")],
                            subformats={"Point": point})
        original = IOFormat("Track", fl)
        back = deserialize_format(serialize_format(original))
        assert back == original
        assert "Point" in back.field_list.subformats

    def test_garbage_rejected(self):
        with pytest.raises(UnknownFormatError):
            deserialize_format(b"not metadata")

    def test_non_utf8_rejected(self):
        with pytest.raises(UnknownFormatError):
            deserialize_format(b"\xff\xfe\x00")

    def test_truncated_rejected(self):
        data = serialize_format(make_format())
        with pytest.raises(UnknownFormatError):
            deserialize_format(data[: len(data) // 2])

    def test_corrupt_numeric_rejected(self):
        data = serialize_format(make_format()).decode()
        data = data.replace("record\t", "record\tbogus-", 1)
        with pytest.raises(UnknownFormatError):
            deserialize_format(data.encode())


class TestConstruction:
    def test_tab_in_name_rejected(self):
        fl = field_list_for([("a", "integer", 4)])
        with pytest.raises(FormatRegistrationError):
            IOFormat("bad\tname", fl)

    def test_enum_field_requires_table(self):
        fl = field_list_for([("mode", "enumeration", 4)])
        with pytest.raises(FormatRegistrationError, match="value"):
            IOFormat("T", fl)

    def test_enum_table_for_unknown_field(self):
        fl = field_list_for([("a", "integer", 4)])
        with pytest.raises(FormatRegistrationError, match="unknown"):
            IOFormat("T", fl, {"ghost": ("x",)})

    def test_empty_enum_table(self):
        fl = field_list_for([("mode", "enumeration", 4)])
        with pytest.raises(FormatRegistrationError, match="empty"):
            IOFormat("T", fl, {"mode": ()})
