"""Marshaling round-trips, wire-layout checks, failure modes."""

import struct

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DecodeError, EncodeError
from repro.pbio.context import IOContext
from repro.pbio.decode import RecordDecoder
from repro.pbio.encode import (
    HEADER_LEN, RecordEncoder, build_header, parse_header,
)
from repro.pbio.format import IOFormat
from repro.pbio.format_server import FormatServer
from repro.pbio.layout import field_list_for
from repro.pbio.machine import SPARC_32, SPARC_V9, X86_32, X86_64

from tests.strategies import assert_record_roundtrip, format_case

ARCHS = (SPARC_32, SPARC_V9, X86_32, X86_64)


def roundtrip(specs, record, arch=X86_64, subformats=None, enums=None):
    fl = field_list_for(specs, architecture=arch, subformats=subformats)
    fmt = IOFormat("T", fl, enums)
    encoded = RecordEncoder(fmt).encode(record)
    return RecordDecoder(fmt).decode(encoded.body)


class TestScalars:
    def test_all_scalar_kinds(self):
        specs = [
            ("i8", "integer", 1), ("i16", "integer", 2),
            ("i32", "integer", 4), ("i64", "integer", 8),
            ("u8", "unsigned integer", 1),
            ("u64", "unsigned integer", 8),
            ("f32", "float", 4), ("f64", "float", 8),
            ("flag", "boolean", 1), ("letter", "char", 1),
            ("name", "string"),
        ]
        record = {"i8": -5, "i16": -30000, "i32": -2**31,
                  "i64": -2**63, "u8": 255, "u64": 2**64 - 1,
                  "f32": 0.5, "f64": 1.0 / 3.0, "flag": True,
                  "letter": "x", "name": "hello"}
        assert roundtrip(specs, record) == record

    def test_value_range_enforced(self):
        with pytest.raises(EncodeError):
            roundtrip([("u8", "unsigned integer", 1)], {"u8": 256})
        with pytest.raises(EncodeError):
            roundtrip([("i8", "integer", 1)], {"i8": -129})

    def test_type_mismatch(self):
        with pytest.raises(EncodeError):
            roundtrip([("i", "integer", 4)], {"i": "five"})
        with pytest.raises(EncodeError):
            roundtrip([("i", "integer", 4)], {"i": 1.5})

    def test_none_string(self):
        assert roundtrip([("s", "string")], {"s": None}) == {"s": None}

    def test_empty_string(self):
        assert roundtrip([("s", "string")], {"s": ""}) == {"s": ""}

    def test_unicode_string(self):
        record = {"s": "héllo wörld — ☃"}
        assert roundtrip([("s", "string")], record) == record

    def test_char_boundaries(self):
        assert roundtrip([("c", "char", 1)], {"c": "\xff"}) == \
            {"c": "\xff"}
        with pytest.raises(EncodeError):
            roundtrip([("c", "char", 1)], {"c": "中"})
        with pytest.raises(EncodeError):
            roundtrip([("c", "char", 1)], {"c": "ab"})


class TestFieldDiscipline:
    def test_missing_field(self):
        with pytest.raises(EncodeError, match="missing"):
            roundtrip([("a", "integer", 4), ("b", "integer", 4)],
                      {"a": 1})

    def test_unknown_field(self):
        with pytest.raises(EncodeError, match="unknown"):
            roundtrip([("a", "integer", 4)], {"a": 1, "zz": 2})

    def test_non_dict_record(self):
        with pytest.raises(EncodeError, match="mapping"):
            roundtrip([("a", "integer", 4)], [1])


class TestArrays:
    def test_fixed_numeric(self):
        record = {"v": [1.5, -2.5, 3.25]}
        assert roundtrip([("v", "float[3]", 4)], record) == record

    def test_fixed_wrong_count(self):
        with pytest.raises(EncodeError, match="fixed array"):
            roundtrip([("v", "float[3]", 4)], {"v": [1.0]})

    def test_numpy_input(self):
        data = np.arange(16, dtype=np.float32)
        out = roundtrip([("v", "float[16]", 4)], {"v": data})
        assert out["v"] == data.tolist()

    def test_char_array_text(self):
        record = {"name": "grid-7"}
        out = roundtrip([("name", "char[16]")], record)
        assert out == record

    def test_char_array_overflow(self):
        with pytest.raises(EncodeError, match="exceed"):
            roundtrip([("name", "char[4]")], {"name": "toolong"})

    def test_length_field_linked(self):
        specs = [("n", "integer", 4), ("v", "float[n]", 4)]
        out = roundtrip(specs, {"n": 2, "v": [1.0, 2.0]})
        assert out == {"n": 2, "v": [1.0, 2.0]}

    def test_length_field_autofilled(self):
        specs = [("n", "integer", 4), ("v", "float[n]", 4)]
        out = roundtrip(specs, {"v": [1.0, 2.0, 3.0]})
        assert out["n"] == 3

    def test_length_field_mismatch(self):
        specs = [("n", "integer", 4), ("v", "float[n]", 4)]
        with pytest.raises(EncodeError, match="sizing"):
            roundtrip(specs, {"n": 5, "v": [1.0]})

    def test_self_sized_array(self):
        out = roundtrip([("v", "integer[*]", 8)],
                        {"v": [2**40, -2**40]})
        assert out == {"v": [2**40, -2**40]}

    def test_self_sized_empty(self):
        assert roundtrip([("v", "float[*]", 4)], {"v": []}) == {"v": []}

    def test_none_dynamic_array(self):
        assert roundtrip([("v", "float[*]", 4)], {"v": None}) == \
            {"v": None}

    def test_char_star(self):
        out = roundtrip([("text", "char[*]", 1)], {"text": "hello"})
        assert out == {"text": "hello"}

    def test_dynamic_rows_of_fixed(self):
        specs = [("n", "integer", 4), ("m", "float[n][2]", 4)]
        out = roundtrip(specs, {"m": [1.0, 2.0, 3.0, 4.0]})
        assert out["m"] == [1.0, 2.0, 3.0, 4.0]
        assert out["n"] == 2  # rows

    def test_dynamic_rows_ragged_rejected(self):
        specs = [("n", "integer", 4), ("m", "float[n][2]", 4)]
        with pytest.raises(EncodeError, match="multiple"):
            roundtrip(specs, {"m": [1.0, 2.0, 3.0]})

    def test_large_array_roundtrip(self):
        data = np.random.default_rng(0).random(65536) \
            .astype(np.float32)
        specs = [("n", "integer", 4), ("v", "float[n]", 4)]
        out = roundtrip(specs, {"v": data})
        assert out["n"] == 65536
        assert out["v"] == data.tolist()


class TestEnumerations:
    SPECS = [("mode", "enumeration", 4)]
    ENUMS = {"mode": ("fast", "safe", "slow")}

    def test_roundtrip_by_label(self):
        out = roundtrip(self.SPECS, {"mode": "safe"}, enums=self.ENUMS)
        assert out == {"mode": "safe"}

    def test_encode_by_index(self):
        out = roundtrip(self.SPECS, {"mode": 2}, enums=self.ENUMS)
        assert out == {"mode": "slow"}

    def test_unknown_label(self):
        with pytest.raises(EncodeError, match="not in enumeration"):
            roundtrip(self.SPECS, {"mode": "warp"}, enums=self.ENUMS)

    def test_index_out_of_range(self):
        with pytest.raises(EncodeError, match="out of range"):
            roundtrip(self.SPECS, {"mode": 7}, enums=self.ENUMS)


class TestNested:
    POINT = [("x", "double", 8), ("y", "double", 8)]

    def test_scalar_subformat(self):
        point = field_list_for(self.POINT)
        record = {"id": 1, "p": {"x": 1.5, "y": -2.5}}
        out = roundtrip([("id", "integer", 4), ("p", "Point")], record,
                        subformats={"Point": point})
        assert out == record

    def test_subformat_with_string(self):
        tag = field_list_for([("label", "string"),
                              ("weight", "double", 8)])
        record = {"t": {"label": "alpha", "weight": 2.5}}
        out = roundtrip([("t", "Tag")], record,
                        subformats={"Tag": tag})
        assert out == record

    def test_fixed_array_of_subformats(self):
        point = field_list_for(self.POINT)
        record = {"ps": [{"x": float(i), "y": float(-i)}
                         for i in range(3)]}
        out = roundtrip([("ps", "Point[3]")], record,
                        subformats={"Point": point})
        assert out == record

    def test_dynamic_array_of_subformats(self):
        point = field_list_for(self.POINT)
        record = {"n": 2, "ps": [{"x": 1.0, "y": 2.0},
                                 {"x": 3.0, "y": 4.0}]}
        out = roundtrip([("n", "integer", 4), ("ps", "Point[n]")],
                        record, subformats={"Point": point})
        assert out == record

    def test_self_sized_array_of_subformats_with_strings(self):
        tag = field_list_for([("label", "string")])
        record = {"tags": [{"label": "a"}, {"label": "bb"},
                           {"label": None}]}
        out = roundtrip([("tags", "Tag[*]")], record,
                        subformats={"Tag": tag})
        assert out == record

    def test_deep_nesting(self):
        point = field_list_for(self.POINT)
        seg = field_list_for([("a", "Point"), ("b", "Point")],
                             subformats={"Point": point})
        record = {"s": {"a": {"x": 0.0, "y": 0.0},
                        "b": {"x": 1.0, "y": 1.0}}}
        out = roundtrip([("s", "Segment")], record,
                        subformats={"Point": point, "Segment": seg})
        assert out == record


class TestHeader:
    def test_roundtrip(self):
        from repro.pbio.format import FormatID
        fid = FormatID(0xDEADBEEF)
        header = build_header(fid, 1234, big_endian=True)
        assert len(header) == HEADER_LEN
        got_fid, got_len = parse_header(header)
        assert got_fid == fid and got_len == 1234

    def test_bad_magic(self):
        with pytest.raises(EncodeError, match="magic"):
            parse_header(b"XX" + b"\x00" * 14)

    def test_short_data(self):
        with pytest.raises(EncodeError, match="shorter"):
            parse_header(b"PB")

    def test_bad_version(self):
        header = bytearray(build_header(
            __import__("repro.pbio.format",
                       fromlist=["FormatID"]).FormatID(1), 0,
            big_endian=False))
        header[2] = 99
        with pytest.raises(EncodeError, match="version"):
            parse_header(bytes(header))


class TestDecodeFailures:
    def test_truncated_body(self):
        fl = field_list_for([("a", "integer", 4), ("b", "double", 8)])
        fmt = IOFormat("T", fl)
        with pytest.raises(DecodeError, match="record body"):
            RecordDecoder(fmt).decode(b"\x00" * 4)

    def test_string_offset_out_of_bounds(self):
        fl = field_list_for([("s", "string")])
        fmt = IOFormat("T", fl)
        body = struct.pack("<Q", 9999)
        with pytest.raises(DecodeError, match="outside variable region"):
            RecordDecoder(fmt).decode(body)

    def test_unterminated_string(self):
        fl = field_list_for([("s", "string")])
        fmt = IOFormat("T", fl)
        body = struct.pack("<Q", 8) + b"no-nul"
        with pytest.raises(DecodeError, match="unterminated"):
            RecordDecoder(fmt).decode(body)

    def test_array_out_of_bounds(self):
        fl = field_list_for([("n", "integer", 4), ("v", "float[n]", 4)])
        fmt = IOFormat("T", fl)
        # n says 1000 elements but there is no data
        body = struct.pack("<iiQ", 1000, 0, 16)
        with pytest.raises(DecodeError, match="outside"):
            RecordDecoder(fmt).decode(body)

    def test_negative_count_rejected(self):
        fl = field_list_for([("n", "integer", 4), ("v", "float[n]", 4)])
        fmt = IOFormat("T", fl)
        body = struct.pack("<iiQ", -1, 0, 16) + b"\x00" * 16
        with pytest.raises(DecodeError, match="negative"):
            RecordDecoder(fmt).decode(body)

    def test_numpy_arrays_mode(self):
        fl = field_list_for([("n", "integer", 4), ("v", "float[n]", 4)])
        fmt = IOFormat("T", fl)
        body = RecordEncoder(fmt).encode({"v": [1.0, 2.0]}).body
        out = RecordDecoder(fmt, arrays="numpy").decode(body)
        assert isinstance(out["v"], np.ndarray)

    def test_bad_arrays_mode(self):
        fl = field_list_for([("a", "integer", 4)])
        with pytest.raises(DecodeError):
            RecordDecoder(IOFormat("T", fl), arrays="tuples")


class TestWireLayoutDetails:
    def test_body_starts_with_native_struct_image(self):
        # receiver-makes-right: fixed section is the sender's struct
        fl = field_list_for([("a", "integer", 4), ("b", "float", 4)],
                            architecture=SPARC_32)
        fmt = IOFormat("T", fl)
        body = RecordEncoder(fmt).encode({"a": 258, "b": 1.0}).body
        assert body[:4] == (258).to_bytes(4, "big")
        assert body[4:8] == struct.pack(">f", 1.0)

    def test_little_endian_image(self):
        fl = field_list_for([("a", "integer", 4)], architecture=X86_64)
        fmt = IOFormat("T", fl)
        body = RecordEncoder(fmt).encode({"a": 258}).body
        assert body[:4] == (258).to_bytes(4, "little")

    def test_null_pointer_is_zero(self):
        fl = field_list_for([("s", "string")], architecture=X86_64)
        fmt = IOFormat("T", fl)
        body = RecordEncoder(fmt).encode({"s": None}).body
        assert body == b"\x00" * 8

    def test_padding_is_zeroed(self):
        fl = field_list_for([("c", "char"), ("i", "integer", 4)],
                            architecture=X86_64)
        fmt = IOFormat("T", fl)
        body = RecordEncoder(fmt).encode({"c": "a", "i": 0}).body
        assert body[1:4] == b"\x00\x00\x00"

    def test_static_format_body_is_exactly_record_length(self):
        fl = field_list_for([("a", "integer", 4), ("b", "double", 8)])
        fmt = IOFormat("T", fl)
        body = RecordEncoder(fmt).encode({"a": 1, "b": 2.0}).body
        assert len(body) == fl.record_length


# -- property-based: roundtrip across all architectures ----------------------

@settings(max_examples=60, deadline=None)
@given(case=format_case(), data=st.data(),
       arch=st.sampled_from(ARCHS))
def test_random_format_roundtrip(case, data, arch):
    specs, record_strategy = case
    record = data.draw(record_strategy)
    fl = field_list_for(specs, architecture=arch)
    fmt = IOFormat("P", fl)
    decoded = RecordDecoder(fmt).decode(
        RecordEncoder(fmt).encode(record).body)
    assert_record_roundtrip(record, decoded, specs)


@settings(max_examples=30, deadline=None)
@given(case=format_case(), data=st.data(),
       sender=st.sampled_from(ARCHS), receiver=st.sampled_from(ARCHS))
def test_cross_architecture_exchange(case, data, sender, receiver):
    """Receiver-makes-right: any sender arch decodes identically on
    any receiver via contexts sharing a format server."""
    specs, record_strategy = case
    record = data.draw(record_strategy)
    server = FormatServer()
    sctx = IOContext(architecture=sender, format_server=server)
    rctx = IOContext(architecture=receiver, format_server=server)
    sctx.register_layout("P", specs)
    wire = sctx.encode("P", record)
    decoded = rctx.decode(wire).record
    assert_record_roundtrip(record, decoded, specs)
