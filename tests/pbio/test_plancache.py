"""The persistent compiled-plan cache and its in-memory LRU tier.

Covers the tier contract end to end: store → load → verify → rebuild
(byte-identical to a fresh compile, property-tested on both byte
orders), every rejection path (corrupt, stale, tampered) falling back
to recompilation, true-LRU eviction (a just-hit plan survives an
eviction wave), single-flight compilation under thread contention,
cross-process races on one on-disk entry, and the invalidation hooks
(``clear_encoder_cache``/``clear_decoder_cache`` purge the disk tier).
"""

from __future__ import annotations

import json
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.pbio.context import IOContext
from repro.pbio.decode import (
    RecordDecoder, clear_decoder_cache, decoder_for_format,
)
from repro.pbio.encode import (
    RecordEncoder, clear_encoder_cache, encoder_for_format,
)
from repro.pbio.format import IOFormat
from repro.pbio.format_server import FormatServer
from repro.pbio.layout import field_list_for
from repro.pbio.machine import SPARC_V9, X86_64
from repro.pbio.plancache import (
    CACHE_SCHEMA, PlanCache, PlanLRU, _payload_digest,
    active_plan_cache, configure_plan_cache,
    reset_plan_cache_configuration, single_flight, warm_start,
)

from tests.strategies import format_case

ARCHS = (X86_64, SPARC_V9)

SPECS = [
    ("timestep", "integer"),
    ("size", "integer"),
    ("data", "float[size]"),
]
RECORD = {"timestep": 7, "size": 4, "data": [0.5, 1.5, 2.5, 3.25]}

ENC_OPTS = {"fuse": True, "bulk": True}
DEC_OPTS = {"arrays": "list", "fuse": True, "validate": True}


def metric_value(name: str, **labels) -> float:
    """Sum of all series of *name* whose labels match."""
    metric = obs.snapshot().get(name)
    if metric is None:
        return 0
    return sum(s["value"] for s in metric["series"]
               if all(s["labels"].get(k) == v
                      for k, v in labels.items()))


def fresh_format(name: str = "PlanCached", arch=X86_64,
                 specs=SPECS) -> IOFormat:
    ctx = IOContext(architecture=arch, format_server=FormatServer())
    return ctx.register_layout(name, specs)


@pytest.fixture
def plan_dir(tmp_path):
    """An isolated persistent tier: both memory caches cleared on the
    way in and out, the process-wide cache pointed at a private
    directory for the duration."""
    clear_encoder_cache(persistent=False)
    clear_decoder_cache(persistent=False)
    cache = configure_plan_cache(tmp_path / "plans")
    yield cache
    clear_encoder_cache(persistent=False)
    clear_decoder_cache(persistent=False)
    reset_plan_cache_configuration()


@pytest.fixture
def no_plan_dir():
    """Persistent tier explicitly disabled (overrides any
    REPRO_PLAN_CACHE_DIR the surrounding run exported)."""
    clear_encoder_cache(persistent=False)
    clear_decoder_cache(persistent=False)
    configure_plan_cache(None)
    yield
    clear_encoder_cache(persistent=False)
    clear_decoder_cache(persistent=False)
    reset_plan_cache_configuration()


class TestPersistentTier:
    def test_miss_store_then_cross_restart_hit(self, plan_dir):
        fmt = fresh_format()
        miss0 = metric_value("repro_plan_cache_total",
                             tier="disk", outcome="miss")
        store0 = metric_value("repro_plan_cache_total",
                              tier="disk", outcome="store")
        first = encoder_for_format(fmt)
        assert first._plan_ops is not None  # compiled, not loaded
        assert len(plan_dir.entries("encoder")) == 1
        assert metric_value("repro_plan_cache_total",
                            tier="disk", outcome="miss") == miss0 + 1
        assert metric_value("repro_plan_cache_total",
                            tier="disk", outcome="store") == store0 + 1

        # simulate a restart: memory tier gone, disk tier kept
        clear_encoder_cache(persistent=False)
        hit0 = metric_value("repro_plan_cache_total",
                            tier="disk", outcome="hit")
        second = encoder_for_format(fmt)
        assert second is not first
        assert second._plan_ops is None  # rebuilt from the stored plan
        assert metric_value("repro_plan_cache_total",
                            tier="disk", outcome="hit") == hit0 + 1
        assert bytes(second.encode_body(RECORD)) == \
            bytes(first.encode_body(RECORD))

    def test_decoder_side_round_trips_through_disk(self, plan_dir):
        fmt = fresh_format()
        body = RecordEncoder(fmt).encode_body(RECORD)
        first = decoder_for_format(fmt)
        expected = first.decode(body)
        clear_decoder_cache(persistent=False)
        second = decoder_for_format(fmt)
        assert second._plan_ops is None
        assert second.decode(body) == expected

    def test_truncated_entry_rejected_and_recompiled(self, plan_dir):
        fmt = fresh_format()
        encoder_for_format(fmt)
        (entry,) = plan_dir.entries("encoder")
        raw = entry.read_text()
        entry.write_text(raw[:len(raw) // 2])

        clear_encoder_cache(persistent=False)
        corrupt0 = metric_value("repro_plan_cache_total",
                                tier="disk", outcome="corrupt")
        rebuilt = encoder_for_format(fmt)
        assert rebuilt._plan_ops is not None  # recompiled from metadata
        assert metric_value(
            "repro_plan_cache_total", tier="disk",
            outcome="corrupt") == corrupt0 + 1
        # the fresh compile overwrote the damaged entry
        (entry,) = plan_dir.entries("encoder")
        json.loads(entry.read_text())
        assert bytes(rebuilt.encode_body(RECORD)) == \
            bytes(RecordEncoder(fmt).encode_body(RECORD))

    def test_tampered_payload_fails_integrity(self, plan_dir):
        fmt = fresh_format()
        encoder_for_format(fmt)
        (entry,) = plan_dir.entries("encoder")
        payload = json.loads(entry.read_text())
        payload["plan"]["record_length"] = 4096  # digest now wrong
        entry.write_text(json.dumps(payload))

        clear_encoder_cache(persistent=False)
        corrupt0 = metric_value("repro_plan_cache_total",
                                tier="disk", outcome="corrupt")
        assert plan_dir.load("encoder", fmt, ENC_OPTS) is None
        assert metric_value(
            "repro_plan_cache_total", tier="disk",
            outcome="corrupt") == corrupt0 + 1

    def test_foreign_schema_version_counts_stale(self, plan_dir):
        """A hand-moved entry from a future/old cache schema (digest
        intact) is 'stale', not 'corrupt'."""
        fmt = fresh_format()
        encoder_for_format(fmt)
        (entry,) = plan_dir.entries("encoder")
        payload = json.loads(entry.read_text())
        payload["cache_schema"] = CACHE_SCHEMA + 1
        del payload["entry_sha256"]
        payload["entry_sha256"] = _payload_digest(payload)
        entry.write_text(json.dumps(payload, sort_keys=True))

        stale0 = metric_value("repro_plan_cache_total",
                              tier="disk", outcome="stale")
        assert plan_dir.load("encoder", fmt, ENC_OPTS) is None
        assert metric_value(
            "repro_plan_cache_total", tier="disk",
            outcome="stale") == stale0 + 1

    def test_wrong_format_metadata_rejected(self, plan_dir):
        """An entry whose stored metadata re-derives to a different
        FormatID cannot satisfy a load, even with a valid digest."""
        fmt = fresh_format()
        other = fresh_format("Other", specs=[("a", "integer")])
        plan = RecordEncoder(other).plan_snapshot()
        # forge: file the *other* format's plan under fmt's key
        path = plan_dir.entry_path("encoder", fmt, ENC_OPTS)
        stored = plan_dir.store("encoder", other, ENC_OPTS, plan)
        stored.rename(path)
        invalid0 = metric_value("repro_plan_cache_total",
                                tier="disk", outcome="invalid")
        assert plan_dir.load("encoder", fmt, ENC_OPTS) is None
        assert metric_value(
            "repro_plan_cache_total", tier="disk",
            outcome="invalid") == invalid0 + 1

    def test_options_key_separate_entries(self, plan_dir):
        fmt = fresh_format()
        encoder_for_format(fmt, fuse=True)
        encoder_for_format(fmt, fuse=False)
        assert len(plan_dir.entries("encoder")) == 2

    def test_clear_cache_purges_disk_tier(self, plan_dir):
        fmt = fresh_format()
        encoder_for_format(fmt)
        decoder_for_format(fmt)
        assert plan_dir.entries("encoder")
        assert plan_dir.entries("decoder")
        clear_encoder_cache()
        assert not plan_dir.entries("encoder")
        assert plan_dir.entries("decoder")  # other kind untouched
        clear_decoder_cache()
        assert not plan_dir.entries("decoder")

    def test_clear_cache_persistent_false_keeps_disk(self, plan_dir):
        fmt = fresh_format()
        encoder_for_format(fmt)
        clear_encoder_cache(persistent=False)
        assert len(plan_dir.entries("encoder")) == 1

    def test_stored_formats_and_warm_start(self, plan_dir):
        fmt = fresh_format()
        encoder_for_format(fmt)
        decoder_for_format(fmt)
        recovered = plan_dir.stored_formats()
        assert [f.format_id for f in recovered] == [fmt.format_id]

        clear_encoder_cache(persistent=False)
        clear_decoder_cache(persistent=False)
        ctx = IOContext(architecture=X86_64,
                        format_server=FormatServer())
        assert warm_start(context=ctx) == 1
        # the restored format is bound: encode without registration
        restored = ctx.format_server.lookup(fmt.format_id)
        assert restored is not None

    def test_store_failure_is_tolerated(self, plan_dir, monkeypatch):
        """A full disk must never fail an encode (best-effort store)."""
        import os as _os

        def boom(src, dst):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(_os, "replace", boom)
        fmt = fresh_format()
        err0 = metric_value("repro_plan_cache_total",
                            tier="disk", outcome="store_error")
        encoder = encoder_for_format(fmt)
        assert bytes(encoder.encode_body(RECORD))
        assert metric_value(
            "repro_plan_cache_total", tier="disk",
            outcome="store_error") == err0 + 1
        assert not plan_dir.entries("encoder")


class TestTwoProcessRace:
    _WORKER = r"""
import sys, time
from repro.pbio.context import IOContext
from repro.pbio.encode import encoder_for_format
from repro.pbio.decode import decoder_for_format
from repro.pbio.format_server import FormatServer

deadline = float(sys.argv[1])
ctx = IOContext(format_server=FormatServer())
fmt = ctx.register_layout("Raced", [
    ("timestep", "integer"), ("size", "integer"),
    ("data", "float[size]")])
time.sleep(max(0.0, deadline - time.time()))  # start-line barrier
for _ in range(5):
    encoder_for_format(fmt)
    decoder_for_format(fmt)
body = encoder_for_format(fmt).encode_body(
    {"timestep": 1, "size": 2, "data": [0.5, 1.5]})
sys.stdout.write(bytes(body).hex())
"""

    def test_concurrent_processes_share_one_entry(self, tmp_path):
        """Two processes racing to populate the same on-disk entry
        both succeed, and the surviving entry is valid."""
        cache_dir = tmp_path / "shared-plans"
        env = dict(__import__("os").environ)
        env["REPRO_PLAN_CACHE_DIR"] = str(cache_dir)
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parents[2] / "src")
        deadline = time.time() + 1.0
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", self._WORKER, str(deadline)],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                env=env, text=True)
            for _ in range(2)
        ]
        outs = []
        for proc in procs:
            out, err = proc.communicate(timeout=60)
            assert proc.returncode == 0, err
            outs.append(out)
        assert outs[0] == outs[1]  # byte-identical wire from both

        # the surviving entries satisfy a fresh process's load (the
        # workers registered on their native architecture, so re-derive
        # the format the same way here)
        cache = PlanCache(cache_dir)
        ctx = IOContext(format_server=FormatServer())
        fmt = ctx.register_layout("Raced", SPECS)
        assert cache.load("encoder", fmt, ENC_OPTS) is not None
        assert cache.load("decoder", fmt, DEC_OPTS) is not None


class TestPlanLRU:
    def test_just_hit_plan_survives_eviction_wave(self):
        lru = PlanLRU(4, "encoder")
        for key in "abcd":
            lru.put(key, key.upper())
        assert lru.get("a") == "A"  # refresh recency
        for key in ("e", "f", "g"):  # wave: evicts 3 of the original 4
            lru.put(key, key.upper())
        assert "a" in lru            # survived -- true LRU
        assert "b" not in lru and "c" not in lru and "d" not in lru

    def test_eviction_counts_telemetry(self):
        evict0 = metric_value("repro_plan_cache_total",
                              tier="memory", outcome="evict")
        legacy0 = metric_value("repro_codec_plans_total",
                               kind="probe", outcome="evict")
        lru = PlanLRU(1, "probe")
        lru.put("a", 1)
        lru.put("b", 2)
        assert metric_value("repro_plan_cache_total", tier="memory",
                            outcome="evict") == evict0 + 1
        assert metric_value("repro_codec_plans_total", kind="probe",
                            outcome="evict") == legacy0 + 1

    def test_peek_does_not_refresh_recency(self):
        lru = PlanLRU(2, "probe")
        lru.put("a", 1)
        lru.put("b", 2)
        lru.peek("a")
        lru.put("c", 3)  # evicts "a": peek left it least-recent
        assert "a" not in lru and "b" in lru

    def test_reput_updates_value_without_evicting(self):
        lru = PlanLRU(2, "probe")
        lru.put("a", 1)
        lru.put("b", 2)
        lru.put("a", 10)
        assert len(lru) == 2
        assert lru.get("a") == 10

    def test_hot_encoder_survives_wave_through_public_api(
            self, no_plan_dir):
        """End-to-end regression for the old FIFO bug: a plan being
        hit throughout an eviction wave must keep its identity."""
        from repro.pbio.encode import _MAX_CACHED_PLANS
        hot_fmt = fresh_format("HotPlan", specs=[("a", "integer")])
        hot = encoder_for_format(hot_fmt)
        wave = _MAX_CACHED_PLANS + 16
        for i in range(wave):
            cold = fresh_format(f"Cold{i}", specs=[("a", "integer")])
            encoder_for_format(cold)
            if i % 32 == 0:  # keep the hot plan recent
                assert encoder_for_format(hot_fmt) is hot
        # under FIFO the first-inserted hot plan would be long gone
        assert encoder_for_format(hot_fmt) is hot


class TestSingleFlight:
    def test_one_build_under_contention(self):
        lru = PlanLRU(8, "probe")
        lock = threading.Lock()
        flights: dict = {}
        builds = []
        started = threading.Barrier(8)

        def build():
            builds.append(1)
            time.sleep(0.05)
            return object()

        results = []

        def worker():
            started.wait()
            results.append(
                single_flight(lock, flights, lru, "k", build))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(builds) == 1
        values = {id(value) for value, _ in results}
        assert len(values) == 1  # everyone got the leader's object
        assert sum(built for _, built in results) == 1
        assert not flights  # ticket cleaned up

    def test_leader_failure_releases_waiters(self):
        lru = PlanLRU(8, "probe")
        lock = threading.Lock()
        flights: dict = {}
        attempts = []

        def build():
            attempts.append(1)
            if len(attempts) == 1:
                time.sleep(0.02)
                raise RuntimeError("leader dies")
            return "ok"

        outcomes = []

        def worker():
            try:
                outcomes.append(
                    single_flight(lock, flights, lru, "k", build))
            except RuntimeError:
                outcomes.append("raised")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # the failure stayed with exactly one thread; a successor
        # retried the build and everyone else got its value
        assert outcomes.count("raised") == 1
        assert all(o == ("ok", True) or o == ("ok", False)
                   for o in outcomes if o != "raised")
        assert not flights

    def test_miss_counter_counts_actual_compiles(self, no_plan_dir):
        """The CODEC_PLANS miss series counts compiles, not arrivals:
        16 threads racing on one cold key yield exactly 1 miss."""
        fmt = fresh_format("FlightCounted")
        miss0 = metric_value("repro_codec_plans_total",
                             kind="encoder", outcome="miss")
        hit0 = metric_value("repro_codec_plans_total",
                            kind="encoder", outcome="hit")
        started = threading.Barrier(16)

        def worker():
            started.wait()
            encoder_for_format(fmt)

        threads = [threading.Thread(target=worker)
                   for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert metric_value("repro_codec_plans_total", kind="encoder",
                            outcome="miss") == miss0 + 1
        assert metric_value("repro_codec_plans_total", kind="encoder",
                            outcome="hit") == hit0 + 15


@pytest.fixture(scope="module")
def property_cache(tmp_path_factory):
    return PlanCache(tmp_path_factory.mktemp("property-plans"))


class TestPlanFidelity:
    """Hypothesis: a cache-loaded plan is indistinguishable from a
    fresh compile — same wire bytes out, same records back — across
    random formats on both byte orders."""

    @settings(max_examples=80, deadline=None)
    @given(case=format_case(), arch=st.sampled_from(ARCHS),
           data=st.data())
    def test_loaded_encoder_bytes_identical(self, property_cache,
                                            case, arch, data):
        specs, record_strategy = case
        record = data.draw(record_strategy)
        fmt = IOFormat("P", field_list_for(specs, architecture=arch))
        fresh = RecordEncoder(fmt)
        property_cache.store("encoder", fmt, ENC_OPTS,
                             fresh.plan_snapshot(), fresh.plan_source)
        plan = property_cache.load("encoder", fmt, ENC_OPTS)
        assert plan is not None
        loaded = RecordEncoder(fmt, plan=plan)
        assert loaded._plan_ops is None  # really the plan path
        assert bytes(loaded.encode_body(record)) == \
            bytes(fresh.encode_body(record))

    @settings(max_examples=80, deadline=None)
    @given(case=format_case(), arch=st.sampled_from(ARCHS),
           data=st.data())
    def test_loaded_decoder_records_identical(self, property_cache,
                                              case, arch, data):
        specs, record_strategy = case
        record = data.draw(record_strategy)
        fmt = IOFormat("P", field_list_for(specs, architecture=arch))
        body = RecordEncoder(fmt).encode_body(record)
        fresh = RecordDecoder(fmt)
        property_cache.store("decoder", fmt, DEC_OPTS,
                             fresh.plan_snapshot())
        plan = property_cache.load("decoder", fmt, DEC_OPTS)
        assert plan is not None
        loaded = RecordDecoder(fmt, plan=plan)
        assert loaded._plan_ops is None
        assert loaded.decode(body) == fresh.decode(body)


class TestConfiguration:
    def test_configure_overrides_environment(self, tmp_path,
                                             monkeypatch):
        monkeypatch.setenv("REPRO_PLAN_CACHE_DIR",
                           str(tmp_path / "env"))
        reset_plan_cache_configuration()
        try:
            override = configure_plan_cache(tmp_path / "explicit")
            assert active_plan_cache() is override
            configure_plan_cache(None)
            assert active_plan_cache() is None  # disabled beats env
        finally:
            reset_plan_cache_configuration()

    def test_environment_reread_per_call(self, tmp_path, monkeypatch):
        reset_plan_cache_configuration()
        try:
            monkeypatch.delenv("REPRO_PLAN_CACHE_DIR", raising=False)
            assert active_plan_cache() is None
            monkeypatch.setenv("REPRO_PLAN_CACHE_DIR",
                               str(tmp_path / "late"))
            cache = active_plan_cache()
            assert cache is not None
            assert cache is active_plan_cache()  # memoized per dir
        finally:
            reset_plan_cache_configuration()
