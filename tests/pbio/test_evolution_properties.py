"""Property-based invariants for sender-side down-conversion.

For random formats and random appended-field evolutions, a stale
receiver must not be able to tell how its frame was produced: decoding
a down-converted new-version frame yields exactly what a native
old-version roundtrip of the same (projected) record yields — under
the fused decode plan and the per-field baseline alike, on both byte
orders.  This is the paper's restricted-evolution promise, checked
from the upgraded sender's side.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.pbio.decode import decoder_for_format
from repro.pbio.encode import (
    HEADER_LEN, encoder_for_format, parse_header,
)
from repro.pbio.evolution import DownConverter, can_evolve
from repro.pbio.format import IOFormat
from repro.pbio.layout import field_list_for
from repro.pbio.machine import SPARC_V9, X86_64

from tests.strategies import atomic_field, field_names, format_case

ARCHS = (X86_64, SPARC_V9)


@st.composite
def evolution_case(draw):
    """(old specs, new specs, new-record strategy): a random format
    plus a random legal evolution appending 1-3 fresh fields."""
    old_specs, old_record = draw(format_case(min_fields=1,
                                             max_fields=5))
    taken = {spec[0] for spec in old_specs}
    extra_names = draw(st.lists(
        field_names.filter(lambda n: n not in taken),
        min_size=1, max_size=3, unique=True))
    appended = []
    strats = {}
    for name in extra_names:
        spec, values = draw(atomic_field(name))
        appended.append(spec)
        strats[name] = values
    new_record = st.tuples(
        old_record, st.fixed_dictionaries(strats)).map(
        lambda pair: {**pair[0], **pair[1]})
    return old_specs, old_specs + appended, new_record


def _formats(old_specs, new_specs, arch):
    old = IOFormat("Evo", field_list_for(old_specs, architecture=arch))
    new = IOFormat("Evo", field_list_for(new_specs, architecture=arch))
    return old, new


def _decode(fmt: IOFormat, wire: bytes, *, fuse: bool) -> dict:
    fid, body_len = parse_header(wire, require_body=True)
    assert fid == fmt.format_id
    return decoder_for_format(fmt, fuse=fuse).decode(
        wire[HEADER_LEN:HEADER_LEN + body_len])


def _values_equal(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (math.isnan(a) and math.isnan(b))
    if isinstance(a, dict) and isinstance(b, dict):
        return (a.keys() == b.keys()
                and all(_values_equal(v, b[k]) for k, v in a.items()))
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return (len(a) == len(b)
                and all(_values_equal(x, y) for x, y in zip(a, b)))
    return a == b


@settings(max_examples=150, deadline=None)
@given(case=evolution_case(), arch=st.sampled_from(ARCHS),
       data=st.data())
def test_appended_fields_are_always_a_legal_evolution(case, arch,
                                                      data):
    old_specs, new_specs, _ = case
    old, new = _formats(old_specs, new_specs, arch)
    assert can_evolve(old, new)


@settings(max_examples=150, deadline=None)
@given(case=evolution_case(), arch=st.sampled_from(ARCHS),
       fuse=st.booleans(), data=st.data())
def test_down_converted_decode_equals_native_roundtrip(case, arch,
                                                       fuse, data):
    """decode_old(down_convert(encode_new(r))) ==
    decode_old(encode_old(project(r))) — fused and per-field."""
    old_specs, new_specs, record_strategy = case
    record = data.draw(record_strategy)
    old, new = _formats(old_specs, new_specs, arch)
    conv = DownConverter(new, old, fuse=fuse)

    new_wire = encoder_for_format(new).encode_wire(record)
    via_down = _decode(old, conv.convert_wire(new_wire), fuse=fuse)

    old_names = {f.name for f in old.field_list}
    projected = {k: v for k, v in record.items() if k in old_names}
    native = _decode(old,
                     encoder_for_format(old).encode_wire(projected),
                     fuse=fuse)
    assert _values_equal(via_down, native)


@settings(max_examples=150, deadline=None)
@given(case=evolution_case(), arch=st.sampled_from(ARCHS),
       data=st.data())
def test_fast_path_equals_wire_path(case, arch, data):
    """The publisher fast path (project the in-memory record, skip the
    decode) must produce byte-identical old-version wire."""
    old_specs, new_specs, record_strategy = case
    record = data.draw(record_strategy)
    old, new = _formats(old_specs, new_specs, arch)
    conv = DownConverter(new, old)
    new_wire = encoder_for_format(new).encode_wire(record)
    assert conv.encode_record(record) == conv.convert_wire(new_wire)


@settings(max_examples=150, deadline=None)
@given(case=evolution_case(), arch=st.sampled_from(ARCHS),
       data=st.data())
def test_down_converted_frame_decodes_same_fused_and_per_field(
        case, arch, data):
    old_specs, new_specs, record_strategy = case
    record = data.draw(record_strategy)
    old, new = _formats(old_specs, new_specs, arch)
    wire = DownConverter(new, old).encode_record(record)
    assert _values_equal(_decode(old, wire, fuse=True),
                         _decode(old, wire, fuse=False))


@settings(max_examples=100, deadline=None)
@given(case=evolution_case(), arch=st.sampled_from(ARCHS),
       data=st.data())
def test_projection_is_exactly_the_old_field_set(case, arch, data):
    old_specs, new_specs, record_strategy = case
    record = data.draw(record_strategy)
    old, new = _formats(old_specs, new_specs, arch)
    conv = DownConverter(new, old)
    new_wire = encoder_for_format(new).encode_wire(record)
    decoded_new = _decode(new, new_wire, fuse=True)
    projected = conv.convert_record(decoded_new)
    assert set(projected) == {f.name for f in old.field_list}
