"""Shared fixtures."""

from __future__ import annotations

import pytest

from repro.pbio.context import IOContext
from repro.pbio.format_server import FormatServer
from repro.pbio.machine import NATIVE, SPARC_32, SPARC_V9, X86_32, X86_64

ALL_ARCHITECTURES = (SPARC_32, SPARC_V9, X86_32, X86_64)


@pytest.fixture
def format_server() -> FormatServer:
    """A fresh format server, isolated from the process-global one."""
    return FormatServer()


@pytest.fixture
def context(format_server: FormatServer) -> IOContext:
    """A native-architecture IOContext on a fresh server."""
    return IOContext(format_server=format_server)


@pytest.fixture(params=ALL_ARCHITECTURES, ids=lambda a: a.name)
def architecture(request):
    """Parametrized over every modeled architecture."""
    return request.param


SIMPLE_DATA_XSD = """\
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="SimpleData">
    <xsd:element name="timestep" type="xsd:integer" />
    <xsd:element name="size" type="xsd:integer" />
    <xsd:element name="data" type="xsd:float" minOccurs="0"
                 maxOccurs="*" dimensionPlacement="before"
                 dimensionName="size" />
  </xsd:complexType>
</xsd:schema>
"""

SIMPLE_DATA_SPECS = [
    ("timestep", "integer"),
    ("size", "integer"),
    ("data", "float[size]"),
]


@pytest.fixture
def simple_data_xsd() -> str:
    return SIMPLE_DATA_XSD


@pytest.fixture
def simple_data_specs() -> list:
    return list(SIMPLE_DATA_SPECS)
