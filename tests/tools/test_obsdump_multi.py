"""obsdump against multiple live shard endpoints."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.http.server import DocumentStore, MetadataHTTPServer
from repro.obs.registry import MetricsRegistry
from repro.tools.obsdump import _split_endpoint, main

GOLDEN = Path(__file__).parent / "golden" / "obsdump_merged.prom"


def shard_snapshot(label: str, clients: int, high_water: int) -> dict:
    reg = MetricsRegistry()
    reg.counter("shard_frames_total", "Frames served").inc(
        clients * 10)
    reg.gauge("shard_clients", "Connected clients").set(clients)
    reg.gauge("shard_queue_high_water",
              "Deepest queue observed").set(high_water)
    return reg.snapshot()


@pytest.fixture
def fleet():
    """Two scrapeable endpoints, each exposing one shard's registry
    through the /metrics snapshot_source hook."""
    servers = [
        MetadataHTTPServer(
            DocumentStore(),
            snapshot_source=lambda: shard_snapshot("w0", 3, 4096)),
        MetadataHTTPServer(
            DocumentStore(),
            snapshot_source=lambda: shard_snapshot("w1", 5, 1024)),
    ]
    try:
        yield [f"http://{s.host}:{s.port}" for s in servers]
    finally:
        for server in servers:
            server.close()


class TestEndpointSpecs:
    def test_bare_url_gets_positional_label(self):
        assert _split_endpoint("http://h:1", 2) == \
            ("w2", "http://h:1")

    def test_label_prefix_wins(self):
        assert _split_endpoint("edge=http://h:1", 0) == \
            ("edge", "http://h:1")

    def test_url_without_label_is_not_split_at_scheme(self):
        # the '=' inside a query string must not become a label
        spec = "http://h:1/metrics.json?x=1"
        assert _split_endpoint(spec, 1) == ("w1", spec)


@pytest.mark.timeout(60)
class TestMultiURL:
    def test_merged_prometheus_golden(self, fleet, capsys):
        assert main(["--url", fleet[0], "--url", fleet[1]]) == 0
        assert capsys.readouterr().out == GOLDEN.read_text()

    def test_custom_labels_stamp_series(self, fleet, capsys):
        assert main(["--url", f"edge={fleet[0]}",
                     "--url", f"core={fleet[1]}", "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        workers = {s["labels"]["worker"]
                   for s in snapshot["shard_clients"]["series"]}
        assert workers == {"edge", "core"}

    def test_aggregate_collapses_the_fleet(self, fleet, capsys):
        assert main(["--url", fleet[0], "--url", fleet[1],
                     "--aggregate", "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        (clients,) = snapshot["shard_clients"]["series"]
        assert clients == {"labels": {}, "value": 8}
        (frames,) = snapshot["shard_frames_total"]["series"]
        assert frames["value"] == 80
        (hw,) = snapshot["shard_queue_high_water"]["series"]
        assert hw["value"] == 4096, "maxima must not be summed"

    def test_single_url_stays_unlabeled(self, fleet, capsys):
        assert main(["--url", fleet[0], "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        (series,) = snapshot["shard_clients"]["series"]
        assert "worker" not in series["labels"]
