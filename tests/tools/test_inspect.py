"""Record inspector."""

import pytest

from repro.pbio.context import IOContext
from repro.pbio.format_server import FormatServer
from repro.tools.inspect import describe_format, dump_record


@pytest.fixture
def setup():
    ctx = IOContext(format_server=FormatServer())
    fmt = ctx.register_layout("Msg", [
        ("tag", "char"), ("count", "integer", 4),
        ("label", "string"), ("values", "float[count]", 4)])
    wire = ctx.encode("Msg", {"tag": "A", "label": "hello",
                              "values": [1.0, 2.0]})
    return fmt, wire


class TestDescribeFormat:
    def test_field_table(self, setup):
        fmt, _ = setup
        text = describe_format(fmt)
        assert "format 'Msg'" in text
        assert "label" in text and "string" in text
        assert "float[count]" in text
        assert "record length" in text

    def test_nested_formats_shown(self):
        from repro.pbio.layout import field_list_for
        from repro.pbio.format import IOFormat
        point = field_list_for([("x", "double", 8)])
        fmt = IOFormat("T", field_list_for(
            [("p", "Point")], subformats={"Point": point}))
        text = describe_format(fmt)
        assert "subformat Point" in text

    def test_enums_shown(self):
        from repro.pbio.layout import field_list_for
        from repro.pbio.format import IOFormat
        fmt = IOFormat("T", field_list_for(
            [("mode", "enumeration", 4)]),
            {"mode": ("fast", "safe")})
        assert "['fast', 'safe']" in describe_format(fmt)


class TestDumpRecord:
    def test_header_summary(self, setup):
        fmt, wire = setup
        text = dump_record(wire, fmt)
        assert "magic PB" in text
        assert str(fmt.format_id) in text

    def test_fields_labeled(self, setup):
        fmt, wire = setup
        text = dump_record(wire, fmt)
        for label in ("tag: char", "count: integer", "label: string",
                      "values: float[count]", "variable section"):
            assert label in text

    def test_padding_marked(self, setup):
        fmt, wire = setup
        assert "(padding)" in dump_record(wire, fmt)

    def test_string_bytes_visible(self, setup):
        fmt, wire = setup
        assert "hello" in dump_record(wire, fmt)

    def test_without_format(self, setup):
        _, wire = setup
        text = dump_record(wire)
        assert "-- body" in text

    def test_mismatched_format_warns(self, setup):
        fmt, _ = setup
        ctx = IOContext(format_server=FormatServer())
        other = ctx.register_layout("Other", [("x", "integer", 4)])
        wire = ctx.encode("Other", {"x": 1})
        assert "does not match" in dump_record(wire, fmt)
