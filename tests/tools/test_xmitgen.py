"""The xmitgen command-line generator."""

import pytest

from repro.http.urls import publish_document
from repro.tools.xmitgen import main

XSD = """\
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Point">
    <xsd:element name="x" type="xsd:double" />
    <xsd:element name="y" type="xsd:double" />
  </xsd:complexType>
  <xsd:complexType name="Msg">
    <xsd:element name="id" type="xsd:int" />
    <xsd:element name="origin" type="Point" />
  </xsd:complexType>
</xsd:schema>
"""


@pytest.fixture
def schema_file(tmp_path):
    path = tmp_path / "formats.xsd"
    path.write_text(XSD)
    return path


class TestCLI:
    def test_default_c_to_stdout(self, schema_file, capsys):
        assert main([str(schema_file)]) == 0
        out = capsys.readouterr().out
        assert "typedef struct _Point" in out
        assert "typedef struct _Msg" in out
        assert "[c]" in out

    def test_list(self, schema_file, capsys):
        assert main([str(schema_file), "--list"]) == 0
        out = capsys.readouterr().out
        assert "Point: x, y" in out
        assert "Msg: id, origin" in out

    def test_multiple_targets_and_format_filter(self, schema_file,
                                                capsys):
        assert main([str(schema_file), "-f", "Point", "-t", "java",
                     "-t", "idl"]) == 0
        out = capsys.readouterr().out
        assert "public class Point" in out
        assert "struct Point" in out
        assert "Msg" not in out.replace("[idl]", "").replace(
            "// =====", "")

    def test_out_dir_writes_files(self, schema_file, tmp_path,
                                  capsys):
        out_dir = tmp_path / "gen"
        assert main([str(schema_file), "-t", "cpp", "-t", "c",
                     "-o", str(out_dir)]) == 0
        assert (out_dir / "Point.hpp").exists()
        assert (out_dir / "Msg.h").exists()
        assert "XMIT_GENERATED_POINT_HPP" in \
            (out_dir / "Point.hpp").read_text()

    def test_url_source(self, capsys):
        url = publish_document("xmitgen-test.xsd", XSD)
        assert main([url, "--list"]) == 0
        assert "Point" in capsys.readouterr().out

    def test_unknown_format_errors(self, schema_file, capsys):
        assert main([str(schema_file), "-f", "Ghost"]) == 1
        assert "unknown formats" in capsys.readouterr().err

    def test_missing_source_errors(self, capsys):
        assert main(["/nonexistent/path.xsd"]) == 1
        assert "cannot load" in capsys.readouterr().err


class TestValidateMode:
    @pytest.fixture
    def instance_file(self, tmp_path):
        path = tmp_path / "msg.xml"
        path.write_text("<Msg><id>1</id>"
                        "<origin><x>1.0</x><y>2.0</y></origin></Msg>")
        return path

    def test_valid_matches(self, schema_file, instance_file, capsys):
        assert main([str(schema_file), "--validate",
                     str(instance_file)]) == 0
        assert "VALID: matches Msg" in capsys.readouterr().out

    def test_valid_against_named_format(self, schema_file,
                                        instance_file, capsys):
        assert main([str(schema_file), "--validate",
                     str(instance_file), "-f", "Msg"]) == 0
        assert "VALID: Msg" in capsys.readouterr().out

    def test_invalid_against_named_format(self, schema_file,
                                          instance_file, capsys):
        assert main([str(schema_file), "--validate",
                     str(instance_file), "-f", "Point"]) == 2
        assert "INVALID against Point" in capsys.readouterr().out

    def test_no_match(self, schema_file, tmp_path, capsys):
        bad = tmp_path / "bad.xml"
        bad.write_text("<Nope><zz>1</zz></Nope>")
        assert main([str(schema_file), "--validate", str(bad)]) == 2
        assert "INVALID" in capsys.readouterr().out

    def test_missing_instance_file(self, schema_file, capsys):
        assert main([str(schema_file), "--validate",
                     "/no/such.xml"]) == 1
