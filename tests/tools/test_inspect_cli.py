"""The repro-inspect CLI."""

import pytest

from repro.pbio.context import IOContext
from repro.pbio.format_server import FormatServer
from repro.tools.inspect import main

XSD = """\
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Msg">
    <xsd:element name="x" type="xsd:int" />
    <xsd:element name="s" type="xsd:string" />
  </xsd:complexType>
</xsd:schema>
"""


@pytest.fixture
def record_file(tmp_path):
    ctx = IOContext(format_server=FormatServer())
    ctx.register_layout("Msg", [("x", "integer", 4), ("s", "string")])
    path = tmp_path / "record.bin"
    path.write_bytes(ctx.encode("Msg", {"x": 7, "s": "hi"}))
    return path


class TestInspectCLI:
    def test_plain_dump(self, record_file, capsys):
        assert main([str(record_file)]) == 0
        out = capsys.readouterr().out
        assert "magic PB" in out
        assert "-- body" in out

    def test_with_schema(self, record_file, tmp_path, capsys):
        schema = tmp_path / "msg.xsd"
        schema.write_text(XSD)
        assert main([str(record_file), "--schema", str(schema),
                     "--format", "Msg"]) == 0
        out = capsys.readouterr().out
        assert "x: integer" in out
        assert "s: string" in out
        assert "variable section" in out

    def test_schema_requires_format(self, record_file, tmp_path,
                                    capsys):
        schema = tmp_path / "msg.xsd"
        schema.write_text(XSD)
        assert main([str(record_file), "--schema", str(schema)]) == 1
        assert "requires --format" in capsys.readouterr().err

    def test_missing_record_file(self, capsys):
        assert main(["/no/such/record.bin"]) == 1
        assert "repro-inspect" in capsys.readouterr().err

    def test_garbage_record(self, tmp_path, capsys):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"not a record")
        assert main([str(path)]) == 1
        assert "cannot parse" in capsys.readouterr().err
