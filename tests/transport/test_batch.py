"""Batched record streaming: DATA_BATCH frames end to end."""

import threading

import pytest

from repro.errors import TransportError
from repro.pbio.context import IOContext
from repro.pbio.format_server import FormatServer
from repro.pbio.machine import X86_64
from repro.transport.connection import Connection
from repro.transport.inproc import channel_pair
from repro.transport.messages import Frame, FrameType
from repro.transport.tcp import tcp_pair

SPECS = [("timestep", "integer"), ("size", "integer"),
         ("data", "float[size]")]


def make_pair(shared_server: bool = True):
    a_ch, b_ch = channel_pair()
    if shared_server:
        server = FormatServer()
        actx = IOContext(architecture=X86_64, format_server=server)
        bctx = IOContext(architecture=X86_64, format_server=server)
    else:
        actx = IOContext(architecture=X86_64,
                         format_server=FormatServer())
        bctx = IOContext(architecture=X86_64,
                         format_server=FormatServer())
    return Connection(actx, a_ch), Connection(bctx, b_ch)


def records(n):
    return [{"timestep": i, "data": [float(i), float(i) + 0.5]}
            for i in range(n)]


class TestSendMany:
    def test_batch_delivered_through_per_record_receive(self):
        a, b = make_pair()
        a.context.register_layout("SimpleData", SPECS)
        sent = a.send_many("SimpleData", records(4))
        assert sent == 4
        got = [b.receive(timeout=5) for _ in range(4)]
        assert [m.record["timestep"] for m in got] == [0, 1, 2, 3]
        assert got[2].record["data"] == [2.0, 2.5]
        assert all(m.format_name == "SimpleData" for m in got)
        assert b.records_received == 4

    def test_batch_is_one_frame(self):
        a, b = make_pair()
        a.context.register_layout("SimpleData", SPECS)
        before = a.channel.frames_sent
        a.send_many("SimpleData", records(16))
        assert a.channel.frames_sent == before + 1
        assert a.records_sent == 16

    def test_receive_many_returns_whole_batch(self):
        a, b = make_pair()
        a.context.register_layout("SimpleData", SPECS)
        a.send_many("SimpleData", records(5))
        batch = b.receive_many(timeout=5)
        assert [m.record["timestep"] for m in batch] == [0, 1, 2, 3, 4]
        assert b.records_received == 5

    def test_receive_many_wraps_single_record(self):
        a, b = make_pair()
        a.context.register_layout("SimpleData", SPECS)
        a.send("SimpleData", {"timestep": 7, "data": []})
        batch = b.receive_many(timeout=5)
        assert len(batch) == 1
        assert batch[0].record["timestep"] == 7

    def test_empty_batch_is_skipped(self):
        a, b = make_pair()
        a.context.register_layout("SimpleData", SPECS)
        a.send_many("SimpleData", [])
        a.send("SimpleData", {"timestep": 9, "data": []})
        msg = b.receive(timeout=5)
        assert msg.record["timestep"] == 9

    def test_receive_many_none_on_close(self):
        a, b = make_pair()
        a.close()
        assert b.receive_many(timeout=5) is None

    def test_batch_and_singles_stay_ordered(self):
        a, b = make_pair()
        a.context.register_layout("SimpleData", SPECS)
        a.send("SimpleData", {"timestep": 0, "data": []})
        a.send_many("SimpleData",
                    [{"timestep": 1, "data": []},
                     {"timestep": 2, "data": []}])
        a.send("SimpleData", {"timestep": 3, "data": []})
        got = [b.receive(timeout=5).record["timestep"]
               for _ in range(4)]
        assert got == [0, 1, 2, 3]


class TestNegotiation:
    def test_one_negotiation_covers_whole_batch(self):
        a, b = make_pair(shared_server=False)
        a.context.register_layout("SimpleData", SPECS)
        results = []
        done = threading.Event()

        def receiver():
            while True:
                msg = b.receive(timeout=5)
                if msg is None:
                    break
                results.append(msg)
            done.set()

        def pump():
            # a services b's FMT_REQ from inside its own receive()
            try:
                a.receive(timeout=5)
            except TransportError:
                pass

        rt = threading.Thread(target=receiver)
        pt = threading.Thread(target=pump)
        rt.start()
        pt.start()
        a.send_many("SimpleData", records(6))
        done.wait(5)
        a.close()
        rt.join(5)
        pt.join(5)
        assert len(results) == 6
        assert b.negotiations == 1


class TestChannelSendMany:
    def test_default_send_many_loops(self):
        a, b = channel_pair()
        frames = [Frame(FrameType.DATA, bytes([i])) for i in range(3)]
        a.send_many(frames)
        got = [b.recv(timeout=5) for _ in range(3)]
        assert [f.payload for f in got] == [b"\x00", b"\x01", b"\x02"]
        assert a.frames_sent == 3

    def test_tcp_send_many_coalesces(self):
        a, b = tcp_pair()
        try:
            frames = [Frame(FrameType.DATA, b"x" * i)
                      for i in range(1, 5)]
            a.send_many(frames)
            got = [b.recv(timeout=5) for _ in range(4)]
            assert [len(f.payload) for f in got] == [1, 2, 3, 4]
            assert a.frames_sent == 4
            assert a.bytes_sent == sum(
                len(f.encode()) for f in frames)
        finally:
            a.close()
            b.close()

    def test_tcp_send_many_empty_is_noop(self):
        a, b = tcp_pair()
        try:
            a.send_many([])
            assert a.frames_sent == 0
        finally:
            a.close()
            b.close()

    def test_send_many_on_closed_channel_raises(self):
        a, b = tcp_pair()
        a.close()
        with pytest.raises(TransportError):
            a.send_many([Frame(FrameType.DATA, b"z")])
        b.close()
