"""The committed malformed handshake frames must stay rejected.

``tests/golden/malformed/handshake_frames.json`` holds one minimized
frame body per rejection class the lineage-handshake hardening covers
(truncation, lying u8 fields, digest forgery, bad UTF-8, unknown
types).  Every body must raise :class:`ProtocolError` with the
recorded message through the :class:`HandshakeOracle` — the same
judge the fuzz campaign uses — so a decoder that starts accepting one
again is a regression, and an untyped escape is a contract break.
"""

from __future__ import annotations

import re

import pytest

from repro.errors import ProtocolError
from repro.testing.fuzz import HandshakeOracle
from tests.golden.malformed.handshake_cases import (
    compute_handshake_frames, load_handshake_frames,
)

FRAMES = load_handshake_frames()
_ENTRIES = [(name, order) for name in sorted(FRAMES)
            for order in sorted(FRAMES[name])]


def test_committed_frames_in_sync():
    # handshake_frames.json derives from handshake_vectors.json;
    # regen both together
    assert compute_handshake_frames() == FRAMES


@pytest.mark.parametrize("name,order", _ENTRIES)
def test_frame_rejected(name: str, order: str):
    entry = FRAMES[name][order]
    body = bytes.fromhex(entry["hex"])
    with pytest.raises(ProtocolError,
                       match=re.escape(entry["match"])):
        HandshakeOracle().check(body)


def test_every_rejection_class_is_pinned_on_both_orders():
    assert all(sorted(per_order) == ["big", "little"]
               for per_order in FRAMES.values())
    assert len(FRAMES) >= 10
