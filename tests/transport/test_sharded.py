"""Sharded broadcast: probe, control plane, and multi-process e2e."""

import socket
import struct
import threading
import time
import types

import pytest

from repro.errors import ProtocolError, TransportError
from repro.pbio.context import IOContext
from repro.pbio.format import IOFormat
from repro.pbio.format_server import FormatServer
from repro.pbio.layout import compute_layout
from repro.transport.connection import Connection
from repro.transport.eventloop import iter_frames
from repro.transport.messages import Frame, FrameType
from repro.transport.sharded import (
    ControlSocket, Ctl, ShardedBroadcastServer, WorkerConfig,
    _pack_name, _unpack_name, reuseport_available,
)
from repro.transport.tcp import TCPChannel

SPECS = [("timestep", "integer"), ("size", "integer"),
         ("data", "float[size]")]
V2_SPECS = SPECS + [("units", "string")]


def make_context() -> IOContext:
    ctx = IOContext(format_server=FormatServer())
    ctx.register_layout("SimpleData", SPECS)
    return ctx


def make_server(**kwargs) -> ShardedBroadcastServer:
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("mode", "fdpass")
    kwargs.setdefault("start_timeout", 120.0)
    return ShardedBroadcastServer(make_context(), **kwargs)


class Subscriber(threading.Thread):
    """Connects, drains until BYE, records everything."""

    def __init__(self, host: str, port: int,
                 context: IOContext | None = None, *,
                 negotiate: str | None = None):
        super().__init__(daemon=True)
        self.context = context or IOContext(
            format_server=FormatServer())
        self.negotiate = negotiate
        self.conn = Connection(self.context,
                               TCPChannel.connect(host, port))
        self.chosen = None
        self.records: list = []
        self.error: BaseException | None = None

    def run(self):
        # idle receive timeouts retry against one overall deadline so
        # a loaded machine cannot knock a subscriber off its shard
        # before the test's first publish
        deadline = time.monotonic() + 150
        try:
            if self.negotiate:
                self.chosen = self.conn.negotiate_version(
                    self.negotiate, timeout=60)
            while time.monotonic() < deadline:
                try:
                    msg = self.conn.receive(timeout=10)
                except TransportError as exc:
                    if "timed out" in str(exc):
                        continue
                    raise
                if msg is None:
                    break
                self.records.append((msg.format_id, msg.record))
        except BaseException as exc:  # noqa: BLE001 - asserted later
            self.error = exc
        finally:
            self.conn.close()


# ---------------------------------------------------------------------------
# SO_REUSEPORT capability probe (monkeypatched socket module)
# ---------------------------------------------------------------------------

class TestReuseportProbe:
    def test_real_platform_probe_is_conclusive(self):
        ok, reason = reuseport_available()
        assert isinstance(ok, bool) and reason

    def test_missing_constant_falls_back(self):
        fake = types.SimpleNamespace()  # no SO_REUSEPORT at all
        ok, reason = reuseport_available(socket_module=fake)
        assert not ok
        assert "not defined" in reason

    def test_non_balancing_platform_falls_back(self):
        ok, reason = reuseport_available(platform="darwin")
        assert not ok
        assert "darwin" in reason

    def test_probe_bind_failure_falls_back(self):
        class Refusing:
            SO_REUSEPORT = socket.SO_REUSEPORT if \
                hasattr(socket, "SO_REUSEPORT") else 15

            @staticmethod
            def socket(*args, **kwargs):
                raise OSError("seccomp says no")

        ok, reason = reuseport_available(socket_module=Refusing)
        assert not ok
        assert "probe failed" in reason

    def test_setsockopt_rejection_falls_back(self):
        class Sock:
            def __init__(self, real):
                self._real = real

            def setsockopt(self, *args):
                raise OSError("EOPNOTSUPP")

            def __getattr__(self, name):
                return getattr(self._real, name)

        class Module:
            SO_REUSEPORT = 15

            @staticmethod
            def socket(*args, **kwargs):
                return Sock(socket.socket(*args, **kwargs))

        ok, reason = reuseport_available(socket_module=Module)
        assert not ok

    def test_auto_mode_falls_back_to_fdpass(self, monkeypatch):
        monkeypatch.setattr(
            "repro.transport.sharded.reuseport_available",
            lambda *a, **k: (False, "forced off for test"))
        srv = make_server(mode="auto", workers=1)
        srv._select_mode()
        assert srv.mode == "fdpass"
        assert srv.mode_reason == "forced off for test"

    def test_explicit_reuseport_raises_when_unavailable(
            self, monkeypatch):
        monkeypatch.setattr(
            "repro.transport.sharded.reuseport_available",
            lambda *a, **k: (False, "forced off for test"))
        srv = make_server(mode="reuseport", workers=1)
        with pytest.raises(TransportError, match="forced off"):
            srv._select_mode()


# ---------------------------------------------------------------------------
# Control-plane framing
# ---------------------------------------------------------------------------

class TestControlProtocol:
    def test_name_roundtrip(self):
        packed = _pack_name("Grid") + b"tail"
        name, offset = _unpack_name(packed, 0)
        assert name == "Grid"
        assert packed[offset:] == b"tail"

    def test_truncated_name_raises(self):
        packed = _pack_name("GridData")
        with pytest.raises(ProtocolError):
            _unpack_name(packed[:4], 0)
        with pytest.raises(ProtocolError):
            _unpack_name(b"\xff", 0)

    def test_oversized_name_raises(self):
        with pytest.raises(ProtocolError):
            _pack_name("x" * 70000)

    @pytest.mark.timeout(30)
    def test_control_socket_roundtrip(self):
        a, b = socket.socketpair()
        left, right = ControlSocket(a), ControlSocket(b)
        try:
            left.send(Ctl.BARRIER, b"\x00\x00\x00\x07")
            left.send(Ctl.STOP)
            assert right.recv(5) == (Ctl.BARRIER,
                                     b"\x00\x00\x00\x07", None)
            assert right.recv(5) == (Ctl.STOP, b"", None)
        finally:
            left.close()
            right.close()

    @pytest.mark.timeout(30)
    def test_control_socket_fd_passing_order(self):
        a, b = socket.socketpair()
        left, right = ControlSocket(a), ControlSocket(b)
        pipes = [socket.socketpair() for _ in range(3)]
        try:
            for i, (ours, theirs) in enumerate(pipes):
                left.send(Ctl.BCAST, b"interleaved")
                left.send_fd(Ctl.CONN, f"peer{i}".encode(),
                             theirs.fileno())
            for i, (ours, theirs) in enumerate(pipes):
                kind, _payload, fd = right.recv(5)
                assert (kind, fd) == (Ctl.BCAST, None)
                kind, payload, fd = right.recv(5)
                assert kind == Ctl.CONN
                assert payload == f"peer{i}".encode()
                assert fd is not None
                # prove the k-th fd really is the k-th socket
                dup = socket.socket(fileno=fd)
                ours.sendall(f"ping{i}".encode())
                dup.settimeout(5)
                assert dup.recv(16) == f"ping{i}".encode()
                dup.close()
        finally:
            left.close()
            right.close()
            for ours, theirs in pipes:
                ours.close()
                theirs.close()

    def test_bad_length_raises(self):
        a, b = socket.socketpair()
        left, right = ControlSocket(a), ControlSocket(b)
        try:
            a.sendall(struct.pack(">IB", 0, 0))
            with pytest.raises(ProtocolError):
                right.recv(5)
        finally:
            left.close()
            right.close()

    def test_worker_config_is_picklable(self):
        import pickle
        config = WorkerConfig(index=3, mode="fdpass",
                              host="127.0.0.1", port=0,
                              policy="block",
                              max_queue_bytes=1024,
                              block_timeout=1.0,
                              max_frame_len=1 << 20)
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config
        assert clone.label == "w3"


# ---------------------------------------------------------------------------
# End-to-end across processes
# ---------------------------------------------------------------------------

def available_modes():
    modes = ["fdpass"]
    if reuseport_available()[0]:
        modes.append("reuseport")
    return modes


class TestShardedEndToEnd:
    @pytest.mark.timeout(180)
    @pytest.mark.parametrize("mode", available_modes())
    def test_fan_out_across_shards(self, mode):
        with make_server(mode=mode) as srv:
            assert srv.mode == mode
            subs = [Subscriber(srv.host, srv.port) for _ in range(8)]
            for sub in subs:
                sub.start()
            assert srv.wait_for_subscribers(8, timeout=60)
            for t in range(5):
                assert srv.publish(
                    "SimpleData",
                    {"timestep": t, "data": [t * 0.5]}) == 2
            assert srv.flush(timeout=60)
            if mode == "fdpass":
                # round-robin: a 2-way split of 8 is exactly 4+4
                stats = srv.worker_stats(timeout=60)
                counts = sorted(s["server"]["clients"]
                                for s in stats.values())
                assert counts == [4, 4]
        for sub in subs:
            sub.join(30)
            assert sub.error is None
            assert [r["timestep"] for _, r in sub.records] == \
                list(range(5))
            assert sub.conn.negotiations == 0, \
                "announcements must pre-empt FMT_REQ on every shard"

    @pytest.mark.timeout(180)
    def test_encode_once_across_workers(self):
        with make_server(workers=2) as srv:
            subs = [Subscriber(srv.host, srv.port) for _ in range(4)]
            for sub in subs:
                sub.start()
            assert srv.wait_for_subscribers(4, timeout=60)
            before = srv.context.stats.as_dict()["records_encoded"]
            for t in range(10):
                srv.publish("SimpleData",
                            {"timestep": t, "data": [1.0, 2.0]})
            assert srv.flush(timeout=60)
            after = srv.context.stats.as_dict()["records_encoded"]
            assert after - before == 10, \
                "publisher must marshal each record exactly once"
            stats = srv.worker_stats(timeout=60)
            for shard in stats.values():
                assert shard["codec"]["records_encoded"] == 0
                assert shard["codec"]["records_decoded"] == 0
        for sub in subs:
            sub.join(30)
            assert sub.error is None
            assert len(sub.records) == 10

    @pytest.mark.timeout(180)
    def test_worker_stats_and_metrics_merge(self):
        with make_server(workers=2) as srv:
            subs = [Subscriber(srv.host, srv.port) for _ in range(2)]
            for sub in subs:
                sub.start()
            assert srv.wait_for_subscribers(2, timeout=60)
            srv.publish("SimpleData", {"timestep": 0, "data": [1.0]})
            assert srv.flush(timeout=60)
            stats = srv.worker_stats(timeout=60)
            assert set(stats) == {"w0", "w1"}
            total_clients = sum(s["server"]["clients"]
                                for s in stats.values())
            assert total_clients == 2
            # every worker answered with its own replica + publisher
            for label, shard in stats.items():
                assert shard["worker"] == label
                assert shard["codec"]["records_encoded"] == 0, \
                    "workers must never re-encode"
            merged = srv.metrics_snapshot(timeout=60)
            workers_seen = {
                series["labels"].get("worker")
                for metric in merged.values()
                for series in metric["series"]}
            assert {"publisher"} <= workers_seen
        for sub in subs:
            sub.join(30)

    @pytest.mark.timeout(180)
    def test_worker_crash_does_not_stall_the_rest(self):
        with make_server(workers=2) as srv:
            subs = [Subscriber(srv.host, srv.port) for _ in range(4)]
            for sub in subs:
                sub.start()
            assert srv.wait_for_subscribers(4, timeout=60)
            srv.publish("SimpleData", {"timestep": 0, "data": [1.0]})
            assert srv.flush(timeout=60)
            victim = srv._workers[0]
            victim.process.terminate()
            victim.process.join(30)
            deadline = 100
            while victim.alive and deadline:
                threading.Event().wait(0.1)
                deadline -= 1
            assert not victim.alive
            assert srv.worker_failures == 1
            # publishing keeps reaching the surviving shard
            assert srv.publish("SimpleData",
                               {"timestep": 1, "data": [2.0]}) == 1
            assert srv.flush(timeout=60)
            survivors = [s for s in subs]
            stats = srv.stats_dict()
            assert stats["workers_alive"] == 1
        for sub in subs:
            sub.join(30)
        # the surviving shard's subscribers saw both records
        full = [sub for sub in subs
                if [r["timestep"] for _, r in sub.records] == [0, 1]]
        assert len(full) == 2


class TestShardedEvolution:
    @staticmethod
    def grid_format(specs, architecture) -> IOFormat:
        layout = compute_layout(specs, architecture=architecture)
        return IOFormat("Grid", layout.field_list)

    def make_evolved_server(self) -> ShardedBroadcastServer:
        ctx = IOContext(format_server=FormatServer())
        ctx.register_evolution(
            self.grid_format(SPECS, ctx.architecture))
        ctx.register_evolution(
            self.grid_format(V2_SPECS, ctx.architecture))
        return ShardedBroadcastServer(ctx, workers=2, mode="fdpass",
                                      start_timeout=120.0)

    @pytest.mark.timeout(180)
    def test_lineage_negotiation_served_from_every_shard(self):
        with self.make_evolved_server() as srv:
            chain = srv.context.format_server.lineage("Grid")
            assert len(chain) == 2

            def v1_context() -> IOContext:
                ctx = IOContext(format_server=FormatServer())
                ctx.register_evolution(
                    self.grid_format(SPECS, ctx.architecture))
                return ctx

            # one v1-pinned subscriber lands on each shard
            subs = [Subscriber(srv.host, srv.port, v1_context(),
                               negotiate="Grid")
                    for _ in range(2)]
            for sub in subs:
                sub.start()
            assert srv.wait_for_subscribers(2, timeout=60)
            # barrier: a publish racing an in-flight LIN_RSP would
            # legitimately hand that subscriber the current version
            assert srv.wait_for_pins("Grid", 2, timeout=60)
            modern = Subscriber(srv.host, srv.port)
            modern.start()
            assert srv.wait_for_subscribers(3, timeout=60)
            for t in range(4):
                record = {"timestep": t, "data": [t * 1.0],
                          "units": "mm"}
                assert srv.publish("Grid", record) == 2
            assert srv.flush(timeout=60)
            # one down-conversion per message for the pinned version,
            # NOT one per pinned subscriber (2) or per shard (2)
            assert srv.stats.frames_down_converted == 4
        for sub in subs:
            sub.join(30)
            assert sub.error is None
            assert sub.chosen == chain[0]
            assert len(sub.records) == 4
            for fid, record in sub.records:
                assert fid == chain[0]
                assert "units" not in record
        modern.join(30)
        assert modern.error is None
        assert len(modern.records) == 4
        for fid, record in modern.records:
            assert fid == chain[1]
            assert record["units"] == "mm"

    @pytest.mark.timeout(180)
    def test_cutover_reannounces_on_every_shard(self):
        ctx = IOContext(format_server=FormatServer())
        ctx.register_evolution(
            self.grid_format(SPECS, ctx.architecture))
        with ShardedBroadcastServer(ctx, workers=2, mode="fdpass",
                                    start_timeout=120.0) as srv:
            subs = [Subscriber(srv.host, srv.port) for _ in range(4)]
            for sub in subs:
                sub.start()
            assert srv.wait_for_subscribers(4, timeout=60)
            assert srv.publish("Grid",
                               {"timestep": 0, "data": [0.5]}) == 2
            v2 = self.grid_format(V2_SPECS, ctx.architecture)
            assert srv.cutover(v2) == 2
            assert srv.publish(
                "Grid", {"timestep": 1, "data": [1.5],
                         "units": "mm"}) == 2
            assert srv.flush(timeout=60)
            chain = ctx.format_server.lineage("Grid")
        for sub in subs:
            sub.join(30)
            assert sub.error is None
            assert [r["timestep"] for _, r in sub.records] == [0, 1]
            assert sub.records[0][0] == chain[0]
            assert sub.records[1][0] == chain[1]
            assert sub.records[1][1]["units"] == "mm"


class TestFormatMissProxy:
    @pytest.mark.timeout(180)
    def test_cold_fmt_req_is_proxied_upstream(self):
        """A format the publisher learned after the shards were seeded
        resolves through the shard's read-through replica."""
        ctx = make_context()
        with ShardedBroadcastServer(ctx, workers=1, mode="fdpass",
                                    start_timeout=120.0) as srv:
            # registered post-start: the replica has never seen it
            extra = ctx.register_layout("ExtraFormat",
                                        [("value", "integer")])
            sock = socket.create_connection((srv.host, srv.port))
            try:
                assert srv.wait_for_subscribers(1, timeout=60)
                sock.sendall(Frame(
                    FrameType.FMT_REQ,
                    extra.format_id.to_bytes()).encode())
                sock.settimeout(30)
                buf = bytearray()
                fmt_rsp = None
                while fmt_rsp is None:
                    chunk = sock.recv(1 << 16)
                    assert chunk, "worker closed the connection"
                    buf.extend(chunk)
                    for frame in iter_frames(buf):
                        if frame.type == FrameType.FMT_RSP:
                            fmt_rsp = frame
                assert fmt_rsp.payload.startswith(
                    extra.format_id.to_bytes())
            finally:
                sock.close()

    @pytest.mark.timeout(180)
    def test_unknown_fmt_req_gets_fmt_err(self):
        with make_server(workers=1) as srv:
            sock = socket.create_connection((srv.host, srv.port))
            try:
                assert srv.wait_for_subscribers(1, timeout=60)
                sock.sendall(Frame(FrameType.FMT_REQ,
                                   b"\xde\xad\xbe\xef" * 2).encode())
                sock.settimeout(30)
                buf = bytearray()
                reply = None
                while reply is None:
                    chunk = sock.recv(1 << 16)
                    assert chunk, "worker closed the connection"
                    buf.extend(chunk)
                    for frame in iter_frames(buf):
                        if frame.type == FrameType.FMT_ERR:
                            reply = frame
                assert b"no format" in reply.payload
            finally:
                sock.close()
