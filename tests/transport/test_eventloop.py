"""Event-loop server: many clients, one thread, per-client failure."""

import os
import socket
import threading

import pytest

from repro.errors import FrameTooLargeError, ProtocolError
from repro.transport.eventloop import (
    ClientHandle, EventLoopServer, Poller, iter_frames,
)
from repro.transport.messages import Frame, FrameType
from repro.transport.tcp import TCPChannel


def data(payload: bytes) -> Frame:
    return Frame(FrameType.DATA, payload)


class EchoHandler:
    """Echoes every frame back; records lifecycle callbacks."""

    def __init__(self):
        self.server = None
        self.connected = []
        self.disconnected = []
        self.lock = threading.Lock()

    def on_connect(self, client):
        with self.lock:
            self.connected.append(client.id)

    def on_frame(self, client, frame):
        self.server.enqueue(client, frame.encode())

    def on_disconnect(self, client, reason):
        with self.lock:
            self.disconnected.append((client.id, reason))


def echo_server(**kwargs):
    handler = EchoHandler()
    server = EventLoopServer(handler=handler, **kwargs)
    handler.server = server
    return server, handler


class TestEventLoopServer:
    def test_echo_roundtrip(self):
        server, _handler = echo_server()
        with server:
            ch = TCPChannel.connect(server.host, server.port)
            ch.send(data(b"hello loop"))
            frame = ch.recv(timeout=5)
            assert frame.type == FrameType.DATA
            assert frame.payload == b"hello loop"
            ch.close()

    def test_many_clients_one_thread(self):
        server, _handler = echo_server()
        with server:
            channels = [TCPChannel.connect(server.host, server.port)
                        for _ in range(32)]
            assert server.wait_for_clients(32, timeout=5)
            for i, ch in enumerate(channels):
                ch.send(data(f"client-{i}".encode()))
            for i, ch in enumerate(channels):
                assert ch.recv(timeout=5).payload == \
                    f"client-{i}".encode()
            for ch in channels:
                ch.close()
        assert server.clients_accepted == 32

    def test_split_frame_reassembled(self):
        """Frames arriving a few bytes at a time still parse."""
        server, _handler = echo_server()
        with server:
            sock = socket.create_connection((server.host, server.port))
            raw = data(b"sliced").encode()
            for i in range(len(raw)):
                sock.sendall(raw[i:i + 1])
            buf = bytearray()
            frames = []
            while not frames:
                chunk = sock.recv(4096)
                assert chunk, "server closed instead of echoing"
                buf.extend(chunk)
                frames = list(iter_frames(buf))
            assert frames[0].payload == b"sliced"
            sock.close()

    def test_oversized_frame_closes_only_that_client(self):
        server, handler = echo_server(max_frame_len=1024)
        with server:
            good = TCPChannel.connect(server.host, server.port)
            bad = socket.create_connection((server.host, server.port))
            assert server.wait_for_clients(2, timeout=5)
            # length prefix far beyond the cap; payload never sent
            bad.sendall((1 << 20).to_bytes(4, "big"))
            assert bad.recv(4096) == b""  # server hung up on us
            good.send(data(b"still fine"))
            assert good.recv(timeout=5).payload == b"still fine"
            good.close()
        reasons = [r for _id, r in handler.disconnected
                   if isinstance(r, FrameTooLargeError)]
        assert len(reasons) == 1
        assert reasons[0].length == 1 << 20
        assert reasons[0].limit == 1024

    def test_zero_length_frame_rejected(self):
        server, handler = echo_server()
        with server:
            sock = socket.create_connection((server.host, server.port))
            sock.sendall(b"\x00\x00\x00\x00")
            assert sock.recv(4096) == b""
            sock.close()
        assert any(isinstance(r, ProtocolError)
                   for _id, r in handler.disconnected)

    def test_handler_error_closes_one_client(self):
        class Exploding(EchoHandler):
            def on_frame(self, client, frame):
                if frame.payload == b"boom":
                    raise RuntimeError("handler bug")
                super().on_frame(client, frame)

        handler = Exploding()
        server = EventLoopServer(handler=handler)
        handler.server = server
        with server:
            victim = TCPChannel.connect(server.host, server.port)
            bystander = TCPChannel.connect(server.host, server.port)
            assert server.wait_for_clients(2, timeout=5)
            victim.send(data(b"boom"))
            bystander.send(data(b"ok"))
            assert bystander.recv(timeout=5).payload == b"ok"
            assert victim.recv(timeout=5) is None  # evicted cleanly
            victim.close()
            bystander.close()
        assert any(isinstance(r, RuntimeError)
                   for _id, r in handler.disconnected)

    def test_flush_and_enqueue(self):
        server, _handler = echo_server()
        with server:
            sock = socket.create_connection((server.host, server.port))
            assert server.wait_for_clients(1, timeout=5)
            (client,) = server.clients()
            payload = data(b"pushed").encode()
            assert server.enqueue(client, payload)
            assert server.flush(timeout=5)
            buf = bytearray()
            while True:
                buf.extend(sock.recv(4096))
                frames = list(iter_frames(buf))
                if frames:
                    break
            assert frames[0].payload == b"pushed"
            sock.close()

    def test_graceful_close_delivers_queued_frames(self):
        """request_close(graceful=True) drains the queue and FINs —
        the peer sees every frame, then a clean EOF, never a RST."""
        server, _handler = echo_server()
        with server:
            sock = socket.create_connection((server.host, server.port))
            assert server.wait_for_clients(1, timeout=5)
            (client,) = server.clients()
            for i in range(50):
                server.enqueue(client, data(b"%03d" % i).encode())
            server.request_close(client, None, graceful=True)
            buf = bytearray()
            while True:
                chunk = sock.recv(1 << 16)
                if not chunk:
                    break
                buf.extend(chunk)
            frames = list(iter_frames(buf))
            assert [f.payload for f in frames] == \
                [b"%03d" % i for i in range(50)]
            sock.close()

    def test_enqueue_after_close_refused(self):
        server, _handler = echo_server()
        with server:
            ch = TCPChannel.connect(server.host, server.port)
            assert server.wait_for_clients(1, timeout=5)
            (client,) = server.clients()
            ch.close()

            def gone():
                return not server.enqueue(client, b"\0\0\0\1\1")
            deadline = 50
            while not gone() and deadline:
                deadline -= 1
                import time
                time.sleep(0.05)
            assert gone()

    def test_close_idempotent(self):
        server, _handler = echo_server()
        server.start()
        server.close()
        server.close()  # second close must be a no-op


class TestDropOldest:
    def _client_with_queue(self, server, frames):
        client = ClientHandle(0, socket.socket(), ("test", 0))
        for payload, droppable in frames:
            server.enqueue(client, payload, droppable=droppable)
        return client

    def test_drops_oldest_droppable_only(self):
        server = EventLoopServer()  # never started: queue logic only
        client = self._client_with_queue(server, [
            (b"a" * 10, True), (b"b" * 10, False), (b"c" * 10, True),
        ])
        freed, dropped = server.drop_oldest(client, 15)
        assert (freed, dropped) == (20, 2)
        remaining = [bytes(v) for v, _d in client.write_queue]
        assert remaining == [b"b" * 10]  # control frame preserved
        assert client.queued_bytes == 10
        server.close()

    def test_never_drops_partially_sent_head(self):
        server = EventLoopServer()
        client = self._client_with_queue(server, [
            (b"a" * 10, True), (b"b" * 10, True),
        ])
        client.head_offset = 3  # head frame is mid-send
        freed, dropped = server.drop_oldest(client, 100)
        assert (freed, dropped) == (10, 1)
        assert bytes(client.write_queue[0][0]) == b"a" * 10
        server.close()

    def test_never_drops_in_flight_sendmsg_window(self):
        """Entries snapshotted into an in-progress sendmsg window are
        untouchable: dropping them would desynchronize the accounting
        the loop thread performs after the send returns."""
        server = EventLoopServer()
        client = self._client_with_queue(server, [
            (b"a" * 10, True), (b"b" * 10, True), (b"c" * 10, True),
        ])
        client.in_flight = 2  # loop thread is sending entries 0-1
        freed, dropped = server.drop_oldest(client, 100)
        assert (freed, dropped) == (10, 1)
        remaining = [bytes(v) for v, _d in client.write_queue]
        assert remaining == [b"a" * 10, b"b" * 10]
        assert client.queued_bytes == 20
        server.close()

    def test_writable_accounting_immune_to_concurrent_drop(self):
        """The publisher racing drop_oldest into the middle of a
        sendmsg must not corrupt post-send accounting: bytes the
        kernel accepted belong to the snapshotted window entries, so
        none of those entries may disappear before they're accounted.
        (Deterministic interleaving of the race REVIEW.md flagged.)"""
        server = EventLoopServer()

        class RacingSock:
            """sendmsg that triggers a concurrent drop mid-call."""

            def fileno(self):
                return -1

            def sendmsg(self, window):
                server.drop_oldest(box["client"], 15)
                return 10  # kernel accepted exactly the first frame

        box = {}
        client = ClientHandle(0, RacingSock(), ("test", 0))
        box["client"] = client
        for payload in (b"a" * 10, b"b" * 10, b"c" * 10):
            server.enqueue(client, payload, droppable=True)
        server._writable(client)
        # frame "a" was sent and accounted; "b" and "c" must still be
        # queued intact (the drop found nothing safely removable)
        assert client.frames_sent == 1
        assert client.head_offset == 0
        assert [bytes(v) for v, _d in client.write_queue] == \
            [b"b" * 10, b"c" * 10]
        assert client.queued_bytes == 20
        assert client.in_flight == 0
        server.close()

    def test_drop_notifies_blocked_queue_waiters(self):
        """Bytes freed by drop_oldest must wake wait_queue_below
        immediately, not only after the next socket write."""
        import time

        server = EventLoopServer()
        client = self._client_with_queue(server, [
            (b"a" * 100, True), (b"b" * 100, True),
        ])
        box = {}

        def waiter():
            box["ok"] = server.wait_queue_below(client, 150, timeout=5)

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.1)  # let the waiter block on the condition
        freed, _dropped = server.drop_oldest(client, 50)
        assert freed == 100
        thread.join(2)
        assert not thread.is_alive(), \
            "drop_oldest freed bytes but never notified waiters"
        assert box["ok"] is True
        server.close()


class TestPoller:
    def test_wake_interrupts_poll(self):
        poller = Poller()
        box = {}

        def waiter():
            box["ready"] = poller.poll(timeout=5)

        thread = threading.Thread(target=waiter)
        thread.start()
        poller.wake()
        thread.join(5)
        assert not thread.is_alive()
        assert box["ready"] == []  # wakeups are drained, not surfaced
        poller.close()


class TestIterFrames:
    def test_partial_then_complete(self):
        raw = data(b"abc").encode() + data(b"defg").encode()
        buf = bytearray(raw[:5])
        assert list(iter_frames(buf)) == []
        buf.extend(raw[5:])
        frames = list(iter_frames(buf))
        assert [f.payload for f in frames] == [b"abc", b"defg"]
        assert not buf

    def test_oversized_raises(self):
        buf = bytearray((1 << 20).to_bytes(4, "big"))
        with pytest.raises(FrameTooLargeError):
            list(iter_frames(buf, max_frame_len=1024))


class TestObsRetire:
    """Closing a server folds its counter totals into the persistent
    process-wide metrics, so a scrape taken after the server object is
    garbage-collected still shows its frame history (the live-sampling
    collector is a weakref and dies with the server)."""

    @staticmethod
    def _series_value(name, labels):
        from repro.obs.registry import REGISTRY
        entry = REGISTRY.snapshot().get(name)
        for series in (entry or {}).get("series", ()):
            if series["labels"] == labels:
                return series["value"]
        return 0

    def test_close_folds_totals_past_gc(self):
        import gc
        out = {"direction": "out"}
        before = self._series_value("repro_transport_frames_total", out)
        server, _handler = echo_server()
        with server:
            ch = TCPChannel.connect(server.host, server.port)
            ch.send(data(b"ping"))
            assert ch.recv(timeout=5).payload == b"ping"
            ch.close()
        server = None
        gc.collect()  # weakref collector is gone; fold must remain
        after = self._series_value("repro_transport_frames_total", out)
        assert after >= before + 1

    def test_second_close_does_not_double_fold(self):
        out = {"direction": "out"}
        server, _handler = echo_server()
        with server:
            ch = TCPChannel.connect(server.host, server.port)
            ch.send(data(b"ping"))
            assert ch.recv(timeout=5).payload == b"ping"
            ch.close()
        folded = self._series_value("repro_transport_frames_total", out)
        server.close()
        assert self._series_value(
            "repro_transport_frames_total", out) == folded

    def test_live_server_not_pre_folded(self):
        accepted = {"event": "clients_accepted"}
        server, _handler = echo_server()
        with server:
            ch = TCPChannel.connect(server.host, server.port)
            ch.send(data(b"ping"))
            assert ch.recv(timeout=5).payload == b"ping"
            # while alive the collector reports; snapshots must not
            # also include a folded copy (that would double-count)
            live = self._series_value("repro_transport_events_total",
                                      accepted)
            ch.close()
        closed = self._series_value("repro_transport_events_total",
                                    accepted)
        assert closed == live


class TestForkSafety:
    """Shard workers must never inherit another shard's sockets."""

    @pytest.mark.timeout(30)
    def test_all_live_fds_are_cloexec(self):
        import fcntl

        server, _handler = echo_server()
        server.start()
        try:
            with socket.create_connection(
                    (server.host, server.port)) as sock:
                sock.sendall(data(b"ping").encode())
                deadline = 50
                while server.client_count == 0 and deadline:
                    threading.Event().wait(0.05)
                    deadline -= 1
                fds = server.live_fds()
                # wake pair (2) + listener + the accepted client
                assert len(fds) >= 4
                for fd in fds:
                    flags = fcntl.fcntl(fd, fcntl.F_GETFD)
                    assert flags & fcntl.FD_CLOEXEC, \
                        f"fd {fd} missing FD_CLOEXEC"
                    assert not os.get_inheritable(fd)
        finally:
            server.close()

    @pytest.mark.timeout(30)
    def test_adopted_socket_is_cloexec_and_served(self):
        import fcntl

        server, _handler = echo_server(listen=False)
        server.start()
        try:
            ours, theirs = socket.socketpair()
            assert server.adopt(theirs, ("adopted", 0))
            ours.sendall(data(b"hello-adopted").encode())
            ours.settimeout(5)
            buf = bytearray()
            while not list(iter_frames(bytearray(buf))):
                chunk = ours.recv(4096)
                assert chunk, "server closed adopted socket"
                buf.extend(chunk)
            frames = list(iter_frames(buf))
            assert frames[0].payload == b"hello-adopted"
            for fd in server.live_fds():
                assert fcntl.fcntl(fd, fcntl.F_GETFD) & \
                    fcntl.FD_CLOEXEC
            ours.close()
        finally:
            server.close()

    @pytest.mark.timeout(30)
    def test_adopt_after_teardown_refuses_and_closes(self):
        server, _handler = echo_server(listen=False)
        server.start()
        server.close()
        ours, theirs = socket.socketpair()
        try:
            assert not server.adopt(theirs)
            assert theirs.fileno() == -1, \
                "refused adoption must close the socket"
        finally:
            ours.close()

    @pytest.mark.timeout(30)
    def test_injected_listener_serves_clients(self):
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(8)
        server, _handler = echo_server(listener_socket=listener)
        server.start()
        try:
            assert server.port == listener.getsockname()[1]
            with socket.create_connection(
                    (server.host, server.port)) as sock:
                sock.sendall(data(b"via-injected").encode())
                sock.settimeout(5)
                buf = bytearray(sock.recv(4096))
                frames = list(iter_frames(buf))
                assert frames and frames[0].payload == b"via-injected"
        finally:
            server.close()
