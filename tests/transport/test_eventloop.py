"""Event-loop server: many clients, one thread, per-client failure."""

import socket
import threading

import pytest

from repro.errors import FrameTooLargeError, ProtocolError
from repro.transport.eventloop import (
    ClientHandle, EventLoopServer, Poller, iter_frames,
)
from repro.transport.messages import Frame, FrameType
from repro.transport.tcp import TCPChannel


def data(payload: bytes) -> Frame:
    return Frame(FrameType.DATA, payload)


class EchoHandler:
    """Echoes every frame back; records lifecycle callbacks."""

    def __init__(self):
        self.server = None
        self.connected = []
        self.disconnected = []
        self.lock = threading.Lock()

    def on_connect(self, client):
        with self.lock:
            self.connected.append(client.id)

    def on_frame(self, client, frame):
        self.server.enqueue(client, frame.encode())

    def on_disconnect(self, client, reason):
        with self.lock:
            self.disconnected.append((client.id, reason))


def echo_server(**kwargs):
    handler = EchoHandler()
    server = EventLoopServer(handler=handler, **kwargs)
    handler.server = server
    return server, handler


class TestEventLoopServer:
    def test_echo_roundtrip(self):
        server, _handler = echo_server()
        with server:
            ch = TCPChannel.connect(server.host, server.port)
            ch.send(data(b"hello loop"))
            frame = ch.recv(timeout=5)
            assert frame.type == FrameType.DATA
            assert frame.payload == b"hello loop"
            ch.close()

    def test_many_clients_one_thread(self):
        server, _handler = echo_server()
        with server:
            channels = [TCPChannel.connect(server.host, server.port)
                        for _ in range(32)]
            assert server.wait_for_clients(32, timeout=5)
            for i, ch in enumerate(channels):
                ch.send(data(f"client-{i}".encode()))
            for i, ch in enumerate(channels):
                assert ch.recv(timeout=5).payload == \
                    f"client-{i}".encode()
            for ch in channels:
                ch.close()
        assert server.clients_accepted == 32

    def test_split_frame_reassembled(self):
        """Frames arriving a few bytes at a time still parse."""
        server, _handler = echo_server()
        with server:
            sock = socket.create_connection((server.host, server.port))
            raw = data(b"sliced").encode()
            for i in range(len(raw)):
                sock.sendall(raw[i:i + 1])
            buf = bytearray()
            frames = []
            while not frames:
                chunk = sock.recv(4096)
                assert chunk, "server closed instead of echoing"
                buf.extend(chunk)
                frames = list(iter_frames(buf))
            assert frames[0].payload == b"sliced"
            sock.close()

    def test_oversized_frame_closes_only_that_client(self):
        server, handler = echo_server(max_frame_len=1024)
        with server:
            good = TCPChannel.connect(server.host, server.port)
            bad = socket.create_connection((server.host, server.port))
            assert server.wait_for_clients(2, timeout=5)
            # length prefix far beyond the cap; payload never sent
            bad.sendall((1 << 20).to_bytes(4, "big"))
            assert bad.recv(4096) == b""  # server hung up on us
            good.send(data(b"still fine"))
            assert good.recv(timeout=5).payload == b"still fine"
            good.close()
        reasons = [r for _id, r in handler.disconnected
                   if isinstance(r, FrameTooLargeError)]
        assert len(reasons) == 1
        assert reasons[0].length == 1 << 20
        assert reasons[0].limit == 1024

    def test_zero_length_frame_rejected(self):
        server, handler = echo_server()
        with server:
            sock = socket.create_connection((server.host, server.port))
            sock.sendall(b"\x00\x00\x00\x00")
            assert sock.recv(4096) == b""
            sock.close()
        assert any(isinstance(r, ProtocolError)
                   for _id, r in handler.disconnected)

    def test_handler_error_closes_one_client(self):
        class Exploding(EchoHandler):
            def on_frame(self, client, frame):
                if frame.payload == b"boom":
                    raise RuntimeError("handler bug")
                super().on_frame(client, frame)

        handler = Exploding()
        server = EventLoopServer(handler=handler)
        handler.server = server
        with server:
            victim = TCPChannel.connect(server.host, server.port)
            bystander = TCPChannel.connect(server.host, server.port)
            assert server.wait_for_clients(2, timeout=5)
            victim.send(data(b"boom"))
            bystander.send(data(b"ok"))
            assert bystander.recv(timeout=5).payload == b"ok"
            assert victim.recv(timeout=5) is None  # evicted cleanly
            victim.close()
            bystander.close()
        assert any(isinstance(r, RuntimeError)
                   for _id, r in handler.disconnected)

    def test_flush_and_enqueue(self):
        server, _handler = echo_server()
        with server:
            sock = socket.create_connection((server.host, server.port))
            assert server.wait_for_clients(1, timeout=5)
            (client,) = server.clients()
            payload = data(b"pushed").encode()
            assert server.enqueue(client, payload)
            assert server.flush(timeout=5)
            buf = bytearray()
            while True:
                buf.extend(sock.recv(4096))
                frames = list(iter_frames(buf))
                if frames:
                    break
            assert frames[0].payload == b"pushed"
            sock.close()

    def test_graceful_close_delivers_queued_frames(self):
        """request_close(graceful=True) drains the queue and FINs —
        the peer sees every frame, then a clean EOF, never a RST."""
        server, _handler = echo_server()
        with server:
            sock = socket.create_connection((server.host, server.port))
            assert server.wait_for_clients(1, timeout=5)
            (client,) = server.clients()
            for i in range(50):
                server.enqueue(client, data(b"%03d" % i).encode())
            server.request_close(client, None, graceful=True)
            buf = bytearray()
            while True:
                chunk = sock.recv(1 << 16)
                if not chunk:
                    break
                buf.extend(chunk)
            frames = list(iter_frames(buf))
            assert [f.payload for f in frames] == \
                [b"%03d" % i for i in range(50)]
            sock.close()

    def test_enqueue_after_close_refused(self):
        server, _handler = echo_server()
        with server:
            ch = TCPChannel.connect(server.host, server.port)
            assert server.wait_for_clients(1, timeout=5)
            (client,) = server.clients()
            ch.close()

            def gone():
                return not server.enqueue(client, b"\0\0\0\1\1")
            deadline = 50
            while not gone() and deadline:
                deadline -= 1
                import time
                time.sleep(0.05)
            assert gone()

    def test_close_idempotent(self):
        server, _handler = echo_server()
        server.start()
        server.close()
        server.close()  # second close must be a no-op


class TestDropOldest:
    def _client_with_queue(self, server, frames):
        client = ClientHandle(0, socket.socket(), ("test", 0))
        for payload, droppable in frames:
            server.enqueue(client, payload, droppable=droppable)
        return client

    def test_drops_oldest_droppable_only(self):
        server = EventLoopServer()  # never started: queue logic only
        client = self._client_with_queue(server, [
            (b"a" * 10, True), (b"b" * 10, False), (b"c" * 10, True),
        ])
        freed, dropped = server.drop_oldest(client, 15)
        assert (freed, dropped) == (20, 2)
        remaining = [bytes(v) for v, _d in client.write_queue]
        assert remaining == [b"b" * 10]  # control frame preserved
        assert client.queued_bytes == 10
        server.close()

    def test_never_drops_partially_sent_head(self):
        server = EventLoopServer()
        client = self._client_with_queue(server, [
            (b"a" * 10, True), (b"b" * 10, True),
        ])
        client.head_offset = 3  # head frame is mid-send
        freed, dropped = server.drop_oldest(client, 100)
        assert (freed, dropped) == (10, 1)
        assert bytes(client.write_queue[0][0]) == b"a" * 10
        server.close()


class TestPoller:
    def test_wake_interrupts_poll(self):
        poller = Poller()
        box = {}

        def waiter():
            box["ready"] = poller.poll(timeout=5)

        thread = threading.Thread(target=waiter)
        thread.start()
        poller.wake()
        thread.join(5)
        assert not thread.is_alive()
        assert box["ready"] == []  # wakeups are drained, not surfaced
        poller.close()


class TestIterFrames:
    def test_partial_then_complete(self):
        raw = data(b"abc").encode() + data(b"defg").encode()
        buf = bytearray(raw[:5])
        assert list(iter_frames(buf)) == []
        buf.extend(raw[5:])
        frames = list(iter_frames(buf))
        assert [f.payload for f in frames] == [b"abc", b"defg"]
        assert not buf

    def test_oversized_raises(self):
        buf = bytearray((1 << 20).to_bytes(4, "big"))
        with pytest.raises(FrameTooLargeError):
            list(iter_frames(buf, max_frame_len=1024))
