"""Connection protocol: records + on-demand format negotiation."""

import threading

import pytest

from repro.pbio.context import IOContext
from repro.pbio.format_server import FormatServer
from repro.pbio.machine import SPARC_32, X86_64
from repro.transport.connection import Connection
from repro.transport.inproc import channel_pair

SPECS = [("timestep", "integer"), ("size", "integer"),
         ("data", "float[size]")]


def make_pair(shared_server: bool = True,
              sender_arch=X86_64, receiver_arch=X86_64):
    a_ch, b_ch = channel_pair()
    if shared_server:
        server = FormatServer()
        actx = IOContext(architecture=sender_arch, format_server=server)
        bctx = IOContext(architecture=receiver_arch,
                         format_server=server)
    else:
        actx = IOContext(architecture=sender_arch,
                         format_server=FormatServer())
        bctx = IOContext(architecture=receiver_arch,
                         format_server=FormatServer())
    return Connection(actx, a_ch), Connection(bctx, b_ch)


def recv_in_thread(conn, method="receive", arg=None, timeout=5):
    box = {}

    def run():
        try:
            if method == "receive":
                box["msg"] = conn.receive(timeout=timeout)
            else:
                box["msg"] = conn.receive_as(arg, timeout=timeout)
        except Exception as exc:  # pump threads may time out benignly
            box["error"] = exc
    thread = threading.Thread(target=run)
    thread.start()
    return thread, box


class TestSharedServer:
    def test_send_receive_no_negotiation(self):
        a, b = make_pair(shared_server=True)
        a.context.register_layout("SimpleData", SPECS)
        a.send("SimpleData", {"timestep": 1, "data": [1.0]})
        msg = b.receive(timeout=5)
        assert msg.format_name == "SimpleData"
        assert msg.record["data"] == [1.0]
        assert b.negotiations == 0

    def test_counters(self):
        a, b = make_pair()
        a.context.register_layout("SimpleData", SPECS)
        for i in range(3):
            a.send("SimpleData", {"timestep": i, "data": []})
        for _ in range(3):
            b.receive(timeout=5)
        assert a.records_sent == 3
        assert b.records_received == 3

    def test_close_delivers_none(self):
        a, b = make_pair()
        a.close()
        assert b.receive(timeout=5) is None

    def test_hello_exchanges_architecture(self):
        a, b = make_pair(sender_arch=SPARC_32)
        a.context.register_layout("SimpleData", SPECS)
        a.send("SimpleData", {"timestep": 1, "data": []})
        b.receive(timeout=5)
        assert b.peer_architecture == SPARC_32.name

    def test_cross_architecture_over_connection(self):
        a, b = make_pair(sender_arch=SPARC_32, receiver_arch=X86_64)
        a.context.register_layout("SimpleData", SPECS)
        a.send("SimpleData", {"timestep": 7, "data": [2.5, 3.5]})
        msg = b.receive(timeout=5)
        assert msg.record == {"timestep": 7, "size": 2,
                              "data": [2.5, 3.5]}


class TestNegotiation:
    def test_metadata_fetched_on_demand(self):
        a, b = make_pair(shared_server=False)
        a.context.register_layout("SimpleData", SPECS)
        thread, box = recv_in_thread(b)
        a.send("SimpleData", {"timestep": 1, "data": [9.0]})
        # a must service b's FMT_REQ; it does so inside receive()
        pump, _ = recv_in_thread(a, timeout=3)
        thread.join(5)
        a.close()
        pump.join(5)
        assert box["msg"].record["data"] == [9.0]
        assert b.negotiations == 1

    def test_negotiation_happens_once_per_format(self):
        a, b = make_pair(shared_server=False)
        a.context.register_layout("SimpleData", SPECS)
        results = []

        def receiver():
            for _ in range(3):
                results.append(b.receive(timeout=5))

        def pump():
            try:
                a.receive(timeout=2)
            except Exception:
                pass

        rt = threading.Thread(target=receiver)
        pt = threading.Thread(target=pump)
        rt.start()
        pt.start()
        for i in range(3):
            a.send("SimpleData", {"timestep": i, "data": []})
        rt.join(5)
        a.close()
        pt.join(5)
        assert len(results) == 3
        assert b.negotiations == 1

    def test_receive_as_applies_conversion(self):
        a, b = make_pair(shared_server=True)
        a.context.register_layout("SimpleData",
                                  SPECS + [("quality", "float", 8)])
        b.context.register_layout("SimpleData", SPECS)
        a.send("SimpleData", {"timestep": 1, "data": [1.0],
                              "quality": 0.5})
        out = b.receive_as("SimpleData", timeout=5)
        assert out == {"timestep": 1, "size": 1, "data": [1.0]}


class TestSendEncoded:
    def test_fan_out_same_bytes(self):
        a, b = make_pair()
        a.context.register_layout("SimpleData", SPECS)
        wire = a.context.encode("SimpleData",
                                {"timestep": 1, "data": [1.0]})
        for _ in range(3):
            a.send_encoded(wire)
        for _ in range(3):
            assert b.receive(timeout=5).record["data"] == [1.0]
        assert a.records_sent == 3

    def test_garbage_rejected_before_send(self):
        import pytest as _pytest
        from repro.errors import EncodeError
        a, _b = make_pair()
        with _pytest.raises(EncodeError):
            a.send_encoded(b"not a record")


class TestPreAnnouncement:
    def test_unsolicited_fmt_rsp_imports_without_negotiation(self):
        """The broadcast fan-out pushes FMT_RSP frames ahead of data;
        a plain Connection must absorb them and decode the following
        records with zero FMT_REQ round trips."""
        from repro.transport.messages import Frame, FrameType

        a_ch, b_ch = channel_pair()
        actx = IOContext(format_server=FormatServer())
        actx.register_layout("SimpleData", SPECS)
        fmt = actx.lookup_format("SimpleData")
        announcement = fmt.format_id.to_bytes() + \
            actx.format_server.lookup_bytes(fmt.format_id)

        b = Connection(IOContext(format_server=FormatServer()), b_ch)
        a_ch.send(Frame(FrameType.FMT_RSP, announcement))
        wire = actx.encode("SimpleData", {"timestep": 7, "data": [2.0]})
        a_ch.send(Frame(FrameType.DATA, wire))
        msg = b.receive(timeout=5)
        assert msg.format_name == "SimpleData"
        assert msg.record["timestep"] == 7
        assert b.negotiations == 0
        a_ch.close()
        b.close()

    def test_short_fmt_rsp_raises_protocol_error(self):
        """A truncated announcement (< 8-byte format id) must surface
        as ProtocolError, not an internal registry error."""
        from repro.errors import ProtocolError
        from repro.transport.messages import Frame, FrameType

        a_ch, b_ch = channel_pair()
        b = Connection(IOContext(format_server=FormatServer()), b_ch)
        a_ch.send(Frame(FrameType.FMT_RSP, b"\x01\x02\x03"))
        with pytest.raises(ProtocolError, match="too short"):
            b.receive(timeout=5)
        a_ch.close()
        b.close()

    def test_corrupt_fmt_rsp_metadata_raises_protocol_error(self):
        from repro.errors import ProtocolError
        from repro.transport.messages import Frame, FrameType

        a_ch, b_ch = channel_pair()
        b = Connection(IOContext(format_server=FormatServer()), b_ch)
        payload = b"\x00" * 8 + b"\xff\xfenot metadata"
        a_ch.send(Frame(FrameType.FMT_RSP, payload))
        with pytest.raises(ProtocolError, match="unimportable"):
            b.receive(timeout=5)
        a_ch.close()
        b.close()

    def test_mismatched_fmt_rsp_id_raises_protocol_error(self):
        """Announced ID and the metadata's own digest-derived ID must
        agree; a lying peer is a protocol violation."""
        from repro.errors import ProtocolError
        from repro.transport.messages import Frame, FrameType

        actx = IOContext(format_server=FormatServer())
        actx.register_layout("SimpleData", SPECS)
        fmt = actx.lookup_format("SimpleData")
        metadata = actx.format_server.lookup_bytes(fmt.format_id)
        wrong_id = (fmt.format_id.value ^ 1).to_bytes(8, "big")

        a_ch, b_ch = channel_pair()
        b = Connection(IOContext(format_server=FormatServer()), b_ch)
        a_ch.send(Frame(FrameType.FMT_RSP, wrong_id + metadata))
        with pytest.raises(ProtocolError, match="deserialized to"):
            b.receive(timeout=5)
        a_ch.close()
        b.close()
