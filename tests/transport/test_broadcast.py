"""Broadcast publisher: encode-once fan-out, announcements, policies."""

import socket
import threading

import pytest

from repro.errors import SlowConsumerError
from repro.pbio.context import IOContext
from repro.pbio.format_server import FormatServer
from repro.transport.broadcast import (
    BackpressurePolicy, BroadcastPublisher,
)
from repro.transport.connection import Connection
from repro.transport.eventloop import iter_frames
from repro.transport.messages import Frame, FrameType
from repro.transport.tcp import TCPChannel

SPECS = [("timestep", "integer"), ("size", "integer"),
         ("data", "float[size]")]
RECORD = {"timestep": 1, "data": [1.5, 2.5]}
BIG_RECORD = {"timestep": 2, "data": [0.25] * 8192}


def make_publisher(**kwargs) -> BroadcastPublisher:
    ctx = IOContext(format_server=FormatServer())
    ctx.register_layout("SimpleData", SPECS)
    return BroadcastPublisher(ctx, **kwargs).start()


def drain_socket(sock: socket.socket) -> list[Frame]:
    """Read until EOF, return the parsed frames."""
    buf = bytearray()
    while True:
        chunk = sock.recv(1 << 16)
        if not chunk:
            break
        buf.extend(chunk)
    return list(iter_frames(buf))


class _Reader(threading.Thread):
    """Keeps one subscriber socket drained; collects its frames."""

    def __init__(self, sock: socket.socket):
        super().__init__(daemon=True)
        self.sock = sock
        self.frames: list[Frame] = []
        self.start()

    def run(self):
        try:
            self.frames = drain_socket(self.sock)
        except OSError:
            pass


class TestBroadcastBasics:
    def test_connection_subscribers_zero_negotiations(self):
        """Pre-announced formats mean ordinary Connections decode the
        stream without a single FMT_REQ round trip."""
        with make_publisher() as pub:
            results = []

            def subscribe():
                ctx = IOContext(format_server=FormatServer())
                with Connection(ctx, TCPChannel.connect(
                        pub.host, pub.port)) as conn:
                    records = []
                    while True:
                        msg = conn.receive(timeout=10)
                        if msg is None:
                            break
                        records.append(msg)
                    results.append((records, conn.negotiations))

            threads = [threading.Thread(target=subscribe)
                       for _ in range(5)]
            for t in threads:
                t.start()
            assert pub.wait_for_subscribers(5, timeout=5)
            for i in range(7):
                assert pub.publish(
                    "SimpleData",
                    {"timestep": i, "data": [float(i)]}) == 5
            pub.close()
            for t in threads:
                t.join(10)
        assert len(results) == 5
        for records, negotiations in results:
            assert negotiations == 0
            assert [m.record["timestep"] for m in records] == \
                list(range(7))
            assert all(m.format_name == "SimpleData" for m in records)

    def test_sustains_128_socket_subscribers_on_one_thread(self):
        pub = make_publisher()
        socks = [socket.create_connection((pub.host, pub.port))
                 for _ in range(128)]
        readers = [_Reader(s) for s in socks]
        try:
            assert pub.wait_for_subscribers(128, timeout=10)
            for i in range(10):
                assert pub.publish(
                    "SimpleData",
                    {"timestep": i, "data": [1.0]}) == 128
            assert pub.flush(timeout=30)
            stats = pub.stats_dict()
            assert stats["subscriber_high_water"] == 128
            assert stats["messages_broadcast"] == 10
            assert stats["formats_announced"] == 128
            assert stats["clients_evicted"] == 0
        finally:
            pub.close()
            for r in readers:
                r.join(10)
            for s in socks:
                s.close()
        for reader in readers:
            kinds = [f.type for f in reader.frames]
            assert kinds[0] == FrameType.HELLO
            assert kinds[1] == FrameType.FMT_RSP  # announced once
            assert kinds.count(FrameType.DATA) == 10
            assert kinds[-1] == FrameType.BYE

    def test_format_requests_served_from_the_same_loop(self):
        with make_publisher() as pub:
            fmt = pub.context.lookup_format("SimpleData")
            sock = socket.create_connection((pub.host, pub.port))
            sock.sendall(
                Frame(FrameType.FMT_REQ,
                      fmt.format_id.to_bytes()).encode())
            buf = bytearray()
            reply = None
            while reply is None:
                chunk = sock.recv(4096)
                assert chunk
                buf.extend(chunk)
                for frame in iter_frames(buf):
                    if frame.type == FrameType.FMT_RSP:
                        reply = frame
            assert reply.payload[:8] == fmt.format_id.to_bytes()
            # the metadata round-trips into a fresh server
            other = FormatServer()
            fid = other.import_bytes(bytes(reply.payload[8:]))
            assert fid == fmt.format_id
            sock.close()

    def test_publish_many_ships_one_batch_frame(self):
        with make_publisher() as pub:
            sock = socket.create_connection((pub.host, pub.port))
            reader = _Reader(sock)
            assert pub.wait_for_subscribers(1, timeout=5)
            records = [{"timestep": i, "data": [0.5]} for i in range(4)]
            assert pub.publish_many("SimpleData", records) == 1
            pub.close()
            reader.join(10)
            sock.close()
        kinds = [f.type for f in reader.frames]
        assert kinds.count(FrameType.DATA_BATCH) == 1

    def test_publish_encoded_matches_publish(self):
        with make_publisher() as pub:
            sock = socket.create_connection((pub.host, pub.port))
            reader = _Reader(sock)
            assert pub.wait_for_subscribers(1, timeout=5)
            wire = pub.context.encode("SimpleData", RECORD)
            assert pub.publish_encoded(wire) == 1
            assert pub.publish("SimpleData", RECORD) == 1
            pub.close()
            reader.join(10)
            sock.close()
        payloads = [f.payload for f in reader.frames
                    if f.type == FrameType.DATA]
        assert len(payloads) == 2
        assert bytes(payloads[0]) == bytes(payloads[1]) == wire

    def test_announced_once_per_client_not_per_message(self):
        with make_publisher() as pub:
            socks = [socket.create_connection((pub.host, pub.port))
                     for _ in range(2)]
            readers = [_Reader(s) for s in socks]
            assert pub.wait_for_subscribers(2, timeout=5)
            for i in range(3):
                pub.publish("SimpleData",
                            {"timestep": i, "data": [1.0]})
            assert pub.stats_dict()["formats_announced"] == 2
            pub.close()
            for r in readers:
                r.join(10)
            for s in socks:
                s.close()
        for reader in readers:
            kinds = [f.type for f in reader.frames]
            assert kinds.count(FrameType.FMT_RSP) == 1

    def test_policy_coercion(self):
        assert BackpressurePolicy.coerce("drop-oldest") is \
            BackpressurePolicy.DROP_OLDEST
        assert BackpressurePolicy.coerce(
            BackpressurePolicy.BLOCK) is BackpressurePolicy.BLOCK
        with pytest.raises(ValueError, match="unknown backpressure"):
            BackpressurePolicy.coerce("bogus")


def slow_socket(pub) -> socket.socket:
    """A subscriber that never reads, with a tiny receive buffer so
    the kernel stops absorbing the broadcast quickly."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
    sock.connect((pub.host, pub.port))
    return sock


def flood_until(pub, healthy_handle, predicate, limit=300) -> bool:
    """Publish big records until *predicate* holds on the stats.

    Paces on the healthy subscriber's queue (not wall clock) so only
    the deliberately-stuck client can ever exceed the limit."""
    for _ in range(limit):
        pub.publish("SimpleData", BIG_RECORD)
        assert pub.server.wait_queue_below(healthy_handle, 0, 10)
        if predicate(pub.stats_dict()):
            return True
    return False


def wait_until(condition, timeout=5.0) -> bool:
    """Poll for an event applied asynchronously by the loop thread
    (an eviction requested via ``request_close`` lands one poll
    iteration later)."""
    import time
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if condition():
            return True
        time.sleep(0.01)
    return condition()


class TestSlowConsumers:
    """One stuck subscriber must never stall the healthy ones."""

    QUEUE = 128 * 1024

    def _setup(self, policy, **kwargs):
        pub = make_publisher(policy=policy,
                             max_queue_bytes=self.QUEUE, **kwargs)
        healthy_sock = socket.create_connection((pub.host, pub.port))
        healthy = _Reader(healthy_sock)
        slow = slow_socket(pub)
        assert pub.wait_for_subscribers(2, timeout=5)
        handles = {c.addr: c for c in pub.server.clients()}
        healthy_handle = handles[healthy_sock.getsockname()]
        slow_handle = handles[slow.getsockname()]
        return pub, healthy, healthy_handle, slow, slow_handle

    def test_disconnect_slow_evicts_immediately(self):
        pub, healthy, healthy_handle, slow, slow_handle = \
            self._setup("disconnect-slow")
        assert flood_until(
            pub, healthy_handle, lambda s: s["clients_evicted"] >= 1)
        stats = pub.stats_dict()
        assert stats["clients_evicted"] == 1
        assert stats["frames_dropped"] == 0
        # the slow handle closed with the named error; healthy client
        # is still subscribed and keeps receiving
        assert wait_until(lambda: not slow_handle.open)
        assert pub.server.clients() == [healthy_handle]
        assert isinstance(slow_handle.close_reason, SlowConsumerError)
        sent = pub.publish("SimpleData", RECORD)
        assert sent == 1
        pub.close()
        healthy.join(10)
        assert any(f.type == FrameType.BYE for f in healthy.frames)
        slow.close()

    def test_drop_oldest_keeps_client_with_gaps(self):
        pub, healthy, healthy_handle, slow, _slow_handle = \
            self._setup("drop-oldest")
        assert flood_until(
            pub, healthy_handle, lambda s: s["frames_dropped"] >= 5)
        stats = pub.stats_dict()
        assert stats["clients_evicted"] == 0
        assert stats["subscribers"] == 2  # slow client still attached
        broadcast = stats["messages_broadcast"]
        # unstick the slow consumer, then shut down cleanly
        slow_reader = _Reader(slow)
        pub.close()
        healthy.join(10)
        slow_reader.join(10)
        slow.close()
        healthy_data = sum(
            1 for f in healthy.frames if f.type == FrameType.DATA)
        slow_data = sum(
            1 for f in slow_reader.frames if f.type == FrameType.DATA)
        assert healthy_data == broadcast  # healthy saw everything
        assert slow_data < broadcast      # slow saw a gap, not an error
        assert any(f.type == FrameType.BYE for f in slow_reader.frames)

    def test_drop_oldest_stream_stays_framed_under_trickle_reader(self):
        """Drops racing an in-flight ``sendmsg`` must never corrupt
        the wire: a subscriber that reads slowly (so windows are
        regularly mid-send while the publisher floods and drops) has
        to see a parseable stream of whole records, in order."""
        import time

        pub = make_publisher(policy="drop-oldest",
                             max_queue_bytes=64 * 1024)
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
        sock.connect((pub.host, pub.port))
        assert pub.wait_for_subscribers(1, timeout=5)
        buf = bytearray()

        def trickle():
            while True:
                chunk = sock.recv(512)  # keep a send always in flight
                if not chunk:
                    return
                buf.extend(chunk)
                time.sleep(0.0005)

        reader = threading.Thread(target=trickle, daemon=True)
        reader.start()
        for i in range(400):
            pub.publish("SimpleData",
                        {"timestep": i, "data": [0.5] * 512})
        dropped = pub.stats_dict()["frames_dropped"]
        pub.close(timeout=30)
        reader.join(30)
        assert not reader.is_alive()
        sock.close()
        assert dropped > 0  # the race path was actually exercised
        frames = list(iter_frames(buf))  # raises if the stream desynced
        sub = IOContext(format_server=FormatServer())
        steps = []
        for frame in frames:
            if frame.type == FrameType.FMT_RSP:
                sub.format_server.import_bytes(frame.payload[8:])
            elif frame.type == FrameType.DATA:
                steps.append(sub.decode(frame.payload)
                             .record["timestep"])
        assert steps == sorted(set(steps))  # whole records, in order
        assert any(f.type == FrameType.BYE for f in frames)

    def test_block_waits_then_evicts_the_stuck_client(self):
        pub, healthy, healthy_handle, slow, _slow_handle = \
            self._setup("block", block_timeout=0.2)
        assert flood_until(
            pub, healthy_handle, lambda s: s["clients_evicted"] >= 1)
        stats = pub.stats_dict()
        assert stats["block_waits"] >= 1
        assert stats["clients_evicted"] == 1
        assert wait_until(lambda: pub.subscriber_count == 1)
        assert pub.publish("SimpleData", RECORD) == 1
        pub.close()
        healthy.join(10)
        assert any(f.type == FrameType.BYE for f in healthy.frames)
        slow.close()
