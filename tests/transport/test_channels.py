"""Channel semantics: in-process and TCP."""

import threading

import pytest

from repro.errors import TransportError
from repro.transport.inproc import channel_pair
from repro.transport.messages import Frame, FrameType
from repro.transport.tcp import TCPChannel, TCPListener, tcp_pair


def data(payload: bytes) -> Frame:
    return Frame(FrameType.DATA, payload)


@pytest.fixture(params=["inproc", "tcp"])
def pair(request):
    if request.param == "inproc":
        a, b = channel_pair()
    else:
        a, b = tcp_pair()
    yield a, b
    a.close()
    b.close()


class TestChannelSemantics:
    def test_send_recv(self, pair):
        a, b = pair
        a.send(data(b"hello"))
        assert b.recv(timeout=5).payload == b"hello"

    def test_bidirectional(self, pair):
        a, b = pair
        a.send(data(b"ping"))
        assert b.recv(timeout=5).payload == b"ping"
        b.send(data(b"pong"))
        assert a.recv(timeout=5).payload == b"pong"

    def test_ordering(self, pair):
        a, b = pair
        for i in range(20):
            a.send(data(str(i).encode()))
        got = [b.recv(timeout=5).payload for _ in range(20)]
        assert got == [str(i).encode() for i in range(20)]

    def test_close_delivers_none(self, pair):
        a, b = pair
        a.send(data(b"last"))
        a.close()
        assert b.recv(timeout=5).payload == b"last"
        assert b.recv(timeout=5) is None

    def test_send_after_close_raises(self, pair):
        a, _b = pair
        a.close()
        with pytest.raises(TransportError):
            a.send(data(b"x"))

    def test_recv_timeout(self, pair):
        _a, b = pair
        with pytest.raises(TransportError, match="timed out"):
            b.recv(timeout=0.05)

    def test_large_frame(self, pair):
        a, b = pair
        payload = bytes(range(256)) * 4096  # 1 MiB
        a.send(data(payload))
        assert b.recv(timeout=10).payload == payload

    def test_stats_counters(self, pair):
        a, _b = pair
        a.send(data(b"xyz"))
        assert a.frames_sent == 1
        assert a.bytes_sent >= 3


class TestTCPSpecifics:
    def test_connect_refused(self):
        with pytest.raises(TransportError, match="cannot connect"):
            TCPChannel.connect("127.0.0.1", 1, timeout=2)

    def test_listener_accept_timeout(self):
        with TCPListener() as listener:
            with pytest.raises(TransportError, match="timed out"):
                listener.accept(timeout=0.05)

    def test_threaded_exchange(self):
        a, b = tcp_pair()
        received = []

        def reader():
            while True:
                frame = b.recv(timeout=5)
                if frame is None:
                    break
                received.append(frame.payload)

        t = threading.Thread(target=reader)
        t.start()
        for i in range(50):
            a.send(data(f"m{i}".encode()))
        a.close()
        t.join(5)
        assert received == [f"m{i}".encode() for i in range(50)]
        b.close()


class TestInprocSpecifics:
    def test_byte_time_slows_send(self):
        import time
        a, _b = channel_pair(byte_time=1e-5)
        start = time.perf_counter()
        a.send(data(b"x" * 1000))
        assert time.perf_counter() - start >= 0.01


class TestTCPCloseSemantics:
    def test_send_only_close_does_not_destroy_in_flight_frames(self):
        """Regression: a sender that never reads (its peer's HELLO is
        unread) closing right after large sends must not RST the
        stream — every frame plus end-of-stream must arrive."""
        payload = bytes(range(256)) * 512  # 128 KiB per frame
        a, b = tcp_pair()
        b.send(data(b"unread-greeting"))  # sits unread at a's socket
        for i in range(6):
            a.send(data(payload + bytes([i])))
        a.close()  # immediately after the sends
        got = []
        while True:
            frame = b.recv(timeout=10)
            if frame is None:
                break
            got.append(frame.payload)
        assert len(got) == 6
        assert all(g[:-1] == payload for g in got)
        b.close()

    def test_partial_frame_survives_recv_timeout(self):
        """Regression: a short-timeout recv that fires mid-frame must
        not desynchronize the stream."""
        import time
        a, b = tcp_pair()
        raw = data(b"x" * 100).encode()
        a._sock.sendall(raw[:7])  # first half of a frame
        with pytest.raises(TransportError, match="timed out"):
            b.recv(timeout=0.05)
        a._sock.sendall(raw[7:])
        frame = b.recv(timeout=5)
        assert frame.payload == b"x" * 100
        a.close()
        b.close()


class TestConcurrentSenders:
    def test_two_threads_one_channel_no_interleaving(self):
        """Regression: concurrent send() calls used to interleave
        partial writes and corrupt the frame stream."""
        a, b = tcp_pair()
        received = []

        def reader():
            while True:
                frame = b.recv(timeout=10)
                if frame is None:
                    break
                received.append(bytes(frame.payload))

        def writer(tag):
            payload = tag * 8000  # large enough to split sendall
            for i in range(150):
                a.send(data(payload + str(i).encode()))

        r = threading.Thread(target=reader)
        w1 = threading.Thread(target=writer, args=(b"x",))
        w2 = threading.Thread(target=writer, args=(b"y",))
        r.start()
        w1.start()
        w2.start()
        w1.join(30)
        w2.join(30)
        a.close()
        r.join(30)
        assert len(received) == 300
        expected = sorted(
            tag * 8000 + str(i).encode()
            for tag in (b"x", b"y") for i in range(150))
        assert sorted(received) == expected
        b.close()


class _NoSendmsgSocket:
    """Socket proxy without sendmsg — forces the chunked-join path."""

    def __init__(self, sock):
        self._real = sock

    def __getattr__(self, name):
        if name == "sendmsg":
            raise AttributeError(name)
        return getattr(self._real, name)


class TestSendMany:
    def test_many_small_frames_ordered(self):
        """Scatter-gather path: far more frames than one iovec batch,
        with partial writes forced by a concurrent reader."""
        a, b = tcp_pair()
        received = []

        def reader():
            while True:
                frame = b.recv(timeout=10)
                if frame is None:
                    break
                received.append(bytes(frame.payload))

        r = threading.Thread(target=reader)
        r.start()
        frames = [data(b"f%05d" % i + b"." * 1024)
                  for i in range(2000)]
        a.send_many(frames)
        assert a.frames_sent == 2000
        a.close()
        r.join(30)
        assert received == [bytes(f.payload) for f in frames]
        b.close()

    def test_fallback_without_sendmsg_chunks_the_join(self):
        """Where sendmsg is unavailable the frames ship via bounded
        joins — same bytes on the wire, no full-batch copy."""
        a, b = tcp_pair()
        a._sock = _NoSendmsgSocket(a._sock)
        received = []

        def reader():
            while True:
                frame = b.recv(timeout=10)
                if frame is None:
                    break
                received.append(bytes(frame.payload))

        r = threading.Thread(target=reader)
        r.start()
        # three frames of 600 KiB exceed the 1 MiB fallback chunk
        frames = [data(bytes([i]) * (600 * 1024)) for i in range(3)]
        a.send_many(frames)
        a.close()
        r.join(30)
        assert received == [bytes(f.payload) for f in frames]
        b.close()

    def test_empty_send_many_is_a_noop(self):
        a, _b = tcp_pair()
        a.send_many([])
        assert a.frames_sent == 0
        a.close()
        _b.close()


class TestFrameCap:
    def test_oversized_frame_raises_named_error(self):
        from repro.errors import FrameTooLargeError

        a, b = tcp_pair(max_frame_len=1024)
        a.send(data(b"z" * 2048))
        with pytest.raises(FrameTooLargeError) as info:
            b.recv(timeout=5)
        assert info.value.length == 2048 + 1
        assert info.value.limit == 1024
        a.close()
        b.close()

    def test_frames_under_the_cap_still_flow(self):
        a, b = tcp_pair(max_frame_len=1024)
        a.send(data(b"k" * 512))
        assert b.recv(timeout=5).payload == b"k" * 512
        a.close()
        b.close()
