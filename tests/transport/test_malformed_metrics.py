"""Malformed wire inputs are counted, and healthy peers survive them.

The hardening's transport-level contract: a hostile or corrupt frame
is rejected with a typed error and recorded under
``repro_malformed_frames_total`` — the endpoint (and, on the event
loop, every *other* client) keeps working.
"""

from __future__ import annotations

import socket
import struct
import time

import pytest

from repro.errors import DecodeError, ProtocolError
from repro.obs import runtime
from repro.obs.metrics import MALFORMED_FRAMES
from repro.pbio.context import IOContext
from repro.pbio.format_server import FormatServer
from repro.transport.connection import Connection
from repro.transport.eventloop import EventLoopServer
from repro.transport.inproc import channel_pair
from repro.transport.messages import Frame, FrameType, frame_bytes

SPECS = [("timestep", "integer"), ("size", "integer"),
         ("data", "float[size]")]


@pytest.fixture(autouse=True)
def _obs_on():
    saved = runtime.enabled
    runtime.enabled = True
    yield
    runtime.enabled = saved


def _count(layer: str, reason: str) -> float:
    return MALFORMED_FRAMES.labels(layer, reason).value


def make_pair():
    a_ch, b_ch = channel_pair()
    server = FormatServer()
    actx = IOContext(format_server=server)
    bctx = IOContext(format_server=server)
    return Connection(actx, a_ch), Connection(bctx, b_ch)


class TestConnectionCounters:
    def test_corrupt_record_counts_bad_record(self):
        a, b = make_pair()
        a.context.register_layout("SimpleData", SPECS)
        wire = bytearray(
            a.context.encode("SimpleData",
                             {"timestep": 1, "data": [1.0, 2.0]}))
        # smash the sizing field so the validated decoder rejects it
        struct.pack_into("<i", wire, 16 + 4, 0x7FFFFFFF)
        before = _count("connection", "bad_record")
        a.channel.send(Frame(FrameType.DATA, bytes(wire)))
        with pytest.raises(DecodeError):
            b.receive(timeout=5)
        assert _count("connection", "bad_record") == before + 1

    def test_short_fmt_rsp_counts(self):
        a, b = make_pair()
        before = _count("connection", "bad_fmt_rsp")
        a.channel.send(Frame(FrameType.FMT_RSP, b"\x00\x01"))
        a.context.register_layout("SimpleData", SPECS)
        a.send("SimpleData", {"timestep": 1, "data": []})
        with pytest.raises(ProtocolError, match="too short"):
            b.receive(timeout=5)
        assert _count("connection", "bad_fmt_rsp") == before + 1

    def test_bad_fmt_req_counts_and_is_protocol_error(self):
        a, b = make_pair()
        a.context.register_layout("SimpleData", SPECS)
        before = _count("connection", "bad_fmt_req")
        # a FMT_REQ whose payload is not an 8-byte format id used to
        # escape as UnknownFormatError from FormatID.from_bytes
        a.channel.send(Frame(FrameType.FMT_REQ, b"\x01\x02"))
        a.send("SimpleData", {"timestep": 1, "data": []})
        with pytest.raises(ProtocolError, match="malformed FMT_REQ"):
            b.receive(timeout=5)
        assert _count("connection", "bad_fmt_req") == before + 1

    def test_unexpected_frame_counts(self):
        a, b = make_pair()
        before = _count("connection", "unexpected_frame")
        a.channel.send(Frame(FrameType.STATS_RSP, b""))
        a.context.register_layout("SimpleData", SPECS)
        a.send("SimpleData", {"timestep": 1, "data": []})
        with pytest.raises(ProtocolError, match="unexpected frame"):
            b.receive(timeout=5)
        assert _count("connection", "unexpected_frame") == before + 1

    def test_send_encoded_rejects_lying_header(self):
        a, _b = make_pair()
        a.context.register_layout("SimpleData", SPECS)
        wire = bytearray(
            a.context.encode("SimpleData", {"timestep": 1, "data": []}))
        struct.pack_into(">I", wire, 12, len(wire))  # body_len lies
        with pytest.raises(DecodeError, match="truncated"):
            a.send_encoded(bytes(wire))


class TestEventLoopCounters:
    def _connect(self, server):
        sock = socket.create_connection((server.host, server.port),
                                        timeout=5)
        return sock

    def _wait(self, predicate, timeout=5.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return True
            time.sleep(0.01)
        return False

    def test_zero_length_and_oversized_counted_per_client(self):
        with EventLoopServer(max_frame_len=1024) as server:
            z0 = _count("eventloop", "zero_length_frame")
            o0 = _count("eventloop", "oversized_frame")

            bad_zero = self._connect(server)
            healthy = self._connect(server)
            assert server.wait_for_clients(2, timeout=5)

            bad_zero.sendall(struct.pack(">I", 0))
            assert self._wait(
                lambda: _count("eventloop",
                               "zero_length_frame") == z0 + 1)

            bad_big = self._connect(server)
            bad_big.sendall(struct.pack(">I", 1 << 20))
            assert self._wait(
                lambda: _count("eventloop",
                               "oversized_frame") == o0 + 1)

            # the healthy peer is still connected and served
            healthy.sendall(frame_bytes(FrameType.HELLO, b"x86"))
            assert self._wait(lambda: server.totals()
                              ["frames_received"] >= 1)
            assert any(c.sock for c in server.clients())
            bad_zero.close()
            bad_big.close()
            healthy.close()

    def test_unknown_frame_type_counted(self):
        with EventLoopServer() as server:
            b0 = _count("eventloop", "bad_frame")
            sock = self._connect(server)
            payload = bytes([0xEE]) + b"junk"
            sock.sendall(struct.pack(">I", len(payload)) + payload)
            assert self._wait(
                lambda: _count("eventloop", "bad_frame") == b0 + 1)
            sock.close()
