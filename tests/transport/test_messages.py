"""Frame encoding."""

import pytest

from repro.errors import ProtocolError
from repro.transport.messages import (
    Frame, FrameType, decode_frame, read_frame_from,
)


class TestFrames:
    def test_encode_decode(self):
        frame = Frame(FrameType.DATA, b"payload")
        encoded = frame.encode()
        assert encoded[:4] == (8).to_bytes(4, "big")
        assert decode_frame(encoded[4:]) == frame

    def test_empty_payload(self):
        frame = Frame(FrameType.BYE, b"")
        assert decode_frame(frame.encode()[4:]) == frame

    def test_unknown_type(self):
        with pytest.raises(ProtocolError, match="unknown frame type"):
            decode_frame(b"\x7fxx")

    def test_empty_frame(self):
        with pytest.raises(ProtocolError, match="empty"):
            decode_frame(b"")


class TestReadFrameFrom:
    def _reader(self, data: bytes):
        view = memoryview(data)
        state = {"pos": 0}

        def read_exactly(n: int):
            start = state["pos"]
            if start >= len(view):
                return None
            if start + n > len(view):
                return None
            state["pos"] = start + n
            return bytes(view[start:start + n])
        return read_exactly

    def test_reads_one_frame(self):
        data = Frame(FrameType.HELLO, b"arch").encode()
        frame = read_frame_from(self._reader(data))
        assert frame.type == FrameType.HELLO
        assert frame.payload == b"arch"

    def test_eof_returns_none(self):
        assert read_frame_from(self._reader(b"")) is None

    def test_truncated_body(self):
        data = Frame(FrameType.DATA, b"full-payload").encode()[:-4]
        with pytest.raises(ProtocolError, match="mid-frame"):
            read_frame_from(self._reader(data))

    def test_zero_length_rejected(self):
        with pytest.raises(ProtocolError, match="bad frame length"):
            read_frame_from(self._reader(b"\x00\x00\x00\x00"))

    def test_oversized_rejected(self):
        with pytest.raises(ProtocolError, match="bad frame length"):
            read_frame_from(self._reader(b"\xff\xff\xff\xff"))
