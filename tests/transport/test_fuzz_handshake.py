"""Seeded fuzz over the lineage-handshake payloads.

Same discipline as the record-frame smoke
(``tests/pbio/test_fuzz_smoke.py``): every mutated LIN_REQ/LIN_RSP
frame body must either raise a typed ``ProtocolError`` or decode to a
payload whose canonical re-encode is byte-identical.  The campaign
opts into the handshake-specific mutation kinds (u8 smashing, digest
splicing) on top of the default set; minimized rejections of each
class are pinned in ``tests/golden/malformed/handshake_frames.json``.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.errors import ProtocolError
from repro.testing.fuzz import (
    HANDSHAKE_KINDS, FrameMutator, HandshakeOracle, run_fuzz,
)
from tests.golden.cases import ARCHITECTURES
from tests.golden.handshake import (
    encode_handshake_case, handshake_names,
)

ITERATIONS = int(os.environ.get("REPRO_FUZZ_ITERATIONS", "10000"))
SEED = 20260807


def _corpus() -> dict[str, bytes]:
    """Frame bodies (type byte + payload): the length prefix is the
    transport's, stripped before the handshake decoder ever runs."""
    return {f"{case}/{order}":
            encode_handshake_case(case, arch)[4:]
            for case in handshake_names()
            for order, arch in ARCHITECTURES.items()}


def test_pristine_corpus_passes_every_invariant():
    oracle = HandshakeOracle()
    for name, body in _corpus().items():
        assert oracle.check(body) == {"decoded": 1,
                                      "reencoded": 1}, name


def test_handshake_fuzz_no_invariant_violations():
    report = run_fuzz(_corpus(), HandshakeOracle(),
                      iterations=ITERATIONS, seed=SEED,
                      kinds=HANDSHAKE_KINDS)
    report.raise_for_failures()
    assert report.ok
    assert report.iterations == ITERATIONS
    # the mutator must exercise both sides of the contract
    assert report.rejected > 0
    assert report.decoded_ok > 0


def test_run_is_deterministic_for_a_seed():
    corpus = _corpus()
    a = run_fuzz(corpus, HandshakeOracle(), iterations=300, seed=7,
                 kinds=HANDSHAKE_KINDS)
    b = run_fuzz(corpus, HandshakeOracle(), iterations=300, seed=7,
                 kinds=HANDSHAKE_KINDS)
    assert (a.rejected, a.decoded_ok) == (b.rejected, b.decoded_ok)


def test_default_kinds_are_unchanged():
    """Existing seeded campaigns replay against the default tuple;
    the handshake kinds are a strict opt-in superset."""
    mut = FrameMutator(random.Random(0))
    assert mut.kinds == ("flip_byte", "flip_bit", "truncate", "extend",
                         "smash_u32", "zero_run", "ff_run",
                         "duplicate_run", "splice_header", "crossover")
    assert set(HANDSHAKE_KINDS) == set(mut.kinds) | {"smash_u8",
                                                     "splice_digest"}


def test_smash_u8_hits_structuring_bytes():
    rng = random.Random(3)
    mut = FrameMutator(rng, kinds=("smash_u8",))
    body = bytes(range(32))
    seen = set()
    for _ in range(200):
        mutated, kinds = mut.mutate(body, rounds=1)
        assert kinds == ("smash_u8",)
        assert len(mutated) == len(body)
        diff = [i for i in range(len(body)) if mutated[i] != body[i]]
        assert len(diff) <= 1
        seen.update(diff)
    assert len(seen) > 16  # sweeps offsets, not one hot spot


def test_splice_digest_writes_eight_byte_runs():
    rng = random.Random(5)
    frame = encode_handshake_case("lin_rsp_pinned_middle",
                                  ARCHITECTURES["little"])[4:]
    mut = FrameMutator(rng, [frame], kinds=("splice_digest",))
    forged_zero = forged_ff = 0
    for _ in range(300):
        mutated, _ = mut.mutate(frame, rounds=1)
        assert len(mutated) >= len(frame)  # never shrinks the body
        if b"\x00" * 8 in mutated:
            forged_zero += 1
        if b"\xff" * 8 in mutated:
            forged_ff += 1
    assert forged_zero and forged_ff  # both forgeries exercised


def test_oracle_rejections_are_protocol_errors_only():
    corpus = _corpus()
    oracle = HandshakeOracle()
    rng = random.Random(99)
    mutator = FrameMutator(rng, list(corpus.values()),
                           kinds=HANDSHAKE_KINDS)
    names = sorted(corpus)
    for i in range(500):
        body, _ = mutator.mutate(corpus[names[i % len(names)]])
        try:
            oracle.check(body)
        except ProtocolError:
            pass  # the contract: typed rejection


def test_noncanonical_spelling_is_rejected_not_normalized():
    """ok=0 with a nonzero chosen digest is the one alternate spelling
    a lenient decoder might normalize away; it must be rejected, or
    the canonical-re-encode invariant would silently hold vacuously."""
    good = encode_handshake_case("lin_rsp_no_common",
                                 ARCHITECTURES["little"])[4:]
    bad = bytearray(good)
    bad[7] ^= 0x40  # inside the zeroed chosen digest
    with pytest.raises(ProtocolError, match="not zeroed"):
        HandshakeOracle().check(bytes(bad))


def test_other_frame_types_are_outside_jurisdiction():
    with pytest.raises(ProtocolError, match="not a lineage handshake"):
        HandshakeOracle().check(b"\x01" + b"\x00" * 16)  # DATA
