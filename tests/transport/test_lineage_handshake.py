"""LIN_REQ/LIN_RSP: payload codec and point-to-point negotiation."""

import threading

import pytest

from repro.errors import ProtocolError
from repro.pbio.context import IOContext
from repro.pbio.format import FormatID, IOFormat
from repro.pbio.format_server import FormatServer
from repro.pbio.layout import compute_layout
from repro.transport.connection import Connection
from repro.transport.inproc import channel_pair
from repro.transport.messages import (
    decode_lineage_req, decode_lineage_rsp, encode_lineage_req,
    encode_lineage_rsp,
)

V1 = [("timestep", "integer"), ("size", "integer"),
      ("data", "float[size]")]
V2 = V1 + [("units", "string")]
V3 = V2 + [("quality", "float", 8)]

FIDS = tuple(FormatID(value) for value in
             (0x1111111111111111, 0x2222222222222222,
              0x3333333333333333))


def fmt(specs) -> IOFormat:
    layout = compute_layout(specs)
    return IOFormat("Grid", layout.field_list)


class TestPayloadCodec:
    def test_req_roundtrip(self):
        payload = encode_lineage_req("Grid", FIDS)
        assert decode_lineage_req(payload) == ("Grid", FIDS)

    def test_rsp_roundtrip(self):
        payload = encode_lineage_rsp("Grid", FIDS[1], FIDS)
        assert decode_lineage_rsp(payload) == ("Grid", FIDS[1], FIDS)

    def test_rsp_no_common_version(self):
        payload = encode_lineage_rsp("Grid", None, FIDS)
        assert decode_lineage_rsp(payload) == ("Grid", None, FIDS)

    def test_req_needs_a_digest(self):
        with pytest.raises(ProtocolError, match="at least one"):
            encode_lineage_req("Grid", ())

    def test_req_needs_a_name(self):
        with pytest.raises(ProtocolError, match="name"):
            encode_lineage_req("", FIDS)

    def test_rsp_chosen_must_be_in_chain(self):
        outsider = FormatID(0x4444444444444444)
        with pytest.raises(ProtocolError, match="chain"):
            encode_lineage_rsp("Grid", outsider, FIDS)

    @pytest.mark.parametrize("mangle", [
        lambda p: p[:3],                      # truncated name
        lambda p: p[:-4],                     # truncated digest list
        lambda p: p + b"\x00",                # trailing bytes
        lambda p: b"\x00" + p[1:],            # empty name
        lambda p: b"\xff" + p[1:],            # name len past payload
    ])
    def test_malformed_req_rejected(self, mangle):
        payload = mangle(encode_lineage_req("Grid", FIDS))
        with pytest.raises(ProtocolError):
            decode_lineage_req(payload)

    def test_malformed_rsp_bad_ok_flag(self):
        payload = bytearray(encode_lineage_rsp("Grid", FIDS[0], FIDS))
        payload[5] = 7  # ok flag after u8 len + 4-byte name
        with pytest.raises(ProtocolError, match="ok flag"):
            decode_lineage_rsp(bytes(payload))

    def test_malformed_rsp_unzeroed_chosen(self):
        payload = bytearray(encode_lineage_rsp("Grid", None, FIDS))
        payload[6] = 1  # nonzero byte inside the null digest
        with pytest.raises(ProtocolError, match="not zeroed"):
            decode_lineage_rsp(bytes(payload))

    def test_malformed_rsp_chosen_outside_chain(self):
        good = encode_lineage_rsp("Grid", FIDS[0], FIDS)
        bad = bytearray(good)
        bad[6:14] = FormatID(0x4444444444444444).to_bytes()
        with pytest.raises(ProtocolError, match="missing"):
            decode_lineage_rsp(bytes(bad))

    def test_utf8_name(self):
        payload = encode_lineage_req("Grille·été", FIDS[:1])
        assert decode_lineage_req(payload)[0] == "Grille·été"


def make_pair():
    a_ch, b_ch = channel_pair()
    actx = IOContext(format_server=FormatServer())
    bctx = IOContext(format_server=FormatServer())
    return Connection(actx, a_ch), Connection(bctx, b_ch)


def serve_in_thread(conn):
    """Drain one frame so *conn* services the peer's LIN_REQ; closure
    or a timeout after the test ends is expected, not an error."""
    def run():
        try:
            conn.receive(timeout=5)
        except Exception:  # noqa: BLE001 - teardown race is benign
            pass

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread


def negotiate_in_thread(conn, name="Grid"):
    box = {}

    def run():
        try:
            box["chosen"] = conn.negotiate_version(name, timeout=5)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            box["error"] = exc

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread, box


class TestConnectionNegotiation:
    def test_peer_pinned_to_common_version(self):
        sender, receiver = make_pair()
        v1, v2, v3 = fmt(V1), fmt(V2), fmt(V3)
        sender.context.register(v1)
        sender.context.register_evolution(v2)
        sender.context.register_evolution(v3)
        receiver.context.register(v1)
        receiver.context.register_evolution(v2)

        thread, box = negotiate_in_thread(receiver)
        # sender's receive loop services the LIN_REQ, then sees BYE
        serve_in_thread(sender)
        thread.join(5)
        assert box.get("chosen") == v2.format_id
        assert sender.peer_version("Grid") == v2.format_id
        assert receiver.announced_versions["Grid"] == v2.format_id

        # the sender now down-converts transparently
        sender.send_negotiated(
            "Grid", {"timestep": 3, "data": [0.5],
                     "units": "m", "quality": 1.0})
        got = receiver.receive(timeout=5)
        assert got.format_id == v2.format_id
        assert got.record["units"] == "m"
        assert "quality" not in got.record
        sender.close()
        receiver.close()

    def test_no_common_version(self):
        sender, receiver = make_pair()
        sender.context.register(fmt(V1))
        other = IOFormat("Grid", compute_layout(
            [("unrelated", "integer", 8)]).field_list)
        receiver.context.register(other)

        thread, box = negotiate_in_thread(receiver)
        serve_in_thread(sender)
        thread.join(5)
        assert box.get("chosen", "missing") is None
        assert sender.peer_version("Grid") is None
        sender.close()
        receiver.close()

    def test_send_negotiated_without_handshake_is_plain_send(self):
        a_ch, b_ch = channel_pair()
        server = FormatServer()
        sender = Connection(IOContext(format_server=server), a_ch)
        receiver = Connection(IOContext(format_server=server), b_ch)
        v1 = fmt(V1)
        sender.context.register(v1)
        sender.send_negotiated("Grid", {"timestep": 1, "data": []})
        msg = receiver.receive(timeout=5)
        assert msg.format_id == v1.format_id
        sender.close()
        receiver.close()
