"""DOM value semantics that are easy to get wrong."""

from repro.xmlcore import parse
from repro.xmlcore.dom import Element, Text


class TestTruthiness:
    def test_leaf_elements_are_truthy(self):
        # the ElementTree footgun: __len__ == 0 must not make an
        # element falsy, or `find(x) or default` silently misfires
        doc = parse("<a><leaf>text</leaf></a>")
        leaf = doc.root.find("leaf")
        assert len(leaf) == 0
        assert bool(leaf) is True

    def test_find_or_default_pattern_works(self):
        doc = parse("<a><code>7</code></a>")
        found = doc.root.find("code") or Element("fallback")
        assert found.text == "7"


class TestTextAggregation:
    def test_text_vs_text_content(self):
        doc = parse("<a>x<b>y</b>z</a>")
        assert doc.root.text == "xz"
        assert doc.root.text_content() == "xyz"

    def test_append_returns_node(self):
        elem = Element("a")
        child = elem.append(Text("data"))
        assert child.parent is elem
