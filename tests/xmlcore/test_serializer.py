"""Serialization and parse/serialize round-trips."""

import string

from hypothesis import given, strategies as st

from repro.xmlcore import (
    CData, Comment, DocumentBuilder, Element, Text, parse, serialize,
)


class TestSerialization:
    def test_empty_element(self):
        doc = parse("<a/>")
        assert serialize(doc, xml_declaration=False) == "<a />"

    def test_attributes_escaped(self):
        doc = parse('<a x="a&amp;b&quot;c"/>')
        out = serialize(doc, xml_declaration=False)
        assert "&amp;" in out and "&quot;" in out

    def test_text_escaped(self):
        doc = parse("<a>&lt;tag&gt; &amp; more</a>")
        out = serialize(doc, xml_declaration=False)
        assert out == "<a>&lt;tag&gt; &amp; more</a>"

    def test_cdata_preserved(self):
        doc = parse("<a><![CDATA[<raw>]]></a>")
        assert "<![CDATA[<raw>]]>" in serialize(doc)

    def test_comment_preserved(self):
        assert "<!-- hi -->" in serialize(parse("<a><!-- hi --></a>"))

    def test_pi_preserved(self):
        assert "<?t d?>" in serialize(parse("<a><?t d?></a>"))

    def test_xml_declaration_with_encoding(self):
        doc = parse('<?xml version="1.0" encoding="UTF-8"?><a/>')
        assert serialize(doc).startswith(
            '<?xml version="1.0" encoding="UTF-8"?>')

    def test_subtree_serialization(self):
        doc = parse("<a><b x='1'>t</b></a>")
        assert serialize(doc.root.find("b")) == '<b x="1">t</b>'

    def test_pretty_print_element_only_content(self):
        b = DocumentBuilder()
        with b.element("a"):
            b.leaf("b", "x")
        out = serialize(b.document(), indent="  ")
        assert "\n  <b>" in out

    def test_pretty_print_leaves_mixed_content_alone(self):
        doc = parse("<a>text<b/>more</a>")
        out = serialize(doc, indent="  ", xml_declaration=False)
        assert out == "<a>text<b />more</a>\n"


class TestRoundTrip:
    def assert_stable(self, text: str) -> None:
        """serialize(parse(x)) is a fixpoint after one round."""
        once = serialize(parse(text), xml_declaration=False)
        twice = serialize(parse(once), xml_declaration=False)
        assert once == twice

    def test_stability_cases(self):
        for text in [
            "<a/>",
            "<a>text</a>",
            '<a x="1" y="&amp;"/>',
            "<a><b/>mid<c>deep</c></a>",
            "<a><![CDATA[x]]><!--c--><?p d?></a>",
            '<x:a xmlns:x="urn:u"><x:b/></x:a>',
        ]:
            self.assert_stable(text)


# -- property-based round trip ------------------------------------------------

_names = st.builds(
    lambda a, b: a + b,
    st.sampled_from(string.ascii_lowercase),
    st.text(alphabet=string.ascii_lowercase + string.digits,
            max_size=6))

_texts = st.text(
    alphabet=st.characters(codec="utf-8",
                           blacklist_categories=("Cs", "Cc")),
    max_size=30)

_attr_values = _texts


@st.composite
def _elements(draw, depth: int = 0) -> Element:
    elem = Element(draw(_names))
    for name in draw(st.lists(_names, max_size=3, unique=True)):
        elem.set(name, draw(_attr_values))
    if depth < 2:
        children = draw(st.lists(st.integers(0, 2), max_size=3))
        for kind in children:
            if kind == 0:
                # empty text nodes vanish on reparse; skip them
                text = draw(_texts)
                if text:
                    elem.append(Text(text))
            elif kind == 1:
                elem.append(draw(_elements(depth=depth + 1)))
            else:
                data = draw(st.text(alphabet=string.ascii_letters,
                                    max_size=10))
                elem.append(Comment(data))
    return elem


@given(_elements())
def test_random_tree_roundtrips(elem):
    text = serialize(elem)
    reparsed = parse(text, namespaces=False).root
    assert serialize(reparsed) == text


@given(_texts)
def test_text_content_roundtrips_exactly(data):
    elem = Element("t")
    elem.append(Text(data))
    reparsed = parse(serialize(elem), namespaces=False).root
    assert reparsed.text == data


class TestCarriageReturnRoundTrip:
    """Regression: every conforming reader normalizes ``\\r`` and
    ``\\r\\n`` in content to ``\\n`` (XML 1.0 section 2.11), so a
    serializer writing a literal CR cannot round-trip text that
    contains one.  CRs must leave as ``&#13;`` — character references
    survive end-of-line normalization."""

    def test_cr_serialized_as_character_reference(self):
        elem = Element("t")
        elem.append(Text("a\rb"))
        out = serialize(elem, xml_declaration=False)
        assert out == "<t>a&#13;b</t>"

    def test_cr_text_roundtrips(self):
        for data in ("a\rb", "line1\r\nline2", "\r", "\r\n", "a\r"):
            elem = Element("t")
            elem.append(Text(data))
            reparsed = parse(serialize(elem), namespaces=False).root
            assert reparsed.text == data, repr(data)

    def test_literal_cr_still_normalized_on_parse(self):
        # the reader half of the contract, unchanged
        assert parse("<t>a\rb</t>").root.text == "a\nb"
        assert parse("<t>a\r\nb</t>").root.text == "a\nb"


@given(_attr_values)
def test_attribute_value_roundtrips_exactly(value):
    elem = Element("t")
    elem.set("a", value)
    reparsed = parse(serialize(elem), namespaces=False).root
    assert reparsed.get("a") == value
