"""Structural parsing: elements, attributes, content, prolog."""

import pytest

from repro.errors import XMLWellFormednessError
from repro.xmlcore import (
    CData, Comment, Element, ProcessingInstruction, Text, parse,
    parse_bytes,
)


class TestBasicStructure:
    def test_empty_element(self):
        doc = parse("<root/>")
        assert doc.root.tag == "root"
        assert doc.root.children == []

    def test_empty_element_with_space(self):
        assert parse("<root />").root.tag == "root"

    def test_nested_elements(self):
        doc = parse("<a><b><c/></b><d/></a>")
        root = doc.root
        assert [e.tag for e in root] == ["b", "d"]
        assert [e.tag for e in root.find("b")] == ["c"]

    def test_text_content(self):
        doc = parse("<a>hello world</a>")
        assert doc.root.text == "hello world"

    def test_mixed_content_order_preserved(self):
        doc = parse("<a>x<b/>y<c/>z</a>")
        kinds = [type(c).__name__ for c in doc.root.children]
        assert kinds == ["Text", "Element", "Text", "Element", "Text"]
        assert doc.root.text == "xyz"

    def test_parent_links(self):
        doc = parse("<a><b/></a>")
        b = doc.root.find("b")
        assert b.parent is doc.root
        assert doc.root.parent is doc
        assert b.document is doc


class TestAttributes:
    def test_attributes_parsed(self):
        doc = parse('<a x="1" y="two"/>')
        assert doc.root.get("x") == "1"
        assert doc.root.get("y") == "two"

    def test_single_quoted(self):
        assert parse("<a x='v'/>").root.get("x") == "v"

    def test_default_value(self):
        assert parse("<a/>").root.get("missing", "d") == "d"

    def test_attribute_value_normalization(self):
        # tab and newline become spaces per XML 1.0 section 3.3.3
        doc = parse('<a x="l1\nl2\tl3"/>')
        assert doc.root.get("x") == "l1 l2 l3"

    def test_entity_in_attribute(self):
        doc = parse('<a x="a&amp;b&lt;c"/>')
        assert doc.root.get("x") == "a&b<c"

    def test_char_ref_in_attribute(self):
        assert parse('<a x="&#65;&#x42;"/>').root.get("x") == "AB"


class TestCharacterData:
    def test_predefined_entities(self):
        doc = parse("<a>&lt;&gt;&amp;&apos;&quot;</a>")
        assert doc.root.text == "<>&'\""

    def test_decimal_char_reference(self):
        assert parse("<a>&#9731;</a>").root.text == "☃"

    def test_hex_char_reference(self):
        assert parse("<a>&#x2603;</a>").root.text == "☃"

    def test_cdata_section(self):
        doc = parse("<a><![CDATA[<not> &markup;]]></a>")
        (cdata,) = doc.root.children
        assert isinstance(cdata, CData)
        assert cdata.data == "<not> &markup;"
        assert doc.root.text == "<not> &markup;"

    def test_line_ending_normalization(self):
        doc = parse("<a>x\r\ny\rz</a>")
        assert doc.root.text == "x\ny\nz"


class TestPrologAndMisc:
    def test_xml_declaration(self):
        doc = parse('<?xml version="1.0" encoding="UTF-8" '
                    'standalone="yes"?><r/>')
        assert doc.xml_version == "1.0"
        assert doc.encoding == "UTF-8"
        assert doc.standalone is True

    def test_comment_in_prolog_and_content(self):
        doc = parse("<!-- before --><a><!-- inside --></a>")
        assert isinstance(doc.children[0], Comment)
        (inner,) = doc.root.children
        assert isinstance(inner, Comment)
        assert inner.data == " inside "

    def test_processing_instruction(self):
        doc = parse('<?go target stuff?><a/>')
        (pi, _root) = doc.children
        assert isinstance(pi, ProcessingInstruction)
        assert pi.target == "go"
        assert pi.data == "target stuff"

    def test_pi_without_data(self):
        doc = parse("<a><?noop?></a>")
        (pi,) = doc.root.children
        assert pi.target == "noop"
        assert pi.data == ""

    def test_doctype_with_entity_declarations(self):
        doc = parse('<!DOCTYPE r [<!ENTITY who "world">]>'
                    "<r>hello &who;</r>")
        assert doc.doctype_name == "r"
        assert doc.root.text == "hello world"

    def test_nested_entity_expansion(self):
        doc = parse('<!DOCTYPE r [<!ENTITY a "x">'
                    '<!ENTITY b "&a;y">]><r>&b;</r>')
        assert doc.root.text == "xy"

    def test_whitespace_after_root_allowed(self):
        assert parse("<a/>\n\n").root.tag == "a"


class TestParseBytes:
    def test_utf8_default(self):
        assert parse_bytes("<a>é</a>".encode("utf-8")).root.text == "é"

    def test_utf8_bom(self):
        data = b"\xef\xbb\xbf<a/>"
        assert parse_bytes(data).root.tag == "a"

    def test_declared_latin1(self):
        data = ('<?xml version="1.0" encoding="ISO-8859-1"?>'
                "<a>\xe9</a>").encode("latin-1")
        assert parse_bytes(data).root.text == "é"

    def test_utf16_bom(self):
        data = "<a>hi</a>".encode("utf-16")  # adds BOM
        assert parse_bytes(data).root.text == "hi"

    def test_bad_encoding_rejected(self):
        with pytest.raises(XMLWellFormednessError):
            parse_bytes(b'<?xml version="1.0" encoding="no-such"?><a/>')


class TestTraversal:
    DOC = ("<cat><item n='1'/><box><item n='2'/></box>"
           "<item n='3'/></cat>")

    def test_iter_descends(self):
        doc = parse(self.DOC)
        assert [e.get("n") for e in doc.iter("item")] == ["1", "2", "3"]

    def test_find_direct_children_only(self):
        doc = parse(self.DOC)
        assert doc.root.find("item").get("n") == "1"
        assert len(doc.root.find_all("item")) == 2

    def test_len_counts_element_children(self):
        assert len(parse("<a>t<b/>t<c/></a>").root) == 2

    def test_text_content_recurses(self):
        doc = parse("<a>x<b>y</b>z</a>")
        assert doc.root.text_content() == "xyz"
        assert doc.root.text == "xz"
