"""Parser edge cases: boundary inputs that trip real parsers."""

import pytest

from repro.errors import XMLWellFormednessError
from repro.xmlcore import parse, serialize


class TestDeepAndWide:
    def test_deep_nesting(self):
        depth = 300
        text = "".join(f"<n{i}>" for i in range(depth)) + "x" + \
            "".join(f"</n{i}>" for i in reversed(range(depth)))
        doc = parse(text)
        node = doc.root
        for _ in range(depth - 1):
            node = next(iter(node))
        assert node.text == "x"

    def test_many_siblings(self):
        text = "<r>" + "<c/>" * 5000 + "</r>"
        assert len(parse(text).root) == 5000

    def test_many_attributes(self):
        attrs = " ".join(f'a{i}="{i}"' for i in range(500))
        doc = parse(f"<r {attrs}/>")
        assert doc.root.get("a499") == "499"

    def test_long_text_run(self):
        body = "word " * 100_000
        assert parse(f"<r>{body}</r>").root.text == body

    def test_long_names(self):
        name = "n" + "x" * 2000
        assert parse(f"<{name}/>").root.tag == name


class TestBoundaryCharRefs:
    @pytest.mark.parametrize("ref,char", [
        ("&#x9;", "\t"), ("&#xA;", "\n"), ("&#x20;", " "),
        ("&#xD7FF;", "퟿"), ("&#xE000;", ""),
        ("&#xFFFD;", "�"), ("&#x10000;", "\U00010000"),
        ("&#x10FFFF;", "\U0010FFFF"),
    ])
    def test_legal_boundaries(self, ref, char):
        assert parse(f"<r>{ref}</r>").root.text == char

    @pytest.mark.parametrize("ref", [
        "&#x8;", "&#xB;", "&#x1F;", "&#xD800;", "&#xDFFF;",
        "&#xFFFE;", "&#xFFFF;",
    ])
    def test_illegal_boundaries(self, ref):
        with pytest.raises(XMLWellFormednessError):
            parse(f"<r>{ref}</r>")

    def test_leading_zeros_accepted(self):
        assert parse("<r>&#0000065;</r>").root.text == "A"

    def test_cr_via_reference_survives(self):
        # literal \r normalizes to \n, but &#13; must stay a CR
        assert parse("<r>&#13;</r>").root.text == "\r"


class TestEntityEdgeCases:
    def test_entity_expanding_to_markup_is_text_here(self):
        # our subset treats general-entity replacement as text, which
        # is the conservative reading for data documents
        doc = parse('<!DOCTYPE r [<!ENTITY e "&#60;notatag&#62;">]>'
                    "<r>&e;</r>")
        assert doc.root.text == "<notatag>"
        assert len(doc.root) == 0

    def test_entity_used_twice(self):
        doc = parse('<!DOCTYPE r [<!ENTITY e "v">]><r>&e;&e;</r>')
        assert doc.root.text == "vv"

    def test_first_entity_declaration_wins(self):
        doc = parse('<!DOCTYPE r [<!ENTITY e "one">'
                    '<!ENTITY e "two">]><r>&e;</r>')
        assert doc.root.text == "one"

    def test_predefined_entities_not_overridable(self):
        doc = parse('<!DOCTYPE r [<!ENTITY amp "nope">]><r>&amp;</r>')
        assert doc.root.text == "&"

    def test_billion_laughs_is_bounded(self):
        # expansion depth guard: deeply nested entities must error,
        # not consume unbounded memory
        decls = '<!ENTITY a0 "lol">' + "".join(
            f'<!ENTITY a{i} "&a{i-1};&a{i-1};">' for i in range(1, 40))
        with pytest.raises(XMLWellFormednessError, match="depth"):
            parse(f"<!DOCTYPE r [{decls}]><r>&a39;</r>")


class TestWhitespaceHandling:
    def test_whitespace_only_content_preserved(self):
        assert parse("<r>   </r>").root.text == "   "

    def test_whitespace_in_tags(self):
        assert parse("<r  \n a='1'\t/>").root.get("a") == "1"

    def test_crlf_in_attribute_normalizes_to_space(self):
        assert parse('<r a="x\r\ny"/>').root.get("a") == "x y"


class TestRoundTripEdgeCases:
    @pytest.mark.parametrize("text", [
        "<r>]] &gt;</r>",          # almost-CDATA-end
        "<r>a&amp;&amp;b</r>",     # adjacent escapes
        "<r><![CDATA[]]></r>",     # empty CDATA
        "<r><!----></r>",          # empty comment
    ])
    def test_stable(self, text):
        once = serialize(parse(text), xml_declaration=False)
        assert serialize(parse(once), xml_declaration=False) == once
