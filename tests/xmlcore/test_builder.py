"""DocumentBuilder construction API."""

import pytest

from repro.xmlcore import DocumentBuilder, parse, serialize


class TestBuilder:
    def test_simple_document(self):
        b = DocumentBuilder()
        with b.element("SimpleData"):
            b.leaf("Timestep", 9999)
            b.leaf("Size", 3355)
        doc = b.document()
        assert doc.root.tag == "SimpleData"
        assert doc.root.find("Timestep").text == "9999"

    def test_nested_contexts(self):
        b = DocumentBuilder()
        with b.element("a"):
            with b.element("b"):
                b.leaf("c", "x")
        assert serialize(b.document(), xml_declaration=False) == \
            "<a><b><c>x</c></b></a>"

    def test_attributes_via_kwargs_and_mapping(self):
        b = DocumentBuilder()
        with b.element("a", {"m": "1"}, k="2"):
            pass
        root = b.document().root
        assert root.get("m") == "1" and root.get("k") == "2"

    def test_text_and_cdata_and_comment(self):
        b = DocumentBuilder()
        with b.element("a"):
            b.text("plain")
            b.cdata("<raw>")
            b.comment(" note ")
        out = serialize(b.document(), xml_declaration=False)
        assert out == "<a>plain<![CDATA[<raw>]]><!-- note --></a>"

    def test_output_reparses(self):
        b = DocumentBuilder()
        with b.element("root", version="1"):
            for i in range(3):
                b.leaf("item", i, idx=str(i))
        doc2 = parse(serialize(b.document()))
        assert [e.text for e in doc2.root] == ["0", "1", "2"]

    def test_non_string_text_coerced(self):
        b = DocumentBuilder()
        with b.element("a"):
            b.text(12.5)
        assert b.document().root.text == "12.5"


class TestBuilderErrors:
    def test_unclosed_element_rejected(self):
        b = DocumentBuilder()
        b.start("a")
        with pytest.raises(ValueError, match="unclosed"):
            b.document()

    def test_empty_document_rejected(self):
        with pytest.raises(ValueError, match="no root"):
            DocumentBuilder().document()

    def test_second_root_rejected(self):
        b = DocumentBuilder()
        with b.element("a"):
            pass
        with pytest.raises(ValueError, match="already has a root"):
            b.start("b")

    def test_invalid_element_name(self):
        with pytest.raises(ValueError, match="invalid element name"):
            DocumentBuilder().start("1bad")

    def test_invalid_attribute_name(self):
        with pytest.raises(ValueError, match="invalid attribute name"):
            DocumentBuilder().start("a", {"bad name": "v"})

    def test_text_outside_element(self):
        with pytest.raises(ValueError):
            DocumentBuilder().text("orphan")

    def test_end_without_start(self):
        with pytest.raises(ValueError):
            DocumentBuilder().end()

    def test_cdata_terminator_rejected(self):
        b = DocumentBuilder()
        b.start("a")
        with pytest.raises(ValueError):
            b.cdata("bad ]]> here")

    def test_comment_double_hyphen_rejected(self):
        b = DocumentBuilder()
        with pytest.raises(ValueError):
            b.comment("a -- b")
