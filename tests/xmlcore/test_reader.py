"""The position-tracking reader."""

import pytest

from repro.errors import XMLWellFormednessError
from repro.xmlcore.reader import Reader, normalize_line_endings


class TestLineEndings:
    def test_crlf_and_cr_normalize(self):
        assert normalize_line_endings("a\r\nb\rc\nd") == "a\nb\nc\nd"

    def test_no_cr_is_untouched(self):
        text = "plain\ntext"
        assert normalize_line_endings(text) is text


class TestScanning:
    def test_peek_does_not_consume(self):
        r = Reader("abc")
        assert r.peek() == "a"
        assert r.peek(2) == "ab"
        assert r.pos == 0

    def test_next_consumes(self):
        r = Reader("ab")
        assert r.next() == "a"
        assert r.next() == "b"
        with pytest.raises(XMLWellFormednessError):
            r.next()

    def test_match_and_expect(self):
        r = Reader("<?xml rest")
        assert r.match("<?xml")
        assert not r.match("nope")
        r.expect(" rest")
        with pytest.raises(XMLWellFormednessError, match="expected"):
            r.expect("more")

    def test_skip_whitespace(self):
        r = Reader("  \t\n x")
        assert r.skip_whitespace() == 5
        assert r.peek() == "x"
        assert r.skip_whitespace() == 0

    def test_require_whitespace(self):
        r = Reader("x")
        with pytest.raises(XMLWellFormednessError, match="whitespace"):
            r.require_whitespace("here")

    def test_read_until(self):
        r = Reader("body-->after")
        assert r.read_until("-->", "comment") == "body"
        assert r.peek() == "a"

    def test_read_until_missing_terminator(self):
        r = Reader("never ends")
        with pytest.raises(XMLWellFormednessError, match="unterminated"):
            r.read_until("-->", "comment")

    def test_read_while_in(self):
        r = Reader("aaabbb")
        assert r.read_while_in(frozenset("a")) == "aaa"
        assert r.peek() == "b"


class TestLocation:
    def test_first_line(self):
        r = Reader("hello")
        r.pos = 3
        assert r.location() == (1, 4)

    def test_multiline(self):
        r = Reader("ab\ncd\nef")
        assert r.location(0) == (1, 1)
        assert r.location(3) == (2, 1)
        assert r.location(4) == (2, 2)
        assert r.location(6) == (3, 1)

    def test_error_carries_position(self):
        r = Reader("ab\ncd")
        r.pos = 4
        err = r.error("boom")
        assert err.line == 2 and err.column == 2
