"""Character-class predicates (XML 1.0 productions)."""

import pytest
from hypothesis import given, strategies as st

from repro.xmlcore import chars


class TestWhitespace:
    def test_the_four_whitespace_chars(self):
        for ch in " \t\r\n":
            assert chars.is_whitespace(ch)

    def test_non_whitespace(self):
        for ch in "a0-\x0b\x0c ":
            assert not chars.is_whitespace(ch)


class TestXMLChar:
    def test_common_characters_are_legal(self):
        for ch in "aZ0 é中\U0001F600":
            assert chars.is_xml_char(ch)

    def test_control_characters_are_illegal(self):
        for cp in (0x00, 0x01, 0x08, 0x0B, 0x0C, 0x0E, 0x1F):
            assert not chars.is_xml_char(chr(cp))

    def test_tab_cr_lf_are_legal(self):
        for ch in "\t\r\n":
            assert chars.is_xml_char(ch)

    def test_surrogate_block_is_illegal(self):
        assert not chars.is_xml_char("\ud800")
        assert not chars.is_xml_char("\udfff")

    def test_fffe_ffff_are_illegal(self):
        assert not chars.is_xml_char("￾")
        assert not chars.is_xml_char("￿")


class TestNameChars:
    def test_name_start(self):
        for ch in "aZ_:À中":
            assert chars.is_name_start_char(ch)

    def test_digits_cannot_start_names(self):
        for ch in "059":
            assert not chars.is_name_start_char(ch)
            assert chars.is_name_char(ch)

    def test_hyphen_and_dot_are_name_chars_only(self):
        for ch in "-.":
            assert not chars.is_name_start_char(ch)
            assert chars.is_name_char(ch)

    def test_space_is_not_a_name_char(self):
        assert not chars.is_name_char(" ")


class TestIsName:
    @pytest.mark.parametrize("name", [
        "a", "foo", "foo-bar", "foo.bar", "_x", "ns:local", "x1",
        "élément",
    ])
    def test_valid_names(self, name):
        assert chars.is_name(name)

    @pytest.mark.parametrize("name", ["", "1x", "-a", ".a", "a b"])
    def test_invalid_names(self, name):
        assert not chars.is_name(name)

    def test_ncname_excludes_colon(self):
        assert chars.is_ncname("foo")
        assert not chars.is_ncname("ns:foo")


@given(st.characters())
def test_name_start_implies_name_char(ch):
    if chars.is_name_start_char(ch):
        assert chars.is_name_char(ch)


@given(st.characters())
def test_name_chars_are_xml_chars(ch):
    if chars.is_name_char(ch):
        assert chars.is_xml_char(ch)
