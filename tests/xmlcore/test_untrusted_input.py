"""Character-reference and truncated-entity handling on hostile input.

The metadata path parses XML fetched over the network, so the same
untrusted-input discipline applies: surrogate and out-of-range code
points in character references must be rejected with the typed
well-formedness error (never ``ValueError`` out of ``chr()``), and a
document truncated mid-reference or mid-entity must fail cleanly.
"""

from __future__ import annotations

import pytest

from repro.errors import XMLWellFormednessError
from repro.xmlcore import parse
from repro.xmlcore.entities import EntityTable, decode_char_reference


def reject(text: str) -> XMLWellFormednessError:
    with pytest.raises(XMLWellFormednessError) as info:
        parse(text)
    return info.value


class TestDecodeCharReference:
    """The decoder itself, without a parser in front of it."""

    @pytest.mark.parametrize("body,char", [
        ("#65", "A"), ("#x41", "A"), ("#X41", "A"),
        ("#x10FFFF", "\U0010FFFF"), ("#1114111", "\U0010FFFF"),
        ("#xD7FF", "퟿"), ("#xE000", ""),
    ])
    def test_legal(self, body, char):
        assert decode_char_reference(body) == char

    @pytest.mark.parametrize("body", [
        # the whole surrogate block, which chr() would happily accept
        "#xD800", "#xDABC", "#xDFFF", "#55296", "#57343",
    ])
    def test_surrogates_rejected(self, body):
        with pytest.raises(XMLWellFormednessError,
                           match="not a legal XML character"):
            decode_char_reference(body)

    @pytest.mark.parametrize("body", [
        "#x110000", "#1114112", "#x7FFFFFFF", "#xFFFFFFFFFFFF",
        "#99999999999999999999",  # would MemoryError a naive chr()
    ])
    def test_out_of_range_rejected(self, body):
        with pytest.raises(XMLWellFormednessError, match="out of range"):
            decode_char_reference(body)

    @pytest.mark.parametrize("body", [
        "#", "#x", "#xG", "#12x", "# 65", "#-65", "#x-41", "#+65",
        "#0x41", "#١٢",  # non-ASCII digits must not parse
    ])
    def test_malformed_rejected(self, body):
        with pytest.raises(XMLWellFormednessError):
            decode_char_reference(body)


class TestTruncatedReferences:
    """References and entities cut off by a short read."""

    @pytest.mark.parametrize("doc", [
        "<r>&#x41",      # char ref, no terminator, EOF
        "<r>&#x41</r>",  # char ref, no terminator, markup resumes
        "<r>&#",
        "<r>&amp",
        "<r>&a",
        "<r>&",
        '<r a="&#x41"/>',
        '<r a="&amp"></r>',
    ])
    def test_unterminated_reference(self, doc):
        reject(doc)

    def test_truncated_entity_declaration(self):
        reject('<!DOCTYPE r [<!ENTITY e "v>]><r>&e;</r>')
        reject('<!DOCTYPE r [<!ENTITY e ')

    def test_entity_replacement_with_bad_char_reference(self):
        reject('<!DOCTYPE r [<!ENTITY e "&#xD800;">]><r>&e;</r>')

    def test_truncated_document_after_entity(self):
        reject('<!DOCTYPE r [<!ENTITY e "v">]><r>&e;')


class TestEntityTableExpansion:
    def test_unterminated_reference_inside_replacement(self):
        table = EntityTable()
        table.declare("e", "head &amp tail")
        with pytest.raises(XMLWellFormednessError):
            table.resolve("e")

    def test_surrogate_inside_replacement(self):
        table = EntityTable()
        table.declare("e", "ok &#xDC00; bad")
        with pytest.raises(XMLWellFormednessError):
            table.resolve("e")
