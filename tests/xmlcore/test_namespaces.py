"""Namespace resolution."""

import pytest

from repro.errors import XMLNamespaceError
from repro.xmlcore import QName, XML_NAMESPACE, parse

XSD = "http://www.w3.org/2001/XMLSchema"


class TestElementResolution:
    def test_prefixed_element(self):
        doc = parse(f'<x:a xmlns:x="{XSD}"/>')
        root = doc.root
        assert root.namespace == XSD
        assert root.prefix == "x"
        assert root.local_name == "a"
        assert root.tag == "x:a"

    def test_default_namespace(self):
        doc = parse(f'<a xmlns="{XSD}"><b/></a>')
        assert doc.root.namespace == XSD
        assert doc.root.find("b").namespace == XSD

    def test_no_namespace(self):
        doc = parse("<a/>")
        assert doc.root.namespace is None
        assert doc.root.prefix is None

    def test_default_namespace_undeclared_by_empty(self):
        doc = parse(f'<a xmlns="{XSD}"><b xmlns=""/></a>')
        assert doc.root.find("b").namespace is None

    def test_inner_redeclaration_shadows(self):
        doc = parse('<a xmlns:p="urn:one">'
                    '<p:b xmlns:p="urn:two"/><p:c/></a>')
        assert doc.root.find("b").namespace == "urn:two"
        assert doc.root.find("c").namespace == "urn:one"

    def test_xml_prefix_is_builtin(self):
        doc = parse('<a xml:space="preserve"/>')
        attr = doc.root.attributes["xml:space"]
        assert attr.namespace == XML_NAMESPACE


class TestAttributeResolution:
    def test_unprefixed_attributes_have_no_namespace(self):
        doc = parse(f'<a xmlns="{XSD}" x="1"/>')
        assert doc.root.attributes["x"].namespace is None

    def test_prefixed_attribute(self):
        doc = parse('<a xmlns:p="urn:p" p:x="1"/>')
        attr = doc.root.attributes["p:x"]
        assert attr.namespace == "urn:p"
        assert attr.local_name == "x"

    def test_get_ns(self):
        doc = parse('<a xmlns:p="urn:p" p:x="1" x="2"/>')
        assert doc.root.get_ns("urn:p", "x") == "1"
        assert doc.root.get_ns(None, "x") == "2"

    def test_duplicate_expanded_attribute_rejected(self):
        with pytest.raises(XMLNamespaceError):
            parse('<a xmlns:p="urn:p" xmlns:q="urn:p" '
                  'p:x="1" q:x="2"/>')


class TestNamespaceErrors:
    def test_undeclared_element_prefix(self):
        with pytest.raises(XMLNamespaceError):
            parse("<p:a/>")

    def test_undeclared_attribute_prefix(self):
        with pytest.raises(XMLNamespaceError):
            parse('<a p:x="1"/>')

    def test_empty_prefixed_declaration_rejected(self):
        with pytest.raises(XMLNamespaceError):
            parse('<a xmlns:p=""/>')

    def test_xmlns_prefix_cannot_be_declared(self):
        with pytest.raises(XMLNamespaceError):
            parse('<a xmlns:xmlns="urn:x"/>')

    def test_xml_prefix_cannot_be_rebound(self):
        with pytest.raises(XMLNamespaceError):
            parse('<a xmlns:xml="urn:not-the-xml-ns"/>')

    def test_multiple_colons_rejected(self):
        with pytest.raises(XMLNamespaceError):
            parse('<a:b:c xmlns:a="urn:a"/>')

    def test_namespaces_can_be_disabled(self):
        doc = parse("<p:a/>", namespaces=False)
        assert doc.root.tag == "p:a"


class TestQName:
    def test_clark_notation(self):
        q = QName.from_clark("{urn:x}local")
        assert q.namespace == "urn:x"
        assert q.local == "local"
        assert str(q) == "{urn:x}local"

    def test_no_namespace(self):
        q = QName.from_clark("local")
        assert q.namespace is None
        assert str(q) == "local"

    def test_equality_and_hash(self):
        assert QName("u", "l") == QName("u", "l")
        assert QName("u", "l") != QName("v", "l")
        assert len({QName("u", "l"), QName("u", "l")}) == 1

    def test_declarations_recorded_per_element(self):
        doc = parse('<a xmlns:p="urn:p"><b xmlns="urn:d"/></a>')
        assert doc.root.ns_declarations == {"p": "urn:p"}
        assert doc.root.find("b").ns_declarations == {"": "urn:d"}
