"""Well-formedness violations must be rejected with positions."""

import pytest

from repro.errors import XMLWellFormednessError
from repro.xmlcore import parse


def reject(text: str) -> XMLWellFormednessError:
    with pytest.raises(XMLWellFormednessError) as info:
        parse(text)
    return info.value


class TestStructuralErrors:
    def test_mismatched_tags(self):
        assert "does not match" in str(reject("<a></b>"))

    def test_unclosed_element(self):
        reject("<a><b></a>")

    def test_unterminated_document(self):
        reject("<a>")

    def test_no_root_element(self):
        reject("")
        reject("<!-- only a comment -->")

    def test_content_after_root(self):
        reject("<a/><b/>")
        reject("<a/>text")

    def test_content_before_root(self):
        reject("text<a/>")

    def test_bad_tag_name(self):
        reject("<1a/>")
        reject("< a/>")

    def test_markup_decl_in_content(self):
        reject("<a><!ELEMENT x (y)></a>")


class TestAttributeErrors:
    def test_duplicate_attribute(self):
        assert "duplicate" in str(reject('<a x="1" x="2"/>'))

    def test_unquoted_value(self):
        reject("<a x=1/>")

    def test_missing_equals(self):
        reject('<a x "1"/>')

    def test_less_than_in_value(self):
        reject('<a x="a<b"/>')

    def test_missing_whitespace_between_attributes(self):
        reject('<a x="1"y="2"/>')


class TestReferenceErrors:
    def test_undeclared_entity(self):
        assert "undeclared entity" in str(reject("<a>&nope;</a>"))

    def test_bare_ampersand(self):
        reject("<a>a & b</a>")

    def test_malformed_char_reference(self):
        reject("<a>&#xZZ;</a>")
        reject("<a>&#;</a>")

    def test_char_reference_out_of_range(self):
        reject("<a>&#x110000;</a>")

    def test_char_reference_to_illegal_char(self):
        reject("<a>&#0;</a>")
        reject("<a>&#x8;</a>")

    def test_circular_entities(self):
        reject('<!DOCTYPE r [<!ENTITY a "&b;"><!ENTITY b "&a;">]>'
               "<r>&a;</r>")

    def test_entity_with_lt_in_attribute(self):
        reject('<!DOCTYPE r [<!ENTITY bad "<">]><r x="&bad;"/>')


class TestCommentAndPIErrors:
    def test_double_hyphen_in_comment(self):
        reject("<a><!-- x -- y --></a>")

    def test_unterminated_comment(self):
        reject("<a><!-- never ends</a>")

    def test_reserved_pi_target(self):
        reject("<a><?xml bad?></a>")
        reject("<a><?XML bad?></a>")

    def test_unterminated_cdata(self):
        reject("<a><![CDATA[never ends</a>")


class TestCharacterErrors:
    def test_illegal_control_char_in_content(self):
        reject("<a>\x01</a>")

    def test_illegal_control_char_in_attribute(self):
        reject('<a x="\x01"/>')

    def test_cdata_end_in_char_data(self):
        reject("<a>bad ]]> here</a>")


class TestErrorPositions:
    def test_line_and_column_reported(self):
        err = reject("<a>\n  <b>\n</a>")
        assert err.line == 3
        assert "line 3" in str(err)

    def test_first_line_position(self):
        err = reject("<a x=1/>")
        assert err.line == 1


class TestDeclarationErrors:
    def test_bad_version(self):
        reject('<?xml version="2.0"?><a/>')

    def test_bad_standalone(self):
        reject('<?xml version="1.0" standalone="maybe"?><a/>')

    def test_misplaced_doctype(self):
        reject("<a/><!DOCTYPE a []>")
