"""Rolling format evolution across a live fleet.

The paper's restricted evolution (section 5) promises that a sender
can append fields "without causing receivers of previous versions of
the message to fail".  These scenarios prove the end-to-end story over
real loopback sockets:

* a 128-subscriber fan-out where v1-, v2- and v3-capable clients all
  negotiate their own version of one lineage and every record arrives
  decodable, exactly once, at the negotiated version;
* an upgrade wave where the publisher cuts over from v1 to v2
  mid-stream — pinned old subscribers keep decoding down-converted
  frames, un-negotiated followers switch to the new version at the
  announced boundary, and nobody drops or misdecodes a record.

Both scenarios run with observability on and assert the malformed-
frame counters never move: version skew is not an error path.
"""

import threading

import pytest

from repro.obs import runtime, snapshot
from repro.pbio.context import IOContext
from repro.pbio.format import IOFormat
from repro.pbio.format_server import FormatServer
from repro.pbio.layout import compute_layout
from repro.transport.broadcast import BroadcastPublisher
from repro.transport.connection import Connection
from repro.transport.tcp import TCPChannel

V1 = [("timestep", "integer"), ("size", "integer"),
      ("data", "float[size]")]
V2 = V1 + [("units", "string")]
V3 = V2 + [("quality", "float", 8)]
SPECS_BY_VERSION = {1: V1, 2: V2, 3: V3}

FLEET_SIZE = 128
RECORDS = 20


@pytest.fixture(autouse=True)
def _obs_on():
    saved = runtime.enabled
    runtime.enabled = True
    yield
    runtime.enabled = saved


def malformed_total() -> float:
    series = snapshot().get("repro_malformed_frames_total",
                            {"series": []})["series"]
    return sum(s["value"] for s in series)


def grid_format(specs, architecture) -> IOFormat:
    layout = compute_layout(specs, architecture=architecture)
    return IOFormat("Grid", layout.field_list)


def make_record(t: int, version: int = 3) -> dict:
    record = {"timestep": t, "data": [t * 0.5, t + 0.25]}
    if version >= 2:
        record["units"] = f"u{t}"
    if version >= 3:
        record["quality"] = t / 10.0
    return record


class Subscriber(threading.Thread):
    """One fleet member: connects, optionally negotiates its pinned
    version, then drains the stream until the publisher says BYE."""

    def __init__(self, host: str, port: int, max_version: int, *,
                 negotiate: bool = True):
        super().__init__(daemon=True)
        self.max_version = max_version
        self.negotiate = negotiate
        ctx = IOContext(format_server=FormatServer())
        for version in range(1, max_version + 1):
            ctx.register_evolution(
                grid_format(SPECS_BY_VERSION[version],
                            ctx.architecture))
        self.conn = Connection(ctx, TCPChannel.connect(host, port))
        self.chosen = None
        self.records: list = []  # (format_id, record) pairs, in order
        self.error: BaseException | None = None
        self.ready = threading.Event()

    def run(self):
        try:
            if self.negotiate:
                self.chosen = self.conn.negotiate_version("Grid",
                                                          timeout=10)
            self.ready.set()
            while True:
                msg = self.conn.receive(timeout=10)
                if msg is None:
                    break
                self.records.append((msg.format_id, msg.record))
        except BaseException as exc:  # noqa: BLE001 - asserted below
            self.error = exc
        finally:
            self.ready.set()
            self.conn.close()


def make_publisher(max_version: int) -> BroadcastPublisher:
    ctx = IOContext(format_server=FormatServer())
    for version in range(1, max_version + 1):
        ctx.register_evolution(
            grid_format(SPECS_BY_VERSION[version], ctx.architecture))
    return BroadcastPublisher(ctx).start()


def expected_fields(version: int) -> set:
    return {1: {"timestep", "size", "data"},
            2: {"timestep", "size", "data", "units"},
            3: {"timestep", "size", "data", "units",
                "quality"}}[version]


class TestMixedVersionFleet:
    def test_128_subscribers_three_versions_zero_drops(self):
        malformed_before = malformed_total()
        pub = make_publisher(max_version=3)
        versions = {fid: v for v, fid in zip(
            (1, 2, 3), pub.context.format_server.lineage("Grid"))}
        fleet = [Subscriber(pub.host, pub.port,
                            max_version=1 + (i % 3))
                 for i in range(FLEET_SIZE)]
        for sub in fleet:
            sub.start()
        assert pub.wait_for_subscribers(FLEET_SIZE, timeout=30)
        for sub in fleet:
            assert sub.ready.wait(30), "negotiation stalled"
            assert sub.error is None

        for t in range(RECORDS):
            assert pub.publish("Grid", make_record(t)) == FLEET_SIZE
        pub.close(timeout=30)
        for sub in fleet:
            sub.join(30)

        chain = pub.context.format_server.lineage("Grid")
        for sub in fleet:
            assert sub.error is None, f"subscriber died: {sub.error}"
            # pinned to the newest version it can decode
            assert sub.chosen == chain[sub.max_version - 1]
            # zero drops, zero duplicates, strict order
            assert len(sub.records) == RECORDS
            timesteps = [rec["timestep"] for _, rec in sub.records]
            assert timesteps == list(range(RECORDS))
            for fid, rec in sub.records:
                version = versions[fid]
                assert version == sub.max_version
                assert set(rec) == expected_fields(version)
                t = rec["timestep"]
                assert rec["data"] == [t * 0.5, t + 0.25]
                assert rec["size"] == 2
                if version >= 2:
                    assert rec["units"] == f"u{t}"
                if version >= 3:
                    assert rec["quality"] == t / 10.0
            # the lineage handshake was the only negotiation; format
            # metadata arrived via announcements, never FMT_REQ
            assert sub.conn.negotiations == 1

        stats = pub.stats.as_dict()
        assert stats["lineage_negotiations"] == FLEET_SIZE
        assert stats["frames_dropped"] == 0
        assert stats["clients_evicted"] == 0
        # one down-conversion per stale version per publish, not per
        # subscriber: 2 stale versions x RECORDS publishes
        assert stats["frames_down_converted"] == 2 * RECORDS
        assert malformed_total() == malformed_before


class TestUpgradeWave:
    def test_publisher_cuts_over_mid_stream(self):
        malformed_before = malformed_total()
        pub = make_publisher(max_version=1)
        v1_id = pub.context.lookup_format("Grid").format_id

        pinned = [Subscriber(pub.host, pub.port, max_version=1)
                  for _ in range(16)]
        followers = [Subscriber(pub.host, pub.port, max_version=2,
                                negotiate=False)
                     for _ in range(16)]
        fleet = pinned + followers
        for sub in fleet:
            sub.start()
        assert pub.wait_for_subscribers(len(fleet), timeout=30)
        for sub in fleet:
            assert sub.ready.wait(30)

        half = RECORDS // 2
        for t in range(half):
            assert pub.publish("Grid", make_record(t, version=1)) \
                == len(fleet)

        # mid-stream cutover: v2 becomes the stream version
        v2_fmt = grid_format(V2, pub.context.architecture)
        assert pub.cutover(v2_fmt) == len(fleet)
        v2_id = v2_fmt.format_id
        assert pub.context.format_server.lineage("Grid") == \
            (v1_id, v2_id)

        for t in range(half, RECORDS):
            assert pub.publish("Grid", make_record(t, version=2)) \
                == len(fleet)
        pub.close(timeout=30)
        for sub in fleet:
            sub.join(30)

        for sub in fleet:
            assert sub.error is None, f"subscriber died: {sub.error}"
            assert len(sub.records) == RECORDS  # zero drops
            timesteps = [rec["timestep"] for _, rec in sub.records]
            assert timesteps == list(range(RECORDS))

        for sub in pinned:
            # pinned subscribers never notice the cut: every record
            # arrives at v1, correctly down-converted
            assert sub.chosen == v1_id
            assert all(fid == v1_id for fid, _ in sub.records)
            assert all(set(rec) == expected_fields(1)
                       for _, rec in sub.records)

        for sub in followers:
            # un-negotiated followers switch exactly at the boundary
            fids = [fid for fid, _ in sub.records]
            assert fids == [v1_id] * half + [v2_id] * half
            for fid, rec in sub.records:
                if fid == v2_id:
                    assert rec["units"] == f"u{rec['timestep']}"
                else:
                    assert "units" not in rec
            # the cutover LIN_RSP announced the new stream version
            assert sub.conn.announced_versions["Grid"] == v2_id
            assert sub.conn.negotiations == 0

        stats = pub.stats.as_dict()
        assert stats["cutovers"] == 1
        assert stats["frames_dropped"] == 0
        assert stats["clients_evicted"] == 0
        # after the cut: one down-converted frame per publish for the
        # pinned v1 cohort
        assert stats["frames_down_converted"] == half
        assert malformed_total() == malformed_before
