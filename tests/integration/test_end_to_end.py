"""Whole-stack scenarios: discovery -> binding -> transport."""

import threading

import pytest

from repro.core.toolkit import XMIT
from repro.http.server import DocumentStore, MetadataHTTPServer
from repro.http.urls import publish_document
from repro.pbio.context import IOContext
from repro.pbio.format_server import FormatServer
from repro.pbio.machine import SPARC_32, SPARC_V9, X86_32, X86_64
from repro.transport.connection import Connection
from repro.transport.inproc import channel_pair
from repro.transport.tcp import tcp_pair

XSD = """
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Telemetry">
    <xsd:element name="source" type="xsd:string" />
    <xsd:element name="seq" type="xsd:unsignedInt" />
    <xsd:element name="n" type="xsd:int" />
    <xsd:element name="samples" type="xsd:double" maxOccurs="*"
                 dimensionName="n" />
  </xsd:complexType>
</xsd:schema>
"""


def endpoint(arch, server, schema_source):
    """An application endpoint: XMIT-discovered formats + context."""
    ctx = IOContext(architecture=arch, format_server=server)
    xmit = XMIT()
    for name in xmit.load_url(schema_source):
        xmit.register_with_context(ctx, name)
    return ctx


class TestDiscoveryToWire:
    def test_http_discovery_then_binary_exchange(self):
        store = DocumentStore()
        store.put("/telemetry.xsd", XSD)
        server = FormatServer()
        with MetadataHTTPServer(store) as http_server:
            url = http_server.url_for("/telemetry.xsd")
            sender_ctx = endpoint(SPARC_32, server, url)
            receiver_ctx = endpoint(X86_64, server, url)
        a_ch, b_ch = tcp_pair()
        sender = Connection(sender_ctx, a_ch)
        receiver = Connection(receiver_ctx, b_ch)
        record = {"source": "gauge-7", "seq": 41,
                  "samples": [1.5, -2.25, 3.75]}
        sender.send("Telemetry", record)
        msg = receiver.receive(timeout=5)
        assert msg.record == record | {"n": 3}
        sender.close()
        receiver.close()

    @pytest.mark.parametrize("sender_arch", [SPARC_32, SPARC_V9,
                                             X86_32, X86_64],
                             ids=lambda a: a.name)
    def test_every_architecture_interoperates(self, sender_arch):
        url = publish_document("e2e-interop.xsd", XSD)
        server = FormatServer()
        sender_ctx = endpoint(sender_arch, server, url)
        receiver_ctx = endpoint(X86_64, server, url)
        a_ch, b_ch = channel_pair()
        sender = Connection(sender_ctx, a_ch)
        receiver = Connection(receiver_ctx, b_ch)
        record = {"source": "s", "seq": 2**32 - 1,
                  "samples": [0.125] * 7}
        sender.send("Telemetry", record)
        assert receiver.receive(timeout=5).record["samples"] == \
            [0.125] * 7

    def test_amortization_many_messages_one_registration(self):
        """The paper's core amortization claim, observed directly:
        one metadata negotiation no matter how many records flow."""
        url = publish_document("e2e-amortize.xsd", XSD)
        sender_ctx = endpoint(X86_64, FormatServer(), url)
        receiver_ctx = IOContext(format_server=FormatServer())
        a_ch, b_ch = channel_pair()
        sender = Connection(sender_ctx, a_ch)
        receiver = Connection(receiver_ctx, b_ch)

        received = []

        def recv_loop():
            while True:
                msg = receiver.receive(timeout=5)
                if msg is None:
                    return
                received.append(msg)

        def pump_loop():
            # sender services metadata requests until the channel dies
            try:
                while sender.receive(timeout=2) is not None:
                    pass
            except Exception:
                pass

        rt = threading.Thread(target=recv_loop)
        pt = threading.Thread(target=pump_loop)
        rt.start()
        pt.start()
        for i in range(25):
            sender.send("Telemetry", {"source": "s", "seq": i,
                                      "samples": []})
        # wait for delivery before closing: a BYE racing ahead of the
        # FMT_RSP would abort the receiver's negotiation
        import time
        deadline = time.monotonic() + 10
        while len(received) < 25 and time.monotonic() < deadline:
            time.sleep(0.01)
        sender.close()
        rt.join(10)
        pt.join(10)
        assert len(received) == 25
        assert receiver.negotiations == 1


class TestFormatChangePropagation:
    def test_refresh_propagates_to_live_context(self):
        name = "e2e-refresh.xsd"
        url = publish_document(name, XSD)
        xmit = XMIT()
        xmit.load_url(url)
        ctx = IOContext(format_server=FormatServer())
        xmit.register_with_context(ctx, "Telemetry")

        updated = XSD.replace(
            "</xsd:complexType>",
            '<xsd:element name="units" type="xsd:string" />'
            "</xsd:complexType>")
        publish_document(name, updated)

        changed = xmit.refresh(url)
        assert changed == ("Telemetry",)
        # old registration still decodes old records; the new format
        # registers alongside (restricted evolution, new name binding)
        ctx2 = IOContext(format_server=ctx.format_server)
        new_fmt = xmit.bind("Telemetry").artifact
        ctx2.register(new_fmt)
        wire = ctx2.encode(new_fmt, {
            "source": "s", "seq": 1, "samples": [], "units": "m"})
        out = ctx.decode_as(wire, "Telemetry")
        assert "units" not in out
        assert out["seq"] == 1
