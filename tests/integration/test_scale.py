"""Scale checks: larger volumes through the full stack."""

import numpy as np
import pytest

from repro.hydrology.datagen import generate_watershed
from repro.hydrology.pipeline import run_pipeline
from repro.pbio.context import IOContext
from repro.pbio.format_server import FormatServer
from repro.pbio.iofile import IOFileReader, IOFileWriter


class TestPipelineScale:
    def test_twenty_timesteps_64x64(self):
        dataset = generate_watershed(nx=64, ny=64, timesteps=20)
        report = run_pipeline(dataset, feedback_every=4)
        assert report.frames_per_gui == (20, 20)
        # monotone mass buildup early in the run is visible at the GUIs
        means = [f["mean"] for f in report.gui_stats[0]]
        assert means[0] < means[5]

    def test_large_frames_over_tcp(self):
        dataset = generate_watershed(nx=96, ny=96, timesteps=4)
        report = run_pipeline(dataset, transport="tcp",
                              presend_factor=1)
        assert report.frames_per_gui == (4, 4)
        assert report.gui_stats[0][0]["cells"] == 96 * 96


class TestMarshalingScale:
    def test_megabyte_record_roundtrip(self):
        ctx = IOContext(format_server=FormatServer())
        ctx.register_layout("Big", [
            ("n", "integer", 4), ("data", "double[n]", 8)])
        data = np.random.default_rng(3).random(262_144)  # 2 MiB
        wire = ctx.encode("Big", {"data": data})
        assert len(wire) > 2 * 1024 * 1024
        out = ctx.decode(wire).record
        assert out["n"] == 262_144
        assert out["data"][::65536] == data[::65536].tolist()

    def test_many_small_records_amortize(self):
        ctx = IOContext(format_server=FormatServer())
        ctx.register_layout("Tick", [("seq", "integer", 4),
                                     ("value", "float", 8)])
        for i in range(5_000):
            wire = ctx.encode("Tick", {"seq": i, "value": i * 0.5})
        assert ctx.stats.records_encoded == 5_000
        # one compiled encoder served all of them
        assert len(ctx._encoders) == 1

    def test_large_data_file(self, tmp_path):
        path = tmp_path / "big.pbio"
        ctx = IOContext(format_server=FormatServer())
        ctx.register_layout("Frame", [
            ("t", "integer", 4), ("n", "integer", 4),
            ("data", "float[n]", 4)])
        frames = 50
        with IOFileWriter(path, ctx) as writer:
            for t in range(frames):
                writer.write("Frame", {
                    "t": t, "data": np.full(4096, float(t),
                                            dtype=np.float32)})
        assert path.stat().st_size > frames * 4096 * 4
        with IOFileReader(path) as reader:
            count = 0
            for record in reader:
                assert record.record["data"][0] == float(
                    record.record["t"])
                count += 1
        assert count == frames
