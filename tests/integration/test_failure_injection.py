"""Failure injection: corrupt records, broken metadata, dead peers."""

import struct

import pytest

from repro.errors import (
    DecodeError, DiscoveryError, EncodeError, ProtocolError,
    SchemaParseError, TransportError, UnknownFormatError,
    XMLWellFormednessError,
)
from repro.core.toolkit import XMIT
from repro.http.retry import RetryPolicy
from repro.http.urls import publish_document, register_resolver
from repro.pbio.context import IOContext
from repro.pbio.encode import HEADER_LEN
from repro.pbio.format_server import FormatServer
from repro.testing import (
    DROP, FAIL, GARBAGE, HTTP_404, HTTP_500, TRUNCATE,
    FaultInjectingResolver, FaultyHTTPServer,
)
from repro.transport.connection import Connection
from repro.transport.inproc import channel_pair
from repro.transport.messages import Frame, FrameType

from tests.conftest import SIMPLE_DATA_SPECS, SIMPLE_DATA_XSD

#: tiny deterministic delays so fault storms resolve in milliseconds
FAST_RETRY = RetryPolicy(attempts=3, base_delay=0.001,
                         max_delay=0.01, seed=1)


@pytest.fixture
def ctx():
    context = IOContext(format_server=FormatServer())
    context.register_layout("SimpleData", SIMPLE_DATA_SPECS)
    return context


class TestCorruptRecords:
    def test_flipped_magic(self, ctx):
        wire = bytearray(ctx.encode("SimpleData",
                                    {"timestep": 1, "data": [1.0]}))
        wire[0] ^= 0xFF
        with pytest.raises(EncodeError, match="magic"):
            ctx.decode(bytes(wire))

    def test_corrupt_format_id(self, ctx):
        wire = bytearray(ctx.encode("SimpleData",
                                    {"timestep": 1, "data": [1.0]}))
        wire[4] ^= 0xFF
        with pytest.raises(UnknownFormatError):
            ctx.decode(bytes(wire))

    def test_corrupt_array_pointer(self, ctx):
        wire = bytearray(ctx.encode("SimpleData",
                                    {"timestep": 1, "data": [1.0]}))
        # the data pointer lives at body offset 8 (LP64 layout)
        struct.pack_into("<Q", wire, HEADER_LEN + 8, 1 << 30)
        with pytest.raises(DecodeError, match="outside"):
            ctx.decode(bytes(wire))

    def test_truncation_every_prefix_is_safe(self, ctx):
        """No prefix of a valid record may crash the decoder with
        anything but a typed error."""
        wire = ctx.encode("SimpleData",
                          {"timestep": 1, "data": [1.0, 2.0]})
        for cut in range(len(wire)):
            with pytest.raises((DecodeError, EncodeError,
                                UnknownFormatError)):
                ctx.decode(wire[:cut])

    def test_header_lies_about_length(self, ctx):
        wire = bytearray(ctx.encode("SimpleData",
                                    {"timestep": 1, "data": []}))
        struct.pack_into(">I", wire, 12, 10_000)
        with pytest.raises(DecodeError, match="truncated"):
            ctx.decode(bytes(wire))


class TestBrokenMetadata:
    def test_malformed_xml_document(self):
        url = publish_document("broken-1.xsd", "<xsd:schema")
        with pytest.raises(XMLWellFormednessError):
            XMIT().load_url(url)

    def test_wrong_document_kind(self):
        url = publish_document("broken-2.xsd", "<html><body/></html>")
        with pytest.raises(SchemaParseError):
            XMIT().load_url(url)

    def test_unreachable_url(self):
        with pytest.raises(DiscoveryError):
            XMIT().load_url("mem:never-published.xsd")

    def test_flaky_resolver_absorbed_by_retry(self):
        calls = {"n": 0}

        def flaky(url):
            calls["n"] += 1
            if calls["n"] == 1:
                raise DiscoveryError("transient fetch failure")
            return SIMPLE_DATA_XSD.encode()

        register_resolver("flaky", flaky)
        # the toolkit's default policy retries the transient failure
        xmit = XMIT(retry=FAST_RETRY)
        assert xmit.load_url("flaky:doc") == ("SimpleData",)
        assert calls["n"] == 2
        assert xmit.discovery_stats.retries == 1

    def test_corrupted_server_metadata(self):
        server = FormatServer()
        with pytest.raises(UnknownFormatError):
            server.import_bytes(b"PBIOFMT\t1\nname\tX\ngarbage")


class TestProtocolViolations:
    def test_peer_requests_unknown_format(self, ctx):
        a_ch, b_ch = channel_pair()
        conn = Connection(ctx, a_ch)
        b_ch.send(Frame(FrameType.FMT_REQ, b"\x00" * 8))
        b_ch.send(Frame(FrameType.DATA, b"ignored"))
        with pytest.raises(ProtocolError, match="unknown format"):
            conn.receive(timeout=2)

    def test_garbage_frame_type(self, ctx):
        a_ch, b_ch = channel_pair()
        conn = Connection(ctx, a_ch)
        # raw bytes with an invalid type tag
        import queue
        b_ch._outbox.put(Frame.__new__(Frame))  # bypassed construction
        # a frame with invalid type cannot be built through the API;
        # instead check decode path via messages.decode_frame
        from repro.transport.messages import decode_frame
        with pytest.raises(ProtocolError):
            decode_frame(bytes([99]) + b"x")

    def test_send_on_closed_connection(self, ctx):
        a_ch, _b_ch = channel_pair()
        conn = Connection(ctx, a_ch)
        conn.close()
        with pytest.raises(TransportError):
            conn.send("SimpleData", {"timestep": 1, "data": []})

    def test_double_close_is_safe(self, ctx):
        a_ch, _b_ch = channel_pair()
        conn = Connection(ctx, a_ch)
        conn.close()
        conn.close()


class TestResilientDiscovery:
    """End-to-end drive of repro.testing.faults through the registry."""

    def _resolver(self, scheme):
        return FaultInjectingResolver(scheme, slow_delay=0.001) \
            .install()

    def test_flaky_then_healthy_within_retry_budget(self):
        resolver = self._resolver("flt-a")
        url = resolver.publish("doc.xsd", SIMPLE_DATA_XSD,
                               faults=[FAIL, FAIL])
        xmit = XMIT(retry=FAST_RETRY)
        assert xmit.load_url(url) == ("SimpleData",)
        stats = xmit.discovery_stats
        assert stats.fetch_attempts == 3
        assert stats.retries == 2
        assert stats.fetch_failures == 0
        assert resolver.calls["doc.xsd"] == 3

    def test_retry_budget_exhausted_raises(self):
        resolver = self._resolver("flt-b")
        url = resolver.publish("doc.xsd", SIMPLE_DATA_XSD,
                               faults=[FAIL, FAIL, FAIL])
        xmit = XMIT(retry=FAST_RETRY)
        with pytest.raises(DiscoveryError):
            xmit.load_url(url)
        assert xmit.discovery_stats.fetch_attempts == 3
        assert xmit.discovery_stats.fetch_failures == 1

    def test_permanently_dead_serves_last_known_good(self):
        resolver = self._resolver("flt-c")
        url = resolver.publish("doc.xsd", SIMPLE_DATA_XSD)
        xmit = XMIT(retry=FAST_RETRY)
        xmit.load_url(url)
        xmit.registry.cache_ttl = 0.0        # force real refetches
        xmit.registry.negative_ttl = 0.0
        resolver.set_faults("doc.xsd", [FAIL], repeat_last=True)

        # a failing refresh is a counted no-op, not an exception
        assert xmit.refresh(url) == ()
        assert xmit.discovery_stats.fallbacks == 1
        # formats remain resolvable and bindable
        assert xmit.load_url(url) == ("SimpleData",)
        ctx = IOContext(format_server=FormatServer())
        fmt = xmit.register_with_context(ctx, "SimpleData")
        wire = ctx.encode(fmt, {"timestep": 7, "data": [1.0]})
        assert ctx.decode(wire).record["timestep"] == 7

    def test_counters_match_injected_fault_sequence(self):
        resolver = self._resolver("flt-d")
        # 500 then truncated body then healthy: all retryable
        url = resolver.publish("doc.xsd", SIMPLE_DATA_XSD,
                               faults=[HTTP_500, TRUNCATE])
        xmit = XMIT(retry=FAST_RETRY)
        assert xmit.load_url(url) == ("SimpleData",)
        stats = xmit.discovery_stats
        assert stats.fetch_attempts == 3
        assert stats.retries == 2
        assert stats.cache_misses == 1 and stats.cache_hits == 0
        assert stats.compiles == 1
        assert resolver.script_for("doc.xsd").history == \
            [HTTP_500, TRUNCATE, "ok"]
        # a reload inside the TTL is a pure cache hit: no new fetch
        assert xmit.load_url(url) == ("SimpleData",)
        assert stats.fetch_attempts == 3
        assert stats.cache_hits == 1

    def test_injected_404_is_not_retried(self):
        resolver = self._resolver("flt-e")
        url = resolver.publish("doc.xsd", SIMPLE_DATA_XSD,
                               faults=[HTTP_404])
        xmit = XMIT(retry=FAST_RETRY)
        with pytest.raises(DiscoveryError):
            xmit.load_url(url)
        assert xmit.discovery_stats.fetch_attempts == 1
        assert xmit.discovery_stats.retries == 0

    def test_garbage_bytes_are_not_retried(self):
        """A fetch that *succeeds* but yields a malformed document is
        a compile failure, not a transient network fault."""
        resolver = self._resolver("flt-f")
        url = resolver.publish("doc.xsd", SIMPLE_DATA_XSD,
                               faults=[GARBAGE])
        xmit = XMIT(retry=FAST_RETRY)
        with pytest.raises(XMLWellFormednessError):
            xmit.load_url(url)
        assert resolver.calls["doc.xsd"] == 1

    def test_garbage_refresh_falls_back(self):
        resolver = self._resolver("flt-g")
        url = resolver.publish("doc.xsd", SIMPLE_DATA_XSD)
        xmit = XMIT(retry=FAST_RETRY)
        xmit.load_url(url)
        xmit.registry.cache_ttl = 0.0
        resolver.set_faults("doc.xsd", [GARBAGE], repeat_last=True)
        assert xmit.refresh(url) == ()
        assert xmit.discovery_stats.fallbacks == 1
        assert "SimpleData" in xmit.format_names

    def test_negative_cache_fails_fast(self):
        resolver = self._resolver("flt-h")
        url = resolver.publish("missing.xsd", SIMPLE_DATA_XSD,
                               faults=[FAIL], repeat_last=True)
        xmit = XMIT(retry=FAST_RETRY)
        with pytest.raises(DiscoveryError):
            xmit.load_url(url)
        fetches = resolver.calls["missing.xsd"]
        # within the negative TTL the dead URL is not fetched again
        with pytest.raises(DiscoveryError, match="negative-cached"):
            xmit.load_url(url)
        assert resolver.calls["missing.xsd"] == fetches
        assert xmit.discovery_stats.negative_hits == 1


class TestFaultyHTTPServerDiscovery:
    """Socket-level faults against the real HTTP client."""

    def _server(self, faults, **kwargs):
        from repro.http.server import DocumentStore
        store = DocumentStore()
        store.put("/f.xsd", SIMPLE_DATA_XSD)
        return FaultyHTTPServer(store, faults=faults,
                                slow_delay=0.001, **kwargs)

    def test_drop_then_500_then_healthy(self):
        with self._server([DROP, HTTP_500]) as server:
            xmit = XMIT(retry=FAST_RETRY)
            url = server.url_for("/f.xsd")
            assert xmit.load_url(url) == ("SimpleData",)
            assert xmit.discovery_stats.fetch_attempts == 3
            assert server.faults.history == [DROP, HTTP_500, "ok"]

    def test_truncated_body_retried_to_success(self):
        with self._server([TRUNCATE]) as server:
            xmit = XMIT(retry=FAST_RETRY)
            assert xmit.load_url(server.url_for("/f.xsd")) == \
                ("SimpleData",)
            assert xmit.discovery_stats.retries == 1

    def test_garbage_http_retried_to_success(self):
        with self._server([GARBAGE]) as server:
            xmit = XMIT(retry=FAST_RETRY)
            assert xmit.load_url(server.url_for("/f.xsd")) == \
                ("SimpleData",)

    def test_permanently_dead_http_server_serves_fallback(self):
        with self._server([]) as server:
            xmit = XMIT(retry=FAST_RETRY, cache_ttl=0.0)
            xmit.registry.negative_ttl = 0.0
            url = server.url_for("/f.xsd")
            xmit.load_url(url)
            server.faults.extend([DROP], repeat_last=True)
            assert xmit.refresh(url) == ()
            assert xmit.load_url(url) == ("SimpleData",)
            assert xmit.discovery_stats.fallbacks == 2
