"""Failure injection: corrupt records, broken metadata, dead peers."""

import struct

import pytest

from repro.errors import (
    DecodeError, DiscoveryError, EncodeError, ProtocolError,
    SchemaParseError, TransportError, UnknownFormatError,
    XMLWellFormednessError,
)
from repro.core.toolkit import XMIT
from repro.http.urls import publish_document, register_resolver
from repro.pbio.context import IOContext
from repro.pbio.encode import HEADER_LEN
from repro.pbio.format_server import FormatServer
from repro.transport.connection import Connection
from repro.transport.inproc import channel_pair
from repro.transport.messages import Frame, FrameType

from tests.conftest import SIMPLE_DATA_SPECS, SIMPLE_DATA_XSD


@pytest.fixture
def ctx():
    context = IOContext(format_server=FormatServer())
    context.register_layout("SimpleData", SIMPLE_DATA_SPECS)
    return context


class TestCorruptRecords:
    def test_flipped_magic(self, ctx):
        wire = bytearray(ctx.encode("SimpleData",
                                    {"timestep": 1, "data": [1.0]}))
        wire[0] ^= 0xFF
        with pytest.raises(EncodeError, match="magic"):
            ctx.decode(bytes(wire))

    def test_corrupt_format_id(self, ctx):
        wire = bytearray(ctx.encode("SimpleData",
                                    {"timestep": 1, "data": [1.0]}))
        wire[4] ^= 0xFF
        with pytest.raises(UnknownFormatError):
            ctx.decode(bytes(wire))

    def test_corrupt_array_pointer(self, ctx):
        wire = bytearray(ctx.encode("SimpleData",
                                    {"timestep": 1, "data": [1.0]}))
        # the data pointer lives at body offset 8 (LP64 layout)
        struct.pack_into("<Q", wire, HEADER_LEN + 8, 1 << 30)
        with pytest.raises(DecodeError, match="outside"):
            ctx.decode(bytes(wire))

    def test_truncation_every_prefix_is_safe(self, ctx):
        """No prefix of a valid record may crash the decoder with
        anything but a typed error."""
        wire = ctx.encode("SimpleData",
                          {"timestep": 1, "data": [1.0, 2.0]})
        for cut in range(len(wire)):
            with pytest.raises((DecodeError, EncodeError,
                                UnknownFormatError)):
                ctx.decode(wire[:cut])

    def test_header_lies_about_length(self, ctx):
        wire = bytearray(ctx.encode("SimpleData",
                                    {"timestep": 1, "data": []}))
        struct.pack_into(">I", wire, 12, 10_000)
        with pytest.raises(DecodeError, match="truncated"):
            ctx.decode(bytes(wire))


class TestBrokenMetadata:
    def test_malformed_xml_document(self):
        url = publish_document("broken-1.xsd", "<xsd:schema")
        with pytest.raises(XMLWellFormednessError):
            XMIT().load_url(url)

    def test_wrong_document_kind(self):
        url = publish_document("broken-2.xsd", "<html><body/></html>")
        with pytest.raises(SchemaParseError):
            XMIT().load_url(url)

    def test_unreachable_url(self):
        with pytest.raises(DiscoveryError):
            XMIT().load_url("mem:never-published.xsd")

    def test_flaky_resolver(self):
        calls = {"n": 0}

        def flaky(url):
            calls["n"] += 1
            if calls["n"] == 1:
                raise DiscoveryError("transient fetch failure")
            return SIMPLE_DATA_XSD.encode()

        register_resolver("flaky", flaky)
        xmit = XMIT()
        with pytest.raises(DiscoveryError):
            xmit.load_url("flaky:doc")
        # retry succeeds; toolkit state was not corrupted
        assert xmit.load_url("flaky:doc") == ("SimpleData",)

    def test_corrupted_server_metadata(self):
        server = FormatServer()
        with pytest.raises(UnknownFormatError):
            server.import_bytes(b"PBIOFMT\t1\nname\tX\ngarbage")


class TestProtocolViolations:
    def test_peer_requests_unknown_format(self, ctx):
        a_ch, b_ch = channel_pair()
        conn = Connection(ctx, a_ch)
        b_ch.send(Frame(FrameType.FMT_REQ, b"\x00" * 8))
        b_ch.send(Frame(FrameType.DATA, b"ignored"))
        with pytest.raises(ProtocolError, match="unknown format"):
            conn.receive(timeout=2)

    def test_garbage_frame_type(self, ctx):
        a_ch, b_ch = channel_pair()
        conn = Connection(ctx, a_ch)
        # raw bytes with an invalid type tag
        import queue
        b_ch._outbox.put(Frame.__new__(Frame))  # bypassed construction
        # a frame with invalid type cannot be built through the API;
        # instead check decode path via messages.decode_frame
        from repro.transport.messages import decode_frame
        with pytest.raises(ProtocolError):
            decode_frame(bytes([99]) + b"x")

    def test_send_on_closed_connection(self, ctx):
        a_ch, _b_ch = channel_pair()
        conn = Connection(ctx, a_ch)
        conn.close()
        with pytest.raises(TransportError):
            conn.send("SimpleData", {"timestep": 1, "data": []})

    def test_double_close_is_safe(self, ctx):
        a_ch, _b_ch = channel_pair()
        conn = Connection(ctx, a_ch)
        conn.close()
        conn.close()
