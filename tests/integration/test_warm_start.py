"""Warm-start acceptance: a restarting process over a pre-populated
plan-cache directory pays (almost) no registration cost.

Two real processes share one ``REPRO_PLAN_CACHE_DIR``:

* the **cold** process discovers a format over the full XMIT path
  (publish → fetch → parse → compile → bind), encodes a stream, and
  reports its RDM — the paper's registration-vs-marshal cost ratio,
  which cold must be well above 1 (that is Fig. 3's whole point);
* the **warm** process restores the format from the persistent tier
  (``warm_start``), encodes the same stream, and must report RDM ≈ 1
  or below, **zero** ``compile_plan`` spans, and at least one
  persistent-tier hit — restart cost collapsed to a couple of disk
  reads.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src"

_COLD = r"""
import json, sys
from repro import obs
from repro.core.toolkit import XMIT
from repro.http.urls import publish_document
from repro.obs.spans import rdm_from_snapshot
from repro.pbio.context import IOContext
from repro.pbio.decode import decoder_for_format
from repro.pbio.format_server import FormatServer
from repro.pbio.plancache import active_plan_cache

XSD = '''
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Sample">
    <xsd:element name="step" type="xsd:integer" />
    <xsd:element name="size" type="xsd:integer" />
    <xsd:element name="data" type="xsd:float" maxOccurs="*"
                 dimensionName="size" />
  </xsd:complexType>
</xsd:schema>
'''

obs.configure(sample_mask=0)
url = publish_document("warm-start.xsd", XSD)
xmit = XMIT()
xmit.load_url(url)
ctx = IOContext(format_server=FormatServer())
fmt = xmit.register_with_context(ctx, "Sample")
decoder_for_format(fmt)  # persist the decode plan too
record = {"step": 0, "size": 64, "data": [0.5] * 64}
for step in range(256):
    record["step"] = step
    ctx.encode("Sample", record)
snap = obs.snapshot()
json.dump({
    "rdm": rdm_from_snapshot(snap)["rdm"],
    "entries": len(active_plan_cache().entries()),
}, sys.stdout)
"""

_WARM = r"""
import json, sys
from repro import obs
from repro.obs.spans import rdm_from_snapshot
from repro.pbio.context import IOContext
from repro.pbio.format_server import FormatServer
from repro.pbio.plancache import warm_start

obs.configure(sample_mask=0)
ctx = IOContext(format_server=FormatServer())
restored = warm_start(context=ctx)
(fmt,) = [ctx.format_server.lookup(fid)
          for fid in ctx.format_server.known_ids()]
record = {"step": 0, "size": 64, "data": [0.5] * 64}
for step in range(256):
    record["step"] = step
    ctx.encode(fmt, record)
snap = obs.snapshot()

def series(name):
    metric = snap.get(name, {"series": []})
    return metric["series"]

compile_spans = sum(
    s["value"] for s in series("repro_spans_total")
    if s["labels"].get("name") in ("compile_plan", "compile",
                                   "fetch", "bind"))
load_spans = sum(
    s["value"] for s in series("repro_spans_total")
    if s["labels"].get("name") == "plan_cache_load")
disk_hits = sum(
    s["value"] for s in series("repro_plan_cache_total")
    if s["labels"].get("tier") == "disk"
    and s["labels"].get("outcome") == "hit")
reading = rdm_from_snapshot(snap)
json.dump({
    "restored": restored,
    "rdm": reading["rdm"],
    "registration_seconds": reading["registration_seconds"],
    "compile_spans": compile_spans,
    "plan_load_spans": load_spans,
    "disk_hits": disk_hits,
}, sys.stdout)
"""


def _run(code: str, cache_dir: Path) -> dict:
    env = dict(os.environ)
    env["REPRO_PLAN_CACHE_DIR"] = str(cache_dir)
    env["PYTHONPATH"] = str(SRC)
    proc = subprocess.run([sys.executable, "-c", code],
                          capture_output=True, text=True, env=env,
                          timeout=120)
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def test_warm_restart_pays_no_registration(tmp_path):
    cache_dir = tmp_path / "plans"

    cold = _run(_COLD, cache_dir)
    assert cold["entries"] >= 2          # encoder + decoder persisted
    assert cold["rdm"] is not None and cold["rdm"] > 1

    warm = _run(_WARM, cache_dir)
    assert warm["restored"] == 1
    # zero registration-phase work: no fetch/compile/bind spans at all
    assert warm["compile_spans"] == 0
    assert warm["plan_load_spans"] >= 1  # plans came off disk...
    assert warm["disk_hits"] >= 1        # ...as persistent-tier hits
    # the acceptance bar: warm-start registration costs at most about
    # one record's marshal time (RDM <= 1.2; in practice ~0)
    assert warm["rdm"] is not None and warm["rdm"] <= 1.2
    assert warm["rdm"] < cold["rdm"]
