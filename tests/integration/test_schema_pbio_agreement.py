"""Cross-layer property: schema-valid records marshal losslessly.

Any record the schema validator accepts for a discovered format must
encode and decode through the XMIT-bound PBIO format, on any
architecture, with values preserved (float32 narrowing excepted).
This ties the three layers of the system — schema semantics, IR
compilation, binary marshaling — to one contract.
"""

import math
import string

from hypothesis import given, settings, strategies as st

from repro.core.schema_compiler import compile_schema
from repro.core.targets.pbio_target import PBIOTarget
from repro.pbio.context import IOContext
from repro.pbio.format_server import FormatServer
from repro.pbio.machine import SPARC_32, SPARC_V9, X86_32, X86_64
from repro.schema.parser import parse_schema_text
from repro.schema.validator import validate_record

ARCHS = (SPARC_32, SPARC_V9, X86_32, X86_64)

_names = st.builds(
    lambda a, b: a + b,
    st.sampled_from(string.ascii_lowercase),
    st.text(alphabet=string.ascii_lowercase + string.digits,
            max_size=5))

#: (xsd type, value strategy)
_XSD_TYPES = [
    ("xsd:int", st.integers(-2**31, 2**31 - 1)),
    ("xsd:long", st.integers(-2**63, 2**63 - 1)),
    ("xsd:short", st.integers(-2**15, 2**15 - 1)),
    ("xsd:byte", st.integers(-128, 127)),
    ("xsd:unsignedInt", st.integers(0, 2**32 - 1)),
    ("xsd:unsignedLong", st.integers(0, 2**64 - 1)),
    ("xsd:double", st.floats(allow_nan=False)),
    ("xsd:float", st.floats(width=32, allow_nan=False)),
    ("xsd:boolean", st.booleans()),
    ("xsd:string",
     st.text(max_size=12).filter(
         lambda s: "\x00" not in s)),
]


@st.composite
def schema_case(draw):
    """(xsd text, format name, record strategy)."""
    n = draw(st.integers(1, 6))
    field_names = draw(st.lists(_names, min_size=n, max_size=n,
                                unique=True))
    lines = []
    value_strats = {}
    sizing: list[tuple[str, str]] = []  # (array field, length field)
    int_scalars: list[str] = []
    for fname in field_names:
        xsd_type, values = draw(st.sampled_from(_XSD_TYPES))
        shape = draw(st.integers(0, 2))
        if xsd_type == "xsd:string" or shape == 0:
            lines.append(f'<xsd:element name="{fname}" '
                         f'type="{xsd_type}" />')
            value_strats[fname] = values
            if xsd_type in ("xsd:int", "xsd:unsignedInt"):
                int_scalars.append(fname)
        elif shape == 1:
            size = draw(st.integers(2, 5))
            lines.append(f'<xsd:element name="{fname}" '
                         f'type="{xsd_type}" maxOccurs="{size}" />')
            value_strats[fname] = st.lists(values, min_size=size,
                                           max_size=size)
        else:
            if int_scalars and draw(st.booleans()):
                # each sizing field may govern only one array
                length_field = draw(st.sampled_from(int_scalars))
                int_scalars.remove(length_field)
                lines.append(
                    f'<xsd:element name="{fname}" type="{xsd_type}" '
                    f'minOccurs="0" maxOccurs="*" '
                    f'dimensionName="{length_field}" />')
                sizing.append((fname, length_field))
            else:
                lines.append(f'<xsd:element name="{fname}" '
                             f'type="{xsd_type}" minOccurs="0" '
                             f'maxOccurs="*" />')
            value_strats[fname] = st.lists(values, min_size=0,
                                           max_size=5)
    xsd = ('<xsd:schema '
           'xmlns:xsd="http://www.w3.org/2001/XMLSchema">\n'
           '<xsd:complexType name="P">\n'
           + "\n".join(lines) + "\n</xsd:complexType></xsd:schema>")

    base = st.fixed_dictionaries(value_strats)

    def fix_sizing(record: dict) -> dict:
        for array_field, length_field in sizing:
            record = dict(record)
            record[length_field] = len(record[array_field])
        return record

    return xsd, "P", base.map(fix_sizing)


def _close(sent, got) -> bool:
    if isinstance(sent, list):
        return len(sent) == len(got) and all(
            _close(s, g) for s, g in zip(sent, got))
    if isinstance(sent, float):
        if math.isinf(sent):
            return got == sent
        return got == sent or math.isclose(got, sent, rel_tol=1e-6)
    return got == sent


@settings(max_examples=50, deadline=None)
@given(case=schema_case(), data=st.data(),
       arch=st.sampled_from(ARCHS))
def test_valid_records_marshal_losslessly(case, data, arch):
    xsd, name, record_strategy = case
    record = data.draw(record_strategy)

    schema = parse_schema_text(xsd)
    validated = validate_record(schema, name, record)

    ir = compile_schema(schema)
    token = PBIOTarget().generate(ir, name, architecture=arch)
    ctx = IOContext(architecture=arch, format_server=FormatServer())
    ctx.register(token.artifact)

    decoded = ctx.decode(ctx.encode(name, validated)).record
    for field_name, sent in validated.items():
        assert _close(sent, decoded[field_name]), \
            (field_name, sent, decoded[field_name])
