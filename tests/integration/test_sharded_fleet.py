"""A 1024-subscriber fleet across four shard processes.

The acceptance story for the sharded broadcast layer: a mixed fleet —
three quarters current-version, one quarter pinned to the previous
lineage link — spread round-robin over four event-loop worker
processes on real loopback sockets.  Every record must arrive exactly
once at each subscriber's negotiated version, no shard may drop or
misdecode a frame, the malformed-wire counters must stay at zero in
every process, and every shard must have served format and lineage
negotiation from its own replica (no shard is a dumb pipe).
"""

import threading
import time

import pytest

from repro.errors import TransportError
from repro.pbio.context import IOContext
from repro.pbio.format import IOFormat
from repro.pbio.format_server import FormatServer
from repro.pbio.layout import compute_layout
from repro.transport.connection import Connection
from repro.transport.sharded import ShardedBroadcastServer
from repro.transport.tcp import TCPChannel

V1 = [("timestep", "integer"), ("size", "integer"),
      ("data", "float[size]")]
V2 = V1 + [("units", "string")]

FLEET_SIZE = 1024
WORKERS = 4
PINNED = FLEET_SIZE // 4
RECORDS = 5


def grid_format(specs, architecture) -> IOFormat:
    layout = compute_layout(specs, architecture=architecture)
    return IOFormat("Grid", layout.field_list)


class Subscriber(threading.Thread):
    def __init__(self, host: str, port: int, *, pinned: bool):
        super().__init__(daemon=True)
        self.pinned = pinned
        ctx = IOContext(format_server=FormatServer())
        if pinned:
            ctx.register_evolution(grid_format(V1, ctx.architecture))
        self.conn = Connection(ctx, TCPChannel.connect(host, port))
        self.chosen = None
        self.records: list = []
        self.error: BaseException | None = None

    def run(self):
        # under a fully loaded machine the census + pin barriers for
        # 1024 threads can outlast any single receive timeout, so idle
        # timeouts are retried against one overall deadline instead of
        # tearing the subscriber (and its shard slot) down early
        deadline = time.monotonic() + 520
        try:
            if self.pinned:
                self.chosen = self.conn.negotiate_version("Grid",
                                                          timeout=300)
            while time.monotonic() < deadline:
                try:
                    msg = self.conn.receive(timeout=15)
                except TransportError as exc:
                    if "timed out" in str(exc):
                        continue
                    raise
                if msg is None:
                    break
                self.records.append((msg.format_id, msg.record))
        except BaseException as exc:  # noqa: BLE001 - asserted below
            self.error = exc
        finally:
            self.conn.close()


def malformed_total(metrics: dict) -> float:
    series = metrics.get("repro_malformed_frames_total",
                         {"series": []})["series"]
    return sum(s["value"] for s in series)


@pytest.mark.timeout(560)
def test_mixed_fleet_across_four_shards():
    ctx = IOContext(format_server=FormatServer())
    ctx.register_evolution(grid_format(V1, ctx.architecture))
    ctx.register_evolution(grid_format(V2, ctx.architecture))
    chain = ctx.format_server.lineage("Grid")
    assert len(chain) == 2
    v1_id, v2_id = chain

    with ShardedBroadcastServer(ctx, workers=WORKERS, mode="fdpass",
                                max_queue_bytes=16 << 20,
                                start_timeout=300.0) as srv:
        subs = [Subscriber(srv.host, srv.port, pinned=i < PINNED)
                for i in range(FLEET_SIZE)]
        for sub in subs:
            sub.start()
        assert srv.wait_for_subscribers(FLEET_SIZE, timeout=300), \
            f"census stalled at {srv.subscriber_count}"
        assert srv.wait_for_pins("Grid", PINNED, timeout=300), \
            "pinned cohort never finished negotiating"

        for t in range(RECORDS):
            record = {"timestep": t, "data": [t * 0.25, t * 0.5],
                      "units": "mm"}
            assert srv.publish("Grid", record) == WORKERS
        assert srv.flush(timeout=300), "shard queues did not drain"

        # down-conversion happened once per message for the pinned
        # version — not once per pinned subscriber or per shard
        assert srv.stats.frames_down_converted == RECORDS
        assert srv.stats.frames_dropped == 0

        stats = srv.worker_stats(timeout=120)
        assert len(stats) == WORKERS
        total_clients = 0
        for label, shard in stats.items():
            publisher = shard["publisher"]
            server = shard["server"]
            total_clients += server["clients"]
            # every shard holds a real slice of the fleet...
            assert server["clients"] >= FLEET_SIZE // WORKERS - 1
            # ...drops and evictions never fired...
            assert publisher["frames_dropped"] == 0
            assert publisher["clients_evicted"] == 0
            # ...each shard negotiated lineage from its own replica...
            assert publisher["lineage_negotiations"] > 0, \
                f"{label} never served a LIN_REQ"
            # ...announced formats from replicated metadata...
            assert publisher["formats_announced"] > 0
            assert shard["format_server"]["formats"] >= 2
            # ...never re-encoded a record...
            assert shard["codec"]["records_encoded"] == 0
            # ...and saw zero malformed wire inputs.
            assert malformed_total(shard["metrics"]) == 0
        assert total_clients == FLEET_SIZE

    slow = [s for s in subs if not s.join(120) and s.is_alive()]
    assert not slow, f"{len(slow)} subscribers still draining"

    pinned = [s for s in subs if s.pinned]
    modern = [s for s in subs if not s.pinned]
    assert len(pinned) == PINNED
    errors = [s.error for s in subs if s.error is not None]
    assert not errors, f"subscriber failures: {errors[:3]}"

    for sub in pinned:
        assert sub.chosen == v1_id
        assert [r["timestep"] for _, r in sub.records] == \
            list(range(RECORDS))
        for fid, record in sub.records:
            assert fid == v1_id
            assert "units" not in record
    for sub in modern:
        assert [r["timestep"] for _, r in sub.records] == \
            list(range(RECORDS))
        for fid, record in sub.records:
            assert fid == v2_id
            assert record["units"] == "mm"
