"""RDM measurement machinery (fast configurations)."""

import pytest

from repro.bench.rdm import (
    measure_rdm, measure_rdm_suite, pbio_register, xmit_register,
)
from repro.bench import workloads
from repro.pbio.machine import SPARC_32

from tests.conftest import SIMPLE_DATA_SPECS, SIMPLE_DATA_XSD


class TestRegistrationPaths:
    def test_xmit_register_produces_working_context(self):
        ctx = xmit_register(SIMPLE_DATA_XSD, "SimpleData")
        record = {"timestep": 1, "data": [1.0, 2.0]}
        assert ctx.roundtrip("SimpleData", record)["size"] == 2

    def test_pbio_register_produces_working_context(self):
        ctx = pbio_register(SIMPLE_DATA_SPECS, "SimpleData")
        record = {"timestep": 1, "data": [1.0]}
        assert ctx.roundtrip("SimpleData", record)["size"] == 1

    def test_paths_agree_on_format_identity(self):
        a = xmit_register(SIMPLE_DATA_XSD, "SimpleData")
        b = pbio_register(SIMPLE_DATA_SPECS, "SimpleData")
        assert a.lookup_format("SimpleData") == \
            b.lookup_format("SimpleData")


class TestMeasurement:
    def test_rdm_exceeds_one(self):
        # XMIT does everything PBIO registration does plus XML work,
        # so the multiplier is necessarily > 1.
        result = measure_rdm(SIMPLE_DATA_XSD, "SimpleData",
                             SIMPLE_DATA_SPECS, repeat=3)
        assert result.rdm > 1.0

    def test_structure_and_encoded_sizes(self):
        record = {"timestep": 1, "size": 2, "data": [1.0, 2.0]}
        result = measure_rdm(SIMPLE_DATA_XSD, "SimpleData",
                             SIMPLE_DATA_SPECS, sample_record=record,
                             repeat=2)
        assert result.structure_size == 16  # LP64 native
        assert result.encoded_size > result.structure_size

    def test_architecture_parameter(self):
        result = measure_rdm(SIMPLE_DATA_XSD, "SimpleData",
                             SIMPLE_DATA_SPECS,
                             architecture=SPARC_32, repeat=2)
        assert result.structure_size == 12  # ILP32

    def test_suite_runner(self):
        cases = workloads.poc_cases()[:2]
        results = measure_rdm_suite(cases, repeat=2)
        assert [r.format_name for r in results] == \
            [c["name"] for c in cases]

    def test_composed_case_with_subformats(self):
        case = workloads.poc_cases()[2]
        assert case["name"] == "RegionUpdate"
        result = measure_rdm(case["xsd"], case["name"], case["specs"],
                             sample_record=case["record"],
                             subformat_specs=case["subformats"],
                             repeat=2)
        assert result.rdm > 1.0
        assert result.encoded_size > 180
