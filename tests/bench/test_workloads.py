"""Workload definitions for the experiments."""

import pytest

from repro.bench import workloads
from repro.core.toolkit import XMIT
from repro.pbio.context import IOContext
from repro.pbio.format_server import FormatServer
from repro.pbio.layout import field_list_for
from repro.pbio.machine import X86_32


def register_case(case) -> IOContext:
    ctx = IOContext(format_server=FormatServer())
    subformats = None
    if case.get("subformats"):
        subformats = {}
        for name, specs in case["subformats"].items():
            subformats[name] = field_list_for(
                specs, architecture=ctx.architecture,
                subformats=dict(subformats))
    ctx.register_layout(case["name"], case["specs"],
                        subformats=subformats)
    return ctx


class TestPOCCases:
    def test_records_encode(self):
        for case in workloads.poc_cases():
            ctx = register_case(case)
            out = ctx.roundtrip(case["name"], case["record"])
            assert out  # round trip succeeded

    def test_xsd_and_specs_agree(self):
        for case in workloads.poc_cases():
            xmit = XMIT()
            xmit.load_text(case["xsd"])
            ctx = IOContext(format_server=FormatServer())
            via_xmit = xmit.register_with_context(ctx, case["name"])
            compiled = register_case(case).lookup_format(case["name"])
            assert via_xmit == compiled, case["name"]

    def test_ilp32_sizes_near_paper(self):
        # paper: 32 / 52 / 180 bytes; composition + double alignment
        # shifts the smallest slightly but the bracket must hold
        sizes = []
        for case in workloads.poc_cases():
            subformats = {}
            for name, specs in (case.get("subformats") or {}).items():
                subformats[name] = field_list_for(
                    specs, architecture=X86_32,
                    subformats=dict(subformats))
            fl = field_list_for(case["specs"], architecture=X86_32,
                                subformats=subformats)
            sizes.append(fl.record_length)
        assert sizes == sorted(sizes)  # increasing, like the figure
        assert sizes[0] <= 52 and sizes[2] == 180

    def test_region_update_is_composition_heavy(self):
        case = workloads.poc_cases()[2]
        nested = [s for s in case["specs"]
                  if s[1] in ("Point", "Extent", "RegionHeader")]
        assert len(nested) >= 5


class TestHydrologyCases:
    def test_all_cases_encode(self):
        for case in workloads.hydrology_cases():
            ctx = register_case(case)
            assert ctx.roundtrip(case["name"], case["record"])

    def test_fig6_order_starts_with_gridmeta(self):
        names = [c["name"] for c in workloads.hydrology_cases()]
        assert names[0] == "GridMeta"

    def test_encoding_cases_span_sizes(self):
        cases = workloads.encoding_cases()
        sizes = []
        for case in cases:
            ctx = register_case(case)
            sizes.append(ctx.encoded_size(case["name"],
                                          case["record"]))
        # Fig. 7: small control messages up to the ~262 KB frame
        assert sizes[-1] > 262_000
        assert min(sizes) < 100


class TestPayloadSweeps:
    def test_simple_data_record(self):
        record = workloads.simple_data_record(10)
        assert record["size"] == 10
        assert len(record["data"]) == 10

    def test_record_for_bytes_hits_target(self):
        for target in workloads.FIG8_SIZES:
            record = workloads.simple_data_record_for_bytes(target)
            binary = 8 + 4 * record["size"]
            assert abs(binary - target) <= 8

    def test_deterministic(self):
        a = workloads.simple_data_record(16)
        b = workloads.simple_data_record(16)
        assert a["data"].tolist() == b["data"].tolist()

    def test_xsd_for_unknown_type(self):
        with pytest.raises(KeyError):
            workloads.xsd_for("NoSuchType")
