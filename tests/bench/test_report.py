"""Table/series rendering."""

from repro.bench.report import format_table, print_series, print_table


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["name", "value"],
                           [["alpha", 1], ["b", 22222]])
        lines = out.split("\n")
        assert lines[0].startswith("name")
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_title(self):
        out = format_table(["x"], [[1]], title="Figure 3")
        assert out.startswith("Figure 3\n")

    def test_float_formatting(self):
        out = format_table(["v"], [[0.123456], [1.5e-7], [12345.0],
                                   [0.0]])
        assert "0.1235" in out
        assert "1.500e-07" in out
        assert "1.234e+04" in out or "12345" in out

    def test_print_helpers_write_stdout(self, capsys):
        print_table(["a"], [[1]], title="T")
        print_series("s", [(1, 2)], x_label="x", y_label="y")
        out = capsys.readouterr().out
        assert "T" in out and "series: s" in out
