"""Timing utilities."""

import time

import pytest

from repro.bench.timing import TimingResult, time_callable


class TestTimeCallable:
    def test_measures_sleepy_callable(self):
        result = time_callable(lambda: time.sleep(0.001), repeat=3,
                               number=3)
        assert 0.0005 < result.best < 0.05
        assert result.mean >= result.best

    def test_calibration_picks_reasonable_number(self):
        result = time_callable(lambda: None, repeat=2,
                               target_batch_seconds=0.005)
        assert result.number > 100  # no-op should batch heavily

    def test_exceptions_surface_before_timing(self):
        def boom():
            raise RuntimeError("broken workload")
        with pytest.raises(RuntimeError, match="broken"):
            time_callable(boom)

    def test_stats_consistency(self):
        result = time_callable(lambda: sum(range(100)), repeat=4,
                               number=50)
        assert result.repeat == 4 and result.number == 50
        assert result.stddev >= 0
        assert result.best <= result.mean

    def test_unit_properties(self):
        result = TimingResult(best=0.001, mean=0.002, stddev=0.0,
                              repeat=1, number=1)
        assert result.best_ms == 1.0
        assert result.best_us == 1000.0
        assert "ms/call" in str(result)


class TestCalibration:
    def test_slow_callable_uses_single_iteration(self):
        result = time_callable(lambda: time.sleep(0.03), repeat=2,
                               target_batch_seconds=0.02)
        assert result.number == 1

    def test_explicit_number_respected(self):
        result = time_callable(lambda: None, repeat=2, number=7)
        assert result.number == 7
