"""Hypothesis strategies shared by the property-based tests.

Two central generators:

* :func:`field_specs` -- random PBIO field-spec lists (atomic types,
  fixed arrays, length-linked and self-sized dynamic arrays, strings);
* :func:`record_for` -- a strategy producing records valid for a given
  spec list, so ``encode(decode(x)) == x``-style properties can range
  over both formats and values.
"""

from __future__ import annotations

import math
import string

from hypothesis import strategies as st

_NAME_ALPHABET = string.ascii_lowercase + "_"

field_names = st.builds(
    lambda head, tail: head + tail,
    st.sampled_from(string.ascii_lowercase),
    st.text(alphabet=_NAME_ALPHABET + string.digits, min_size=0,
            max_size=8),
)

#: (type string template, element size) for atomic scalar fields.
_ATOMIC_TYPES: list[tuple[str, int]] = [
    ("integer", 1), ("integer", 2), ("integer", 4), ("integer", 8),
    ("unsigned integer", 1), ("unsigned integer", 2),
    ("unsigned integer", 4), ("unsigned integer", 8),
    ("float", 4), ("float", 8),
    ("boolean", 1), ("char", 1), ("string", 0),
]


def _int_bounds(size: int, unsigned: bool) -> tuple[int, int]:
    if unsigned:
        return 0, (1 << (8 * size)) - 1
    half = 1 << (8 * size - 1)
    return -half, half - 1


def value_for(type_string: str, size: int) -> st.SearchStrategy:
    """Values valid for an atomic scalar of the given type/size."""
    if type_string.startswith("unsigned"):
        lo, hi = _int_bounds(size, unsigned=True)
        return st.integers(lo, hi)
    if type_string == "integer":
        lo, hi = _int_bounds(size, unsigned=False)
        return st.integers(lo, hi)
    if type_string == "float":
        if size == 4:
            return st.floats(width=32, allow_nan=False)
        return st.floats(allow_nan=False)
    if type_string == "boolean":
        return st.booleans()
    if type_string == "char":
        return st.sampled_from(string.printable[:94])
    if type_string == "string":
        return st.one_of(
            st.none(),
            st.text(min_size=0, max_size=20).filter(
                lambda s: "\x00" not in s))
    raise AssertionError(type_string)


@st.composite
def atomic_field(draw, name: str):
    """One field spec plus the strategy for its values."""
    type_string, size = draw(st.sampled_from(_ATOMIC_TYPES))
    shape = draw(st.sampled_from(["scalar", "fixed", "dynamic"]))
    if type_string in ("string",):
        shape = "scalar"
    if shape == "scalar":
        spec = (name, type_string) if size == 0 \
            else (name, type_string, size)
        return spec, value_for(type_string, size)
    if shape == "fixed":
        n = draw(st.integers(1, 6))
        if type_string == "char":
            spec = (name, f"char[{n}]", 1)
            values = st.text(alphabet=string.ascii_letters,
                             min_size=0, max_size=n)
            return spec, values
        spec = (name, f"{type_string}[{n}]", size)
        return spec, st.lists(value_for(type_string, size),
                              min_size=n, max_size=n)
    # dynamic, self-sized
    if type_string == "char":
        spec = (name, "char[*]", 1)
        return spec, st.text(alphabet=string.ascii_letters,
                             min_size=0, max_size=12)
    spec = (name, f"{type_string}[*]", size)
    return spec, st.lists(value_for(type_string, size), min_size=0,
                          max_size=8)


#: element types usable inside dimensionName-linked var-arrays
_LINKABLE_TYPES = [(t, s) for t, s in _ATOMIC_TYPES
                   if t in ("integer", "unsigned integer", "float")]


@st.composite
def format_case(draw, min_fields: int = 1, max_fields: int = 6,
                allow_linked: bool = True):
    """A (specs, record_strategy) pair for a random flat format.

    Mixes scalars (contiguous ones become fused runs), strings, fixed
    arrays, self-sized dynamic arrays, and — unless *allow_linked* is
    False — ``dimensionName``-linked var-arrays whose sizing field is
    filled from the generated list's length.
    """
    names = draw(st.lists(field_names, min_size=min_fields,
                          max_size=max_fields, unique=True))
    specs = []
    value_strats = {}
    links = {}  # array field -> sizing field
    taken = set(names)
    for name in names:
        len_name = name + "_n"
        if allow_linked and len_name not in taken and \
                draw(st.integers(0, 4)) == 0:
            type_string, size = draw(st.sampled_from(_LINKABLE_TYPES))
            taken.add(len_name)
            specs.append((len_name, "integer", 4))
            specs.append((name, f"{type_string}[{len_name}]", size))
            value_strats[name] = st.lists(
                value_for(type_string, size), min_size=0, max_size=8)
            links[name] = len_name
            continue
        spec, values = draw(atomic_field(name))
        specs.append(spec)
        value_strats[name] = values

    def _fill_sizes(record, _links=links):
        out = dict(record)
        for array_name, length_name in _links.items():
            out[length_name] = len(out[array_name])
        return out

    record = st.fixed_dictionaries(value_strats).map(_fill_sizes)
    return specs, record


@st.composite
def scalar_run_case(draw, min_fields: int = 2, max_fields: int = 8):
    """A format of *only* fusible scalars — guarantees the compiled
    plan contains at least one multi-field fused run, so run fusion is
    exercised on every example rather than by luck."""
    scalars = [(t, s) for t, s in _ATOMIC_TYPES if t != "string"]
    names = draw(st.lists(field_names, min_size=min_fields,
                          max_size=max_fields, unique=True))
    specs = []
    value_strats = {}
    for name in names:
        type_string, size = draw(st.sampled_from(scalars))
        specs.append((name, type_string, size))
        value_strats[name] = value_for(type_string, size)
    return specs, st.fixed_dictionaries(value_strats)


def assert_record_roundtrip(original: dict, decoded: dict,
                            specs: list) -> None:
    """Structural equality with float32 tolerance."""
    assert set(decoded) == set(original)
    by_name = {s[0]: s for s in specs}
    for name, sent in original.items():
        got = decoded[name]
        spec = by_name[name]
        type_string = spec[1]
        size = spec[2] if len(spec) > 2 else None
        if type_string.startswith("float") and size == 4:
            _assert_f32(sent, got)
        elif type_string.startswith("char[") and sent is not None:
            # char arrays round-trip through NUL-stripped text
            assert got == sent.split("\x00", 1)[0]
        else:
            assert got == sent, (name, sent, got)


def _assert_f32(sent, got) -> None:
    import numpy as np
    if isinstance(sent, list):
        assert len(sent) == len(got)
        for s, g in zip(sent, got):
            _assert_f32(s, g)
        return
    expected = float(np.float32(sent))
    if math.isnan(expected):
        assert math.isnan(got)
    else:
        assert got == expected
