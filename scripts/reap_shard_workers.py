#!/usr/bin/env python
"""Reap orphaned shard worker processes.

Every worker a :class:`repro.transport.sharded.ShardedBroadcastServer`
spawns carries ``REPRO_SHARD_WORKER=<parent pid>`` in its environment.
Workers are daemons and die with their parent in normal operation, but
a test runner killed with SIGKILL (a CI timeout) can leave a shard
serving nothing, holding its port and wedging the next run.  This
script finds those orphans by scanning ``/proc/<pid>/environ`` and
terminates any whose parent is gone (or any at all with ``--all``).

Exit status is 0 whether or not orphans were found — this runs as a
best-effort CI cleanup step — and every reaped pid is reported.

Usage::

    python scripts/reap_shard_workers.py            # orphans only
    python scripts/reap_shard_workers.py --all      # every worker
    python scripts/reap_shard_workers.py --dry-run  # report, no kill
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import time

MARKER = b"REPRO_SHARD_WORKER="


def find_workers() -> list[tuple[int, int]]:
    """All live shard workers as ``(pid, parent pid)`` pairs."""
    workers = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        pid = int(entry)
        try:
            with open(f"/proc/{pid}/environ", "rb") as handle:
                environ = handle.read()
        except OSError:
            continue  # exited, or not ours to inspect
        for var in environ.split(b"\x00"):
            if var.startswith(MARKER):
                try:
                    parent = int(var[len(MARKER):])
                except ValueError:
                    parent = 0
                workers.append((pid, parent))
                break
    return workers


def pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def reap(pid: int, grace: float = 2.0) -> bool:
    """SIGTERM, then SIGKILL after *grace* seconds if still alive."""
    try:
        os.kill(pid, signal.SIGTERM)
    except OSError:
        return False
    deadline = time.monotonic() + grace
    while time.monotonic() < deadline:
        if not pid_alive(pid):
            return True
        time.sleep(0.05)
    try:
        os.kill(pid, signal.SIGKILL)
    except OSError:
        pass
    return True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Reap orphaned repro shard worker processes.")
    parser.add_argument("--all", action="store_true",
                        help="reap every shard worker, not just "
                             "orphans whose parent is gone")
    parser.add_argument("--dry-run", action="store_true",
                        help="report what would be reaped, kill "
                             "nothing")
    args = parser.parse_args(argv)
    me = os.getpid()
    reaped = 0
    for pid, parent in find_workers():
        if pid == me:
            continue
        orphaned = not pid_alive(parent)
        if not (args.all or orphaned):
            continue
        state = "orphaned" if orphaned else f"child of {parent}"
        if args.dry_run:
            print(f"would reap shard worker {pid} ({state})")
            continue
        if reap(pid):
            reaped += 1
            print(f"reaped shard worker {pid} ({state})")
    if reaped == 0 and not args.dry_run:
        print("no orphaned shard workers found")
    return 0


if __name__ == "__main__":
    sys.exit(main())
