"""Mutable telemetry switches, read inline by the hot paths.

This module is deliberately nothing but module-level words: hot call
sites do ``from repro.obs import runtime as _obs`` once and then test
``_obs.enabled`` — a module attribute read and a branch, tens of
nanoseconds — instead of calling into the registry.  That is what
keeps the no-op mode within the benchmark gate's 1% bound
(``benchmarks/check_obs_gate.py``).

* ``enabled`` — master switch.  Off: no spans, no histograms, no
  mirrored counters; the legacy per-instance stats objects keep exact
  counts either way.
* ``sample_mask`` — marshal/unmarshal latency is *sampled*: one in
  every ``sample_mask + 1`` codec operations is timed (the mask must
  be ``2**k - 1``).  0 times every operation (exact sums, used by the
  live-RDM test); the default 15 keeps steady-state timing cost to a
  fraction of a lock round-trip per record.
* ``tick`` — the shared sampling wheel.  Racy increments across
  threads only skew *which* operations get sampled, never a counter.

Use :func:`repro.obs.configure` / :func:`repro.obs.set_enabled`
rather than poking these directly.
"""

from __future__ import annotations

enabled: bool = True
sample_mask: int = 15
tick: int = 0

#: ring-buffer capacity for span traces; 0 disables tracing
trace_capacity: int = 0
