"""Phase-tagged tracing spans.

A span times one unit of work and files it under the paper's phase
taxonomy (:data:`repro.obs.metrics.PHASES`), so registration-side cost
(``discover``, ``bind/compile``) and steady-state cost (``marshal``,
``unmarshal``, ``transport``) accumulate in separate histogram series
— which is exactly what makes the paper's RDM (relative difference of
marshaling: registration time over marshal time) computable from live
telemetry (:func:`rdm_from_snapshot`).

Usage::

    with obs.span("register", format=fmt.name):
        ctx.register(fmt)

Spans are nestable (each records its own wall time), and in no-op
mode (``obs.set_enabled(False)``) :func:`span` hands back a shared
do-nothing singleton.  Well-known span names map to phases
automatically; anything else passes ``phase=`` explicitly or lands in
``other``.

For steady-state codec operations a context-manager per record would
dwarf the work being measured, so the codec uses :func:`sample_t0`:
a sampled ``perf_counter_ns`` start-or-zero, one branch in the common
case (see ``repro.obs.runtime.sample_mask``).
"""

from __future__ import annotations

import threading
from collections import deque
from time import perf_counter_ns

from repro.obs import runtime
from repro.obs.metrics import PHASE_SECONDS, PHASES, SPANS_TOTAL

#: default phase per well-known span name
_NAME_PHASES = {
    "fetch": "discover", "load_url": "discover",
    "refresh": "discover",
    "compile": "bind/compile", "register": "bind/compile",
    "compile_plan": "bind/compile", "bind": "bind/compile",
    # loading a persisted plan is *not* registration work — warm
    # starts must read as RDM ≈ 0, so the load files under "other"
    "plan_cache_load": "other",
    "encode": "marshal", "encode_many": "marshal",
    "decode": "unmarshal", "decode_many": "unmarshal",
    "send": "transport", "receive": "transport",
    "fan_out": "transport", "pipeline": "transport",
}

#: per-phase histogram children, resolved once
_PHASE_SERIES = {phase: PHASE_SECONDS.labels(phase=phase)
                 for phase in PHASES}

_trace_lock = threading.Lock()
_trace: deque = deque(maxlen=256)


class _NoopSpan:
    """Shared do-nothing span for disabled telemetry."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NOOP = _NoopSpan()


class Span:
    """A live span; records on ``__exit__``."""

    __slots__ = ("name", "phase", "tags", "started_ns", "duration_ns")

    def __init__(self, name: str, phase: str, tags: dict) -> None:
        self.name = name
        self.phase = phase
        self.tags = tags
        self.started_ns = 0
        self.duration_ns = 0

    def __enter__(self) -> "Span":
        self.started_ns = perf_counter_ns()
        return self

    def __exit__(self, *exc) -> None:
        self.duration_ns = perf_counter_ns() - self.started_ns
        _PHASE_SERIES[self.phase].observe(self.duration_ns * 1e-9)
        SPANS_TOTAL.labels(self.name, self.phase).inc()
        if runtime.trace_capacity:
            with _trace_lock:
                _trace.append({"name": self.name, "phase": self.phase,
                               "tags": self.tags,
                               "duration_ns": self.duration_ns})


def span(name: str, *, phase: str | None = None, **tags):
    """A context manager timing one *name*d unit of work.

    *phase* defaults by span name (``register`` -> ``bind/compile``,
    ``fetch`` -> ``discover``, ...), else ``other``.  Extra keyword
    *tags* are kept only in the trace ring (when enabled) — they never
    become metric labels, so tag cardinality is free.
    """
    if not runtime.enabled:
        return _NOOP
    if phase is None:
        phase = _NAME_PHASES.get(name, "other")
    elif phase not in _PHASE_SERIES:
        raise ValueError(f"unknown phase {phase!r} "
                         f"(taxonomy: {list(PHASES)})")
    return Span(name, phase, tags)


def sample_t0() -> int:
    """A sampled span start for per-record codec work.

    Returns ``perf_counter_ns()`` when this operation should be
    timed, else 0 — callers skip the end-side ``observe`` on 0.
    Disabled telemetry always returns 0 after a single branch.
    """
    if not runtime.enabled:
        return 0
    runtime.tick = t = runtime.tick + 1
    if t & runtime.sample_mask:
        return 0
    return perf_counter_ns()


def observe_phase(phase: str, t0: int) -> None:
    """File ``now - t0`` seconds under *phase* (pairs with a non-zero
    :func:`sample_t0` result)."""
    _PHASE_SERIES[phase].observe((perf_counter_ns() - t0) * 1e-9)


def recent_spans() -> list[dict]:
    """The trace ring's contents, oldest first (requires
    ``configure(trace_capacity=N)``)."""
    with _trace_lock:
        return list(_trace)


# -- switches ----------------------------------------------------------------

def set_enabled(enabled: bool) -> None:
    """Master telemetry switch; False is the no-op mode."""
    runtime.enabled = bool(enabled)


def is_enabled() -> bool:
    return runtime.enabled


def configure(*, sample_mask: int | None = None,
              trace_capacity: int | None = None) -> None:
    """Tune telemetry cost/fidelity.

    *sample_mask* must be ``2**k - 1``; 0 times every codec operation
    (exact phase sums), 15 (default) times one in sixteen.
    *trace_capacity* sizes the span trace ring; 0 disables tracing.
    """
    global _trace
    if sample_mask is not None:
        if sample_mask & (sample_mask + 1):
            raise ValueError("sample_mask must be 2**k - 1")
        runtime.sample_mask = sample_mask
    if trace_capacity is not None:
        if trace_capacity < 0:
            raise ValueError("trace_capacity must be >= 0")
        runtime.trace_capacity = trace_capacity
        with _trace_lock:
            _trace = deque(_trace, maxlen=max(trace_capacity, 1))


class _Disabled:
    """``with obs.disabled(): ...`` — scoped no-op mode (tests)."""

    def __enter__(self):
        self._was = runtime.enabled
        runtime.enabled = False
        return self

    def __exit__(self, *exc):
        runtime.enabled = self._was


def disabled() -> _Disabled:
    return _Disabled()


# -- derived readings --------------------------------------------------------

def phase_seconds(snapshot: dict) -> dict[str, dict]:
    """Per-phase ``{"sum": s, "count": n}`` from a registry snapshot."""
    out: dict[str, dict] = {}
    entry = snapshot.get("repro_phase_seconds")
    if entry is None:
        return out
    for series in entry["series"]:
        out[series["labels"]["phase"]] = {"sum": series["sum"],
                                          "count": series["count"]}
    return out


def rdm_from_snapshot(snapshot: dict) -> dict:
    """The paper's cost split, read from live telemetry alone.

    Registration cost is the summed ``discover`` + ``bind/compile``
    phase time; per-record marshal cost is the mean of the sampled
    ``marshal`` observations (sampling-agnostic — the mean needs no
    scale-up by the sample rate).  Returns::

        {"registration_seconds", "marshal_seconds_per_record",
         "marshal_records_sampled", "rdm"}

    where ``rdm = registration_seconds / marshal_seconds_per_record``
    — how many steady-state records one registration costs, the
    amortization denominator of section 4.2.  ``rdm`` is None until
    both sides have observations.
    """
    phases = phase_seconds(snapshot)
    registration = sum(phases.get(p, {}).get("sum", 0.0)
                      for p in ("discover", "bind/compile"))
    marshal = phases.get("marshal", {"sum": 0.0, "count": 0})
    per_record = (marshal["sum"] / marshal["count"]
                  if marshal["count"] else None)
    rdm = (registration / per_record
           if per_record else None)
    return {"registration_seconds": registration,
            "marshal_seconds_per_record": per_record,
            "marshal_records_sampled": marshal["count"],
            "rdm": rdm}
