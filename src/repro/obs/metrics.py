"""The metric catalog: every predeclared series, in one place.

Naming follows Prometheus conventions (``repro_`` prefix, ``_total``
counters, ``_seconds`` histograms).  The catalog is organized by the
subsystems the paper's cost model distinguishes — discovery, codec
(marshal/unmarshal), transport — plus the hydrology workload and the
fault-injection harness.  ``docs/OBSERVABILITY.md`` is the prose
companion.

Hot-path metrics are incremented inline by their subsystems; state
that is cheaper to read on demand (per-client transport queues,
buffer-pool reuse, cached codec plans) arrives through snapshot-time
collectors instead, so steady-state work pays nothing for it.
"""

from __future__ import annotations

from repro.obs.registry import REGISTRY, log_buckets

# -- phases (spans land here; see repro.obs.spans) --------------------------

#: the paper's phase taxonomy: registration-side work (discover,
#: bind/compile) vs steady-state work (marshal, unmarshal, transport)
PHASES = ("discover", "bind/compile", "marshal", "unmarshal",
          "transport", "other")

PHASE_SECONDS = REGISTRY.histogram(
    "repro_phase_seconds",
    "Time spent per phase of the paper's taxonomy "
    "(marshal/unmarshal entries are sampled; see sample_mask)",
    labels=("phase",))

SPANS_TOTAL = REGISTRY.counter(
    "repro_spans_total", "Completed tracing spans",
    labels=("name", "phase"))

# -- discovery --------------------------------------------------------------

DISCOVERY_EVENTS = REGISTRY.counter(
    "repro_discovery_events_total",
    "Discovery-path events mirrored from DiscoveryStats "
    "(fetch_attempts, retries, cache_hits, fallbacks, ...)",
    labels=("event",))

DISCOVERY_COMPILE_SECONDS = REGISTRY.histogram(
    "repro_discovery_compile_seconds",
    "Schema-document compile time (one observation per new digest)")

HTTP_REQUESTS = REGISTRY.counter(
    "repro_http_requests_total",
    "Requests served by MetadataHTTPServer", labels=("status",))

# -- codec (pbio encode/decode) ---------------------------------------------

CODEC_PLANS = REGISTRY.counter(
    "repro_codec_plans_total",
    "Compiled codec plan cache outcomes in "
    "encoder_for_format/decoder_for_format (miss counts actual "
    "compiles — single-flight losers and persistent-tier loads are "
    "not misses)",
    labels=("kind", "outcome"))

PLAN_CACHE = REGISTRY.counter(
    "repro_plan_cache_total",
    "Compiled-plan cache tier outcomes: tier=memory counts LRU "
    "hits/evictions, tier=disk counts persistent-tier loads "
    "(hit/miss/corrupt/stale/invalid) and writes (store/store_error); "
    "see docs/PLAN_CACHE.md",
    labels=("tier", "outcome"))

# -- format evolution -------------------------------------------------------

EVOLUTION_EVENTS = REGISTRY.counter(
    "repro_evolution_events_total",
    "Format-evolution lifecycle events: lineage growth "
    "(lineage_appended), down-conversion plan cache activity "
    "(plans_compiled, plan_cache_hits), records re-encoded for stale "
    "peers (records_down_converted), handshakes (negotiations, "
    "no_common_version) and publisher cutovers (cutovers)",
    labels=("event",))

NEGOTIATED_VERSIONS = REGISTRY.counter(
    "repro_negotiated_versions_total",
    "Lineage handshakes resolved, by the peer's negotiated position "
    "in the lineage chain (v0 = oldest registered version)",
    labels=("version",))

# -- transport --------------------------------------------------------------

TRANSPORT_CLIENTS = REGISTRY.gauge(
    "repro_transport_clients",
    "Open event-loop clients (summed over live servers; collector)")

TRANSPORT_QUEUED_BYTES = REGISTRY.gauge(
    "repro_transport_queued_bytes",
    "Bytes sitting in per-client write queues (collector)")

TRANSPORT_QUEUE_HIGH_WATER = REGISTRY.gauge(
    "repro_transport_queue_high_water_bytes",
    "Largest single-client write queue observed (collector)")

TRANSPORT_FRAMES = REGISTRY.counter(
    "repro_transport_frames_total",
    "Frames through event-loop servers",
    labels=("direction",))

TRANSPORT_BYTES_OUT = REGISTRY.counter(
    "repro_transport_bytes_out_total",
    "Bytes written to event-loop clients")

TRANSPORT_EVENTS = REGISTRY.counter(
    "repro_transport_events_total",
    "Event-loop server lifecycle totals",
    labels=("event",))

MALFORMED_FRAMES = REGISTRY.counter(
    "repro_malformed_frames_total",
    "Wire inputs rejected by bounds-checked validation; counting "
    "instead of disconnecting keeps one hostile frame from tearing "
    "down healthy peers",
    labels=("layer", "reason"))

SENDMSG_BATCH = REGISTRY.histogram(
    "repro_transport_sendmsg_batch_frames",
    "Queue entries drained per scatter-gather sendmsg",
    buckets=log_buckets(1.0, 2.0, 10))

# -- hydrology workload -----------------------------------------------------

COMPONENT_MESSAGES = REGISTRY.counter(
    "repro_component_messages_total",
    "Messages through hydrology pipeline components",
    labels=("component", "format", "direction"))

PIPELINE_RUNS = REGISTRY.counter(
    "repro_pipeline_runs_total", "Completed hydrology pipeline runs",
    labels=("mode",))

# -- fault injection --------------------------------------------------------

FAULTS_INJECTED = REGISTRY.counter(
    "repro_faults_injected_total",
    "Faults served by the repro.testing.faults harness",
    labels=("kind",))


def _codec_plan_collector():
    """Buffer-pool reuse summed over the process-wide cached codec
    plans — read at snapshot time, free on the encode path."""
    from repro.pbio.encode import _ENCODER_CACHE
    acquires = reuses = 0
    for encoder in list(_ENCODER_CACHE.values()):
        acquires += encoder._pool.acquires
        reuses += encoder._pool.reuses
    return [
        {"name": "repro_codec_buffer_pool_total", "type": "counter",
         "help": "Body-buffer acquisitions by cached encoder plans",
         "labels": {"event": "acquires"}, "value": acquires},
        {"name": "repro_codec_buffer_pool_total", "type": "counter",
         "help": "Body-buffer acquisitions by cached encoder plans",
         "labels": {"event": "reuses"}, "value": reuses},
    ]


def _codec_totals_collector():
    """Process-wide codec totals from ContextStats — every context's
    records/bytes in both directions, read at snapshot time."""
    from repro.pbio.context import ContextStats
    help_text = ("Process-wide codec totals summed over every "
                 "IOContext, living or dead")
    return [
        {"name": "repro_codec_events_total", "type": "counter",
         "help": help_text, "labels": {"event": event}, "value": value}
        for event, value in ContextStats.totals_snapshot().items()
    ]


def _broadcast_totals_collector():
    """Publisher counters and high-water marks from BroadcastStats."""
    from repro.transport.broadcast import BroadcastStats
    samples = [
        {"name": "repro_broadcast_events_total", "type": "counter",
         "help": "Publisher events summed over every "
                 "BroadcastPublisher",
         "labels": {"event": event}, "value": value}
        for event, value in BroadcastStats.totals_snapshot().items()
    ]
    for name, value in BroadcastStats.high_water_snapshot().items():
        samples.append(
            {"name": f"repro_broadcast_{name}", "type": "gauge",
             "help": "Largest value observed by any publisher",
             "labels": {}, "value": value})
    return samples


REGISTRY.register_collector(_codec_plan_collector)
REGISTRY.register_collector(_codec_totals_collector)
REGISTRY.register_collector(_broadcast_totals_collector)
