"""Cross-process snapshot merging for sharded deployments.

A :class:`~repro.transport.sharded.ShardedBroadcastServer` runs one
registry per worker process; each worker's
:meth:`~repro.obs.registry.MetricsRegistry.snapshot` only sees its own
shard.  :func:`merge_snapshots` combines them into a single scrapeable
body by stamping every series with a ``worker`` label — no information
is lost, one ``/metrics`` shows the fleet.  :func:`aggregate_snapshot`
collapses that back to fleet-wide totals: counters sum, ``*_high_water``
gauges take the max (they are maxima, adding them is meaningless),
other gauges sum, and log-bucket histograms merge bucket-wise so
quantile estimates stay exact (identical bounds are a given: every
worker runs the same :func:`~repro.obs.registry.log_buckets` catalog;
stragglers with differing bounds are merged by bound value).

Both functions take and return the plain-dict snapshot shape of
``MetricsRegistry.snapshot`` and are pure — safe on parsed JSON from
remote workers.
"""

from __future__ import annotations

WORKER_LABEL = "worker"


def merge_snapshots(snapshots: dict[str, dict]) -> dict:
    """Combine per-process snapshots into one, keyed by worker label.

    *snapshots* maps a worker label (``"w0"``, ``"publisher"``, a URL)
    to that process's registry snapshot.  Every series gains a
    ``worker`` label carrying its origin; series that already have one
    (an already-merged snapshot passed through) keep it.
    """
    out: dict[str, dict] = {}
    for worker, snapshot in sorted(snapshots.items()):
        for name, metric in sorted(snapshot.items()):
            entry = out.get(name)
            if entry is None:
                label_names = list(metric.get("label_names", ()))
                if WORKER_LABEL not in label_names:
                    label_names = label_names + [WORKER_LABEL]
                entry = out[name] = {
                    "type": metric.get("type", "gauge"),
                    "help": metric.get("help", ""),
                    "label_names": label_names,
                    "series": []}
            elif WORKER_LABEL not in entry["label_names"]:
                entry["label_names"].append(WORKER_LABEL)
            for series in metric.get("series", ()):
                labels = dict(series.get("labels", {}))
                labels.setdefault(WORKER_LABEL, worker)
                merged = {"labels": labels}
                for key in ("value", "bounds", "counts", "sum",
                            "count"):
                    if key in series:
                        merged[key] = series[key]
                entry["series"].append(merged)
    return out


def aggregate_snapshot(snapshot: dict) -> dict:
    """Collapse a merged snapshot to fleet-wide totals.

    The ``worker`` label is dropped; series that then share a label
    set combine: counters sum, gauges sum except ``*_high_water``
    (max of maxima), histograms merge their buckets by bound value
    and sum ``sum``/``count``.
    """
    out: dict[str, dict] = {}
    for name, metric in sorted(snapshot.items()):
        label_names = [label for label in
                       metric.get("label_names", ())
                       if label != WORKER_LABEL]
        entry = out[name] = {"type": metric.get("type", "gauge"),
                             "help": metric.get("help", ""),
                             "label_names": label_names,
                             "series": []}
        combined: dict[tuple, dict] = {}
        for series in metric.get("series", ()):
            labels = {k: v for k, v in
                      series.get("labels", {}).items()
                      if k != WORKER_LABEL}
            key = tuple(sorted(labels.items()))
            slot = combined.get(key)
            if slot is None:
                slot = combined[key] = {"labels": labels}
                if "value" in series:
                    slot["value"] = series["value"]
                else:
                    bounds = series.get("bounds", ())
                    counts = series.get("counts", ())
                    slot["_buckets"] = dict(zip(bounds, counts))
                    # counts carries one extra entry: the +Inf
                    # overflow bucket beyond the last finite bound
                    slot["_overflow"] = sum(counts[len(bounds):])
                    slot["sum"] = series.get("sum", 0)
                    slot["count"] = series.get("count", 0)
            elif "value" in series:
                if entry["type"] == "gauge" and \
                        name.endswith("_high_water"):
                    slot["value"] = max(slot["value"],
                                        series["value"])
                else:
                    slot["value"] += series["value"]
            else:
                buckets = slot["_buckets"]
                bounds = series.get("bounds", ())
                counts = series.get("counts", ())
                for bound, count in zip(bounds, counts):
                    buckets[bound] = buckets.get(bound, 0) + count
                slot["_overflow"] += sum(counts[len(bounds):])
                slot["sum"] += series.get("sum", 0)
                slot["count"] += series.get("count", 0)
        for slot in combined.values():
            buckets = slot.pop("_buckets", None)
            if buckets is not None:
                bounds = sorted(buckets)
                slot["bounds"] = bounds
                slot["counts"] = [buckets[b] for b in bounds] + \
                    [slot.pop("_overflow")]
            entry["series"].append(slot)
    return out
