"""Render a registry snapshot as Prometheus text or JSON.

Both renderers consume the plain-dict output of
:meth:`~repro.obs.registry.MetricsRegistry.snapshot` — they never
touch live metric objects, so a snapshot can be rendered off-process
(``repro.tools.obsdump --url``) or embedded in a transport frame
(:data:`~repro.transport.messages.FrameType.STATS_REQ`).

The Prometheus format is text exposition 0.0.4: ``# HELP`` / ``# TYPE``
preambles, escaped label values, and histogram series exploded into
cumulative ``_bucket{le=...}`` plus ``_sum`` / ``_count``.
"""

from __future__ import annotations

import json

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\"", "\\\"")
            .replace("\n", "\\n"))


def _labels_text(labels: dict, extra: tuple[tuple[str, str], ...] = ()) \
        -> str:
    pairs = [(k, str(v)) for k, v in labels.items()] + list(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _number(value) -> str:
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer() and \
            abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _bound(value: float) -> str:
    return f"{value:.9g}"


def render_prometheus(snapshot: dict) -> str:
    """The full snapshot in Prometheus text exposition format."""
    lines: list[str] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        mtype = entry.get("type", "gauge")
        lines.append(f"# HELP {name} "
                     f"{_escape_help(entry.get('help', ''))}")
        lines.append(f"# TYPE {name} {mtype}")
        for series in entry.get("series", []):
            labels = series.get("labels", {})
            if mtype == "histogram":
                cumulative = 0
                for bound, count in zip(series["bounds"],
                                        series["counts"]):
                    cumulative += count
                    lines.append(
                        f"{name}_bucket"
                        f"{_labels_text(labels, (('le', _bound(bound)),))}"
                        f" {cumulative}")
                cumulative += series["counts"][len(series["bounds"])]
                lines.append(
                    f"{name}_bucket"
                    f"{_labels_text(labels, (('le', '+Inf'),))}"
                    f" {cumulative}")
                lines.append(f"{name}_sum{_labels_text(labels)} "
                             f"{repr(float(series['sum']))}")
                lines.append(f"{name}_count{_labels_text(labels)} "
                             f"{series['count']}")
            else:
                lines.append(f"{name}{_labels_text(labels)} "
                             f"{_number(series.get('value', 0))}")
    return "\n".join(lines) + "\n"


def render_json(snapshot: dict, *, indent: int | None = 2) -> str:
    """The snapshot as JSON (already JSON-safe plain dicts)."""
    return json.dumps(snapshot, indent=indent, sort_keys=True) + "\n"


def parse_json(text: str | bytes) -> dict:
    """Inverse of :func:`render_json`, with shape validation."""
    data = json.loads(text)
    if not isinstance(data, dict):
        raise ValueError("snapshot JSON must be an object")
    for name, entry in data.items():
        if not isinstance(entry, dict) or "series" not in entry:
            raise ValueError(f"metric {name!r}: missing series")
        for series in entry["series"]:
            if "labels" not in series:
                raise ValueError(f"metric {name!r}: series without "
                                 "labels")
            if entry.get("type") == "histogram":
                for key in ("bounds", "counts", "sum", "count"):
                    if key not in series:
                        raise ValueError(
                            f"metric {name!r}: histogram series "
                            f"missing {key!r}")
            elif "value" not in series:
                raise ValueError(f"metric {name!r}: series without "
                                 "value")
    return data
