"""``repro.obs`` — the unified telemetry layer.

One process-wide registry of counters, gauges and log-bucket
histograms (:mod:`repro.obs.registry`), a phase-tagged span API
(:mod:`repro.obs.spans`) and Prometheus/JSON exposition
(:mod:`repro.obs.exposition`), instrumenting discovery
(``repro.http.retry`` / ``repro.core.registry``), the codec
(``repro.pbio``), transport (``repro.transport``) and the hydrology
workload — so the paper's central cost split (registration-time RDM
vs zero steady-state marshaling overhead) is visible from a running
system: ``GET /metrics`` on :class:`~repro.http.server
.MetadataHTTPServer`, a ``STATS_REQ`` frame to a broadcast publisher,
or ``python -m repro.tools.obsdump``.

Hot-path cost is bounded by design — plain-int adds under striped
locks, sampled codec timing, a single-branch no-op mode — and
enforced by ``benchmarks/check_obs_gate.py`` in CI.
"""

from repro.obs import runtime
from repro.obs.exposition import (
    PROMETHEUS_CONTENT_TYPE, parse_json, render_json,
    render_prometheus,
)
from repro.obs.merge import (
    WORKER_LABEL, aggregate_snapshot, merge_snapshots,
)
from repro.obs.metrics import PHASES
from repro.obs.registry import (
    REGISTRY, AtomicCounter, MetricsRegistry, get_registry,
    log_buckets,
)
from repro.obs.spans import (
    Span, configure, disabled, is_enabled, observe_phase,
    phase_seconds, rdm_from_snapshot, recent_spans, sample_t0,
    set_enabled, span,
)


def snapshot() -> dict:
    """Snapshot the process-wide registry (plain JSON-safe dicts)."""
    return REGISTRY.snapshot()


def reset() -> None:
    """Zero every series in the process-wide registry (tests)."""
    REGISTRY.reset()


__all__ = [
    "AtomicCounter",
    "MetricsRegistry",
    "PHASES",
    "PROMETHEUS_CONTENT_TYPE",
    "REGISTRY",
    "Span",
    "WORKER_LABEL",
    "aggregate_snapshot",
    "configure",
    "disabled",
    "get_registry",
    "is_enabled",
    "log_buckets",
    "merge_snapshots",
    "observe_phase",
    "parse_json",
    "phase_seconds",
    "rdm_from_snapshot",
    "recent_spans",
    "render_json",
    "render_prometheus",
    "reset",
    "runtime",
    "sample_t0",
    "set_enabled",
    "snapshot",
    "span",
]
