"""Process-wide, thread-safe metrics registry.

The paper's evaluation is built on counters (registration counts,
record counts) and timings (registration latency vs marshal latency);
this module is the runtime home for both, so the cost split the paper
measured offline — 2-4x registration-time RDM against near-zero
steady-state marshaling overhead — is observable from a *running*
process.

Three metric types, all label-capable:

* :class:`Counter`   — monotone totals (``_total`` names by
  convention);
* :class:`Gauge`     — point-in-time values (queue depth, client
  count);
* :class:`Histogram` — fixed **log-scale** buckets precomputed at
  declaration, so ``observe()`` is a bisect plus two adds.

Hot-path discipline: every series carries a plain ``int``/``float``
mutated under a **striped lock** (a small shared pool of locks,
assigned by series hash), so concurrent writers rarely contend and a
single increment is one lock round-trip.  Reads of a single word are
atomic under the GIL and taken without the lock.

``snapshot()`` returns plain dicts/lists (JSON-safe) — the single
source for the Prometheus/JSON exposition in
:mod:`repro.obs.exposition`.

Registries also accept **collectors**: callables sampled at snapshot
time that contribute counter/gauge series for state that is cheaper to
read on demand than to mirror per-operation (per-client transport
queues, buffer-pool reuse).  Collectors registered for a bound method
are held weakly, so instrumented objects die normally.
"""

from __future__ import annotations

import threading
import weakref
from bisect import bisect_left
from typing import Callable, Iterable

#: shared lock pool; every series takes one stripe by hash so that a
#: counter increment never allocates a lock and rarely contends
_N_STRIPES = 16
_STRIPES = tuple(threading.Lock() for _ in range(_N_STRIPES))


def _stripe(key) -> threading.Lock:
    return _STRIPES[hash(key) % _N_STRIPES]


def log_buckets(start: float = 1e-6, factor: float = 2.0,
                count: int = 24) -> tuple[float, ...]:
    """Fixed log-scale bucket bounds: ``start * factor**i``.

    The default spans 1us .. ~8.4s in powers of two — wide enough for
    both a fused encode (microseconds) and a cold discovery fetch
    (seconds) in one scheme.
    """
    if start <= 0 or factor <= 1.0 or count < 1:
        raise ValueError("log_buckets needs start>0, factor>1, count>=1")
    return tuple(start * factor ** i for i in range(count))


DEFAULT_SECONDS_BUCKETS = log_buckets()


class AtomicCounter:
    """A plain-int counter guarded by a striped lock.

    The primitive every migrated stats class routes through:
    ``add()`` is the only mutation path, so totals under concurrent
    hammering are exact (a bare ``+=`` on an attribute is a
    read-modify-write that drops updates between threads).
    """

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock | None = None) -> None:
        self._lock = lock if lock is not None else _stripe(id(self))
        self._value = 0

    def add(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    def set(self, value: int) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> int:
        return self._value  # single-word read: atomic under the GIL

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AtomicCounter({self._value})"


class _Series:
    """One (metric, label-values) time series."""

    __slots__ = ("labels", "_lock")

    def __init__(self, metric: "Metric", labels: tuple[str, ...]) -> None:
        self.labels = labels
        self._lock = _stripe((metric.name, labels))


class _CounterSeries(_Series):
    __slots__ = ("_value",)

    def __init__(self, metric, labels):
        super().__init__(metric, labels)
        self._value = 0

    def inc(self, n: float = 1) -> None:
        with self._lock:
            self._value += n

    add = inc

    @property
    def value(self):
        return self._value


class _GaugeSeries(_Series):
    __slots__ = ("_value",)

    def __init__(self, metric, labels):
        super().__init__(metric, labels)
        self._value = 0

    def set(self, value: float) -> None:
        self._value = value  # single-store: atomic under the GIL

    def inc(self, n: float = 1) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1) -> None:
        self.inc(-n)

    def max(self, value: float) -> None:
        """High-water update: keep the larger of current and *value*."""
        with self._lock:
            if value > self._value:
                self._value = value

    @property
    def value(self):
        return self._value


class _HistogramSeries(_Series):
    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, metric, labels):
        super().__init__(metric, labels)
        self.bounds = metric.buckets          # precomputed, shared
        self.counts = [0] * (len(self.bounds) + 1)  # +1 = +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[idx] += 1
            self.sum += value
            self.count += 1


_SERIES_TYPES = {"counter": _CounterSeries, "gauge": _GaugeSeries,
                 "histogram": _HistogramSeries}


class Metric:
    """A named metric plus its labeled children.

    An unlabeled metric acts as its own single series (``inc`` /
    ``set`` / ``observe`` delegate to the default child); a labeled
    one hands out children via :meth:`labels`.
    """

    def __init__(self, name: str, mtype: str, help: str,
                 label_names: tuple[str, ...],
                 buckets: tuple[float, ...] | None = None) -> None:
        if mtype not in _SERIES_TYPES:
            raise ValueError(f"unknown metric type {mtype!r}")
        self.name = name
        self.type = mtype
        self.help = help
        self.label_names = tuple(label_names)
        self.buckets = tuple(buckets) if buckets is not None else \
            (DEFAULT_SECONDS_BUCKETS if mtype == "histogram" else None)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], _Series] = {}
        self._default: _Series | None = None
        if not self.label_names:
            self._default = self._child(())

    def _child(self, values: tuple[str, ...]) -> _Series:
        child = self._children.get(values)
        if child is None:
            with self._lock:
                child = self._children.get(values)
                if child is None:
                    child = _SERIES_TYPES[self.type](self, values)
                    self._children[values] = child
        return child

    def labels(self, *args: str, **kwargs: str):
        """The child series for these label values.

        Accepts positional values in declared order, or keywords."""
        if args and kwargs:
            raise ValueError("pass label values positionally or by "
                             "keyword, not both")
        if kwargs:
            try:
                values = tuple(str(kwargs[n]) for n in self.label_names)
            except KeyError as exc:
                raise ValueError(
                    f"{self.name}: missing label {exc.args[0]!r} "
                    f"(declared: {list(self.label_names)})") from None
            if len(kwargs) != len(self.label_names):
                extra = set(kwargs) - set(self.label_names)
                raise ValueError(
                    f"{self.name}: unknown labels {sorted(extra)}")
        else:
            if len(args) != len(self.label_names):
                raise ValueError(
                    f"{self.name}: expected {len(self.label_names)} "
                    f"label values, got {len(args)}")
            values = tuple(str(a) for a in args)
        return self._child(values)

    # -- unlabeled convenience ------------------------------------------------

    def _require_default(self) -> _Series:
        if self._default is None:
            raise ValueError(
                f"{self.name} declares labels "
                f"{list(self.label_names)}; use .labels(...)")
        return self._default

    def inc(self, n: float = 1) -> None:
        self._require_default().inc(n)

    add = inc

    def dec(self, n: float = 1) -> None:
        self._require_default().dec(n)

    def set(self, value: float) -> None:
        self._require_default().set(value)

    def observe(self, value: float) -> None:
        self._require_default().observe(value)

    @property
    def value(self):
        return self._require_default().value

    # -- snapshot -------------------------------------------------------------

    def _snapshot_series(self) -> list[dict]:
        out = []
        with self._lock:
            children = list(self._children.items())
        for values, child in sorted(children):
            labels = dict(zip(self.label_names, values))
            if self.type == "histogram":
                with child._lock:
                    out.append({"labels": labels,
                                "bounds": list(child.bounds),
                                "counts": list(child.counts),
                                "sum": child.sum,
                                "count": child.count})
            else:
                out.append({"labels": labels, "value": child.value})
        return out

    def _reset(self) -> None:
        with self._lock:
            for child in self._children.values():
                if self.type == "histogram":
                    with child._lock:
                        child.counts = [0] * (len(child.bounds) + 1)
                        child.sum = 0.0
                        child.count = 0
                else:
                    child._value = 0


#: collector protocol: () -> iterable of sample dicts, each
#:   {"name": str, "type": "counter"|"gauge", "help": str,
#:    "labels": {str: str}, "value": number}
Collector = Callable[[], Iterable[dict]]


class MetricsRegistry:
    """Name -> :class:`Metric`, plus snapshot-time collectors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Metric] = {}
        self._collectors: list = []   # weakref.WeakMethod | Collector

    # -- declaration ----------------------------------------------------------

    def _declare(self, name: str, mtype: str, help: str,
                 labels: tuple[str, ...],
                 buckets: tuple[float, ...] | None = None) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is not None:
                if metric.type != mtype or \
                        metric.label_names != tuple(labels):
                    raise ValueError(
                        f"metric {name!r} already declared as "
                        f"{metric.type}{list(metric.label_names)}")
                return metric
            metric = Metric(name, mtype, help, tuple(labels),
                            buckets=buckets)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "",
                labels: tuple[str, ...] = ()) -> Metric:
        return self._declare(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "",
              labels: tuple[str, ...] = ()) -> Metric:
        return self._declare(name, "gauge", help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: tuple[str, ...] = (),
                  buckets: tuple[float, ...] | None = None) -> Metric:
        return self._declare(name, "histogram", help, labels,
                             buckets=buckets)

    def get(self, name: str) -> Metric | None:
        with self._lock:
            return self._metrics.get(name)

    # -- collectors -----------------------------------------------------------

    def register_collector(self, fn: Collector) -> None:
        """Sample *fn* at every snapshot.

        A bound method is held via :class:`weakref.WeakMethod`, so
        registering an object's collector does not keep it alive;
        plain callables are held strongly.
        """
        with self._lock:
            if hasattr(fn, "__self__"):
                self._collectors.append(weakref.WeakMethod(fn))
            else:
                self._collectors.append(fn)

    def _collect(self) -> list[dict]:
        with self._lock:
            entries = list(self._collectors)
        samples: list[dict] = []
        dead = []
        for entry in entries:
            fn = entry() if isinstance(entry, weakref.WeakMethod) \
                else entry
            if fn is None:
                dead.append(entry)
                continue
            samples.extend(fn())
        if dead:
            with self._lock:
                for entry in dead:
                    try:
                        self._collectors.remove(entry)
                    except ValueError:
                        pass
        return samples

    # -- snapshot -------------------------------------------------------------

    def snapshot(self) -> dict:
        """Everything, as plain JSON-safe dicts.

        Shape: ``{name: {"type", "help", "label_names", "series"}}``
        where each series entry carries ``labels`` plus either
        ``value`` (counter/gauge) or ``bounds/counts/sum/count``
        (histogram).  Collector samples with the same (name, labels)
        are summed — N live instances of an instrumented object read
        as one process-wide total.
        """
        with self._lock:
            metrics = list(self._metrics.items())
        out: dict[str, dict] = {}
        for name, metric in sorted(metrics):
            out[name] = {"type": metric.type, "help": metric.help,
                         "label_names": list(metric.label_names),
                         "series": metric._snapshot_series()}
        for sample in self._collect():
            name = sample["name"]
            entry = out.get(name)
            if entry is None:
                entry = out[name] = {
                    "type": sample.get("type", "gauge"),
                    "help": sample.get("help", ""),
                    "label_names": sorted(sample.get("labels", {})),
                    "series": []}
            labels = dict(sample.get("labels", {}))
            for series in entry["series"]:
                if series["labels"] == labels:
                    series["value"] += sample["value"]
                    break
            else:
                entry["series"].append({"labels": labels,
                                        "value": sample["value"]})
        return out

    def reset(self) -> None:
        """Zero every series (tests); declarations and handed-out
        children stay valid."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric._reset()


#: the process-wide registry every instrumented subsystem reports to
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY
