"""Restricted format evolution.

The paper (section 5): "PBIO supports a form of restricted evolution in
message formats in which elements may be added to message formats
without causing receivers of previous versions of the message to fail."

:func:`can_evolve` answers whether *new* is a legal evolution of *old*
under that rule; :func:`evolution_report` details the differences.  The
runtime behaviour itself (dropping added fields / defaulting missing
ones) lives in :mod:`repro.pbio.convert`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConversionError
from repro.pbio.convert import _check_compatible
from repro.pbio.format import IOFormat


@dataclass(frozen=True)
class EvolutionReport:
    """Field-level diff between two versions of a format."""

    added: tuple[str, ...]
    removed: tuple[str, ...]
    incompatible: tuple[str, ...]

    @property
    def compatible(self) -> bool:
        """True if old receivers keep working when sent the new format
        (fields only added, shared fields convertible)."""
        return not self.removed and not self.incompatible


def evolution_report(old: IOFormat, new: IOFormat) -> EvolutionReport:
    """Diff *new* against *old* under the restricted-evolution rule."""
    old_fields = {f.name: f for f in old.field_list}
    new_fields = {f.name: f for f in new.field_list}
    added = tuple(sorted(set(new_fields) - set(old_fields)))
    removed = tuple(sorted(set(old_fields) - set(new_fields)))
    incompatible: list[str] = []
    for name in sorted(set(old_fields) & set(new_fields)):
        try:
            # New senders must decode into old receivers: wire=new,
            # native=old.
            _check_compatible(new_fields[name].field_type,
                              old_fields[name].field_type,
                              new.field_list, old.field_list, name)
        except ConversionError:
            incompatible.append(name)
    return EvolutionReport(added=added, removed=removed,
                           incompatible=tuple(incompatible))


def can_evolve(old: IOFormat, new: IOFormat) -> bool:
    """True if *new* is a legal restricted evolution of *old*."""
    return evolution_report(old, new).compatible
