"""Restricted format evolution.

The paper (section 5): "PBIO supports a form of restricted evolution in
message formats in which elements may be added to message formats
without causing receivers of previous versions of the message to fail."

:func:`can_evolve` answers whether *new* is a legal evolution of *old*
under that rule; :func:`evolution_report` details the differences.  The
receiver-side runtime behaviour (dropping added fields / defaulting
missing ones) lives in :mod:`repro.pbio.convert`.

:class:`DownConverter` is the *sender-side* half a rolling fleet
upgrade needs: an upgraded publisher marshals once at the new version,
then produces — through one cached plan per ``(new, old)`` digest pair
— frames a subscriber pinned to an older version decodes natively.
:func:`down_converter` is the process-wide cache in front of it, so
every publisher and connection converting between the same two
versions shares one compiled plan.
"""

from __future__ import annotations

import threading

from dataclasses import dataclass

from repro.errors import ConversionError
from repro.pbio.convert import _check_compatible, plan_conversion
from repro.pbio.decode import decoder_for_format
from repro.pbio.encode import (
    HEADER_LEN, encoder_for_format, parse_header,
)
from repro.pbio.format import FormatID, IOFormat


@dataclass(frozen=True)
class EvolutionReport:
    """Field-level diff between two versions of a format."""

    added: tuple[str, ...]
    removed: tuple[str, ...]
    incompatible: tuple[str, ...]

    @property
    def compatible(self) -> bool:
        """True if old receivers keep working when sent the new format
        (fields only added, shared fields convertible)."""
        return not self.removed and not self.incompatible


def evolution_report(old: IOFormat, new: IOFormat) -> EvolutionReport:
    """Diff *new* against *old* under the restricted-evolution rule."""
    old_fields = {f.name: f for f in old.field_list}
    new_fields = {f.name: f for f in new.field_list}
    added = tuple(sorted(set(new_fields) - set(old_fields)))
    removed = tuple(sorted(set(old_fields) - set(new_fields)))
    incompatible: list[str] = []
    for name in sorted(set(old_fields) & set(new_fields)):
        try:
            # New senders must decode into old receivers: wire=new,
            # native=old.
            _check_compatible(new_fields[name].field_type,
                              old_fields[name].field_type,
                              new.field_list, old.field_list, name)
        except ConversionError:
            incompatible.append(name)
    return EvolutionReport(added=added, removed=removed,
                           incompatible=tuple(incompatible))


def can_evolve(old: IOFormat, new: IOFormat) -> bool:
    """True if *new* is a legal restricted evolution of *old*."""
    return evolution_report(old, new).compatible


def _count_event(event: str, n: int = 1) -> None:
    from repro.obs import runtime as _obs
    if _obs.enabled:
        from repro.obs.metrics import EVOLUTION_EVENTS
        EVOLUTION_EVENTS.labels(event).inc(n)


class DownConverter:
    """Cached new-version -> old-version record/wire converter.

    Holds the compiled pieces the steady state needs: the new
    version's decoder (for wire input), the projection plan (drop the
    appended fields), and the old version's encoder.  The cheap path
    is :meth:`encode_record` — a publisher that already holds the
    in-memory record pays only a dict projection plus one old-version
    encode per *version*, amortized over every subscriber pinned to
    it.  :meth:`convert_wire` covers relays that only hold bytes.
    """

    def __init__(self, new: IOFormat, old: IOFormat, *,
                 fuse: bool = True) -> None:
        if old.name != new.name:
            raise ConversionError(
                f"down-conversion must stay inside one lineage: "
                f"{new.name!r} -> {old.name!r}")
        report = evolution_report(old, new)
        if not report.compatible:
            raise ConversionError(
                f"{new.name!r} cannot down-convert to its older "
                f"version: removed={list(report.removed)} "
                f"incompatible={list(report.incompatible)}")
        self.new = new
        self.old = old
        self.report = report
        self._decoder = decoder_for_format(new, fuse=fuse)
        self._plan = plan_conversion(new, old)
        self._encoder = encoder_for_format(old)

    @property
    def is_identity(self) -> bool:
        return self.new.format_id == self.old.format_id

    def convert_record(self, record: dict) -> dict:
        """Project a new-version record onto the old field set.

        Accepts both decoded wire records and user records headed for
        the encoder — the latter may omit dynamic-array sizing fields
        (the encoder computes them), so projection keeps whatever
        shared fields are present rather than requiring all of them.
        """
        plan = self._plan
        if plan.is_identity:
            return record
        out = {name: record[name] for name in plan.matched
               if name in record}
        out.update(plan.defaulted)
        return out

    def encode_record(self, record: dict) -> bytes:
        """Old-version wire bytes (header + body) from a new-version
        record — the publisher fan-out path."""
        _count_event("records_down_converted")
        return self._encoder.encode_wire(self.convert_record(record))

    def encode_record_parts(self, record: dict) -> tuple:
        """Wire parts ``(header, piece, ...)`` like
        :meth:`~repro.pbio.encode.RecordEncoder.encode_wire_parts`."""
        _count_event("records_down_converted")
        return self._encoder.encode_wire_parts(
            self.convert_record(record))

    def encode_batch(self, records) -> bytes:
        """Old-version shared-header batch from new-version records."""
        records = [self.convert_record(r) for r in records]
        _count_event("records_down_converted", len(records))
        return self._encoder.encode_batch(records)

    def convert_wire(self, wire: bytes) -> bytes:
        """Old-version wire bytes from a new-version wire record —
        the relay path (no in-memory record available)."""
        fid, body_len = parse_header(wire, require_body=True)
        if fid != self.new.format_id:
            raise ConversionError(
                f"wire record is format {fid}, converter expects "
                f"{self.new.format_id} ({self.new.name})")
        record = self._decoder.decode(wire[HEADER_LEN:HEADER_LEN
                                           + body_len])
        return self.encode_record(record)


#: process-wide plan cache: (new digest, old digest) -> DownConverter.
_CONVERTER_LOCK = threading.Lock()
_CONVERTER_CACHE: dict[tuple[FormatID, FormatID, bool],
                       DownConverter] = {}
_CONVERTER_CACHE_MAX = 256


def down_converter(new: IOFormat, old: IOFormat, *,
                   fuse: bool = True) -> DownConverter:
    """The shared :class:`DownConverter` for this version pair.

    Plans are digest-keyed and process-wide, like the compiled codec
    plan caches: a fleet publisher serving three subscriber versions
    compiles exactly two plans, once, no matter how many records or
    publishers flow through them.
    """
    key = (new.format_id, old.format_id, fuse)
    with _CONVERTER_LOCK:
        converter = _CONVERTER_CACHE.get(key)
    if converter is not None:
        _count_event("plan_cache_hits")
        return converter
    converter = DownConverter(new, old, fuse=fuse)
    with _CONVERTER_LOCK:
        if len(_CONVERTER_CACHE) >= _CONVERTER_CACHE_MAX:
            _CONVERTER_CACHE.clear()  # digest-keyed; safe to rebuild
        _CONVERTER_CACHE.setdefault(key, converter)
        converter = _CONVERTER_CACHE[key]
    _count_event("plans_compiled")
    return converter
