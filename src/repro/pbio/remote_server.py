"""A network format-server service.

The paper's PBIO deployment ran a *format server* process that every
endpoint registered formats with and fetched metadata from.  This
module provides that process boundary:

* :class:`FormatServerService` — serves a local
  :class:`~repro.pbio.format_server.FormatServer` to TCP clients
  (register + lookup RPCs over the frame protocol);
* :class:`RemoteFormatServer` — a client-side stand-in exposing the
  same interface as :class:`FormatServer`, so an
  :class:`~repro.pbio.context.IOContext` can be pointed at a remote
  server with no other changes::

      remote = RemoteFormatServer.connect(host, port)
      ctx = IOContext(format_server=remote)

Lookups are cached client-side (metadata is immutable — IDs are
content digests), so the network is touched once per format, matching
the amortization story of the rest of the system.
"""

from __future__ import annotations

import threading

from repro.errors import (
    FormatRegistrationError, TransportError, UnknownFormatError,
)
from repro.http.retry import RetryPolicy, call_with_retry
from repro.pbio.format import FormatID, IOFormat, deserialize_format
from repro.pbio.format_server import FormatServer
from repro.transport.messages import Frame, FrameType
from repro.transport.tcp import TCPChannel, TCPListener


class FormatServerService:
    """Accepts clients and serves register/lookup requests."""

    def __init__(self, backing: FormatServer | None = None, *,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.backing = backing if backing is not None else FormatServer()
        self._listener = TCPListener(host=host, port=port)
        self.host, self.port = self._listener.host, self._listener.port
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._accept_loop,
                                        name="format-server",
                                        daemon=True)
        self._thread.start()

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        self._stop.set()
        self._listener.close()
        self._thread.join(timeout=5)

    def __enter__(self) -> "FormatServerService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- serving -------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                channel = self._listener.accept(timeout=0.2)
            except TransportError:
                continue
            worker = threading.Thread(target=self._serve_client,
                                      args=(channel,), daemon=True)
            worker.start()

    def _serve_client(self, channel: TCPChannel) -> None:
        try:
            while True:
                frame = channel.recv(timeout=None)
                if frame is None or frame.type == FrameType.BYE:
                    return
                self._handle(channel, frame)
        except TransportError:
            pass
        finally:
            channel.close()

    def _handle(self, channel: TCPChannel, frame: Frame) -> None:
        reply = self.backing.handle_frame(frame.type, frame.payload)
        if reply is not None:
            rtype, payload = reply
            channel.send(Frame(FrameType(rtype), payload))


class RemoteFormatServer:
    """FormatServer-compatible client over TCP, with a local cache."""

    def __init__(self, channel: TCPChannel, *,
                 retry: RetryPolicy | None = None,
                 endpoint: tuple[str, int, float] | None = None) -> None:
        self._channel = channel
        self._lock = threading.Lock()
        self._cache: dict[FormatID, bytes] = {}
        self._retry = retry
        self._endpoint = endpoint
        self.network_registrations = 0
        self.network_lookups = 0
        self.network_retries = 0

    @classmethod
    def connect(cls, host: str, port: int, *,
                timeout: float = 10.0,
                retry: RetryPolicy | None = None) \
            -> "RemoteFormatServer":
        """Connect to a format-server service.

        With *retry*, both the initial connect and later requests are
        retried under the policy; a dropped connection is transparently
        re-established before each retry (requests are idempotent:
        registration is digest-keyed and lookups are reads).
        """
        def connect_once() -> TCPChannel:
            return TCPChannel.connect(host, port, timeout=timeout)
        if retry is not None:
            channel = call_with_retry(
                connect_once, retry,
                retryable=lambda e: isinstance(e, TransportError))
        else:
            channel = connect_once()
        return cls(channel, retry=retry,
                   endpoint=(host, port, timeout))

    # -- FormatServer interface ------------------------------------------------

    def register(self, fmt: IOFormat) -> FormatID:
        canonical = fmt.canonical_bytes()
        fid = fmt.format_id
        with self._lock:
            if fid in self._cache:
                return fid
            reply = self._request(Frame(FrameType.FMT_REG, canonical))
            self.network_registrations += 1
            if reply.type == FrameType.FMT_ERR:
                raise FormatRegistrationError(
                    reply.payload.decode("utf-8", errors="replace"))
            if reply.type != FrameType.FMT_ACK:
                raise FormatRegistrationError(
                    f"unexpected reply {reply.type.name}")
            acked = FormatID.from_bytes(reply.payload)
            if acked != fid:
                raise FormatRegistrationError(
                    f"server acknowledged {acked}, expected {fid}")
            self._cache[fid] = canonical
        return fid

    def lookup_bytes(self, fid: FormatID) -> bytes:
        with self._lock:
            cached = self._cache.get(fid)
            if cached is not None:
                return cached
            reply = self._request(Frame(FrameType.FMT_REQ,
                                        fid.to_bytes()))
            self.network_lookups += 1
            if reply.type == FrameType.FMT_ERR:
                raise UnknownFormatError(
                    reply.payload.decode("utf-8", errors="replace"))
            if reply.type != FrameType.FMT_RSP:
                raise UnknownFormatError(
                    f"unexpected reply {reply.type.name}")
            got = FormatID.from_bytes(reply.payload[:8])
            metadata = bytes(reply.payload[8:])
            if got != fid:
                raise UnknownFormatError(
                    f"server returned {got}, expected {fid}")
            self._cache[fid] = metadata
            return metadata

    def lookup(self, fid: FormatID) -> IOFormat:
        fmt = deserialize_format(self.lookup_bytes(fid))
        if fmt.format_id != fid:
            raise UnknownFormatError(
                f"metadata integrity failure for id {fid}")
        return fmt

    def import_bytes(self, canonical: bytes) -> FormatID:
        return self.register(deserialize_format(canonical))

    def known_ids(self) -> tuple[FormatID, ...]:
        with self._lock:
            return tuple(self._cache)

    # -- internals ---------------------------------------------------------------

    def _request(self, frame: Frame, timeout: float = 10.0) -> Frame:
        attempts = self._retry.attempts if self._retry else 1
        delays = self._retry.delays() if self._retry else ()
        last_exc: TransportError | None = None
        for attempt in range(attempts):
            try:
                return self._request_once(frame, timeout)
            except TransportError as exc:
                last_exc = exc
                if attempt + 1 >= attempts or self._endpoint is None:
                    raise
                self.network_retries += 1
                if attempt < len(delays) and delays[attempt] > 0:
                    self._retry.sleep(delays[attempt])
                self._reconnect()
        raise last_exc  # pragma: no cover

    def _request_once(self, frame: Frame, timeout: float) -> Frame:
        self._channel.send(frame)
        reply = self._channel.recv(timeout)
        if reply is None:
            raise TransportError("format server closed the connection")
        return reply

    def _reconnect(self) -> None:
        # caller holds self._lock, so swapping the channel is safe
        try:
            self._channel.close()
        except TransportError:
            pass
        host, port, timeout = self._endpoint
        self._channel = TCPChannel.connect(host, port, timeout=timeout)

    def close(self) -> None:
        self._channel.close()
