"""IOContext: a process's PBIO endpoint.

An :class:`IOContext` owns the per-endpoint state the PBIO C library
kept in its ``IOContext``: the architecture records are laid out for,
the set of locally registered formats, compiled encoder/decoder caches,
and the connection to a :class:`~repro.pbio.format_server.FormatServer`
for ID <-> metadata resolution.

Typical sender::

    ctx = IOContext()
    fmt = ctx.register_layout("JoinRequest", [
        ("name", "string"), ("server", "unsigned integer"),
        ("ip_addr", "unsigned integer", 8), ...])
    wire = ctx.encode("JoinRequest", record)

Typical receiver::

    ctx = IOContext()
    name, record = ctx.decode(wire)          # sender's field view
    record = ctx.decode_as(wire, "JoinRequest")  # receiver's view
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import (
    DecodeError, FormatRegistrationError, UnknownFormatError,
)
from repro.obs.spans import observe_phase, sample_t0, span
from repro.pbio.convert import ConversionPlan, plan_conversion
from repro.pbio.decode import RecordDecoder, decoder_for_format
from repro.pbio.encode import (
    HEADER_LEN, EncodedRecord, RecordEncoder, build_header,
    encoder_for_format, is_batch, parse_batch, parse_header,
)
from repro.pbio.fields import FieldList
from repro.pbio.format import FormatID, IOFormat
from repro.pbio.format_server import FormatServer, global_format_server
from repro.pbio.layout import compute_layout
from repro.pbio.machine import Architecture, NATIVE


class ContextStats:
    """Counters an endpoint accumulates over its lifetime —
    the observability hook operators expect of a BCM endpoint.

    All mutation goes through the ``count_*`` methods, which take one
    class-wide lock per operation and bump the per-context value
    *and* the process-wide totals together — exact under concurrent
    encoders, and centrally snapshottable: the totals surface in the
    :mod:`repro.obs` registry as
    ``repro_codec_events_total{event=...}`` via a snapshot-time
    collector, so the steady-state encode path pays nothing beyond
    the single lock round-trip it always paid.

    Attribute reads (``stats.records_encoded``) and :meth:`as_dict`
    behave exactly as the old dataclass did.
    """

    _FIELDS = ("records_encoded", "bytes_encoded", "records_decoded",
               "bytes_decoded", "conversions_planned")
    _LOCK = threading.Lock()
    _TOTALS = {name: 0 for name in _FIELDS}

    __slots__ = ("_records_encoded", "_bytes_encoded",
                 "_records_decoded", "_bytes_decoded",
                 "_conversions_planned")

    def __init__(self, records_encoded: int = 0,
                 bytes_encoded: int = 0, records_decoded: int = 0,
                 bytes_decoded: int = 0,
                 conversions_planned: int = 0) -> None:
        self._records_encoded = records_encoded
        self._bytes_encoded = bytes_encoded
        self._records_decoded = records_decoded
        self._bytes_decoded = bytes_decoded
        self._conversions_planned = conversions_planned

    # -- hot-path mutation (one lock round-trip each) -----------------------

    def count_encoded(self, records: int, nbytes: int) -> None:
        totals = ContextStats._TOTALS
        with ContextStats._LOCK:
            self._records_encoded += records
            self._bytes_encoded += nbytes
            totals["records_encoded"] += records
            totals["bytes_encoded"] += nbytes

    def count_decoded(self, records: int, nbytes: int) -> None:
        totals = ContextStats._TOTALS
        with ContextStats._LOCK:
            self._records_decoded += records
            self._bytes_decoded += nbytes
            totals["records_decoded"] += records
            totals["bytes_decoded"] += nbytes

    def count_conversion(self) -> None:
        with ContextStats._LOCK:
            self._conversions_planned += 1
            ContextStats._TOTALS["conversions_planned"] += 1

    # -- reads --------------------------------------------------------------

    @classmethod
    def totals_snapshot(cls) -> dict[str, int]:
        """Process-wide codec totals (all contexts, living or dead)."""
        with cls._LOCK:
            return dict(cls._TOTALS)

    def as_dict(self) -> dict:
        return {name: getattr(self, "_" + name)
                for name in self._FIELDS}

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in
                          self.as_dict().items())
        return f"ContextStats({inner})"

    def __eq__(self, other) -> bool:
        if isinstance(other, ContextStats):
            return self.as_dict() == other.as_dict()
        return NotImplemented


def _stats_property(name: str):
    attr = "_" + name

    def get(self) -> int:
        return getattr(self, attr)

    def set(self, value: int) -> None:
        # compat path for direct assignment: adjust the process
        # totals by the delta so the central snapshot stays truthful
        with ContextStats._LOCK:
            ContextStats._TOTALS[name] += value - getattr(self, attr)
            setattr(self, attr, value)
    return property(get, set)


for _name in ContextStats._FIELDS:
    setattr(ContextStats, _name, _stats_property(_name))
del _name


@dataclass(frozen=True)
class DecodedRecord:
    """Result of :meth:`IOContext.decode`."""

    format_name: str
    format_id: FormatID
    record: dict


class IOContext:
    """Registration, marshaling and unmarshaling endpoint."""

    def __init__(self, *, architecture: Architecture = NATIVE,
                 format_server: FormatServer | None = None) -> None:
        self.architecture = architecture
        self.format_server = (format_server if format_server is not None
                              else global_format_server())
        self._formats: dict[str, IOFormat] = {}
        #: every version of a name this context holds native bindings
        #: for, oldest first (grown by register_evolution)
        self._versions: dict[str, list[IOFormat]] = {}
        self._encoders: dict[FormatID, RecordEncoder] = {}
        self._decoders: dict[tuple[FormatID, str], RecordDecoder] = {}
        self._wire_formats: dict[FormatID, IOFormat] = {}
        self._conversions: dict[tuple[FormatID, str], ConversionPlan] = {}
        #: marshaling counters (records/bytes in each direction)
        self.stats = ContextStats()

    # -- registration -----------------------------------------------------------

    def register_format(self, name: str, field_list: FieldList,
                        enums: dict[str, tuple[str, ...]] | None = None) \
            -> IOFormat:
        """Register a format from an explicit IOField list (the
        compiled-in metadata path the paper compares XMIT against)."""
        fmt = IOFormat(name, field_list, enums)
        self._register(fmt)
        return fmt

    def register_layout(self, name: str, specs, *,
                        subformats: dict[str, FieldList] | None = None,
                        enums: dict[str, tuple[str, ...]] | None = None) \
            -> IOFormat:
        """Register a format from ``(name, type[, size])`` field specs,
        computing this context's native layout."""
        layout = compute_layout(specs, architecture=self.architecture,
                                subformats=subformats)
        return self.register_format(name, layout.field_list, enums)

    def register(self, fmt: IOFormat) -> IOFormat:
        """Register a prebuilt :class:`IOFormat` (XMIT's path: the
        toolkit builds the format from XML metadata, then registers)."""
        self._register(fmt)
        return fmt

    def _register(self, fmt: IOFormat) -> None:
        existing = self._formats.get(fmt.name)
        if existing is not None and existing != fmt:
            raise FormatRegistrationError(
                f"format {fmt.name!r} already registered with different "
                "metadata; unregister or use a new name")
        with span("register", format=fmt.name):
            self.format_server.register(fmt)
            self._formats[fmt.name] = fmt
            self._wire_formats[fmt.format_id] = fmt
            versions = self._versions.setdefault(fmt.name, [])
            if fmt not in versions:
                versions.append(fmt)

    def register_evolution(self, new_fmt: IOFormat) -> IOFormat:
        """Rebind *new_fmt.name* to its next version.

        The currently bound format becomes the previous lineage link:
        the server-side digest chain grows by one validated step
        (fields only appended, shared fields convertible), the name
        now encodes at the new version, and this context keeps native
        bindings for **both** — :meth:`decodable_versions` reports the
        whole set, which is what a lineage handshake offers a peer.
        First-time names fall through to plain registration.
        """
        old = self._formats.get(new_fmt.name)
        if old is None or old == new_fmt:
            self._register(new_fmt)
            return new_fmt
        with span("register", format=new_fmt.name):
            self.format_server.register_evolution(old, new_fmt)
            self._formats[new_fmt.name] = new_fmt
            self._wire_formats[new_fmt.format_id] = new_fmt
            versions = self._versions.setdefault(new_fmt.name, [old])
            if new_fmt not in versions:
                versions.append(new_fmt)
        return new_fmt

    def decodable_versions(self, name: str) -> tuple[FormatID, ...]:
        """Digests of every version of *name* this context can decode
        natively, oldest first — exactly what a LIN_REQ offers."""
        versions = self._versions.get(name)
        if not versions:
            raise UnknownFormatError(
                f"format {name!r} not registered with this context")
        return tuple(fmt.format_id for fmt in versions)

    def version_for(self, name: str, fid: FormatID) -> IOFormat:
        """The locally bound version of *name* carrying digest *fid*
        (e.g. the one a handshake negotiated)."""
        for fmt in self._versions.get(name, ()):
            if fmt.format_id == fid:
                return fmt
        raise UnknownFormatError(
            f"no local version of {name!r} with id {fid}")

    def unregister(self, name: str) -> None:
        """Forget the local binding of *name* (so a changed format can
        re-register under the same name).  Server-side metadata is
        content-addressed and immutable, so only local state changes;
        records already on the wire keep decoding via their IDs."""
        fmt = self._formats.pop(name, None)
        if fmt is None:
            raise UnknownFormatError(
                f"format {name!r} not registered with this context")
        self._versions.pop(name, None)
        self._encoders.pop(fmt.format_id, None)
        self._conversions = {key: plan
                             for key, plan in self._conversions.items()
                             if key[1] != name}

    def lookup_format(self, name: str) -> IOFormat:
        try:
            return self._formats[name]
        except KeyError:
            raise UnknownFormatError(
                f"format {name!r} not registered with this context"
            ) from None

    @property
    def format_names(self) -> tuple[str, ...]:
        return tuple(self._formats)

    # -- encoding ---------------------------------------------------------------

    def encoder_for(self, fmt: IOFormat) -> RecordEncoder:
        encoder = self._encoders.get(fmt.format_id)
        if encoder is None:
            # L2: the process-wide digest-keyed plan cache, so every
            # context encoding the same format shares one compiled plan
            encoder = encoder_for_format(fmt)
            self._encoders[fmt.format_id] = encoder
        return encoder

    def encode(self, format_name: str | IOFormat, record: dict) -> bytes:
        """Encode *record*; returns header + body wire bytes."""
        fmt = (format_name if isinstance(format_name, IOFormat)
               else self.lookup_format(format_name))
        t0 = sample_t0()
        wire = self.encoder_for(fmt).encode_wire(record)
        if t0:
            observe_phase("marshal", t0)
        self.stats.count_encoded(1, len(wire))
        return wire

    def encode_many(self, format_name: str | IOFormat,
                    records) -> bytes:
        """Encode *records* into one shared-header batch
        (:func:`~repro.pbio.encode.build_batch`): N same-format
        records under a single 16-byte header, ready for one
        transport frame."""
        fmt = (format_name if isinstance(format_name, IOFormat)
               else self.lookup_format(format_name))
        records = list(records)
        t0 = sample_t0()
        wire = self.encoder_for(fmt).encode_batch(records)
        if t0:
            observe_phase("marshal", t0)
        self.stats.count_encoded(len(records), len(wire))
        return wire

    # -- decoding ---------------------------------------------------------------

    def _resolve_wire_format(self, fid: FormatID) -> IOFormat:
        fmt = self._wire_formats.get(fid)
        if fmt is None:
            fmt = self.format_server.lookup(fid)
            self._wire_formats[fid] = fmt
        return fmt

    def decoder_for(self, fmt: IOFormat, *,
                    arrays: str = "list") -> RecordDecoder:
        key = (fmt.format_id, arrays)
        decoder = self._decoders.get(key)
        if decoder is None:
            decoder = decoder_for_format(fmt, arrays=arrays)
            self._decoders[key] = decoder
        return decoder

    def decode(self, data: bytes, *, arrays: str = "list") \
            -> DecodedRecord:
        """Decode a wire record under its *sender's* field view."""
        if is_batch(data):
            raise DecodeError(
                "data is a record batch; use decode_many()")
        fid, body = self._split(data)
        fmt = self._resolve_wire_format(fid)
        t0 = sample_t0()
        record = self.decoder_for(fmt, arrays=arrays).decode(body)
        if t0:
            observe_phase("unmarshal", t0)
        self.stats.count_decoded(1, len(data))
        return DecodedRecord(format_name=fmt.name, format_id=fid,
                             record=record)

    def decode_many(self, data: bytes, *, arrays: str = "list") \
            -> list[DecodedRecord]:
        """Decode a shared-header record batch produced by
        :meth:`encode_many` under its sender's field view."""
        name, fid, records = self.decode_many_records(
            data, arrays=arrays)
        return [DecodedRecord(format_name=name, format_id=fid,
                              record=record) for record in records]

    def decode_many_records(self, data: bytes, *,
                            arrays: str = "list") \
            -> tuple[str, FormatID, list[dict]]:
        """Batch decode without per-record wrapping: the format name
        and id once, plus the raw record dicts.  This is the hot path
        for batched streaming — callers that build their own envelope
        (e.g. transport connections) skip a dataclass per record."""
        fid, _big, bodies = parse_batch(data)
        fmt = self._resolve_wire_format(fid)
        decode = self.decoder_for(fmt, arrays=arrays).decode
        t0 = sample_t0()
        records = [decode(body) for body in bodies]
        if t0:
            observe_phase("unmarshal", t0)
        self.stats.count_decoded(len(records), len(data))
        return fmt.name, fid, records

    def decode_as(self, data: bytes, native_name: str, *,
                  arrays: str = "list") -> dict:
        """Decode a wire record and convert it into this context's
        registered *native_name* format view (restricted evolution:
        added wire fields dropped, missing ones defaulted)."""
        native = self.lookup_format(native_name)
        fid, body = self._split(data)
        wire = self._resolve_wire_format(fid)
        t0 = sample_t0()
        record = self.decoder_for(wire, arrays=arrays).decode(body)
        if t0:
            observe_phase("unmarshal", t0)
        key = (fid, native_name)
        plan = self._conversions.get(key)
        if plan is None:
            with span("bind", view=native_name):
                plan = plan_conversion(wire, native)
            self._conversions[key] = plan
            self.stats.count_conversion()
        self.stats.count_decoded(1, len(data))
        return plan.apply(record)

    def _split(self, data: bytes) -> tuple[FormatID, memoryview]:
        fid, body_len = parse_header(data)
        body = memoryview(data)[HEADER_LEN:]
        if len(body) < body_len:
            raise DecodeError(
                f"record truncated: header says {body_len} body bytes, "
                f"got {len(body)}")
        return fid, body[:body_len]

    # -- convenience -------------------------------------------------------------

    def encoded_size(self, format_name: str | IOFormat,
                     record: dict) -> int:
        """Size in bytes of the encoded record including header
        (the paper's "Encoded Size" column)."""
        return len(self.encode(format_name, record))

    def roundtrip(self, format_name: str, record: dict) -> dict:
        """Encode then decode under the same format (testing aid)."""
        return self.decode(self.encode(format_name, record)).record


def encode_with_header(fmt: IOFormat, record: EncodedRecord | dict) \
        -> bytes:
    """Module-level helper mirroring :meth:`IOContext.encode` for code
    that holds an :class:`IOFormat` but no context."""
    if isinstance(record, EncodedRecord):
        enc = record
    else:
        enc = encoder_for_format(fmt).encode(record)
    header = build_header(enc.format_id, len(enc.body),
                          big_endian=fmt.architecture.byte_order == "big")
    return header + enc.body
