"""Persistent compiled-plan cache: the on-disk tier below the
in-memory codec plan caches.

The paper's economics are "pay metadata/binding cost once, amortize
over many messages" — but an in-memory plan cache only amortizes
within one process lifetime.  A fleet restart used to stampede the
format server and re-pay full registration cost (RDM) in every
process.  This module adds the missing tier:

* **Entries** are keyed by ``(cache-schema version, plan kind, format
  digest, architecture pair, codec options, interpreter tag)``.  The
  format digest covers the wire architecture (it is part of the
  canonical metadata); the native side of the pair — host byte order
  plus ``sys.implementation.cache_tag`` — is keyed explicitly because
  compiled plans embed native assumptions (NumPy dtype order, and
  ``marshal``-serialized code objects which are only stable within one
  interpreter version).
* **Contents**: the format's canonical metadata bytes, the compiled
  plan (fused-run layout specs plus marshalled code objects for the
  exec-generated pack calls), the generated plan source (debuggable),
  and an integrity digest over the whole payload.
* **Verification on load**: the entry digest is re-checked, the stored
  metadata is deserialized and its sha256-derived
  :class:`~repro.pbio.format.FormatID` must equal the requested
  format's, and the plan's layout (record length, run spans, field
  coverage) is checked against the live :class:`FieldList` before any
  stored code object is ``exec``'d.  Anything inconsistent is counted
  (``repro_plan_cache_total{tier="disk",outcome=...}``) and the plan
  is recompiled from metadata — a corrupt cache can cost time, never
  correctness.
* **Atomicity**: entries are written to a same-directory temp file and
  ``os.replace``'d into place, so concurrent processes never read a
  torn entry; racing writers simply last-write-wins identical bytes.

Enable the process-wide cache by setting ``REPRO_PLAN_CACHE_DIR`` or
calling :func:`configure_plan_cache`.  ``docs/PLAN_CACHE.md`` is the
prose companion (key derivation, invalidation, trust model: a cache
directory is trusted at the same level as ``__pycache__``).
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import sys
import threading
from collections import OrderedDict
from pathlib import Path

from repro.errors import PlanCacheError, ReproError
from repro.pbio.format import IOFormat, deserialize_format
from repro.pbio.machine import NATIVE, Architecture

#: bump on any incompatible change to the entry payload or to the
#: compiled-plan representation; old entries become "stale" and are
#: recompiled (and overwritten) rather than misread
CACHE_SCHEMA = 1

#: plan kinds stored by the codec layer
KINDS = ("encoder", "decoder")

_ENTRY_SUFFIX = ".plan.json"

#: metadata-bytes sha256 -> IOFormat.  One warm start touches the same
#: canonical metadata several times (entry verification per plan kind,
#: format recovery); parsing a wide format costs ~1 ms, so re-parses
#: would dominate the restart we are trying to make cheap.  Safe to
#: share: IOFormat is treated as immutable everywhere (the in-memory
#: plan caches already share instances by FormatID).
_format_memo: dict[str, IOFormat] = {}
_format_memo_lock = threading.Lock()


def _deserialize_cached(metadata: bytes) -> IOFormat:
    key = hashlib.sha256(metadata).hexdigest()
    with _format_memo_lock:
        fmt = _format_memo.get(key)
    if fmt is None:
        fmt = deserialize_format(metadata)
        with _format_memo_lock:
            _format_memo[key] = fmt
    return fmt


def _count(outcome: str, tier: str = "disk") -> None:
    """Bump ``repro_plan_cache_total{tier,outcome}`` (no-op-cheap when
    telemetry is disabled, matching the codec hot-path convention)."""
    from repro.obs import runtime as _obs
    if _obs.enabled:
        from repro.obs.metrics import PLAN_CACHE
        PLAN_CACHE.labels(tier, outcome).inc()


def _arch_token(arch: Architecture) -> str:
    sizes = ",".join(f"{k}={arch.sizes[k]}" for k in sorted(arch.sizes))
    return (f"{arch.name}/{arch.byte_order}/ma{arch.max_alignment}/"
            f"{sizes}")


def native_token() -> str:
    """The native half of the cache key's architecture pair: host
    layout model, host byte order, and the interpreter tag that scopes
    ``marshal``-serialized code objects."""
    return (f"{_arch_token(NATIVE)}|{sys.byteorder}|"
            f"{sys.implementation.cache_tag}")


def _options_token(options: dict) -> str:
    return ",".join(f"{k}={options[k]!r}" for k in sorted(options))


class PlanCache:
    """One on-disk plan cache directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- key derivation ------------------------------------------------------

    def entry_path(self, kind: str, fmt: IOFormat,
                   options: dict) -> Path:
        if kind not in KINDS:
            raise PlanCacheError(f"unknown plan kind {kind!r}")
        material = "\n".join((
            str(CACHE_SCHEMA), kind, str(fmt.format_id),
            _arch_token(fmt.architecture), native_token(),
            _options_token(options),
        ))
        keyhash = hashlib.sha256(material.encode("utf-8")).hexdigest()
        return self.root / f"{kind}-{fmt.format_id}-{keyhash[:16]}" \
                           f"{_ENTRY_SUFFIX}"

    # -- store ---------------------------------------------------------------

    def store(self, kind: str, fmt: IOFormat, options: dict,
              plan: dict, plan_source: str = "") -> Path | None:
        """Persist a compiled plan; returns the entry path, or None if
        the write failed (the cache is best-effort: a full disk must
        never fail an encode)."""
        payload = {
            "cache_schema": CACHE_SCHEMA,
            "kind": kind,
            "format_id": str(fmt.format_id),
            "format_name": fmt.name,
            "options": {k: options[k] for k in sorted(options)},
            "wire_arch": _arch_token(fmt.architecture),
            "native": native_token(),
            "metadata_b64": base64.b64encode(
                fmt.canonical_bytes()).decode("ascii"),
            "plan": plan,
            "plan_source": plan_source,
            "plan_source_sha256": hashlib.sha256(
                plan_source.encode("utf-8")).hexdigest(),
        }
        payload["entry_sha256"] = _payload_digest(payload)
        path = self.entry_path(kind, fmt, options)
        tmp = path.with_name(
            f".{path.name}.tmp-{os.getpid()}-{threading.get_ident()}")
        try:
            tmp.write_text(json.dumps(payload, sort_keys=True))
            os.replace(tmp, path)
        except OSError:
            _count("store_error")
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return None
        _count("store")
        return path

    # -- load ----------------------------------------------------------------

    def load(self, kind: str, fmt: IOFormat,
             options: dict) -> dict | None:
        """The verified plan for ``(kind, fmt, options)``, or None.

        Every failure mode is counted and tolerated: ``miss`` (no
        entry), ``corrupt`` (unreadable/failed integrity), ``stale``
        (older cache schema or foreign interpreter — the filename key
        normally rules these out, so this guards hand-moved files),
        ``invalid`` (digest or layout verification failed).
        """
        path = self.entry_path(kind, fmt, options)
        try:
            raw = path.read_text()
        except FileNotFoundError:
            _count("miss")
            return None
        except OSError:
            _count("corrupt")
            return None
        try:
            payload = json.loads(raw)
            declared = payload.get("entry_sha256")
            if declared != _payload_digest(payload):
                raise PlanCacheError("entry integrity digest mismatch")
        except (ValueError, TypeError, PlanCacheError):
            _count("corrupt")
            return None
        try:
            self._verify(payload, kind, fmt, options)
        except PlanCacheError as exc:
            _count("stale" if "schema" in str(exc)
                   or "interpreter" in str(exc) else "invalid")
            return None
        _count("hit")
        return payload["plan"]

    def _verify(self, payload: dict, kind: str, fmt: IOFormat,
                options: dict) -> None:
        if payload.get("cache_schema") != CACHE_SCHEMA:
            raise PlanCacheError("cache schema version mismatch")
        if payload.get("native") != native_token():
            raise PlanCacheError("foreign interpreter/architecture")
        if payload.get("kind") != kind:
            raise PlanCacheError("plan kind mismatch")
        if payload.get("options") != \
                {k: options[k] for k in sorted(options)}:
            raise PlanCacheError("codec options mismatch")
        # digest re-check: deserialize the stored metadata and rederive
        # its sha256-based FormatID — a tampered or wrong-format entry
        # cannot pass this without a sha256 collision
        try:
            metadata = base64.b64decode(payload["metadata_b64"])
            stored_fmt = _deserialize_cached(metadata)
        except (KeyError, ValueError, TypeError, ReproError) as exc:
            raise PlanCacheError(
                f"stored metadata unusable: {exc}") from None
        if stored_fmt.format_id != fmt.format_id:
            raise PlanCacheError(
                f"metadata digest {stored_fmt.format_id} does not match "
                f"requested format {fmt.format_id}")
        plan = payload.get("plan")
        if not isinstance(plan, dict):
            raise PlanCacheError("plan section missing")
        # layout sanity: the plan must target this exact fixed section
        if plan.get("record_length") != fmt.field_list.record_length:
            raise PlanCacheError(
                f"plan record length {plan.get('record_length')} != "
                f"format record length {fmt.field_list.record_length}")

    # -- maintenance ---------------------------------------------------------

    def entries(self, kind: str | None = None) -> list[Path]:
        pattern = f"{kind}-*{_ENTRY_SUFFIX}" if kind \
            else f"*{_ENTRY_SUFFIX}"
        return sorted(self.root.glob(pattern))

    def purge(self, kind: str | None = None) -> int:
        """Delete entries (all, or one plan kind); returns the count.
        This is the invalidation hook behind
        :func:`~repro.pbio.encode.clear_encoder_cache` /
        :func:`~repro.pbio.decode.clear_decoder_cache`, so format
        churn in tests cannot resurrect a stale plan from disk."""
        removed = 0
        for path in self.entries(kind):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        if removed:
            _count("purge")
        return removed

    # -- warm-start format recovery ------------------------------------------

    def stored_formats(self) -> list[IOFormat]:
        """Every distinct format with a cached plan, reconstructed from
        the stored canonical metadata (digest-verified).  This is what
        lets a restarting process rebind its working set without one
        schema fetch or XML parse."""
        seen: dict = {}
        for path in self.entries():
            try:
                payload = json.loads(path.read_text())
                fmt = _deserialize_cached(
                    base64.b64decode(payload["metadata_b64"]))
            except (OSError, ValueError, KeyError, TypeError,
                    ReproError):
                continue
            if str(fmt.format_id) != payload.get("format_id"):
                continue
            seen.setdefault(fmt.format_id, fmt)
        return list(seen.values())

    def __repr__(self) -> str:
        return f"PlanCache({str(self.root)!r})"


def _payload_digest(payload: dict) -> str:
    body = {k: v for k, v in payload.items() if k != "entry_sha256"}
    return hashlib.sha256(
        json.dumps(body, sort_keys=True).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# process-wide active cache
# ---------------------------------------------------------------------------

ENV_VAR = "REPRO_PLAN_CACHE_DIR"

_UNSET = object()
_configured: object = _UNSET
_env_cache: tuple[str, PlanCache] | None = None
_active_lock = threading.Lock()


def configure_plan_cache(target: str | Path | PlanCache | None) \
        -> PlanCache | None:
    """Set (or with None, disable) the process-wide persistent tier,
    overriding ``REPRO_PLAN_CACHE_DIR``.  Returns the active cache."""
    global _configured
    with _active_lock:
        if target is None:
            _configured = None
        elif isinstance(target, PlanCache):
            _configured = target
        else:
            _configured = PlanCache(target)
        return _configured  # type: ignore[return-value]


def reset_plan_cache_configuration() -> None:
    """Drop any :func:`configure_plan_cache` override and forget the
    memoized environment lookup (tests)."""
    global _configured, _env_cache
    with _active_lock:
        _configured = _UNSET
        _env_cache = None


def active_plan_cache() -> PlanCache | None:
    """The persistent tier the codec layer should use, or None.

    An explicit :func:`configure_plan_cache` wins; otherwise the
    ``REPRO_PLAN_CACHE_DIR`` environment variable (re-read on every
    call so tests and forked workers see updates, with the PlanCache
    object memoized per directory)."""
    global _env_cache
    with _active_lock:
        if _configured is not _UNSET:
            return _configured  # type: ignore[return-value]
        root = os.environ.get(ENV_VAR)
        if not root:
            return None
        if _env_cache is not None and _env_cache[0] == root:
            return _env_cache[1]
        try:
            cache = PlanCache(root)
        except OSError:
            return None
        _env_cache = (root, cache)
        return cache


def warm_start(*, cache: PlanCache | None = None,
               context=None) -> int:
    """Pre-populate this process's codec plan caches from disk.

    For every format with persisted plans, reconstruct the
    :class:`IOFormat` from stored metadata and pull its plans through
    :func:`~repro.pbio.encode.encoder_for_format` /
    :func:`~repro.pbio.decode.decoder_for_format` — each load is a
    persistent-tier hit, filed under a ``plan_cache_load`` span, with
    **zero** ``compile_plan`` spans and zero discovery fetches.  When
    *context* (an :class:`~repro.pbio.context.IOContext`) is given,
    the formats are also registered with its format server so inbound
    records resolve without negotiation.  Returns the number of
    formats restored.
    """
    from repro.pbio.decode import decoder_for_format
    from repro.pbio.encode import encoder_for_format
    cache = cache if cache is not None else active_plan_cache()
    if cache is None:
        return 0
    restored = 0
    for fmt in cache.stored_formats():
        encoder_for_format(fmt)
        decoder_for_format(fmt)
        if context is not None:
            context.format_server.register(fmt)
            context._wire_formats[fmt.format_id] = fmt
        restored += 1
    return restored


# ---------------------------------------------------------------------------
# in-memory tier: a true LRU with telemetry
# ---------------------------------------------------------------------------

class PlanLRU:
    """Thread-safe LRU for compiled plans, replacing the old FIFO
    ``dict`` + hard-cap eviction (which evicted in pure insertion
    order, so a hot plan inserted first died before a cold one).

    ``get`` refreshes recency and counts a
    ``repro_plan_cache_total{tier="memory",outcome="hit"}``; evictions
    are counted under both the new metric and the legacy
    ``repro_codec_plans_total{kind,outcome="evict"}`` series."""

    def __init__(self, capacity: int, kind: str) -> None:
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self.kind = kind
        self._lock = threading.Lock()
        self._entries: OrderedDict = OrderedDict()

    def get(self, key):
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
        if value is not None:
            _count("hit", tier="memory")
        return value

    def peek(self, key):
        """Presence probe without recency refresh or telemetry."""
        with self._lock:
            return self._entries.get(key)

    def put(self, key, value) -> None:
        evicted = 0
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            while len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
            self._entries[key] = value
        for _ in range(evicted):
            _count("evict", tier="memory")
        if evicted:
            from repro.obs import runtime as _obs
            if _obs.enabled:
                from repro.obs.metrics import CODEC_PLANS
                CODEC_PLANS.labels(self.kind, "evict").inc(evicted)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def keys(self) -> list:
        with self._lock:
            return list(self._entries)

    def values(self) -> list:
        with self._lock:
            return list(self._entries.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._entries


# ---------------------------------------------------------------------------
# single-flight plan construction
# ---------------------------------------------------------------------------

class _Flight:
    """Ticket for one in-progress plan build: the first thread to miss
    on a key becomes the leader and compiles; later threads wait on the
    event instead of compiling a duplicate that would be silently
    discarded at insert (and miscounted as a compile miss)."""

    __slots__ = ("event",)

    def __init__(self) -> None:
        self.event = threading.Event()


def single_flight(lock: threading.Lock, flights: dict, cache: PlanLRU,
                  key, build):
    """Get-or-build *key* with at most one builder per key at a time.

    Returns ``(value, built)`` — ``built`` is True only for the leader
    that actually ran *build()*, so callers can count genuine compile
    misses (single-flight losers see ``built=False`` and count as
    hits).  If the leader's build raises, its waiters wake, find no
    cached value, and retry for leadership — the error stays with the
    thread whose build failed."""
    while True:
        with lock:
            value = cache.peek(key)
            if value is not None:
                return value, False
            flight = flights.get(key)
            if flight is None:
                flight = _Flight()
                flights[key] = flight
                leader = True
            else:
                leader = False
        if not leader:
            flight.event.wait()
            value = cache.peek(key)
            if value is not None:
                return value, False
            continue
        try:
            value = build()
            cache.put(key, value)
            return value, True
        finally:
            with lock:
                flights.pop(key, None)
            flight.event.set()
