"""Format lineages: digest chains for restricted evolution.

The paper's restricted evolution (section 5) lets senders append
fields without breaking old receivers, but says nothing about how a
*fleet* knows which versions of a format exist or which one a given
peer can decode.  A :class:`LineageRegistry` supplies that missing
bookkeeping: for each format **name** it keeps the ordered chain of
:class:`~repro.pbio.format.FormatID` digests the name has evolved
through, validated link by link with
:func:`~repro.pbio.evolution.can_evolve` so every entry is a legal
restricted evolution of its predecessor.

The chain is what the lineage-aware handshake
(:mod:`repro.transport.messages` LIN_REQ/LIN_RSP) ships: a subscriber
announces the digests it holds native bindings for, the publisher
answers with the highest version both sides can decode
(:meth:`highest_common`), and every older subscriber keeps decoding
via cached down-conversion (:mod:`repro.pbio.evolution`).
"""

from __future__ import annotations

import threading

from repro.errors import FormatRegistrationError, UnknownFormatError
from repro.pbio.format import FormatID, IOFormat


def _count_event(event: str) -> None:
    from repro.obs import runtime as _obs
    if _obs.enabled:
        from repro.obs.metrics import EVOLUTION_EVENTS
        EVOLUTION_EVENTS.labels(event).inc()


class LineageRegistry:
    """Thread-safe name -> ordered digest chain registry.

    Chains only ever grow at the tail (:meth:`append`), mirroring the
    restriction on the formats themselves: the newest version must be
    a legal evolution of the one before it.  Reads return immutable
    tuples, so callers can hold them without the lock.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._chains: dict[str, list[FormatID]] = {}

    # -- growth -------------------------------------------------------------

    def ensure_root(self, fmt: IOFormat) -> None:
        """Start *fmt*'s lineage at itself if the name is unseen.

        A name already carrying a chain is left alone — the root of an
        established lineage never moves.
        """
        with self._lock:
            self._chains.setdefault(fmt.name, [fmt.format_id])

    def append(self, old: IOFormat, new: IOFormat) -> FormatID:
        """Record *new* as the next version after *old*.

        Both formats must share a name, *new* must be a legal
        restricted evolution of *old* (fields only appended, shared
        fields convertible), and *old* must be the current chain tail
        (lineages are linear, not trees).  Re-recording a link the
        chain already holds — as a second context sharing the format
        server will do — is an idempotent no-op.  Returns *new*'s
        digest.
        """
        from repro.pbio.evolution import evolution_report
        if old.name != new.name:
            raise FormatRegistrationError(
                f"evolution must keep the format name: "
                f"{old.name!r} != {new.name!r}")
        old_id, new_id = old.format_id, new.format_id
        if old_id == new_id:
            self.ensure_root(old)
            return new_id
        report = evolution_report(old, new)
        if not report.compatible:
            raise FormatRegistrationError(
                f"{new.name!r} is not a restricted evolution of its "
                f"previous version: removed={list(report.removed)} "
                f"incompatible={list(report.incompatible)}")
        with self._lock:
            chain = self._chains.setdefault(new.name, [old_id])
            if new_id in chain:
                index = chain.index(new_id)
                if index > 0 and chain[index - 1] == old_id:
                    return new_id  # link already recorded
                raise FormatRegistrationError(
                    f"{new.name!r} version {new_id} is already in "
                    f"the lineage with a different predecessor; "
                    f"chains only grow")
            if chain[-1] != old_id:
                raise FormatRegistrationError(
                    f"can only evolve the latest version of "
                    f"{new.name!r}: chain tail is {chain[-1]}, "
                    f"got {old_id}")
            chain.append(new_id)
        _count_event("lineage_appended")
        return new_id

    # -- queries ------------------------------------------------------------

    def chain(self, name: str) -> tuple[FormatID, ...]:
        """The digest chain for *name*, oldest first (() if unseen)."""
        with self._lock:
            return tuple(self._chains.get(name, ()))

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._chains)

    def latest(self, name: str) -> FormatID:
        chain = self.chain(name)
        if not chain:
            raise UnknownFormatError(
                f"no lineage registered for {name!r}")
        return chain[-1]

    def version_index(self, name: str, fid: FormatID) -> int:
        """Position of *fid* within *name*'s chain (0 = oldest)."""
        chain = self.chain(name)
        try:
            return chain.index(fid)
        except ValueError:
            raise UnknownFormatError(
                f"format {fid} is not in the lineage of {name!r}"
            ) from None

    def highest_common(self, name: str, offered) -> FormatID | None:
        """The newest digest in *name*'s chain that *offered* (any
        iterable of :class:`FormatID`) also contains, or None when the
        chains share nothing — the negotiation core."""
        offered = set(offered)
        for fid in reversed(self.chain(name)):
            if fid in offered:
                return fid
        return None

    def as_dict(self) -> dict[str, tuple[str, ...]]:
        """Snapshot for telemetry/debugging: name -> digest hex chain."""
        with self._lock:
            return {name: tuple(str(fid) for fid in chain)
                    for name, chain in self._chains.items()}

    def __len__(self) -> int:
        with self._lock:
            return len(self._chains)
