"""IOField lists — PBIO's native metadata.

An :class:`IOField` matches the C-side descriptor from the paper's
Fig. 2::

    IOField asdOffFields[] = {
        { "centerID", "string",  sizeof(char*), IOOffset(..., centerId) },
        ...
    };

``size`` is the per-element size in bytes (``sizeof`` of the element
type — for pointer-valued fields the size of the *pointed-to* element),
``offset`` the field's byte offset within the native structure.

A :class:`FieldList` validates the whole descriptor set against an
:class:`~repro.pbio.machine.Architecture`: offsets in bounds and
non-overlapping, sizes consistent with the type string, dynamic-array
sizing fields present and integral.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import LayoutError
from repro.pbio.machine import Architecture
from repro.pbio.types import FieldType, parse_field_type

#: Atomic bases whose element size is architecture-pinned rather than
#: caller-chosen (strings occupy a pointer; chars are bytes).
_FLOAT_SIZES = (4, 8)
_INT_SIZES = (1, 2, 4, 8)


@dataclass(frozen=True)
class IOField:
    """One field descriptor: name, type string, element size, offset."""

    name: str
    type: str
    size: int
    offset: int

    def __post_init__(self) -> None:
        if not self.name:
            raise LayoutError("field name cannot be empty")
        if self.size < 1:
            raise LayoutError(
                f"field {self.name!r}: size must be positive, "
                f"got {self.size}")
        if self.offset < 0:
            raise LayoutError(
                f"field {self.name!r}: negative offset {self.offset}")

    @property
    def field_type(self) -> FieldType:
        return parse_field_type(self.type)


class FieldList:
    """A validated, offset-ordered list of :class:`IOField`.

    ``subformats`` maps subformat names referenced by field types to
    their own FieldLists, so validation can size inline nested structs.
    """

    def __init__(self, fields: Sequence[IOField], *,
                 architecture: Architecture,
                 record_length: int | None = None,
                 subformats: dict[str, "FieldList"] | None = None) -> None:
        if not fields:
            raise LayoutError("a field list must contain at least one field")
        self.architecture = architecture
        self.subformats: dict[str, FieldList] = dict(subformats or {})
        self.fields: tuple[IOField, ...] = tuple(
            sorted(fields, key=lambda f: f.offset))
        self._by_name = {f.name: f for f in self.fields}
        if len(self._by_name) != len(self.fields):
            names = [f.name for f in self.fields]
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise LayoutError(f"duplicate field names {dupes}")
        self._types: dict[str, FieldType] = {
            f.name: f.field_type for f in self.fields}
        self.record_length = (record_length if record_length is not None
                              else self._minimum_record_length())
        self._validate()
        self._prune_subformats()

    def _prune_subformats(self) -> None:
        """Keep only subformats actually referenced by field types.

        Construction convenience lets callers pass a superset (e.g. a
        snowballing dict while laying out several types); pruning makes
        the metadata canonical so identical formats built by different
        paths share a wire digest.
        """
        referenced = {self._types[f.name].base for f in self.fields
                      if self._types[f.name].kind == "subformat"}
        self.subformats = {name: sub
                           for name, sub in self.subformats.items()
                           if name in referenced}

    # -- access ---------------------------------------------------------------

    def __iter__(self) -> Iterator[IOField]:
        return iter(self.fields)

    def __len__(self) -> int:
        return len(self.fields)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> IOField:
        try:
            return self._by_name[name]
        except KeyError:
            raise LayoutError(f"no field named {name!r}") from None

    def names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    def name_set(self) -> frozenset:
        """The field names as a cached frozenset (hot-path presence
        checks in the encoder's normalizer)."""
        cached = self.__dict__.get("_name_set")
        if cached is None:
            cached = frozenset(self._by_name)
            self._name_set = cached
        return cached

    def field_type(self, name: str) -> FieldType:
        return self._types[name]

    def subformat(self, name: str) -> "FieldList":
        try:
            return self.subformats[name]
        except KeyError:
            raise LayoutError(
                f"field list references unknown subformat {name!r}"
            ) from None

    # -- sizing ---------------------------------------------------------------

    def inline_extent(self, field: IOField) -> int:
        """Bytes the field occupies *inside* the fixed structure."""
        ftype = self._types[field.name]
        if not ftype.is_inline:
            return self.architecture.sizeof("pointer")
        per_element = self.element_extent(field)
        return per_element * ftype.static_element_count

    def element_extent(self, field: IOField) -> int:
        """Bytes per element of the field's (possibly nested) type,
        including inter-element padding for subformat arrays."""
        ftype = self._types[field.name]
        if ftype.is_atomic:
            return field.size
        sub = self.subformat(ftype.base)
        return sub.record_length

    def _minimum_record_length(self) -> int:
        end = 0
        for field in self.fields:
            end = max(end, field.offset + self.inline_extent(field))
        return end

    # -- validation ----------------------------------------------------------

    def _validate(self) -> None:
        arch = self.architecture
        prev_end = -1
        prev_name = ""
        for field in self.fields:
            ftype = self._types[field.name]
            self._validate_size(field, ftype)
            extent = self.inline_extent(field)
            if field.offset < prev_end:
                raise LayoutError(
                    f"field {field.name!r} at offset {field.offset} "
                    f"overlaps {prev_name!r}")
            end = field.offset + extent
            if end > self.record_length:
                raise LayoutError(
                    f"field {field.name!r} extends to {end}, beyond "
                    f"record length {self.record_length}")
            prev_end, prev_name = end, field.name
            self._validate_dynamic_dims(field, ftype)
            if ftype.kind == "subformat":
                self.subformat(ftype.base)  # must resolve
        if self.record_length < 1:
            raise LayoutError("record length must be positive")
        _ = arch  # architecture participates via sizeof in callees

    def _validate_size(self, field: IOField, ftype: FieldType) -> None:
        kind = ftype.kind
        if kind == "float" and field.size not in _FLOAT_SIZES:
            raise LayoutError(
                f"field {field.name!r}: float size must be 4 or 8, "
                f"got {field.size}")
        if kind in ("integer", "unsigned", "enumeration") and \
                field.size not in _INT_SIZES:
            raise LayoutError(
                f"field {field.name!r}: integer size must be one of "
                f"{_INT_SIZES}, got {field.size}")
        if kind in ("char", "boolean") and field.size != 1:
            raise LayoutError(
                f"field {field.name!r}: {kind} fields are 1 byte, "
                f"got {field.size}")
        if kind == "string" and \
                field.size != self.architecture.sizeof("pointer"):
            raise LayoutError(
                f"field {field.name!r}: string fields occupy a pointer "
                f"({self.architecture.sizeof('pointer')} bytes on "
                f"{self.architecture.name}), got {field.size}")

    def _validate_dynamic_dims(self, field: IOField,
                               ftype: FieldType) -> None:
        dim = ftype.dynamic_dim
        if dim is None or dim.length_field is None:
            return
        try:
            sizing = self[dim.length_field]
        except LayoutError:
            raise LayoutError(
                f"field {field.name!r}: sizing field "
                f"{dim.length_field!r} not present in record") from None
        sizing_type = self._types[sizing.name]
        if sizing_type.kind not in ("integer", "unsigned") or \
                sizing_type.dims:
            raise LayoutError(
                f"field {field.name!r}: sizing field "
                f"{dim.length_field!r} must be a scalar integer")

    # -- misc -----------------------------------------------------------------

    def has_dynamic_content(self) -> bool:
        """True if any field (transitively) is pointer-valued, making
        encoded records variable-length."""
        for field in self.fields:
            ftype = self._types[field.name]
            if not ftype.is_inline:
                return True
            if ftype.kind == "subformat" and \
                    self.subformat(ftype.base).has_dynamic_content():
                return True
        return False

    def __repr__(self) -> str:
        return (f"FieldList({[f.name for f in self.fields]}, "
                f"record_length={self.record_length}, "
                f"arch={self.architecture.name})")
