"""IOFormat: a registered message format and its wire metadata.

An :class:`IOFormat` bundles a format name, the sender-native
:class:`~repro.pbio.fields.FieldList` (with its architecture), and any
enumeration value tables.  Its :class:`FormatID` is a truncated digest
of the canonical metadata serialization, so identical formats registered
anywhere in the system share an ID — this is what lets PBIO put only an
8-byte identifier on the wire (Fig. 2 caption: "format identifiers are
generated which allow component programs to retrieve the metadata on
demand").

The canonical serialization is a self-contained, line-oriented,
tab-separated text format (PBIO had its own metadata encoding; we avoid
dragging in a generic serializer on the wire path).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import (
    FormatRegistrationError, LayoutError, UnknownFormatError,
)
from repro.pbio.fields import FieldList, IOField
from repro.pbio.machine import Architecture

_MAGIC = "PBIOFMT"
_VERSION = 1


@dataclass(frozen=True, order=True)
class FormatID:
    """64-bit self-certifying format identifier."""

    value: int

    MAX = (1 << 64) - 1

    def __post_init__(self) -> None:
        if not 0 <= self.value <= self.MAX:
            raise FormatRegistrationError(
                f"format id {self.value:#x} out of 64-bit range")

    def to_bytes(self) -> bytes:
        return self.value.to_bytes(8, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "FormatID":
        if len(data) != 8:
            raise UnknownFormatError(
                f"format id must be 8 bytes, got {len(data)}")
        return cls(int.from_bytes(data, "big"))

    def __str__(self) -> str:
        return f"{self.value:016x}"


def _check_token(text: str, what: str) -> str:
    if "\t" in text or "\n" in text or not text:
        raise FormatRegistrationError(
            f"{what} {text!r} must be non-empty and free of tabs/newlines")
    return text


class IOFormat:
    """A format as known to contexts and the format server."""

    def __init__(self, name: str, field_list: FieldList,
                 enums: dict[str, tuple[str, ...]] | None = None) -> None:
        self.name = _check_token(name, "format name")
        self.field_list = field_list
        self.enums: dict[str, tuple[str, ...]] = {
            k: tuple(v) for k, v in (enums or {}).items()}
        for fname, values in self.enums.items():
            if fname not in field_list:
                raise FormatRegistrationError(
                    f"enum table for unknown field {fname!r}")
            if not values:
                raise FormatRegistrationError(
                    f"enum table for field {fname!r} is empty")
        for field in field_list:
            if field.field_type.kind == "enumeration" and \
                    field.name not in self.enums:
                raise FormatRegistrationError(
                    f"enumeration field {field.name!r} requires a value "
                    "table")
        self._canonical: bytes | None = None
        self._format_id: FormatID | None = None

    # -- identity ------------------------------------------------------------

    @property
    def architecture(self) -> Architecture:
        return self.field_list.architecture

    def canonical_bytes(self) -> bytes:
        if self._canonical is None:
            self._canonical = serialize_format(self)
        return self._canonical

    @property
    def format_id(self) -> FormatID:
        if self._format_id is None:
            digest = hashlib.sha256(self.canonical_bytes()).digest()
            self._format_id = FormatID(int.from_bytes(digest[:8], "big"))
        return self._format_id

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IOFormat):
            return self.canonical_bytes() == other.canonical_bytes()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.format_id)

    def __repr__(self) -> str:
        return (f"IOFormat({self.name!r}, id={self.format_id}, "
                f"{len(self.field_list)} fields, "
                f"arch={self.architecture.name})")


# ---------------------------------------------------------------------------
# canonical serialization
# ---------------------------------------------------------------------------

def serialize_format(fmt: IOFormat) -> bytes:
    """Serialize *fmt* to the canonical wire metadata text."""
    lines: list[str] = [f"{_MAGIC}\t{_VERSION}"]
    lines.append(f"name\t{fmt.name}")
    arch = fmt.architecture
    lines.append(f"arch\t{arch.name}\t{arch.byte_order}"
                 f"\t{arch.max_alignment}")
    for atomic in sorted(arch.sizes):
        lines.append(f"size\t{atomic}\t{arch.sizes[atomic]}")
    _serialize_field_list(lines, fmt.field_list)
    for fname in sorted(fmt.enums):
        values = fmt.enums[fname]
        for v in values:
            _check_token(v, "enum value")
        lines.append("enum\t" + "\t".join((fname,) + values))
    lines.append("end")
    return ("\n".join(lines) + "\n").encode("utf-8")


def _serialize_field_list(lines: list[str], field_list: FieldList) -> None:
    lines.append(f"record\t{field_list.record_length}")
    for sub_name in sorted(field_list.subformats):
        lines.append(f"subformat\t{_check_token(sub_name, 'subformat')}")
        _serialize_field_list(lines, field_list.subformats[sub_name])
        lines.append("endsub")
    for field in field_list:
        _check_token(field.name, "field name")
        _check_token(field.type, "field type")
        lines.append(f"field\t{field.name}\t{field.type}"
                     f"\t{field.size}\t{field.offset}")


def deserialize_format(data: bytes) -> IOFormat:
    """Parse canonical wire metadata back into an :class:`IOFormat`."""
    try:
        text = data.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise UnknownFormatError(f"metadata is not UTF-8: {exc}") from None
    lines = [ln for ln in text.split("\n") if ln]
    parser = _MetadataParser(lines)
    try:
        return parser.parse()
    except ValueError as exc:
        raise UnknownFormatError(
            f"malformed numeric field in metadata: {exc}") from None


class _MetadataParser:
    def __init__(self, lines: list[str]) -> None:
        self.lines = lines
        self.pos = 0

    def _next(self) -> list[str]:
        if self.pos >= len(self.lines):
            raise UnknownFormatError("truncated format metadata")
        parts = self.lines[self.pos].split("\t")
        self.pos += 1
        return parts

    def _peek_tag(self) -> str:
        if self.pos >= len(self.lines):
            return ""
        return self.lines[self.pos].split("\t", 1)[0]

    def parse(self) -> IOFormat:
        magic = self._next()
        if (len(magic) != 2 or magic[0] != _MAGIC
                or int(magic[1]) != _VERSION):
            raise UnknownFormatError(
                f"bad metadata header {magic!r}")
        tag, name = self._expect("name", 2)
        arch = self._parse_arch()
        field_list = self._parse_field_list(arch)
        enums: dict[str, tuple[str, ...]] = {}
        while self._peek_tag() == "enum":
            parts = self._next()
            if len(parts) < 3:
                raise UnknownFormatError("malformed enum line")
            enums[parts[1]] = tuple(parts[2:])
        self._expect("end", 1)
        _ = tag
        # only the concrete registration/layout failures are metadata
        # problems; anything else (MemoryError, KeyboardInterrupt, a
        # fuzz-discovered bug) must propagate, not masquerade as a
        # format error
        try:
            return IOFormat(name, field_list, enums)
        except (FormatRegistrationError, LayoutError) as exc:
            raise UnknownFormatError(
                f"inconsistent format metadata: {exc}") from exc

    def _expect(self, tag: str, arity: int) -> list[str]:
        parts = self._next()
        if parts[0] != tag or len(parts) != arity:
            raise UnknownFormatError(
                f"expected {tag!r} line, got {parts!r}")
        return parts

    def _parse_arch(self) -> Architecture:
        parts = self._expect("arch", 4)
        name, byte_order, max_alignment = parts[1], parts[2], int(parts[3])
        sizes: dict[str, int] = {}
        while self._peek_tag() == "size":
            _, atomic, size = self._next()
            sizes[atomic] = int(size)
        try:
            return Architecture(name=name, byte_order=byte_order,
                                sizes=sizes, max_alignment=max_alignment)
        except LayoutError as exc:
            raise UnknownFormatError(
                f"bad architecture in metadata: {exc}") from exc

    def _parse_field_list(self, arch: Architecture) -> FieldList:
        parts = self._expect("record", 2)
        record_length = int(parts[1])
        subformats: dict[str, FieldList] = {}
        fields: list[IOField] = []
        while True:
            tag = self._peek_tag()
            if tag == "subformat":
                _, sub_name = self._next()
                subformats[sub_name] = self._parse_field_list(arch)
                self._expect("endsub", 1)
            elif tag == "field":
                fparts = self._next()
                if len(fparts) != 5:
                    raise UnknownFormatError(
                        f"malformed field line {fparts!r}")
                fields.append(IOField(name=fparts[1], type=fparts[2],
                                      size=int(fparts[3]),
                                      offset=int(fparts[4])))
            else:
                break
        try:
            return FieldList(fields, architecture=arch,
                             record_length=record_length,
                             subformats=subformats)
        except (LayoutError, FormatRegistrationError) as exc:
            raise UnknownFormatError(
                f"inconsistent field list in metadata: {exc}") from exc
