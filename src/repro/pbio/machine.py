"""Architecture descriptions for simulated heterogeneity.

The paper's evaluation ran across real heterogeneous hardware (SPARC
Solaris machines and x86 hosts).  We substitute explicit architecture
models: each :class:`Architecture` fixes byte order, the sizes of the
C integral/pointer types, and alignment rules, so the layout engine and
the encoder can produce byte-exact "native" structure images for any of
them on a single host.

The models match the ABIs of the era's platforms:

* ``SPARC_32``  -- SPARC V8, Solaris: big-endian, ILP32.
* ``SPARC_V9`` -- SPARC V9, Solaris 64-bit: big-endian, LP64.
* ``X86_32``   -- IA-32 System V: little-endian, ILP32 (4-byte max
  alignment: an 8-byte double aligns to 4 in structs).
* ``X86_64``   -- x86-64 System V: little-endian, LP64.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

from repro.errors import LayoutError

#: Atomic slots every architecture must size: C-ish type names used by
#: the layout engine.
ATOMIC_SIZES_REQUIRED = (
    "char", "short", "int", "long", "long_long", "float", "double",
    "pointer",
)


@dataclass(frozen=True)
class Architecture:
    """A machine model: byte order + type sizes + alignment policy.

    ``max_alignment`` caps member alignment (IA-32's 4-byte cap is the
    classic example).  Alignment of an atomic type is
    ``min(size, max_alignment)`` — natural alignment, as all the
    modeled ABIs use.
    """

    name: str
    byte_order: str  # "little" | "big"
    sizes: dict[str, int] = field(hash=False)
    max_alignment: int = 16

    def __post_init__(self) -> None:
        if self.byte_order not in ("little", "big"):
            raise LayoutError(
                f"byte_order must be 'little' or 'big', "
                f"got {self.byte_order!r}")
        missing = [t for t in ATOMIC_SIZES_REQUIRED if t not in self.sizes]
        if missing:
            raise LayoutError(
                f"architecture {self.name!r} missing sizes for {missing}")

    # -- queries -------------------------------------------------------------

    def sizeof(self, atomic: str) -> int:
        try:
            return self.sizes[atomic]
        except KeyError:
            raise LayoutError(
                f"architecture {self.name!r} does not size {atomic!r}"
            ) from None

    def alignof(self, atomic: str) -> int:
        return min(self.sizeof(atomic), self.max_alignment)

    @property
    def struct_byte_order_char(self) -> str:
        """The :mod:`struct` byte-order prefix for this architecture."""
        return "<" if self.byte_order == "little" else ">"

    def int_size_for(self, bits: int | None) -> int:
        """Pick the native integer size carrying at least *bits* bits
        (defaulting to ``int``)."""
        if bits is None:
            return self.sizeof("int")
        needed = max(1, (bits + 7) // 8)
        for atomic in ("char", "short", "int", "long", "long_long"):
            if self.sizeof(atomic) >= needed:
                return self.sizeof(atomic)
        return self.sizeof("long_long")

    def __repr__(self) -> str:
        return f"Architecture({self.name!r}, {self.byte_order}-endian)"


def _ilp32(name: str, byte_order: str, max_alignment: int = 16) \
        -> Architecture:
    return Architecture(name=name, byte_order=byte_order, sizes={
        "char": 1, "short": 2, "int": 4, "long": 4, "long_long": 8,
        "float": 4, "double": 8, "pointer": 4,
    }, max_alignment=max_alignment)


def _lp64(name: str, byte_order: str) -> Architecture:
    return Architecture(name=name, byte_order=byte_order, sizes={
        "char": 1, "short": 2, "int": 4, "long": 8, "long_long": 8,
        "float": 4, "double": 8, "pointer": 8,
    })


SPARC_32 = _ilp32("sparc-solaris", "big")
SPARC_V9 = _lp64("sparcv9-solaris", "big")
X86_32 = _ilp32("i386-linux", "little", max_alignment=4)
X86_64 = _lp64("x86_64-linux", "little")

_REGISTRY: dict[str, Architecture] = {
    arch.name: arch for arch in (SPARC_32, SPARC_V9, X86_32, X86_64)
}

#: The architecture records are laid out in by default.  LP64 matching
#: the host's endianness, which on every supported platform is
#: little-endian x86-64/aarch64.
NATIVE = X86_64 if sys.byteorder == "little" else SPARC_V9


def architecture_by_name(name: str) -> Architecture:
    """Look up a registered architecture model by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise LayoutError(
            f"unknown architecture {name!r}; known: "
            f"{sorted(_REGISTRY)}") from None


def register_architecture(arch: Architecture) -> Architecture:
    """Register a custom architecture model (used by tests to probe
    unusual ABIs).  Re-registering the same name replaces the model."""
    _REGISTRY[arch.name] = arch
    return arch


def all_architectures() -> tuple[Architecture, ...]:
    return tuple(_REGISTRY.values())
