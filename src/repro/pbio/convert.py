"""Conversion planning between wire formats and native formats.

When a receiver registers its own version of a format and then receives
records encoded under a (possibly different) wire format with the same
name, PBIO reconciles the two *once* and reuses the plan per record.
Differences handled:

* **architecture** — byte order / sizes / offsets differ: absorbed by
  the wire-format decoder, which always interprets records under the
  sender's layout;
* **field sets** — the paper's restricted evolution: fields the sender
  added are dropped for an older receiver; fields the receiver expects
  but the sender predates are filled with type-appropriate defaults;
* **representation** — integer widths may differ freely (values are
  exact), ``integer -> float`` widens, lossy conversions
  (``float -> integer``, ``string -> integer``, dynamic -> fixed
  arrays) are rejected at plan time with :class:`ConversionError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from repro.errors import ConversionError
from repro.pbio.fields import FieldList
from repro.pbio.format import IOFormat
from repro.pbio.types import FieldType

#: kinds a wire kind may convert to without loss.
_KIND_WIDENS: dict[str, frozenset[str]] = {
    "integer": frozenset({"integer", "unsigned", "float"}),
    "unsigned": frozenset({"integer", "unsigned", "float"}),
    "float": frozenset({"float"}),
    "string": frozenset({"string"}),
    "char": frozenset({"char", "integer", "unsigned"}),
    "boolean": frozenset({"boolean", "integer", "unsigned"}),
    "enumeration": frozenset({"enumeration", "string"}),
}


def default_value(field_list: FieldList, ftype: FieldType):
    """The value a receiver sees for a field the sender never had."""
    if ftype.is_string:
        return None
    if ftype.dynamic_dim is not None:
        return []
    if ftype.kind == "subformat":
        sub = field_list.subformat(ftype.base)
        record = {f.name: default_value(sub, f.field_type) for f in sub}
        if ftype.dims:
            return [dict(record) for _ in range(ftype.static_element_count)]
        return record
    scalar = {"integer": 0, "unsigned": 0, "float": 0.0,
              "char": "\x00", "boolean": False,
              "enumeration": 0}[ftype.kind]
    if ftype.kind == "char" and ftype.dims:
        return ""
    if ftype.dims:
        return [scalar] * ftype.static_element_count
    return scalar


@dataclass
class ConversionPlan:
    """A reconciled mapping from a wire format to a native format."""

    wire: IOFormat
    native: IOFormat
    matched: tuple[str, ...] = ()
    dropped: tuple[str, ...] = ()  # wire-only fields
    defaulted: dict[str, object] = dc_field(default_factory=dict)

    @property
    def is_identity(self) -> bool:
        return not self.dropped and not self.defaulted

    def apply(self, record: dict) -> dict:
        """Project a decoded wire record into the native field set."""
        if self.is_identity:
            return record
        out = {name: record[name] for name in self.matched}
        out.update(self.defaulted)
        return out


def plan_conversion(wire: IOFormat, native: IOFormat) -> ConversionPlan:
    """Build the conversion plan from *wire* to *native*.

    Raises :class:`ConversionError` if any shared field's types are
    irreconcilable.
    """
    wire_fields = {f.name: f for f in wire.field_list}
    native_fields = {f.name: f for f in native.field_list}

    matched: list[str] = []
    defaulted: dict[str, object] = {}
    for name, nf in native_fields.items():
        wf = wire_fields.get(name)
        ntype = nf.field_type
        if wf is None:
            defaulted[name] = default_value(native.field_list, ntype)
            continue
        _check_compatible(wf.field_type, ntype,
                          wire.field_list, native.field_list,
                          f"{native.name}.{name}")
        matched.append(name)
    dropped = tuple(sorted(set(wire_fields) - set(native_fields)))
    return ConversionPlan(wire=wire, native=native,
                          matched=tuple(matched), dropped=dropped,
                          defaulted=defaulted)


def _check_compatible(wire_type: FieldType, native_type: FieldType,
                      wire_list: FieldList, native_list: FieldList,
                      path: str) -> None:
    wk, nk = wire_type.kind, native_type.kind
    if wk == "subformat" or nk == "subformat":
        if wk != "subformat" or nk != "subformat":
            raise ConversionError(
                f"{path}: cannot convert {wire_type} to {native_type}")
        _check_dims(wire_type, native_type, path)
        wire_sub = wire_list.subformat(wire_type.base)
        native_sub = native_list.subformat(native_type.base)
        wire_subfields = {f.name: f for f in wire_sub}
        for nf in native_sub:
            wf = wire_subfields.get(nf.name)
            if wf is not None:
                _check_compatible(wf.field_type, nf.field_type,
                                  wire_sub, native_sub,
                                  f"{path}.{nf.name}")
        return
    if nk not in _KIND_WIDENS.get(wk, frozenset()):
        raise ConversionError(
            f"{path}: lossy or impossible conversion "
            f"{wire_type} -> {native_type}")
    _check_dims(wire_type, native_type, path)


def _check_dims(wire_type: FieldType, native_type: FieldType,
                path: str) -> None:
    wire_dynamic = wire_type.dynamic_dim is not None or \
        wire_type.is_string
    native_dynamic = native_type.dynamic_dim is not None or \
        native_type.is_string
    if wire_type.is_string and native_type.is_string:
        return
    if wire_dynamic and not native_dynamic:
        raise ConversionError(
            f"{path}: dynamic wire array cannot fill fixed native "
            f"array {native_type}")
    if not wire_dynamic and not native_dynamic:
        if wire_type.static_element_count != \
                native_type.static_element_count:
            raise ConversionError(
                f"{path}: fixed array sizes differ "
                f"({wire_type} vs {native_type})")
