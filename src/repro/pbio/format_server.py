"""The PBIO format server.

Formats are registered once and referenced by 8-byte IDs on the wire;
any endpoint holding an ID can fetch the full metadata on demand.  The
paper's deployment ran a network format server; ours is an in-process
registry (optionally shared through the transport layer's negotiation
messages), which preserves the behaviour that matters for the
experiments: registration is a distinct, amortizable step, and record
transmission carries only the ID.

Because :class:`~repro.pbio.format.FormatID` is a digest of the
canonical metadata, registration is idempotent and collision-checked.
"""

from __future__ import annotations

import threading

from repro.errors import FormatRegistrationError, UnknownFormatError
from repro.pbio.format import FormatID, IOFormat, deserialize_format
from repro.pbio.lineage import LineageRegistry


class FormatServer:
    """Thread-safe ID -> metadata registry."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_id: dict[FormatID, bytes] = {}
        self._registrations = 0
        self._lookups = 0
        #: digest chains per format name (rolling-evolution support);
        #: grown via register_evolution, queried by the lineage-aware
        #: handshake
        self.lineages = LineageRegistry()

    def register(self, fmt: IOFormat) -> FormatID:
        """Register *fmt*; returns its (digest-derived) format ID.

        Registering an identical format again is a no-op returning the
        same ID; a digest collision between different metadata raises.
        """
        canonical = fmt.canonical_bytes()
        fid = fmt.format_id
        with self._lock:
            self._registrations += 1
            existing = self._by_id.get(fid)
            if existing is None:
                self._by_id[fid] = canonical
            elif existing != canonical:
                raise FormatRegistrationError(
                    f"format id collision on {fid}")
        return fid

    def lookup(self, fid: FormatID) -> IOFormat:
        """Fetch and reconstruct the format registered under *fid*."""
        with self._lock:
            self._lookups += 1
            try:
                canonical = self._by_id[fid]
            except KeyError:
                raise UnknownFormatError(
                    f"no format registered under id {fid}") from None
        fmt = deserialize_format(canonical)
        if fmt.format_id != fid:
            raise UnknownFormatError(
                f"metadata integrity failure for id {fid}")
        return fmt

    def lookup_bytes(self, fid: FormatID) -> bytes:
        """Fetch raw canonical metadata (what the transport ships)."""
        with self._lock:
            try:
                return self._by_id[fid]
            except KeyError:
                raise UnknownFormatError(
                    f"no format registered under id {fid}") from None

    def import_bytes(self, canonical: bytes) -> FormatID:
        """Register metadata received from a peer (transport path)."""
        fmt = deserialize_format(canonical)
        return self.register(fmt)

    # -- lineages ------------------------------------------------------------

    def register_evolution(self, old: IOFormat,
                           new: IOFormat) -> FormatID:
        """Register *new* as the next version of *old*'s lineage.

        Both formats end up registered (ID -> metadata) and the name's
        digest chain grows by one validated link.  Returns *new*'s ID.
        """
        self.register(old)
        self.lineages.append(old, new)
        return self.register(new)

    def lineage(self, name: str) -> tuple[FormatID, ...]:
        """The digest chain for *name*, oldest first (() if none)."""
        return self.lineages.chain(name)

    def negotiate(self, name: str, offered) -> FormatID | None:
        """The newest version of *name* this server knows that the
        peer's *offered* digests also cover (None: nothing shared).

        Falls back to a single-version chain when the name was
        registered without explicit lineage calls: any registered
        format whose digest the peer offers is mutually decodable.
        """
        offered = list(offered)
        chosen = self.lineages.highest_common(name, offered)
        if chosen is not None:
            return chosen
        # no recorded lineage: accept the newest offered digest we can
        # serve (peers list their versions oldest first)
        known = set(self.known_ids())
        for fid in reversed(offered):
            if fid in known and self.lookup(fid).name == name:
                return fid
        return None

    def known_ids(self) -> tuple[FormatID, ...]:
        with self._lock:
            return tuple(self._by_id)

    def handle_frame(self, ftype: int, payload: bytes) \
            -> tuple[int, bytes] | None:
        """Serve one metadata-protocol frame; returns the reply
        ``(frame type, payload)`` or None when no reply is due.

        This is the transport-agnostic half of the network format
        server: :class:`~repro.pbio.remote_server.FormatServerService`
        and the broadcast event loop
        (:class:`~repro.transport.broadcast.BroadcastPublisher`) both
        feed frames here, so format metadata is served from whatever
        loop already owns the socket.  Imported lazily to keep this
        module free of transport dependencies.
        """
        from repro.transport.messages import FrameType
        try:
            if ftype == FrameType.FMT_REG:
                fid = self.import_bytes(bytes(payload))
                return FrameType.FMT_ACK, fid.to_bytes()
            if ftype == FrameType.FMT_REQ:
                fid = FormatID.from_bytes(payload)
                metadata = self.lookup_bytes(fid)
                return FrameType.FMT_RSP, fid.to_bytes() + metadata
            if ftype == FrameType.HELLO:
                return None
            return (FrameType.FMT_ERR,
                    f"unexpected frame type {ftype}".encode())
        except (UnknownFormatError, FormatRegistrationError) as exc:
            return FrameType.FMT_ERR, str(exc).encode()

    @property
    def stats(self) -> dict[str, int]:
        with self._lock:
            return {"registrations": self._registrations,
                    "lookups": self._lookups,
                    "formats": len(self._by_id)}

    def __len__(self) -> int:
        with self._lock:
            return len(self._by_id)


_GLOBAL = FormatServer()


def global_format_server() -> FormatServer:
    """The process-wide default server used by contexts unless one is
    passed explicitly."""
    return _GLOBAL
