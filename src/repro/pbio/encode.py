"""Record marshaling: in-memory record dicts -> PBIO wire bytes.

The wire representation of a record is the sender's native structure
image ("receiver makes right" — no translation on the send side beyond
pointer swizzling), laid out as:

    +--------------------+------------------------------------------+
    | fixed section      | variable section                         |
    | (record_length B,  | (string bytes, dynamic-array elements,   |
    |  native offsets/   |  appended in encounter order, aligned)   |
    |  padding)          |                                          |
    +--------------------+------------------------------------------+

Pointer-valued struct slots (strings, dynamic arrays) carry the
*absolute byte offset* of their data within the record body; 0 is the
NULL sentinel (no data ever starts at offset 0, which is inside the
fixed section).  Dynamic arrays without a sizing field are prefixed
with a 32-bit element count.

A :class:`RecordEncoder` is compiled once per format — a flat list of
closures — and reused for every record, which is what makes PBIO-style
encoding a near-memcpy (and what Fig. 7 measures).  Bulk numeric arrays
take a NumPy fast path.

Three steady-state optimizations ride on top of the compiled plan (see
``docs/MARSHALING.md``):

* **run fusion** — contiguous fixed-size scalar fields coalesce into a
  single precompiled :class:`struct.Struct`, one ``pack_into`` per run
  instead of one per field (runs break at pointer-valued fields,
  subformats, and large padding gaps);
* **plan caching** — compiled encoders are cached per format digest
  (:func:`encoder_for_format`), so every context, codec and one-shot
  helper in the process shares one plan per format;
* **buffer pooling** — :meth:`RecordEncoder.encode_wire` reuses
  ``bytearray`` bodies from a small freelist, so steady-state encoding
  allocates no fresh buffer per record.

Record headers (prepended by :func:`encode_record` /
:class:`~repro.pbio.context.IOContext`) are 16 bytes, always big-endian:
magic ``PB``, version, flags, 8-byte format ID, 4-byte body length.
Flag bit ``0x1`` marks a big-endian sender; flag bit ``0x2`` marks a
**record batch** (:func:`build_batch`), whose payload is
``u32 count`` followed by ``count`` × ``u32 length | body`` — N
same-format records under one header.
"""

from __future__ import annotations

import array
import base64
import marshal
import struct
import sys
import threading
import types
from dataclasses import dataclass

import numpy as np

from repro.errors import (
    EncodeError, LayoutError, PlanCacheError, WireParseError,
)
from repro.pbio.fields import FieldList, IOField
from repro.pbio.format import FormatID, IOFormat
from repro.pbio.plancache import (
    PlanLRU, active_plan_cache, single_flight,
    _count as _plan_cache_count,
)
from repro.pbio.types import FieldType

HEADER_MAGIC = b"PB"
HEADER_VERSION = 1
HEADER_LEN = 16
_HEADER_STRUCT = struct.Struct(">2sBB8sI")
_COUNT32 = struct.Struct(">I")

#: header flag bits
FLAG_BIG_ENDIAN = 0x1
FLAG_BATCH = 0x2

#: padding gaps larger than this break a fused run (a run spanning a
#: huge hole would pack pad bytes instead of skipping them)
_MAX_RUN_GAP = 16

#: version of the persistable plan snapshot produced by
#: :meth:`RecordEncoder.plan_snapshot`; bump on layout changes so
#: older persisted plans are rejected (and recompiled), never misread
PLAN_VERSION = 1

#: struct format characters by (kind, element size).
STRUCT_CODES: dict[tuple[str, int], str] = {
    ("integer", 1): "b", ("integer", 2): "h",
    ("integer", 4): "i", ("integer", 8): "q",
    ("unsigned", 1): "B", ("unsigned", 2): "H",
    ("unsigned", 4): "I", ("unsigned", 8): "Q",
    ("enumeration", 1): "B", ("enumeration", 2): "H",
    ("enumeration", 4): "I", ("enumeration", 8): "Q",
    ("float", 4): "f", ("float", 8): "d",
    ("boolean", 1): "B",
    ("char", 1): "B",
}

#: numpy dtype kind letters by field kind (sized at use).
_NUMPY_KINDS = {"integer": "i", "unsigned": "u", "float": "f",
                "enumeration": "u", "boolean": "u"}

#: var-array payloads at least this large spill out of the pooled body
#: as zero-copy segments when encoding in parts mode (below it the
#: extra frame part costs more than the memcpy it saves)
SPILL_MIN_BYTES = 4096

#: stdlib array.array typecodes by (numpy kind char, itemsize) — the
#: typed sources the bulk path accepts without building an ndarray
_TYPECODE_KINDS: dict[str, tuple[str, int]] = (
    {c: ("i", array.array(c).itemsize) for c in "bhilq"}
    | {c: ("u", array.array(c).itemsize) for c in "BHILQ"}
    | {"f": ("f", 4), "d": ("f", 8)}
)

_NATIVE_ORDER_CHAR = "<" if sys.byteorder == "little" else ">"


def struct_code(kind: str, size: int) -> str:
    try:
        return STRUCT_CODES[(kind, size)]
    except KeyError:
        raise EncodeError(
            f"no wire representation for {kind} of size {size}") from None


def numpy_dtype(kind: str, size: int, byte_order: str,
                field_name: str | None = None) -> np.dtype:
    try:
        letter = _NUMPY_KINDS[kind]
    except KeyError:
        where = f"field {field_name!r}: " if field_name else ""
        raise EncodeError(
            f"{where}no bulk representation for kind {kind}") from None
    prefix = "<" if byte_order == "little" else ">"
    return np.dtype(f"{prefix}{letter}{size}")


class BulkStats:
    """Process-wide counters for the bulk-array fast path.

    Every bulk decision is counted, so tests and benchmarks can prove
    copy behavior (e.g. "this 1 MB grid moved as one zero-copy spill
    segment") instead of inferring it from timings.  Plain int adds
    under the GIL; diagnostic precision, not billing precision.
    """

    __slots__ = ("zero_copy_views", "bulk_converts", "copied_arrays",
                 "copied_bytes", "spilled_segments", "spilled_bytes",
                 "fallback_arrays")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.zero_copy_views = 0   # source buffer used as-is, no copy
        self.bulk_converts = 0     # one bulk dtype/byte-order convert
        self.copied_arrays = 0     # payloads memcpy'd into the body
        self.copied_bytes = 0
        self.spilled_segments = 0  # payloads handed out as segments
        self.spilled_bytes = 0
        self.fallback_arrays = 0   # bulk-ineligible, per-element path

    def snapshot(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


BULK_STATS = BulkStats()


def _bulk_view(value, dtype: np.dtype):
    """A C-contiguous byte view of *value* in the wire byte order.

    Returns ``(view, converted)`` — ``converted`` is False when the
    view aliases the caller's buffer (zero-copy) and True when one bulk
    dtype/byte-order conversion produced a private buffer — or ``None``
    when *value* is not bulk-eligible and must take the per-element
    baseline.  Only typed 1-D sources qualify: ``np.ndarray`` and
    ``array.array`` carry their element type, so reinterpreting their
    bytes can never change meaning (raw bytes/buffers stay on the
    baseline path, which treats them as element sequences).
    """
    if isinstance(value, np.ndarray):
        if value.ndim != 1:
            return None
        vd = value.dtype
        # identity first: numpy interns the native-order dtypes, so
        # the steady state skips building two ``.str`` strings
        if (vd is dtype or vd.str == dtype.str) \
                and value.flags.c_contiguous:
            return memoryview(value).cast("B"), False
        try:
            converted = np.ascontiguousarray(value, dtype=dtype)
        except (ValueError, TypeError, OverflowError):
            return None
        return memoryview(converted).cast("B"), True
    if isinstance(value, array.array):
        if _TYPECODE_KINDS.get(value.typecode) != (dtype.kind,
                                                   dtype.itemsize):
            return None
        if dtype.byteorder in ("|", "=", _NATIVE_ORDER_CHAR):
            return memoryview(value).cast("B"), False
        swapped = array.array(value.typecode, value)
        swapped.byteswap()
        return memoryview(swapped).cast("B"), True
    return None


@dataclass(frozen=True)
class EncodedRecord:
    """An encoded record: header + body, ready for a transport."""

    format_id: FormatID
    body: bytes

    @property
    def wire_bytes(self) -> bytes:
        return build_header(self.format_id, len(self.body),
                            big_endian=False) + self.body

    def __len__(self) -> int:
        return HEADER_LEN + len(self.body)


def build_header(format_id: FormatID, body_length: int,
                 *, big_endian: bool) -> bytes:
    flags = FLAG_BIG_ENDIAN if big_endian else 0
    return _HEADER_STRUCT.pack(HEADER_MAGIC, HEADER_VERSION, flags,
                               format_id.to_bytes(), body_length)


def _parse_header_raw(data) -> tuple[FormatID, int, int]:
    """Parse a header; returns (format id, flags, body length)."""
    if len(data) < HEADER_LEN:
        raise WireParseError(
            f"record shorter than header ({len(data)} < {HEADER_LEN})")
    magic, version, flags, fid, body_len = _HEADER_STRUCT.unpack_from(
        data)
    if magic != HEADER_MAGIC:
        raise WireParseError(f"bad record magic {magic!r}")
    if version != HEADER_VERSION:
        raise WireParseError(f"unsupported record version {version}")
    return FormatID.from_bytes(fid), flags, body_len


def parse_header(data: bytes, *,
                 require_body: bool = False) -> tuple[FormatID, int]:
    """Parse a record header; returns (format id, body length).

    With ``require_body`` the declared body length is checked against
    the buffer — wire-facing callers holding the whole record must set
    it, so a lying header is rejected before its length drives any
    downstream slice or allocation.  (The default stays lenient for
    callers inspecting a bare 16-byte header.)
    """
    fid, _flags, body_len = _parse_header_raw(data)
    if require_body and body_len > len(data) - HEADER_LEN:
        raise WireParseError(
            f"record truncated: header says {body_len} body bytes, "
            f"got {len(data) - HEADER_LEN}")
    return fid, body_len


def is_batch(data) -> bool:
    """True when *data* starts with a record-batch header."""
    return (len(data) >= 4 and bytes(data[:2]) == HEADER_MAGIC
            and bool(data[3] & FLAG_BATCH))


def build_batch(format_id: FormatID, bodies, *,
                big_endian: bool) -> bytes:
    """Frame N same-format record bodies under one shared header.

    Layout after the 16-byte header (``FLAG_BATCH`` set, body length
    covering everything that follows): ``u32 count``, then per record
    ``u32 length | body``.  All batch integers are big-endian, like the
    header itself.
    """
    flags = (FLAG_BIG_ENDIAN if big_endian else 0) | FLAG_BATCH
    total = 4 + sum(4 + len(b) for b in bodies)
    parts = [_HEADER_STRUCT.pack(HEADER_MAGIC, HEADER_VERSION, flags,
                                 format_id.to_bytes(), total),
             _COUNT32.pack(len(bodies))]
    for body in bodies:
        parts.append(_COUNT32.pack(len(body)))
        parts.append(bytes(body))
    return b"".join(parts)


def parse_batch(data) -> tuple[FormatID, bool, list[memoryview]]:
    """Split a record batch into (format id, big-endian?, bodies)."""
    fid, flags, total = _parse_header_raw(data)
    if not flags & FLAG_BATCH:
        raise WireParseError("not a record batch (FLAG_BATCH clear)")
    payload = memoryview(data)[HEADER_LEN:]
    if len(payload) < total:
        raise WireParseError(
            f"batch truncated: header says {total} payload bytes, "
            f"got {len(payload)}")
    payload = payload[:total]
    if total < 4:
        raise WireParseError(
            f"batch payload of {total} bytes cannot hold a count")
    (count,) = _COUNT32.unpack_from(payload, 0)
    if 4 + 4 * count > total:
        raise WireParseError(
            f"batch count {count} impossible for {total} payload bytes")
    bodies: list[memoryview] = []
    offset = 4
    for index in range(count):
        if offset + 4 > total:
            raise WireParseError(
                f"batch truncated inside record {index}'s length "
                f"prefix (offset {offset} of {total})")
        (length,) = _COUNT32.unpack_from(payload, offset)
        offset += 4
        if length > total - offset:
            raise WireParseError(
                f"batch record {index} ({length} bytes at offset "
                f"{offset}) extends past the {total}-byte payload")
        bodies.append(payload[offset:offset + length])
        offset += length
    return fid, bool(flags & FLAG_BIG_ENDIAN), bodies


def explode_batch(data) -> list[bytes]:
    """Split a record batch into standalone per-record wires.

    Each result carries its own 16-byte header, so code written for
    single records (``parse_header`` + decode) consumes batch members
    unchanged — how :class:`~repro.transport.connection.Connection`
    delivers batches through its per-record ``receive()``.
    """
    fid, big_endian, bodies = parse_batch(data)
    return [build_header(fid, len(body), big_endian=big_endian)
            + bytes(body) for body in bodies]


class BufferPool:
    """A freelist of record-body ``bytearray`` buffers.

    Steady-state encoding borrows a buffer, fills it, snapshots it to
    immutable ``bytes`` for the transport, and returns it — retaining
    the capacity the variable section grew to, so the next record of
    similar shape extends without reallocating.  List append/pop are
    atomic under the GIL, so the pool is safe to share across threads.
    """

    def __init__(self, max_buffers: int = 8, *,
                 factory=bytearray) -> None:
        self._free: list[bytearray] = []
        self.max_buffers = max_buffers
        self._factory = factory
        self._zeros = b""
        self.acquires = 0
        self.reuses = 0

    def acquire(self, size: int) -> bytearray:
        """A zeroed buffer of exactly *size* bytes."""
        self.acquires += 1
        try:
            buf = self._free.pop()
        except IndexError:
            return self._factory(size)
        self.reuses += 1
        if len(self._zeros) < size:
            self._zeros = bytes(size)
        if len(buf) != size or len(self._zeros) != size:
            buf[:] = memoryview(self._zeros)[:size]
        else:
            buf[:] = self._zeros
        return buf

    def release(self, buf: bytearray) -> None:
        if len(self._free) < self.max_buffers:
            self._free.append(buf)


def _round_up(value: int, align: int) -> int:
    return (value + align - 1) // align * align


class _PartsBody(bytearray):
    """Record body that can divert large bulk payloads into zero-copy
    *segments* instead of copying them in.

    ``segments`` holds ``(physical_cut, byte_view)`` pairs: the payload
    logically sits at physical offset ``physical_cut`` but its bytes
    live in the caller's array.  ``__len__`` reports the **virtual**
    length (physical bytes plus every spilled segment), so the compiled
    ops' pointer arithmetic — which is all expressed through
    ``len(body)`` — stays wire-accurate without knowing about spills.
    C-level writes (``extend``/``pack_into``) address the physical
    buffer and are unaffected.  Segments must be cleared before the
    body returns to its :class:`BufferPool` (the pool sizes buffers by
    ``len``).
    """

    __slots__ = ("segments",)

    def __init__(self, *args) -> None:
        super().__init__(*args)
        self.segments: list[tuple[int, memoryview]] = []

    def __len__(self) -> int:
        n = bytearray.__len__(self)
        for _cut, part in self.segments:
            n += len(part)
        return n


class RecordEncoder:
    """Compiled encoder for one :class:`IOFormat`.

    ``fuse`` selects the codec plan: fused (default — contiguous
    scalar runs pack through one :class:`struct.Struct`) or the
    per-field baseline the fused plan is benchmarked against.

    ``bulk`` selects the array plan: bulk (default — typed 1-D array
    payloads move as single ``memoryview`` copies, byte-swapped in one
    pass when the wire order differs, and spill as zero-copy segments
    through :meth:`encode_wire_parts`) or the per-element baseline the
    bulk path is differentially tested against.
    """

    def __init__(self, fmt: IOFormat, *, fuse: bool = True,
                 bulk: bool = True, plan: dict | None = None) -> None:
        self.format = fmt
        self.field_list = fmt.field_list
        self.fuse = fuse
        self.bulk = bulk
        self.fused_runs = 0      # plan stats: runs of >= 2 fields
        self.fused_fields = 0    # fields covered by those runs
        self._bo = fmt.architecture.struct_byte_order_char
        self._byte_order = fmt.architecture.byte_order
        self._big = fmt.architecture.byte_order == "big"
        ptr_size = fmt.architecture.sizeof("pointer")
        self._ptr = struct.Struct(
            self._bo + ("I" if ptr_size == 4 else "Q"))
        self._count = struct.Struct(self._bo + "I")
        self._pool = BufferPool()
        self._parts_pool = BufferPool(factory=_PartsBody)
        # ops run in field order; each is fn(record, body, base).
        # With a persisted *plan* (from repro.pbio.plancache) the ops
        # are rebuilt from the snapshot — no source generation or
        # compile() — after re-verifying its layout against the live
        # field list; such encoders are never re-snapshotted.
        self._plan_sources: list[str] = []
        if plan is not None:
            self._plan_ops: list | None = None
            self._ops = self._ops_from_plan(plan, fmt.enums)
        else:
            self._plan_ops = []
            self._ops = self._compile(self.field_list, enums=fmt.enums,
                                      _record_plan=self._plan_ops)
        self._length_links = _length_links(self.field_list)

    # -- public ---------------------------------------------------------------

    def encode(self, record: dict) -> EncodedRecord:
        body = self._encode_pooled(record)
        return EncodedRecord(self.format.format_id, body)

    def encode_body(self, record: dict) -> bytearray:
        record = self._normalize(record, self.field_list,
                                 self._length_links,
                                 path=self.format.name)
        body = bytearray(self.field_list.record_length)
        for op in self._ops:
            op(record, body, 0)
        return body

    def encode_wire(self, record: dict) -> bytes:
        """Header + body, encoding through the buffer pool.

        One join produces the wire: the pooled body is copied exactly
        once, into the final frame, never into an intermediate."""
        record = self._normalize(record, self.field_list,
                                 self._length_links,
                                 path=self.format.name)
        body = self._pool.acquire(self.field_list.record_length)
        try:
            for op in self._ops:
                op(record, body, 0)
            header = build_header(self.format.format_id, len(body),
                                  big_endian=self._big)
            return b"".join((header, body))
        finally:
            self._pool.release(body)

    def encode_wire_parts(self, record: dict) -> tuple:
        """Wire parts ``(header, piece, ...)`` without concatenation.

        The broadcast fan-out path frames records directly from these
        parts (one join builds the whole transport frame), so the wire
        bytes are copied once instead of once per layer.  Bulk array
        payloads of at least :data:`SPILL_MIN_BYTES` are returned as
        zero-copy ``memoryview`` segments over the **caller's array**
        — a 1 MB grid is never copied by the codec at all, only by the
        transport's single frame join.  Consume (join/send) the parts
        before mutating the source arrays.
        """
        record = self._normalize(record, self.field_list,
                                 self._length_links,
                                 path=self.format.name)
        body = self._parts_pool.acquire(self.field_list.record_length)
        try:
            for op in self._ops:
                op(record, body, 0)
            header = build_header(self.format.format_id, len(body),
                                  big_endian=self._big)
            if not body.segments:
                return header, bytes(body)
            parts = [header]
            prev = 0
            raw = memoryview(body)
            try:
                for cut, segment in body.segments:
                    if cut > prev:
                        parts.append(bytes(raw[prev:cut]))
                    parts.append(segment)
                    prev = cut
                if bytearray.__len__(body) > prev:
                    parts.append(bytes(raw[prev:]))
            finally:
                raw.release()
            return tuple(parts)
        finally:
            body.segments.clear()
            self._parts_pool.release(body)

    def encode_bodies(self, records) -> list[bytes]:
        """Encode many records, reusing one pooled buffer throughout.

        Failures name the offending record index on top of the
        per-field attribution the compiled ops already provide.
        """
        out = []
        for index, record in enumerate(records):
            try:
                out.append(self._encode_pooled(record))
            except EncodeError as exc:
                raise EncodeError(f"record[{index}]: {exc}") from None
        return out

    def encode_batch(self, records) -> bytes:
        """Encode *records* into one shared-header batch
        (:func:`build_batch`)."""
        return build_batch(self.format.format_id,
                           self.encode_bodies(records),
                           big_endian=self._big)

    def _encode_pooled(self, record: dict) -> bytes:
        record = self._normalize(record, self.field_list,
                                 self._length_links,
                                 path=self.format.name)
        body = self._pool.acquire(self.field_list.record_length)
        try:
            for op in self._ops:
                op(record, body, 0)
            return bytes(body)
        finally:
            self._pool.release(body)

    # -- normalization ---------------------------------------------------------

    def _normalize(self, record: dict, field_list: FieldList,
                   links: dict[str, str], path: str) -> dict:
        """Check field presence, auto-fill sizing fields, reject
        unknown fields."""
        if not isinstance(record, dict):
            raise EncodeError(
                f"{path}: record must be a mapping, got "
                f"{type(record).__name__}")
        known = field_list.name_set()
        if record.keys() == known:
            # steady-state fast path: every field present and every
            # sizing field already telling the truth — no dict copy
            for array_name, (length_name, trailing) in links.items():
                value = record[array_name]
                flat = 0 if value is None else len(value)
                if (trailing > 1 and flat % trailing) or \
                        record[length_name] != flat // trailing:
                    break   # let the slow path fill or reject it
            else:
                return record
        unknown = set(record) - known
        if unknown:
            raise EncodeError(f"{path}: unknown fields {sorted(unknown)}")
        out = dict(record)
        for array_name, (length_name, trailing) in links.items():
            value = out.get(array_name)
            flat = 0 if value is None else len(value)
            if trailing > 1 and flat % trailing:
                raise EncodeError(
                    f"{path}.{array_name}: element count {flat} not a "
                    f"multiple of trailing dimensions {trailing}")
            actual = flat // trailing
            declared = out.get(length_name)
            if declared is None:
                out[length_name] = actual
            elif declared != actual:
                raise EncodeError(
                    f"{path}.{array_name}: sizing field "
                    f"{length_name!r} = {declared} but array has "
                    f"{actual} elements")
        missing = known - set(out)
        if missing:
            raise EncodeError(f"{path}: missing fields {sorted(missing)}")
        return out

    # -- compilation ------------------------------------------------------------

    def _compile(self, field_list: FieldList,
                 enums: dict[str, tuple[str, ...]], *,
                 _record_plan: list | None = None):
        ops = []
        run: list[tuple[IOField, FieldType]] = []
        for field in field_list:
            ftype = field.field_type
            if self.fuse and _fusible(field, ftype):
                if run and (field.offset - (run[-1][0].offset +
                                            run[-1][0].size)
                            > _MAX_RUN_GAP):
                    self._flush_run(ops, run, enums, _record_plan)
                    run = []
                run.append((field, ftype))
                continue
            self._flush_run(ops, run, enums, _record_plan)
            run = []
            ops.append(self._compile_field(field_list, field, ftype,
                                           enums))
            if _record_plan is not None:
                _record_plan.append(("field", field.name))
        self._flush_run(ops, run, enums, _record_plan)
        return ops

    def _flush_run(self, ops: list, run: list, enums,
                   record_plan: list | None = None) -> None:
        if not run:
            return
        if len(run) == 1:
            field, ftype = run[0]
            ops.append(self._compile_scalar(field, ftype, enums))
            if record_plan is not None:
                record_plan.append(("field", field.name))
        else:
            op, spec, src = self._compile_fused_run(run, enums)
            ops.append(op)
            self.fused_runs += 1
            self.fused_fields += len(run)
            if record_plan is not None:
                record_plan.append(("run", spec))
                self._plan_sources.append(src)

    def _compile_fused_run(self, run: list, enums):
        """One pack_into for a contiguous run of scalar fields.

        Padding holes between fields become ``x`` pad codes, so the
        compiled struct writes the run's full byte span in one call.
        """
        start = run[0][0].offset
        parts: list[str] = []
        pairs: list[tuple] = []   # (convert, name) in pack-arg order
        singles: list[tuple] = [] # (name, convert, Struct, offset)
        pos = start
        for field, ftype in run:
            if field.offset > pos:
                parts.append(f"{field.offset - pos}x")
            code = struct_code(ftype.kind, field.size)
            parts.append(code)
            convert = _scalar_converter(ftype.kind, field,
                                        enums.get(field.name))
            pairs.append((convert, field.name))
            singles.append((field.name, convert,
                            struct.Struct(self._bo + code)))
            pos = field.offset + field.size
        packer = struct.Struct(self._bo + "".join(parts))
        diagnostics = tuple(singles)
        # Generate the pack call as source so the steady state is one
        # C-level pack_into with the converter calls inlined as
        # positional arguments — no per-field loop, no argument tuple.
        env = {"_p": packer, "_diag": _diagnose_fused_failure,
               "_singles": diagnostics, "EncodeError": EncodeError,
               "_struct_error": struct.error}
        for i, (convert, _name) in enumerate(pairs):
            env[f"_c{i}"] = convert
        args_src = ", ".join(f"_c{i}(record[{name!r}])"
                             for i, (_c, name) in enumerate(pairs))
        src = (
            "def _fused(record, body, base):\n"
            "    try:\n"
            f"        _p.pack_into(body, base + {start}, {args_src})\n"
            "    except EncodeError:\n"
            "        raise\n"
            "    except (_struct_error, TypeError, ValueError,\n"
            "            KeyError) as exc:\n"
            "        _diag(record, _singles, exc)\n")
        code = compile(src, "<fused-run>", "exec")
        exec(code, env)
        spec = {"start": start, "format": packer.format,
                "names": [name for _c, name in pairs],
                "_code": code}
        return env["_fused"], spec, src

    def _compile_field(self, field_list: FieldList, field: IOField,
                       ftype: FieldType, enums):
        kind = ftype.kind
        if kind == "subformat":
            return self._compile_subformat(field_list, field, ftype)
        if ftype.is_string:
            return self._compile_string(field)
        if not ftype.dims:
            return self._compile_scalar(field, ftype, enums)
        if ftype.is_inline:
            return self._compile_fixed_array(field, ftype, enums)
        return self._compile_var_array(field, ftype, enums)

    def _compile_scalar(self, field: IOField, ftype: FieldType, enums):
        name, offset = field.name, field.offset
        kind = ftype.kind
        packer = struct.Struct(self._bo + struct_code(kind, field.size))
        convert = _scalar_converter(kind, field, enums.get(name))

        def op(record, body, base, *, _p=packer, _c=convert):
            try:
                _p.pack_into(body, base + offset, _c(record[name]))
            except (struct.error, TypeError, ValueError) as exc:
                raise EncodeError(
                    f"field {name!r}: cannot encode "
                    f"{record[name]!r}: {exc}") from None
        return op

    def _compile_string(self, field: IOField):
        name, offset = field.name, field.offset
        ptr = self._ptr

        def op(record, body, base):
            value = record[name]
            if value is None:
                ptr.pack_into(body, base + offset, 0)
                return
            if not isinstance(value, str):
                raise EncodeError(
                    f"field {name!r}: string value expected, got "
                    f"{type(value).__name__}")
            data = value.encode("utf-8") + b"\x00"
            where = len(body)
            body.extend(data)
            ptr.pack_into(body, base + offset, where)
        return op

    def _compile_fixed_array(self, field: IOField, ftype: FieldType,
                             enums):
        name, offset = field.name, field.offset
        count = ftype.static_element_count
        kind = ftype.kind
        if kind == "char":
            size = count

            def char_op(record, body, base):
                data = _char_array_bytes(name, record[name], size)
                body[base + offset:base + offset + size] = data
            return char_op
        dtype = numpy_dtype(kind, field.size, self._byte_order,
                            field_name=name)
        convert = _scalar_converter(kind, field, enums.get(name))
        nbytes = count * field.size
        bulk = self.bulk
        stats = BULK_STATS
        # Small arrays pack faster through one precompiled struct than
        # through an ndarray round-trip; numpy wins past a few hundred
        # elements, and the bulk path stays as the tolerant fallback.
        packer = (struct.Struct(
            f"{self._bo}{count}{struct_code(kind, field.size)}")
            if count <= 256 else None)

        def op(record, body, base):
            value = record[name]
            if packer is not None and type(value) is list \
                    and len(value) == count:
                try:
                    packer.pack_into(body, base + offset, *value)
                    return
                except (struct.error, TypeError, ValueError,
                        OverflowError):
                    pass  # enum strings, mixed types: bulk path decides
            if bulk and isinstance(value, (np.ndarray, array.array)):
                src = _bulk_view(value, dtype)
                if src is not None:
                    view, converted = src
                    if len(view) != nbytes:
                        raise EncodeError(
                            f"field {name!r}: fixed array of {count}, "
                            f"got {len(view) // field.size} elements")
                    if converted:
                        stats.bulk_converts += 1
                    else:
                        stats.zero_copy_views += 1
                    body[base + offset:base + offset + nbytes] = view
                    stats.copied_arrays += 1
                    stats.copied_bytes += nbytes
                    return
                stats.fallback_arrays += 1
            items = _as_items(name, value)
            if len(items) != count:
                raise EncodeError(
                    f"field {name!r}: fixed array of {count}, got "
                    f"{len(items)} elements")
            data = _bulk_bytes(name, items, dtype, convert)
            body[base + offset:base + offset + nbytes] = data
        return op

    def _compile_var_array(self, field: IOField, ftype: FieldType,
                           enums):
        name, offset = field.name, field.offset
        kind = ftype.kind
        ptr = self._ptr
        counter = self._count
        self_sized = ftype.dynamic_dim.length_field is None
        trailing = ftype.static_element_count  # row-major trailing dims
        if kind == "char":
            def char_op(record, body, base):
                value = record[name]
                if value is None:
                    ptr.pack_into(body, base + offset, 0)
                    return
                data = (value.encode("utf-8") if isinstance(value, str)
                        else bytes(value))
                where = _append_var(body, 4 if self_sized else 1)
                if self_sized:
                    body.extend(counter.pack(len(data)))
                body.extend(data)
                ptr.pack_into(body, base + offset, where)
            return char_op
        dtype = numpy_dtype(kind, field.size, self._byte_order,
                            field_name=name)
        convert = _scalar_converter(kind, field, enums.get(name))
        align = max(field.size, 4 if self_sized else 1)
        elem = field.size
        bulk = self.bulk
        stats = BULK_STATS

        def op(record, body, base):
            value = record[name]
            if value is None:
                ptr.pack_into(body, base + offset, 0)
                return
            if bulk and isinstance(value, (np.ndarray, array.array)):
                src = _bulk_view(value, dtype)
                if src is not None:
                    view, converted = src
                    nbytes = len(view)
                    if trailing > 1 and (nbytes // elem) % trailing:
                        raise EncodeError(
                            f"field {name!r}: element count "
                            f"{nbytes // elem} not a multiple of "
                            f"trailing dimensions {trailing}")
                    if converted:
                        stats.bulk_converts += 1
                    else:
                        stats.zero_copy_views += 1
                    where = _append_var(body, align)
                    if self_sized:
                        body.extend(counter.pack(
                            (nbytes // elem) // (trailing or 1)))
                        pad = _round_up(len(body), elem) - len(body)
                        if pad:
                            body.extend(b"\x00" * pad)
                    start = len(body)
                    segments = getattr(body, "segments", None)
                    if segments is not None \
                            and nbytes >= SPILL_MIN_BYTES:
                        segments.append(
                            (bytearray.__len__(body), view))
                        stats.spilled_segments += 1
                        stats.spilled_bytes += nbytes
                    else:
                        body += view
                        stats.copied_arrays += 1
                        stats.copied_bytes += nbytes
                    ptr.pack_into(body, base + offset,
                                  where if self_sized else start)
                    return
                stats.fallback_arrays += 1
            items = _as_items(name, value)
            if trailing > 1 and len(items) % trailing:
                raise EncodeError(
                    f"field {name!r}: element count {len(items)} not a "
                    f"multiple of trailing dimensions {trailing}")
            data = _bulk_bytes(name, items, dtype, convert)
            where = _append_var(body, align)
            if self_sized:
                body.extend(counter.pack(len(items) // (trailing or 1)))
                pad = _round_up(len(body), field.size) - len(body)
                if pad:
                    body.extend(b"\x00" * pad)
            start = len(body)
            body.extend(data)
            ptr.pack_into(body, base + offset,
                          where if self_sized else start)
        return op

    def _compile_subformat(self, field_list: FieldList, field: IOField,
                           ftype: FieldType):
        name, offset = field.name, field.offset
        sub_list = field_list.subformat(ftype.base)
        sub_ops = self._compile(sub_list, enums={})
        sub_links = _length_links(sub_list)
        stride = sub_list.record_length
        normalize = self._normalize
        ptr = self._ptr
        counter = self._count
        path = f"{self.format.name}.{name}"

        if not ftype.dims:
            def scalar_op(record, body, base):
                sub = normalize(record[name], sub_list, sub_links, path)
                for op in sub_ops:
                    op(sub, body, base + offset)
            return scalar_op

        count = ftype.static_element_count
        if ftype.is_inline:
            def fixed_op(record, body, base):
                items = _as_items(name, record[name])
                if len(items) != count:
                    raise EncodeError(
                        f"field {name!r}: fixed array of {count}, got "
                        f"{len(items)} records")
                for i, item in enumerate(items):
                    sub = normalize(item, sub_list, sub_links,
                                    f"{path}[{i}]")
                    at = base + offset + i * stride
                    for op in sub_ops:
                        op(sub, body, at)
            return fixed_op

        self_sized = ftype.dynamic_dim.length_field is None

        def var_op(record, body, base):
            value = record[name]
            if value is None:
                ptr.pack_into(body, base + offset, 0)
                return
            items = _as_items(name, value)
            where = _append_var(body, 8)
            if self_sized:
                body.extend(counter.pack(len(items)))
                pad = _round_up(len(body), 8) - len(body)
                body.extend(b"\x00" * pad)
            # Pointer values are virtual (wire) offsets, but pack_into
            # addresses the physical buffer — they differ once a bulk
            # payload has spilled out of the body as a segment.
            zone = len(body)
            zone_physical = bytearray.__len__(body)
            body.extend(bytes(stride * len(items)))
            for i, item in enumerate(items):
                sub = normalize(item, sub_list, sub_links,
                                f"{path}[{i}]")
                at = zone_physical + i * stride
                for op in sub_ops:
                    op(sub, body, at)
            ptr.pack_into(body, base + offset,
                          where if self_sized else zone)
        return var_op

    # -- persistable plans -------------------------------------------------------

    def plan_snapshot(self) -> dict | None:
        """A JSON-safe description of this compiled plan for the
        persistent tier (``repro.pbio.plancache``), or None for
        plan-loaded encoders (never re-stored).

        Fused runs carry their layout (start offset, struct format,
        field names) plus the ``marshal``-serialized code object of
        the exec-generated pack call — the part of compilation worth
        persisting.  Every other op is recorded by field name and
        recompiled from live metadata on load (closure construction is
        cheap, and subformat internals always recompile — their plans
        are not flattened into the snapshot).
        """
        if self._plan_ops is None:
            return None
        ops: list = []
        for kind, payload in self._plan_ops:
            if kind == "field":
                ops.append(["field", payload])
            else:
                ops.append(["run", {
                    "start": payload["start"],
                    "format": payload["format"],
                    "names": list(payload["names"]),
                    "code_b64": base64.b64encode(marshal.dumps(
                        payload["_code"])).decode("ascii"),
                }])
        return {"version": PLAN_VERSION, "fuse": self.fuse,
                "bulk": self.bulk,
                "record_length": self.field_list.record_length,
                "ops": ops}

    @property
    def plan_source(self) -> str:
        """Generated source of every top-level fused run (debugging
        aid, persisted alongside the plan)."""
        return "\n\n".join(self._plan_sources)

    def _ops_from_plan(self, plan, enums):
        """Rebuild the op list from a persisted plan snapshot.

        The entry already passed :class:`~repro.pbio.plancache.
        PlanCache` verification (integrity + metadata digest), but
        this layer still re-derives every layout fact from the live
        field list: a stored run must name real fusible fields whose
        offsets regenerate exactly the struct format persisted, and
        the op sequence must cover the format's fields in declaration
        order.  Only then is the marshalled pack call exec'd.  Any
        inconsistency raises :class:`PlanCacheError` and the caller
        recompiles from metadata.
        """
        if not isinstance(plan, dict):
            raise PlanCacheError("plan is not a mapping")
        if plan.get("version") != PLAN_VERSION:
            raise PlanCacheError(
                f"plan version {plan.get('version')!r} != "
                f"{PLAN_VERSION}")
        if plan.get("fuse") != self.fuse or plan.get("bulk") != self.bulk:
            raise PlanCacheError("plan compiled under different options")
        if plan.get("record_length") != self.field_list.record_length:
            raise PlanCacheError("plan record length mismatch")
        entries = plan.get("ops")
        if not isinstance(entries, list):
            raise PlanCacheError("plan ops missing")
        ops: list = []
        covered: list[str] = []
        for entry in entries:
            try:
                kind, payload = entry
            except (TypeError, ValueError):
                raise PlanCacheError(
                    f"malformed plan op {entry!r}") from None
            if kind == "field":
                field = self._plan_field(payload)
                ops.append(self._compile_field(
                    self.field_list, field, field.field_type, enums))
                covered.append(field.name)
            elif kind == "run":
                op, names = self._load_fused_run(payload, enums)
                ops.append(op)
                covered.extend(names)
                self.fused_runs += 1
                self.fused_fields += len(names)
            else:
                raise PlanCacheError(f"unknown plan op kind {kind!r}")
        if covered != list(self.field_list.names()):
            raise PlanCacheError(
                "plan does not cover the format's fields in order")
        return ops

    def _plan_field(self, name) -> IOField:
        try:
            return self.field_list[name]
        except (LayoutError, TypeError):
            raise PlanCacheError(
                f"plan references unknown field {name!r}") from None

    def _load_fused_run(self, spec, enums):
        try:
            start = spec["start"]
            fmt_str = spec["format"]
            names = list(spec["names"])
            code = marshal.loads(base64.b64decode(spec["code_b64"]))
        except (KeyError, TypeError, ValueError, EOFError) as exc:
            raise PlanCacheError(
                f"fused run spec unusable: {exc}") from None
        if not isinstance(code, types.CodeType):
            raise PlanCacheError("fused run payload is not code")
        if not names or not isinstance(start, int):
            raise PlanCacheError("fused run layout unusable")
        # re-derive the run layout from live metadata; the persisted
        # struct format must match exactly (offsets, pad holes, byte
        # order) before the stored code is trusted to address it
        parts: list[str] = []
        singles: list[tuple] = []
        converts: list = []
        pos = start
        for n in names:
            field = self._plan_field(n)
            ftype = field.field_type
            if not _fusible(field, ftype):
                raise PlanCacheError(f"field {n!r} is not fusible")
            if field.offset < pos:
                raise PlanCacheError(
                    f"fused run fields out of order at {n!r}")
            if field.offset > pos:
                parts.append(f"{field.offset - pos}x")
            code_ch = struct_code(ftype.kind, field.size)
            parts.append(code_ch)
            convert = _scalar_converter(ftype.kind, field,
                                        enums.get(n))
            converts.append(convert)
            singles.append((n, convert,
                            struct.Struct(self._bo + code_ch)))
            pos = field.offset + field.size
        expected = self._bo + "".join(parts)
        if fmt_str != expected:
            raise PlanCacheError(
                f"stored pack format {fmt_str!r} != derived "
                f"{expected!r}")
        if start < 0 or pos > self.field_list.record_length:
            raise PlanCacheError("fused run outside the fixed section")
        packer = struct.Struct(expected)
        env = {"_p": packer, "_diag": _diagnose_fused_failure,
               "_singles": tuple(singles), "EncodeError": EncodeError,
               "_struct_error": struct.error}
        for i, convert in enumerate(converts):
            env[f"_c{i}"] = convert
        try:
            exec(code, env)
            fn = env["_fused"]
        except Exception as exc:
            raise PlanCacheError(
                f"fused run code rejected: {exc}") from None
        if not callable(fn):
            raise PlanCacheError("fused run did not define _fused")
        return fn, names


def _fusible(field: IOField, ftype: FieldType) -> bool:
    """True for fields a fused scalar run may absorb: fixed-size
    atomic scalars living inline in the fixed section."""
    return (not ftype.dims and not ftype.is_string
            and (ftype.kind, field.size) in STRUCT_CODES)


def _diagnose_fused_failure(record: dict, singles, exc) -> None:
    """A fused pack failed; re-run its fields one by one so the error
    names the specific offender, not just the run."""
    for name, convert, packer in singles:
        if name not in record:
            raise EncodeError(
                f"field {name!r}: missing from record") from None
        try:
            packer.pack(convert(record[name]))
        except EncodeError:
            raise
        except (struct.error, TypeError, ValueError) as err:
            raise EncodeError(
                f"field {name!r}: cannot encode "
                f"{record[name]!r}: {err}") from None
    names = [name for name, _, _ in singles]
    raise EncodeError(
        f"cannot encode fused run {names}: {exc}") from None


def _length_links(field_list: FieldList) -> dict[str, tuple[str, int]]:
    """Map array field -> (sizing field, trailing-dim element count).

    The sizing field counts *rows*: for ``float[n][3]`` a record with
    six elements has ``n == 2``.
    """
    links: dict[str, tuple[str, int]] = {}
    for field in field_list:
        ftype = field.field_type
        dim = ftype.dynamic_dim
        if dim is not None and dim.length_field is not None:
            links[field.name] = (dim.length_field,
                                 ftype.static_element_count)
    return links


def _append_var(body: bytearray, align: int) -> int:
    """Pad *body* to *align*; return the aligned end offset."""
    where = _round_up(len(body), align)
    if where != len(body):
        body.extend(b"\x00" * (where - len(body)))
    return where


def _as_items(name: str, value) -> list:
    if isinstance(value, np.ndarray):
        return value  # bulk path handles ndarray directly
    if isinstance(value, (str, bytes)) or not hasattr(value, "__len__"):
        raise EncodeError(
            f"field {name!r}: sequence expected, got "
            f"{type(value).__name__}")
    return value if isinstance(value, list) else list(value)


def _bulk_bytes(name: str, items, dtype: np.dtype, convert) -> bytes:
    try:
        if isinstance(items, np.ndarray):
            return np.ascontiguousarray(items, dtype=dtype).tobytes()
        return np.asarray(items, dtype=dtype).tobytes()
    except (ValueError, TypeError, OverflowError):
        pass
    # Slow path: per-element conversion (enums as strings, bools, ...).
    try:
        converted = [convert(item) for item in items]
        return np.asarray(converted, dtype=dtype).tobytes()
    except (ValueError, TypeError, OverflowError) as exc:
        raise EncodeError(
            f"field {name!r}: cannot encode array: {exc}") from None


def _char_array_bytes(name: str, value, size: int) -> bytes:
    if isinstance(value, str):
        data = value.encode("utf-8")
    elif isinstance(value, (bytes, bytearray)):
        data = bytes(value)
    else:
        raise EncodeError(
            f"field {name!r}: char array expects str/bytes, got "
            f"{type(value).__name__}")
    if len(data) > size:
        raise EncodeError(
            f"field {name!r}: {len(data)} bytes exceed char[{size}]")
    return data + b"\x00" * (size - len(data))


def _scalar_converter(kind: str, field: IOField,
                      enum_values: tuple[str, ...] | None):
    name = field.name
    if kind == "enumeration":
        if enum_values is None:
            # Subformat enums are validated at format construction; a
            # missing table here means integer indices only.
            return lambda v: int(v)
        index = {v: i for i, v in enumerate(enum_values)}
        limit = len(enum_values)

        def conv_enum(value):
            if isinstance(value, str):
                try:
                    return index[value]
                except KeyError:
                    raise EncodeError(
                        f"field {name!r}: {value!r} not in enumeration "
                        f"{list(enum_values)}") from None
            i = int(value)
            if not 0 <= i < limit:
                raise EncodeError(
                    f"field {name!r}: enum index {i} out of range")
            return i
        return conv_enum
    if kind == "boolean":
        return lambda v: 1 if v else 0
    if kind == "char":
        def conv_char(value):
            if isinstance(value, str):
                if len(value) != 1:
                    raise EncodeError(
                        f"field {name!r}: char expects one character")
                cp = ord(value)
                if cp > 0xFF:
                    raise EncodeError(
                        f"field {name!r}: char {value!r} outside "
                        "single-byte range")
                return cp
            return int(value)
        return conv_char
    if kind == "float":
        return float
    # integer / unsigned

    def conv_int(value):
        if type(value) is int:   # exact ints dominate the hot path
            return value
        if isinstance(value, bool) or not isinstance(value, (int,
                                                             np.integer)):
            raise EncodeError(
                f"field {name!r}: integer expected, got "
                f"{type(value).__name__}")
        return int(value)
    return conv_int


# ---------------------------------------------------------------------------
# process-wide codec plan cache
# ---------------------------------------------------------------------------

_MAX_CACHED_PLANS = 256
_ENCODER_CACHE = PlanLRU(_MAX_CACHED_PLANS, "encoder")
_ENCODER_LOCK = threading.Lock()
_ENCODER_FLIGHTS: dict[tuple[FormatID, bool, bool], object] = {}


def encoder_for_format(fmt: IOFormat, *, fuse: bool = True,
                       bulk: bool = True) -> RecordEncoder:
    """The process-wide compiled encoder for *fmt*.

    Keyed by the format's digest-derived :class:`FormatID` (identical
    metadata registered anywhere shares one ID, hence one plan), so
    every context, wire codec and one-shot helper reuses a single
    compiled plan per format.

    Two cache tiers sit under this call: an in-process LRU (capacity
    :data:`_MAX_CACHED_PLANS`, recency-refreshed on every hit) and —
    when ``REPRO_PLAN_CACHE_DIR`` or
    :func:`~repro.pbio.plancache.configure_plan_cache` names one — a
    persistent on-disk tier shared across processes.  Concurrent
    misses on one key compile exactly once (single-flight), so the
    ``repro_codec_plans_total`` miss counter counts actual compiles:
    single-flight losers count as hits, and a persistent-tier load
    counts under ``repro_plan_cache_total{tier="disk"}`` instead,
    filing its time as a ``plan_cache_load`` span rather than
    registration-phase ``compile_plan`` work.
    """
    from repro.obs import runtime as _obs
    key = (fmt.format_id, fuse, bulk)
    encoder = _ENCODER_CACHE.get(key)
    if encoder is not None:
        if _obs.enabled:
            from repro.obs.metrics import CODEC_PLANS
            CODEC_PLANS.labels("encoder", "hit").inc()
        return encoder
    encoder, built = single_flight(
        _ENCODER_LOCK, _ENCODER_FLIGHTS, _ENCODER_CACHE, key,
        lambda: _build_encoder(fmt, fuse, bulk))
    if not built and _obs.enabled:
        from repro.obs.metrics import CODEC_PLANS
        CODEC_PLANS.labels("encoder", "hit").inc()
    return encoder


def _build_encoder(fmt: IOFormat, fuse: bool,
                   bulk: bool) -> RecordEncoder:
    """Leader-side build: persistent tier first, else compile (the
    only path that counts a ``CODEC_PLANS`` miss and opens a
    ``compile_plan`` span), then write the fresh plan back to disk."""
    from repro.obs import runtime as _obs
    options = {"fuse": fuse, "bulk": bulk}
    store = active_plan_cache()
    if store is not None:
        snapshot = store.load("encoder", fmt, options)
        if snapshot is not None:
            try:
                if _obs.enabled:
                    from repro.obs.spans import span
                    with span("plan_cache_load", kind="encoder",
                              format=fmt.name):
                        return RecordEncoder(fmt, fuse=fuse,
                                             bulk=bulk, plan=snapshot)
                return RecordEncoder(fmt, fuse=fuse, bulk=bulk,
                                     plan=snapshot)
            except PlanCacheError:
                # entry-level checks passed but the plan itself failed
                # layout verification against the live field list
                _plan_cache_count("invalid")
    if _obs.enabled:
        from repro.obs.metrics import CODEC_PLANS
        from repro.obs.spans import span
        CODEC_PLANS.labels("encoder", "miss").inc()
        with span("compile_plan", kind="encoder", format=fmt.name):
            encoder = RecordEncoder(fmt, fuse=fuse, bulk=bulk)
    else:
        encoder = RecordEncoder(fmt, fuse=fuse, bulk=bulk)
    if store is not None:
        plan = encoder.plan_snapshot()
        if plan is not None:
            store.store("encoder", fmt, options, plan,
                        encoder.plan_source)
    return encoder


def clear_encoder_cache(*, persistent: bool = True) -> None:
    """Drop all cached encoder plans (tests and format churn).

    Also purges the encoder side of the active persistent tier, so a
    cleared format cannot be resurrected from disk with a stale plan;
    pass ``persistent=False`` to keep the disk tier (e.g. to measure
    a warm start)."""
    _ENCODER_CACHE.clear()
    if persistent:
        store = active_plan_cache()
        if store is not None:
            store.purge("encoder")


def encode_record(fmt: IOFormat, record: dict) -> EncodedRecord:
    """One-shot convenience: encode *record* via the process-wide
    codec plan cache."""
    return encoder_for_format(fmt).encode(record)
