"""PBIO data files.

PBIO "provides facilities for encoding application data structures, so
that they may be transmitted in binary form over computer networks
**or written to data files** in a heterogeneous computing environment"
(section 3.2).  This module is the file half: a self-contained
container format that interleaves format metadata with records, so a
file written on any architecture is readable anywhere with no external
format server.

File layout::

    "PBIOFILE" | u16 version | u16 flags       -- 12-byte file header
    ( u8 chunk_type | u32 length | payload )*  -- chunks

    chunk 1 = format metadata (canonical serialization; registered
              by readers on sight, before any record that uses it)
    chunk 2 = a wire record (standard 16-byte record header + body)

Writers emit each format's metadata chunk once, immediately before the
first record of that format — the file-domain version of the
registration-then-amortize story the paper tells for connections.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import BinaryIO, Iterator

from repro.errors import DecodeError
from repro.pbio.context import DecodedRecord, IOContext
from repro.pbio.encode import parse_header
from repro.pbio.format import IOFormat
from repro.pbio.format_server import FormatServer

FILE_MAGIC = b"PBIOFILE"
FILE_VERSION = 1
_FILE_HEADER = struct.Struct(">8sHH")
_CHUNK_HEADER = struct.Struct(">BI")

CHUNK_METADATA = 1
CHUNK_RECORD = 2

MAX_CHUNK = 1 << 30


class IOFileWriter:
    """Appends records (and their metadata, once each) to a file."""

    def __init__(self, target: str | Path | BinaryIO,
                 context: IOContext | None = None) -> None:
        self.context = context if context is not None else IOContext(
            format_server=FormatServer())
        if hasattr(target, "write"):
            self._stream: BinaryIO = target
            self._owns_stream = False
        else:
            self._stream = open(target, "wb")
            self._owns_stream = True
        self._written_formats: set = set()
        self.records_written = 0
        self._stream.write(_FILE_HEADER.pack(FILE_MAGIC, FILE_VERSION,
                                             0))

    # -- writing ------------------------------------------------------------

    def write(self, format_name: str | IOFormat, record: dict) -> None:
        """Append one record, emitting its metadata chunk if new."""
        fmt = (format_name if isinstance(format_name, IOFormat)
               else self.context.lookup_format(format_name))
        if fmt.format_id not in self._written_formats:
            self._chunk(CHUNK_METADATA, fmt.canonical_bytes())
            self._written_formats.add(fmt.format_id)
        wire = self.context.encode(fmt, record)
        self._chunk(CHUNK_RECORD, wire)
        self.records_written += 1

    def _chunk(self, chunk_type: int, payload: bytes) -> None:
        self._stream.write(_CHUNK_HEADER.pack(chunk_type,
                                              len(payload)))
        self._stream.write(payload)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "IOFileWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class IOFileReader:
    """Streams records out of a PBIO data file.

    Self-contained: builds its own format server from the file's
    metadata chunks, so no prior registration is needed; records decode
    under the *writer's* architecture ("receiver makes right" applies
    to files exactly as to connections).

    ``arrays`` selects the numeric-array representation
    (``"list"``/``"numpy"``/``"view"``); each record decodes from its
    own chunk buffer, so zero-copy ``"view"`` arrays stay valid for
    the record's lifetime.
    """

    def __init__(self, source: str | Path | BinaryIO,
                 context: IOContext | None = None, *,
                 arrays: str = "list") -> None:
        self.context = context if context is not None else IOContext(
            format_server=FormatServer())
        self.arrays = arrays
        if hasattr(source, "read"):
            self._stream: BinaryIO = source
            self._owns_stream = False
        else:
            self._stream = open(source, "rb")
            self._owns_stream = True
        header = self._stream.read(_FILE_HEADER.size)
        if len(header) < _FILE_HEADER.size:
            raise DecodeError("not a PBIO data file (truncated header)")
        magic, version, _flags = _FILE_HEADER.unpack(header)
        if magic != FILE_MAGIC:
            raise DecodeError(f"not a PBIO data file (magic {magic!r})")
        if version != FILE_VERSION:
            raise DecodeError(f"unsupported PBIO file version {version}")
        self.records_read = 0
        self.formats_seen: dict = {}

    # -- reading ------------------------------------------------------------

    def __iter__(self) -> Iterator[DecodedRecord]:
        return self

    def __next__(self) -> DecodedRecord:
        record = self.read()
        if record is None:
            raise StopIteration
        return record

    def read(self) -> DecodedRecord | None:
        """The next record, or None at end of file."""
        while True:
            chunk = self._next_chunk()
            if chunk is None:
                return None
            chunk_type, payload = chunk
            if chunk_type == CHUNK_METADATA:
                fid = self.context.format_server.import_bytes(payload)
                fmt = self.context.format_server.lookup(fid)
                self.formats_seen[fmt.name] = fmt
                continue
            if chunk_type == CHUNK_RECORD:
                # validates magic/version and that the declared body
                # is actually present, before decode
                parse_header(payload, require_body=True)
                decoded = self.context.decode(bytes(payload),
                                              arrays=self.arrays)
                self.records_read += 1
                return decoded
            raise DecodeError(f"unknown chunk type {chunk_type}")

    def read_all(self, format_name: str | None = None) \
            -> list[DecodedRecord]:
        """Every remaining record, optionally filtered by format."""
        return [r for r in self
                if format_name is None or r.format_name == format_name]

    def _next_chunk(self) -> tuple[int, bytes] | None:
        header = self._stream.read(_CHUNK_HEADER.size)
        if not header:
            return None
        if len(header) < _CHUNK_HEADER.size:
            raise DecodeError("truncated chunk header")
        chunk_type, length = _CHUNK_HEADER.unpack(header)
        if length > MAX_CHUNK:
            raise DecodeError(f"implausible chunk length {length}")
        payload = self._stream.read(length)
        if len(payload) < length:
            raise DecodeError(
                f"truncated chunk: expected {length} bytes, "
                f"got {len(payload)}")
        return chunk_type, payload

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "IOFileReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def scan_file(source: str | Path) -> dict:
    """Summarize a PBIO data file without decoding records:
    per-format record counts and total bytes."""
    counts: dict[str, int] = {}
    names: dict = {}
    total = 0
    with IOFileReader(source) as reader:
        # use the chunk stream directly to avoid full decode
        while True:
            chunk = reader._next_chunk()
            if chunk is None:
                break
            chunk_type, payload = chunk
            total += len(payload)
            if chunk_type == CHUNK_METADATA:
                fid = reader.context.format_server.import_bytes(payload)
                names[fid] = reader.context.format_server.lookup(
                    fid).name
            elif chunk_type == CHUNK_RECORD:
                fid, _ = parse_header(payload, require_body=True)
                name = names.get(fid, str(fid))
                counts[name] = counts.get(name, 0) + 1
    return {"records": counts, "payload_bytes": total}
