"""PBIO field-type grammar.

PBIO field lists describe each field with a *type string* (the paper's
Fig. 2: ``"string"``, ``"integer"``, ...).  The full grammar, matching
the real PBIO library's, is::

    type      := base dims?
    base      := "integer" | "unsigned integer" | "unsigned"
               | "float" | "double" | "char" | "string" | "boolean"
               | "enumeration" | <subformat name>
    dims      := "[" dim "]" ("[" dim "]")*
    dim       := <positive integer>      -- fixed (inline) array
               | <field name>            -- dynamic array sized by field
               | "*"                     -- dynamic, self-sized

Fixed dimensions are inline in the structure; any dynamic dimension
makes the field pointer-valued (a ``char*``-like slot in the struct
pointing at out-of-line data).  Multiple dimensions are flattened
row-major; at most one dynamic dimension is allowed and it must be the
first, mirroring C's rules for ``float (*data)[N]``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import LayoutError

#: Canonical atomic base names -> coarse kind.
ATOMIC_KINDS: dict[str, str] = {
    "integer": "integer",
    "unsigned integer": "unsigned",
    "unsigned": "unsigned",
    "float": "float",
    "double": "float",
    "char": "char",
    "string": "string",
    "boolean": "boolean",
    "enumeration": "enumeration",
}

#: Aliases normalized at parse time.
_BASE_ALIASES = {
    "unsigned": "unsigned integer",
    "int": "integer",
}

_DIM_RE = re.compile(r"\[([^\[\]]*)\]")
_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_ ]*$")


@dataclass(frozen=True)
class Dimension:
    """One array dimension: fixed size, sizing-field name, or ``*``."""

    fixed: int | None = None
    length_field: str | None = None

    @property
    def is_static(self) -> bool:
        return self.fixed is not None

    def __str__(self) -> str:
        if self.fixed is not None:
            return str(self.fixed)
        return self.length_field if self.length_field else "*"


@dataclass(frozen=True)
class FieldType:
    """Parsed form of a PBIO type string."""

    base: str  # canonical atomic name or subformat name
    dims: tuple[Dimension, ...] = ()

    @property
    def kind(self) -> str:
        """Coarse class: atomic kind, or ``"subformat"``."""
        return ATOMIC_KINDS.get(self.base, "subformat")

    @property
    def is_atomic(self) -> bool:
        return self.base in ATOMIC_KINDS

    @property
    def is_string(self) -> bool:
        return self.base == "string" and not self.dims

    @property
    def static_dims(self) -> tuple[int, ...]:
        return tuple(d.fixed for d in self.dims if d.fixed is not None)

    @property
    def dynamic_dim(self) -> Dimension | None:
        for d in self.dims:
            if not d.is_static:
                return d
        return None

    @property
    def is_inline(self) -> bool:
        """True if the field's data lives entirely inside the struct
        (scalars and fixed arrays); False for pointer-valued fields
        (strings and dynamically sized arrays)."""
        if self.is_string:
            return False
        return self.dynamic_dim is None

    @property
    def static_element_count(self) -> int:
        """Product of the fixed dimensions (1 for scalars)."""
        count = 1
        for d in self.static_dims:
            count *= d
        return count

    def __str__(self) -> str:
        return self.base + "".join(f"[{d}]" for d in self.dims)


def parse_field_type(type_string: str) -> FieldType:
    """Parse a PBIO type string into a :class:`FieldType`.

    Raises :class:`LayoutError` on grammar violations (bad base name,
    malformed dimensions, dynamic dimension not first).
    """
    text = type_string.strip()
    bracket = text.find("[")
    base_text = text if bracket == -1 else text[:bracket]
    dims_text = "" if bracket == -1 else text[bracket:]

    base = " ".join(base_text.split())  # collapse internal whitespace
    base = _BASE_ALIASES.get(base, base)
    if not base or not _NAME_RE.match(base):
        raise LayoutError(f"invalid field type base {base_text!r}")

    consumed = 0
    dims: list[Dimension] = []
    for match in _DIM_RE.finditer(dims_text):
        if match.start() != consumed:
            raise LayoutError(
                f"malformed dimensions in type {type_string!r}")
        consumed = match.end()
        dims.append(_parse_dim(match.group(1), type_string))
    if consumed != len(dims_text):
        raise LayoutError(f"malformed dimensions in type {type_string!r}")

    dynamic_positions = [i for i, d in enumerate(dims) if not d.is_static]
    if len(dynamic_positions) > 1:
        raise LayoutError(
            f"type {type_string!r}: at most one dynamic dimension "
            "is supported")
    if dynamic_positions and dynamic_positions[0] != 0:
        raise LayoutError(
            f"type {type_string!r}: a dynamic dimension must come first")

    if base == "string" and dims:
        raise LayoutError(
            f"type {type_string!r}: arrays of strings are expressed as "
            "string fields of a subformat")
    return FieldType(base=base, dims=tuple(dims))


def _parse_dim(body: str, context: str) -> Dimension:
    body = body.strip()
    if not body or body == "*":
        return Dimension()
    if body.isdigit():
        size = int(body)
        if size < 1:
            raise LayoutError(
                f"type {context!r}: dimension must be positive")
        return Dimension(fixed=size)
    if not _NAME_RE.match(body):
        raise LayoutError(
            f"type {context!r}: invalid dimension {body!r}")
    return Dimension(length_field=body)
