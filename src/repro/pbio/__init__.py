"""PBIO: Portable Binary I/O — the binary communication mechanism.

A from-scratch reimplementation of the PBIO library the paper builds
on (Eisenhauer & Daley, "Fast heterogeneous binary data interchange",
HCW 2000).  PBIO's model:

* A message format is described by an **IOField list** — for each field
  its name, type string, element size, and byte offset within the
  sender's native C structure (the paper's Fig. 2 middle panel).
* Formats are **registered** with an :class:`IOContext`, which obtains
  a compact **format ID** from a :class:`FormatServer`; records on the
  wire carry only the ID, and receivers fetch metadata on demand.
* Records are transmitted in the **sender's native layout** ("receiver
  makes right"): encoding is a near-copy of the in-memory structure,
  with pointer-valued fields (strings, dynamic arrays) swizzled to
  offsets into a trailing variable-length section.
* Receivers build a **conversion plan** from the wire format to their
  own registered format: byte order, sizes, and field offsets are
  reconciled once per (wire format, native format) pair and reused for
  every record.
* Formats support **restricted evolution**: fields added by newer
  senders are ignored by older receivers; fields missing from older
  senders decode to defaults.

Heterogeneity is simulated through explicit :class:`Architecture`
descriptions (endianness, type sizes, alignment), so a single host can
exercise e.g. SPARC-to-x86 exchanges exactly as the paper's testbed did.
"""

from repro.pbio.machine import (
    Architecture,
    NATIVE,
    SPARC_32,
    SPARC_V9,
    X86_32,
    X86_64,
    architecture_by_name,
)
from repro.pbio.types import FieldType, parse_field_type
from repro.pbio.fields import IOField, FieldList
from repro.pbio.layout import StructLayout, compute_layout, field_list_for
from repro.pbio.format import IOFormat, FormatID
from repro.pbio.format_server import FormatServer, global_format_server
from repro.pbio.context import IOContext
from repro.pbio.encode import EncodedRecord, encode_record
from repro.pbio.decode import decode_record
from repro.pbio.evolution import can_evolve, evolution_report
from repro.pbio.iofile import IOFileReader, IOFileWriter

__all__ = [
    "Architecture",
    "EncodedRecord",
    "FieldList",
    "FieldType",
    "FormatID",
    "FormatServer",
    "IOContext",
    "IOField",
    "IOFileReader",
    "IOFileWriter",
    "IOFormat",
    "NATIVE",
    "SPARC_32",
    "SPARC_V9",
    "StructLayout",
    "X86_32",
    "X86_64",
    "architecture_by_name",
    "can_evolve",
    "compute_layout",
    "decode_record",
    "encode_record",
    "evolution_report",
    "field_list_for",
    "global_format_server",
    "parse_field_type",
]
