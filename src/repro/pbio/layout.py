"""C structure layout computation.

Given field declarations ``(name, type_string[, element_size])`` and an
:class:`~repro.pbio.machine.Architecture`, compute the offsets, padding
and total size the platform's C compiler would produce, following the
System V-style rules all modeled ABIs share:

* each member is aligned to ``min(natural alignment, max_alignment)``;
* struct alignment is the maximum member alignment;
* total size is rounded up to the struct alignment (trailing padding).

This is the piece that lets XMIT go from architecture-independent XML
metadata to "structure offsets and data type sizes for BCMs requiring
them" (section 3.1) without a C compiler on the discovery path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LayoutError
from repro.pbio.fields import FieldList, IOField
from repro.pbio.machine import Architecture, NATIVE
from repro.pbio.types import FieldType, parse_field_type

FieldSpec = "tuple[str, str] | tuple[str, str, int]"


@dataclass(frozen=True)
class StructLayout:
    """The result of layout: a field list plus struct alignment."""

    field_list: FieldList
    alignment: int

    @property
    def record_length(self) -> int:
        return self.field_list.record_length

    @property
    def architecture(self) -> Architecture:
        return self.field_list.architecture


def _round_up(value: int, align: int) -> int:
    return (value + align - 1) // align * align


def element_size_for(arch: Architecture, ftype: FieldType,
                     explicit: int | None,
                     subformats: dict[str, FieldList]) -> int:
    """Per-element size of *ftype* on *arch* (explicit size wins for
    integers/floats, as C code may use any width)."""
    kind = ftype.kind
    if kind == "subformat":
        try:
            return subformats[ftype.base].record_length
        except KeyError:
            raise LayoutError(
                f"unknown subformat {ftype.base!r} during layout"
            ) from None
    if kind == "string":
        return arch.sizeof("pointer")
    if kind in ("char", "boolean"):
        return 1
    if explicit is not None:
        return explicit
    if kind == "float":
        return arch.sizeof("double" if ftype.base == "double" else "float")
    # integer / unsigned / enumeration default to C int
    return arch.sizeof("int")


def element_alignment_for(arch: Architecture, ftype: FieldType,
                          element_size: int,
                          subformats: dict[str, FieldList],
                          sub_alignments: dict[str, int]) -> int:
    if ftype.kind == "subformat":
        return sub_alignments.get(ftype.base,
                                  min(arch.max_alignment, 8))
    return min(element_size, arch.max_alignment)


def compute_layout(specs, *, architecture: Architecture = NATIVE,
                   subformats: dict[str, FieldList] | None = None,
                   sub_alignments: dict[str, int] | None = None) \
        -> StructLayout:
    """Lay out *specs* (an iterable of ``(name, type)`` or
    ``(name, type, element_size)``) on *architecture*.

    ``subformats`` supplies already-laid-out nested structs (their
    FieldLists must target the same architecture); ``sub_alignments``
    their alignments (defaulting to pointer alignment when omitted).
    """
    arch = architecture
    subformats = dict(subformats or {})
    sub_alignments = dict(sub_alignments or {})
    for name, sub in subformats.items():
        if sub.architecture is not arch:
            raise LayoutError(
                f"subformat {name!r} laid out for "
                f"{sub.architecture.name}, not {arch.name}")

    offset = 0
    struct_align = 1
    fields: list[IOField] = []
    for spec in specs:
        if len(spec) == 2:
            name, type_string = spec
            explicit = None
        elif len(spec) == 3:
            name, type_string, explicit = spec
        else:
            raise LayoutError(f"bad field spec {spec!r}")
        ftype = parse_field_type(type_string)

        elem_size = element_size_for(arch, ftype, explicit, subformats)
        if ftype.is_inline:
            align = element_alignment_for(arch, ftype, elem_size,
                                          subformats, sub_alignments)
            extent = elem_size * ftype.static_element_count
        else:
            # pointer-valued: the struct slot is a pointer.
            align = arch.alignof("pointer")
            extent = arch.sizeof("pointer")
        offset = _round_up(offset, align)
        fields.append(IOField(name=name, type=str(ftype), size=elem_size,
                              offset=offset))
        offset += extent
        struct_align = max(struct_align, align)

    record_length = _round_up(max(offset, 1), struct_align)
    field_list = FieldList(fields, architecture=arch,
                           record_length=record_length,
                           subformats=subformats)
    return StructLayout(field_list=field_list, alignment=struct_align)


def field_list_for(specs, *, architecture: Architecture = NATIVE,
                   subformats: dict[str, FieldList] | None = None) \
        -> FieldList:
    """Convenience: :func:`compute_layout` returning just the field list."""
    return compute_layout(specs, architecture=architecture,
                          subformats=subformats).field_list
