"""Record unmarshaling: PBIO wire bytes -> record dicts.

This is the "receiver makes right" half: the receiver interprets a
record laid out by the *sender's* architecture (sizes, offsets, byte
order taken from the wire format's metadata) and produces native Python
values, swapping bytes only when sender and receiver disagree — which
NumPy's explicit-endianness dtypes give us for free on bulk data.

A :class:`RecordDecoder` is compiled once per wire format and cached
process-wide per format digest (:func:`decoder_for_format`),
symmetrical with the encoder.  Like the encoder, the compiled plan
fuses contiguous fixed-size scalar fields into a single precompiled
:class:`struct.Struct` — one ``unpack_from`` per run instead of one
per field (``fuse=False`` keeps the per-field baseline for
benchmarking and byte-equality tests).
"""

from __future__ import annotations

import struct
import threading

import numpy as np

from repro.errors import DecodeError, LayoutError, PlanCacheError
from repro.pbio.encode import (
    _MAX_RUN_GAP, _fusible, numpy_dtype, parse_batch, struct_code,
)
from repro.pbio.fields import FieldList, IOField
from repro.pbio.format import FormatID, IOFormat
from repro.pbio.plancache import (
    PlanLRU, active_plan_cache, single_flight,
    _count as _plan_cache_count,
)
from repro.pbio.types import FieldType

#: version of the persistable plan snapshot produced by
#: :meth:`RecordDecoder.plan_snapshot`; bump on layout changes
PLAN_VERSION = 1


def _round_up(value: int, align: int) -> int:
    return (value + align - 1) // align * align


class RecordDecoder:
    """Compiled decoder for one wire :class:`IOFormat`.

    ``arrays`` selects the representation of numeric arrays:
    ``"list"`` (default, plain Python), ``"numpy"`` (zero-copy views
    into the record body where alignment permits), or ``"view"``
    (zero-copy like ``"numpy"``, but the receive buffer is wrapped
    read-only first, so no decoded array can ever write through to the
    wire bytes).  Zero-copy arrays alias the receive buffer: they are
    valid only while that buffer object lives and is not mutated or
    reused — pass records through :func:`materialize_record` before
    repooling the buffer (see ``docs/MARSHALING.md``).

    ``validate`` (default on) treats the wire as untrusted: every
    wire-derived pointer must land inside the record's variable region
    ``[record_length, len(body)]`` — never aliasing the fixed section —
    and every element count is clamped against the remaining body bytes
    *before* any list or array is allocated.  Violations raise
    :class:`~repro.errors.DecodeError` naming the field.
    ``validate=False`` keeps the trusting pre-hardening closures, for
    the benchmark gate (``benchmarks/check_hardening_gate.py``) and
    byte-equality A/B runs only — never for data off a socket.
    """

    def __init__(self, fmt: IOFormat, *, arrays: str = "list",
                 fuse: bool = True, validate: bool = True,
                 plan: dict | None = None) -> None:
        if arrays not in ("list", "numpy", "view"):
            raise DecodeError(f"arrays must be 'list', 'numpy' or "
                              f"'view', got {arrays!r}")
        self.format = fmt
        self.field_list = fmt.field_list
        self.arrays = arrays
        self.fuse = fuse
        self.validate = validate
        self.fused_runs = 0
        self.fused_fields = 0
        self._bo = fmt.architecture.struct_byte_order_char
        self._byte_order = fmt.architecture.byte_order
        ptr_size = fmt.architecture.sizeof("pointer")
        self._ptr = struct.Struct(
            self._bo + ("I" if ptr_size == 4 else "Q"))
        self._count = struct.Struct(self._bo + "I")
        # a persisted *plan* (repro.pbio.plancache) replays the op
        # sequence after layout re-verification; plan-loaded decoders
        # are never re-snapshotted
        if plan is not None:
            self._plan_ops: list | None = None
            self._ops = self._ops_from_plan(plan, fmt.enums)
        else:
            self._plan_ops = []
            self._ops = self._compile(self.field_list, enums=fmt.enums,
                                      _record_plan=self._plan_ops)

    # -- public ---------------------------------------------------------------

    def decode(self, body: bytes | memoryview) -> dict:
        """Decode a record body (no header) into a record dict."""
        if isinstance(body, (bytes, bytearray)):
            body = memoryview(body)
        if self.arrays == "view" and not body.readonly:
            body = body.toreadonly()
        if len(body) < self.field_list.record_length:
            raise DecodeError(
                f"record body {len(body)} bytes, format "
                f"{self.format.name!r} requires at least "
                f"{self.field_list.record_length}")
        record: dict = {}
        for names, op in self._ops:
            try:
                if names is None:       # fused run: op fills the dict
                    op(body, 0, record)
                else:
                    record[names] = op(body, 0)
            except DecodeError:
                raise
            except (struct.error, ValueError, IndexError,
                    OverflowError, UnicodeDecodeError) as exc:
                # corrupt offsets/counters surface as raw unpack or
                # text-decode failures; normalize to the typed error
                # the receiver contract promises
                name = names if names is not None else \
                    getattr(op, "run_names", ("?",))[0]
                raise DecodeError(
                    f"field {name!r}: corrupt record data: "
                    f"{exc}") from None
        return record

    def decode_many(self, bodies) -> list[dict]:
        """Decode an iterable of record bodies (e.g. from
        :func:`~repro.pbio.encode.parse_batch`)."""
        return [self.decode(body) for body in bodies]

    # -- compilation ------------------------------------------------------------

    def _compile(self, field_list: FieldList, enums, *,
                 _record_plan: list | None = None):
        ops: list[tuple] = []
        run: list[tuple[IOField, FieldType]] = []
        for field in field_list:
            ftype = field.field_type
            if self.fuse and _fusible(field, ftype):
                if run and (field.offset - (run[-1][0].offset +
                                            run[-1][0].size)
                            > _MAX_RUN_GAP):
                    self._flush_run(ops, run, enums, _record_plan)
                    run = []
                run.append((field, ftype))
                continue
            self._flush_run(ops, run, enums, _record_plan)
            run = []
            ops.append((field.name,
                        self._compile_field(field_list, field, ftype,
                                            enums)))
            if _record_plan is not None:
                _record_plan.append(("field", field.name))
        self._flush_run(ops, run, enums, _record_plan)
        return ops

    def _flush_run(self, ops: list, run: list, enums,
                   record_plan: list | None = None) -> None:
        if not run:
            return
        if len(run) == 1:
            field, ftype = run[0]
            ops.append((field.name,
                        self._compile_scalar(field, ftype, enums)))
            if record_plan is not None:
                record_plan.append(("field", field.name))
        else:
            op, spec = self._compile_fused_run(run, enums)
            ops.append((None, op))
            self.fused_runs += 1
            self.fused_fields += len(run)
            if record_plan is not None:
                record_plan.append(("run", spec))

    def _compile_fused_run(self, run: list, enums):
        """One unpack_from for a contiguous run of scalar fields.

        Padding holes become ``x`` pad codes; per-field
        post-processing (bool, char, enum table lookups) is applied to
        the unpacked tuple, with numeric identities skipped.
        """
        start = run[0][0].offset
        parts: list[str] = []
        names: list[str] = []
        posts: list = []
        pos = start
        for field, ftype in run:
            if field.offset > pos:
                parts.append(f"{field.offset - pos}x")
            parts.append(struct_code(ftype.kind, field.size))
            names.append(field.name)
            post = _scalar_post(ftype.kind, enums.get(field.name))
            # struct already yields exact ints/floats; skip identity
            posts.append(None if post in (int, float) else post)
            pos = field.offset + field.size
        unpacker = struct.Struct(self._bo + "".join(parts))
        run_names = tuple(names)
        run_posts = tuple(posts) if any(posts) else None

        def op(body, base, out, *, _u=unpacker, _names=run_names,
               _posts=run_posts):
            values = _u.unpack_from(body, base + start)
            if _posts is None:
                i = 0
                for n in _names:
                    out[n] = values[i]
                    i += 1
            else:
                i = 0
                for n, p in zip(_names, _posts):
                    v = values[i]
                    out[n] = p(v) if p is not None else v
                    i += 1
        op.run_names = run_names
        spec = {"start": start, "format": unpacker.format,
                "names": list(run_names)}
        return op, spec

    def _compile_field(self, field_list: FieldList, field: IOField,
                       ftype: FieldType, enums):
        if ftype.kind == "subformat":
            return self._compile_subformat(field_list, field, ftype)
        if ftype.is_string:
            return self._compile_string(field)
        if not ftype.dims:
            return self._compile_scalar(field, ftype, enums)
        if ftype.is_inline:
            return self._compile_fixed_array(field, ftype, enums)
        return self._compile_var_array(field, ftype, enums)

    def _compile_scalar(self, field: IOField, ftype: FieldType, enums):
        offset = field.offset
        kind = ftype.kind
        unpacker = struct.Struct(self._bo + struct_code(kind, field.size))
        post = _scalar_post(kind, enums.get(field.name))
        name = field.name

        def op(body, base, *, _u=unpacker, _p=post):
            try:
                value = _u.unpack_from(body, base + offset)[0]
            except struct.error as exc:
                raise DecodeError(f"field {name!r}: {exc}") from None
            return _p(value)
        return op

    def _compile_string(self, field: IOField):
        offset = field.offset
        ptr = self._ptr
        name = field.name
        var_start = self.field_list.record_length

        if not self.validate:
            def legacy_op(body, base):
                where = ptr.unpack_from(body, base + offset)[0]
                if where == 0:
                    return None
                end = _find_nul(body, where, name)
                return bytes(body[where:end]).decode("utf-8")
            return legacy_op

        def op(body, base):
            where = ptr.unpack_from(body, base + offset)[0]
            if where == 0:
                return None
            if where < var_start or where >= len(body):
                raise DecodeError(
                    f"field {name!r}: string pointer {where} outside "
                    f"variable region [{var_start}, {len(body)})")
            end = _find_nul(body, where, name)
            return bytes(body[where:end]).decode("utf-8")
        return op

    def _compile_fixed_array(self, field: IOField, ftype: FieldType,
                             enums):
        offset = field.offset
        count = ftype.static_element_count
        kind = ftype.kind
        name = field.name
        if kind == "char":
            size = count

            def char_op(body, base):
                raw = bytes(body[base + offset:base + offset + size])
                return raw.split(b"\x00", 1)[0].decode(
                    "utf-8", errors="replace")
            return char_op
        dtype = numpy_dtype(kind, field.size, self._byte_order,
                            field_name=name)
        post = _array_post(kind, enums.get(name), self.arrays)

        def op(body, base):
            arr = np.frombuffer(body, dtype=dtype, count=count,
                                offset=base + offset)
            return post(arr)
        return op

    def _compile_var_array(self, field: IOField, ftype: FieldType,
                           enums):
        offset = field.offset
        kind = ftype.kind
        name = field.name
        ptr = self._ptr
        counter = self._count
        dim = ftype.dynamic_dim
        self_sized = dim.length_field is None
        length_field = dim.length_field
        trailing = ftype.static_element_count
        var_start = self.field_list.record_length
        validate = self.validate

        if kind == "char":
            def char_op(body, base):
                where = ptr.unpack_from(body, base + offset)[0]
                if where == 0:
                    return None
                if validate:
                    _check_pointer(body, where, var_start, name,
                                   4 if self_sized else 0)
                if self_sized:
                    n = counter.unpack_from(body, where)[0]
                    start = where + 4
                else:
                    n = self._sizing_value(body, base, length_field, name)
                    start = where
                _check_bounds(body, start, n, name)
                return bytes(body[start:start + n]).decode(
                    "utf-8", errors="replace")
            return char_op

        dtype = numpy_dtype(kind, field.size, self._byte_order,
                            field_name=name)
        post = _array_post(kind, enums.get(name), self.arrays)
        elem = field.size

        def op(body, base):
            where = ptr.unpack_from(body, base + offset)[0]
            if where == 0:
                return None if self_sized else []
            if validate:
                _check_pointer(body, where, var_start, name,
                               4 if self_sized else 0)
            if self_sized:
                n = counter.unpack_from(body, where)[0] * trailing
                start = _round_up(where + 4, elem)
            else:
                n = self._sizing_value(body, base, length_field,
                                       name) * trailing
                start = where
            # clamp n against the remaining bytes BEFORE frombuffer
            # allocates: a smashed counter must never drive a
            # multi-GB request
            _check_bounds(body, start, n * elem, name)
            arr = np.frombuffer(body, dtype=dtype, count=n, offset=start)
            return post(arr)
        return op

    def _compile_subformat(self, field_list: FieldList, field: IOField,
                           ftype: FieldType):
        offset = field.offset
        name = field.name
        sub_list = field_list.subformat(ftype.base)
        sub_ops = self._compile(sub_list, enums={})
        stride = sub_list.record_length
        ptr = self._ptr
        counter = self._count
        dim = ftype.dynamic_dim

        def decode_sub(body, base):
            out: dict = {}
            for names, op in sub_ops:
                if names is None:
                    op(body, base, out)
                else:
                    out[names] = op(body, base)
            return out

        if not ftype.dims:
            return lambda body, base: decode_sub(body, base + offset)

        count = ftype.static_element_count
        if ftype.is_inline:
            def fixed_op(body, base):
                at = base + offset
                return [decode_sub(body, at + i * stride)
                        for i in range(count)]
            return fixed_op

        self_sized = dim.length_field is None
        length_field = dim.length_field
        var_start = self.field_list.record_length
        validate = self.validate

        def var_op(body, base):
            where = ptr.unpack_from(body, base + offset)[0]
            if where == 0:
                return None if self_sized else []
            if validate:
                _check_pointer(body, where, var_start, name,
                               4 if self_sized else 0)
            if self_sized:
                n = counter.unpack_from(body, where)[0]
                zone = _round_up(where + 4, 8)
            else:
                n = self._sizing_value(body, base, length_field, name)
                zone = where
            # FieldList guarantees stride >= 1, so this also clamps n
            # itself before the list below is built
            _check_bounds(body, zone, n * stride, name)
            return [decode_sub(body, zone + i * stride)
                    for i in range(n)]
        return var_op

    def _sizing_value(self, body, base: int, length_field: str,
                      array_name: str) -> int:
        sizing = self.field_list[length_field]
        stype = sizing.field_type
        unpacker = struct.Struct(
            self._bo + struct_code(stype.kind, sizing.size))
        n = unpacker.unpack_from(body, base + sizing.offset)[0]
        if n < 0:
            raise DecodeError(
                f"field {array_name!r}: negative element count {n}")
        return n

    # -- persistable plans -------------------------------------------------------

    def plan_snapshot(self) -> dict | None:
        """A JSON-safe description of this compiled plan for the
        persistent tier, or None for plan-loaded decoders.

        Decoder fused runs are plain closures (no exec-generated
        source), so the snapshot stores only their layout — start
        offset, struct format, field names; loading re-derives the
        same closures from live metadata after verifying the stored
        layout matches, which skips the run-partitioning pass."""
        if self._plan_ops is None:
            return None
        ops = [["field", payload] if kind == "field"
               else ["run", dict(payload)]
               for kind, payload in self._plan_ops]
        return {"version": PLAN_VERSION, "arrays": self.arrays,
                "fuse": self.fuse, "validate": self.validate,
                "record_length": self.field_list.record_length,
                "ops": ops}

    @property
    def plan_source(self) -> str:
        return ""   # decoder plans carry no generated source

    def _ops_from_plan(self, plan, enums):
        """Rebuild the op list from a persisted plan snapshot,
        re-verifying every stored layout fact against the live field
        list (see the encoder-side twin for the trust model)."""
        if not isinstance(plan, dict):
            raise PlanCacheError("plan is not a mapping")
        if plan.get("version") != PLAN_VERSION:
            raise PlanCacheError(
                f"plan version {plan.get('version')!r} != "
                f"{PLAN_VERSION}")
        if (plan.get("arrays") != self.arrays
                or plan.get("fuse") != self.fuse
                or plan.get("validate") != self.validate):
            raise PlanCacheError("plan compiled under different options")
        if plan.get("record_length") != self.field_list.record_length:
            raise PlanCacheError("plan record length mismatch")
        entries = plan.get("ops")
        if not isinstance(entries, list):
            raise PlanCacheError("plan ops missing")
        ops: list[tuple] = []
        covered: list[str] = []
        for entry in entries:
            try:
                kind, payload = entry
            except (TypeError, ValueError):
                raise PlanCacheError(
                    f"malformed plan op {entry!r}") from None
            if kind == "field":
                field = self._plan_field(payload)
                ops.append((field.name, self._compile_field(
                    self.field_list, field, field.field_type, enums)))
                covered.append(field.name)
            elif kind == "run":
                op, names = self._load_fused_run(payload, enums)
                ops.append((None, op))
                covered.extend(names)
                self.fused_runs += 1
                self.fused_fields += len(names)
            else:
                raise PlanCacheError(f"unknown plan op kind {kind!r}")
        if covered != list(self.field_list.names()):
            raise PlanCacheError(
                "plan does not cover the format's fields in order")
        return ops

    def _plan_field(self, name) -> IOField:
        try:
            return self.field_list[name]
        except (LayoutError, TypeError):
            raise PlanCacheError(
                f"plan references unknown field {name!r}") from None

    def _load_fused_run(self, spec, enums):
        try:
            start = spec["start"]
            fmt_str = spec["format"]
            names = list(spec["names"])
        except (KeyError, TypeError) as exc:
            raise PlanCacheError(
                f"fused run spec unusable: {exc}") from None
        if not names or not isinstance(start, int):
            raise PlanCacheError("fused run layout unusable")
        run: list[tuple[IOField, FieldType]] = []
        pos = start
        for n in names:
            field = self._plan_field(n)
            ftype = field.field_type
            if not _fusible(field, ftype) or field.offset < pos:
                raise PlanCacheError(
                    f"field {n!r} cannot join this fused run")
            pos = field.offset + field.size
            run.append((field, ftype))
        if (run[0][0].offset != start or start < 0
                or pos > self.field_list.record_length):
            raise PlanCacheError("fused run outside the fixed section")
        op, rebuilt = self._compile_fused_run(run, enums)
        if rebuilt != {"start": start, "format": fmt_str,
                       "names": names}:
            raise PlanCacheError(
                f"stored fused run {spec!r} does not match the "
                f"derived layout {rebuilt!r}")
        return op, names


def _check_pointer(body, where: int, var_start: int, name: str,
                   counter_bytes: int) -> None:
    """Reject a wire pointer that lands outside the variable region.

    Valid data pointers live in ``[var_start, len(body)]`` — a pointer
    below ``var_start`` aliases the fixed section (silent misdecode
    territory), one past the end reads garbage.  ``len(body)`` itself
    is legal only for zero-length sized arrays; when *counter_bytes*
    is nonzero the self-sizing count must also fit before the pointer
    is followed.
    """
    limit = len(body)
    if where < var_start or where > limit:
        raise DecodeError(
            f"field {name!r}: data pointer {where} outside variable "
            f"region [{var_start}, {limit}]")
    if counter_bytes and where + counter_bytes > limit:
        raise DecodeError(
            f"field {name!r}: element count at offset {where} "
            f"truncated (record is {limit} bytes)")


def _find_nul(body, start: int, name: str) -> int:
    if start >= len(body):
        raise DecodeError(
            f"field {name!r}: string offset {start} beyond record "
            f"({len(body)} bytes)")
    raw = bytes(body[start:])
    end = raw.find(b"\x00")
    if end == -1:
        raise DecodeError(f"field {name!r}: unterminated string data")
    return start + end


def _check_bounds(body, start: int, nbytes: int, name: str) -> None:
    if start < 0 or start + nbytes > len(body):
        raise DecodeError(
            f"field {name!r}: data [{start}, {start + nbytes}) outside "
            f"record of {len(body)} bytes")


def _scalar_post(kind: str, enum_values: tuple[str, ...] | None):
    if kind == "boolean":
        return bool
    if kind == "char":
        return lambda v: chr(v)
    if kind == "enumeration" and enum_values is not None:
        values = enum_values

        def post_enum(v):
            if v >= len(values):
                raise DecodeError(
                    f"enum index {v} out of range for {list(values)}")
            return values[v]
        return post_enum
    if kind == "float":
        return float
    return int


def _array_post(kind: str, enum_values, arrays: str):
    if kind == "boolean":
        return lambda arr: [bool(x) for x in arr]
    if kind == "enumeration" and enum_values is not None:
        values = enum_values
        return lambda arr: [values[int(x)] for x in arr]
    if arrays in ("numpy", "view"):
        # "view" read-onlyness comes from the buffer itself: decode()
        # wraps the body with toreadonly() before any frombuffer, so
        # every array here is born non-writable.
        return lambda arr: arr
    return lambda arr: arr.tolist()


def materialize_record(record, *, arrays: str = "list"):
    """Copy-out a decoded record so it owns every byte it references.

    Zero-copy arrays (``arrays="numpy"``/``"view"`` decode modes) alias
    the receive buffer; run the record through this before the buffer
    is mutated, reused or returned to a pool.  ``arrays`` selects the
    owned representation: ``"list"`` (plain Python) or ``"numpy"``
    (a private array copy).  Nested subformat records and lists are
    converted recursively; scalars pass through unchanged.
    """
    if isinstance(record, np.ndarray):
        return record.tolist() if arrays == "list" else record.copy()
    if isinstance(record, dict):
        return {k: materialize_record(v, arrays=arrays)
                for k, v in record.items()}
    if isinstance(record, list):
        return [materialize_record(v, arrays=arrays) for v in record]
    return record


# ---------------------------------------------------------------------------
# process-wide codec plan cache
# ---------------------------------------------------------------------------

_MAX_CACHED_PLANS = 256
_DECODER_CACHE = PlanLRU(_MAX_CACHED_PLANS, "decoder")
_DECODER_LOCK = threading.Lock()
_DECODER_FLIGHTS: dict[tuple[FormatID, str, bool, bool], object] = {}


def decoder_for_format(fmt: IOFormat, *, arrays: str = "list",
                       fuse: bool = True,
                       validate: bool = True) -> RecordDecoder:
    """The process-wide compiled decoder for *fmt* (keyed by the
    format's digest-derived ID plus the array representation).

    Mirrors :func:`~repro.pbio.encode.encoder_for_format`: in-process
    LRU over an optional persistent on-disk tier, single-flight
    compilation, and a ``repro_codec_plans_total`` miss counted only
    for actual compiles."""
    from repro.obs import runtime as _obs
    key = (fmt.format_id, arrays, fuse, validate)
    decoder = _DECODER_CACHE.get(key)
    if decoder is not None:
        if _obs.enabled:
            from repro.obs.metrics import CODEC_PLANS
            CODEC_PLANS.labels("decoder", "hit").inc()
        return decoder
    decoder, built = single_flight(
        _DECODER_LOCK, _DECODER_FLIGHTS, _DECODER_CACHE, key,
        lambda: _build_decoder(fmt, arrays, fuse, validate))
    if not built and _obs.enabled:
        from repro.obs.metrics import CODEC_PLANS
        CODEC_PLANS.labels("decoder", "hit").inc()
    return decoder


def _build_decoder(fmt: IOFormat, arrays: str, fuse: bool,
                   validate: bool) -> RecordDecoder:
    from repro.obs import runtime as _obs
    options = {"arrays": arrays, "fuse": fuse, "validate": validate}
    store = active_plan_cache()
    if store is not None:
        snapshot = store.load("decoder", fmt, options)
        if snapshot is not None:
            try:
                if _obs.enabled:
                    from repro.obs.spans import span
                    with span("plan_cache_load", kind="decoder",
                              format=fmt.name):
                        return RecordDecoder(
                            fmt, arrays=arrays, fuse=fuse,
                            validate=validate, plan=snapshot)
                return RecordDecoder(fmt, arrays=arrays, fuse=fuse,
                                     validate=validate, plan=snapshot)
            except PlanCacheError:
                _plan_cache_count("invalid")
    if _obs.enabled:
        from repro.obs.metrics import CODEC_PLANS
        from repro.obs.spans import span
        CODEC_PLANS.labels("decoder", "miss").inc()
        with span("compile_plan", kind="decoder", format=fmt.name):
            decoder = RecordDecoder(fmt, arrays=arrays, fuse=fuse,
                                    validate=validate)
    else:
        decoder = RecordDecoder(fmt, arrays=arrays, fuse=fuse,
                                validate=validate)
    if store is not None:
        plan = decoder.plan_snapshot()
        if plan is not None:
            store.store("decoder", fmt, options, plan)
    return decoder


def clear_decoder_cache(*, persistent: bool = True) -> None:
    """Drop all cached decoder plans (tests and format churn); also
    purges the decoder side of the active persistent tier unless
    ``persistent=False`` (see
    :func:`~repro.pbio.encode.clear_encoder_cache`)."""
    _DECODER_CACHE.clear()
    if persistent:
        store = active_plan_cache()
        if store is not None:
            store.purge("decoder")


def decode_record(fmt: IOFormat, body: bytes) -> dict:
    """One-shot convenience: decode *body* via the process-wide codec
    plan cache."""
    return decoder_for_format(fmt).decode(body)


def decode_batch(fmt: IOFormat, data, *, arrays: str = "list") \
        -> list[dict]:
    """Decode a shared-header record batch produced by
    :func:`~repro.pbio.encode.build_batch` for a known format."""
    fid, _big, bodies = parse_batch(data)
    if fid != fmt.format_id:
        raise DecodeError(
            f"batch format id {fid} does not match format "
            f"{fmt.format_id}")
    return decoder_for_format(fmt, arrays=arrays).decode_many(bodies)
