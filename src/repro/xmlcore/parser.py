"""Recursive-descent XML 1.0 parser producing a DOM.

Covers the subset of XML 1.0 that data-bearing documents (and XML
Schema documents in particular) use, with full well-formedness
checking:

* prolog: XML declaration, comments, PIs, DOCTYPE with an internal
  subset of ``<!ENTITY name "value">`` declarations (other markup
  declarations are skipped);
* element structure with tag matching, attribute uniqueness, quoted
  attribute values, attribute-value normalization;
* character data with ``]]>`` rejection; CDATA sections; comments
  (``--`` rejection); processing instructions (``xml`` target rejected);
* general entity references and character references in content and
  attribute values;
* character legality per the ``Char`` production.

After the structural parse the namespace pass
(:func:`repro.xmlcore.namespaces.resolve_namespaces`) runs unless the
caller opts out.
"""

from __future__ import annotations

import re

from repro.errors import XMLWellFormednessError
from repro.xmlcore import chars
from repro.xmlcore.dom import (
    Attr, CData, Comment, Document, Element, ProcessingInstruction, Text,
)
from repro.xmlcore.entities import EntityTable, decode_char_reference
from repro.xmlcore.namespaces import resolve_namespaces
from repro.xmlcore.reader import Reader

_ENCODING_DECL_RE = re.compile(
    rb'^<\?xml[^>]*?encoding\s*=\s*["\']([A-Za-z][A-Za-z0-9._-]*)["\']')


def parse(text: str, *, namespaces: bool = True) -> Document:
    """Parse an XML document from a string into a :class:`Document`.

    With ``namespaces=True`` (default) the tree is namespace-resolved;
    pass ``False`` to get the raw prefixed tree.
    """
    doc = _Parser(text).parse_document()
    if namespaces:
        resolve_namespaces(doc)
    return doc


def parse_bytes(data: bytes, *, namespaces: bool = True) -> Document:
    """Parse an XML document from bytes, honouring BOMs and the
    ``encoding`` pseudo-attribute of the XML declaration (defaulting to
    UTF-8 as the spec requires)."""
    if data.startswith(b"\xef\xbb\xbf"):
        return parse(data[3:].decode("utf-8"), namespaces=namespaces)
    if data.startswith(b"\xff\xfe"):
        return parse(data[2:].decode("utf-16-le"), namespaces=namespaces)
    if data.startswith(b"\xfe\xff"):
        return parse(data[2:].decode("utf-16-be"), namespaces=namespaces)
    match = _ENCODING_DECL_RE.match(data)
    encoding = match.group(1).decode("ascii") if match else "utf-8"
    try:
        text = data.decode(encoding)
    except (LookupError, UnicodeDecodeError) as exc:
        raise XMLWellFormednessError(
            f"cannot decode document as {encoding!r}: {exc}") from None
    return parse(text, namespaces=namespaces)


class _Parser:
    """One-shot parser; create per document."""

    def __init__(self, text: str) -> None:
        self.reader = Reader(text)
        self.entities = EntityTable()

    # ------------------------------------------------------------------
    # document structure
    # ------------------------------------------------------------------

    def parse_document(self) -> Document:
        r = self.reader
        doc = Document()
        self._parse_xml_declaration(doc)
        self._parse_misc(doc, allow_doctype=True)
        if r.at_end or not r.peek():
            raise r.error("document has no root element")
        if r.peek() != "<":
            raise r.error("content not allowed before root element")
        doc.append(self._parse_element())
        self._parse_misc(doc, allow_doctype=False)
        if not r.at_end:
            raise r.error("content not allowed after root element")
        return doc

    def _parse_xml_declaration(self, doc: Document) -> None:
        r = self.reader
        if not r.match("<?xml"):
            return
        nxt = r.peek()
        if nxt and chars.is_name_char(nxt):
            # e.g. "<?xml-stylesheet": a PI, not the XML declaration.
            r.pos -= 5
            return
        r.require_whitespace("after '<?xml'")
        r.expect("version", "version pseudo-attribute")
        self._pseudo_eq()
        doc.xml_version = self._pseudo_value()
        if doc.xml_version not in ("1.0", "1.1"):
            raise r.error(f"unsupported XML version {doc.xml_version!r}")
        ws = r.skip_whitespace()
        if r.match("encoding"):
            if not ws:
                raise r.error("whitespace required before 'encoding'")
            self._pseudo_eq()
            doc.encoding = self._pseudo_value()
            ws = r.skip_whitespace()
        if r.match("standalone"):
            if not ws:
                raise r.error("whitespace required before 'standalone'")
            self._pseudo_eq()
            value = self._pseudo_value()
            if value not in ("yes", "no"):
                raise r.error(f"standalone must be yes/no, got {value!r}")
            doc.standalone = value == "yes"
            r.skip_whitespace()
        r.expect("?>", "end of XML declaration")

    def _pseudo_eq(self) -> None:
        r = self.reader
        r.skip_whitespace()
        r.expect("=", "'='")
        r.skip_whitespace()

    def _pseudo_value(self) -> str:
        r = self.reader
        quote = r.peek()
        if quote not in ("'", '"'):
            raise r.error("quoted value expected")
        r.next()
        return r.read_until(quote, "pseudo-attribute value")

    def _parse_misc(self, doc: Document, allow_doctype: bool) -> None:
        """Comments / PIs / whitespace (and at most one DOCTYPE)."""
        r = self.reader
        while True:
            r.skip_whitespace()
            if r.match("<!--"):
                doc.append(self._finish_comment())
            elif r.peek(2) == "<?":
                doc.append(self._parse_pi())
            elif r.peek(9) == "<!DOCTYPE":
                if not allow_doctype or doc.doctype_name is not None:
                    raise r.error("misplaced DOCTYPE declaration")
                self._parse_doctype(doc)
            else:
                return

    def _parse_doctype(self, doc: Document) -> None:
        r = self.reader
        r.expect("<!DOCTYPE")
        r.require_whitespace("after '<!DOCTYPE'")
        doc.doctype_name = self._parse_name()
        r.skip_whitespace()
        # External ID (we record but do not fetch).
        if r.match("SYSTEM"):
            r.require_whitespace("after SYSTEM")
            self._pseudo_value_any_quote()
            r.skip_whitespace()
        elif r.match("PUBLIC"):
            r.require_whitespace("after PUBLIC")
            self._pseudo_value_any_quote()
            r.require_whitespace("between public and system identifiers")
            self._pseudo_value_any_quote()
            r.skip_whitespace()
        if r.match("["):
            self._parse_internal_subset()
            r.skip_whitespace()
        r.expect(">", "end of DOCTYPE")

    def _pseudo_value_any_quote(self) -> str:
        r = self.reader
        quote = r.peek()
        if quote not in ("'", '"'):
            raise r.error("quoted literal expected")
        r.next()
        return r.read_until(quote, "quoted literal")

    def _parse_internal_subset(self) -> None:
        """Parse the DOCTYPE internal subset, honouring ENTITY decls."""
        r = self.reader
        while True:
            r.skip_whitespace()
            if r.match("]"):
                return
            if r.match("<!ENTITY"):
                r.require_whitespace("after '<!ENTITY'")
                if r.peek() == "%":
                    # Parameter entities: skip the whole declaration.
                    r.read_until(">", "parameter entity declaration")
                    continue
                name = self._parse_name()
                r.require_whitespace("after entity name")
                value = self._pseudo_value_any_quote()
                r.skip_whitespace()
                r.expect(">", "end of entity declaration")
                self.entities.declare(name, value)
            elif r.match("<!--"):
                self._finish_comment()
            elif r.peek(2) == "<?":
                self._parse_pi()
            elif r.peek(2) == "<!":
                # ELEMENT/ATTLIST/NOTATION: skip to the closing '>'.
                r.read_until(">", "markup declaration")
            elif r.at_end:
                raise r.error("unterminated DOCTYPE internal subset")
            else:
                raise r.error(
                    f"unexpected content in internal subset: {r.peek(8)!r}")

    # ------------------------------------------------------------------
    # elements and content
    # ------------------------------------------------------------------

    def _parse_name(self) -> str:
        r = self.reader
        start = r.peek()
        if not start or not chars.is_name_start_char(start):
            raise r.error(f"name expected, found {start!r}")
        pos = r.pos + 1
        text = r.text
        n = len(text)
        while pos < n and chars.is_name_char(text[pos]):
            pos += 1
        name = text[r.pos:pos]
        r.pos = pos
        return name

    def _parse_element(self) -> Element:
        r = self.reader
        r.expect("<")
        name = self._parse_name()
        elem = Element(name)
        self._parse_attributes(elem)
        if r.match("/>"):
            return elem
        r.expect(">", "'>' closing start tag")
        self._parse_content(elem)
        # _parse_content consumed "</"; now the tag name must match.
        end_name = self._parse_name()
        if end_name != name:
            raise r.error(
                f"end tag </{end_name}> does not match start tag <{name}>")
        r.skip_whitespace()
        r.expect(">", "'>' closing end tag")
        return elem

    def _parse_attributes(self, elem: Element) -> None:
        r = self.reader
        while True:
            ws = r.skip_whitespace()
            nxt = r.peek()
            if nxt in (">", "/") or not nxt:
                return
            if not ws:
                raise r.error("whitespace required between attributes")
            name = self._parse_name()
            r.skip_whitespace()
            r.expect("=", f"'=' after attribute name {name!r}")
            r.skip_whitespace()
            value = self._parse_attribute_value()
            if name in elem.attributes:
                raise r.error(f"duplicate attribute {name!r}")
            elem.attributes[name] = Attr(name, value)

    def _parse_attribute_value(self) -> str:
        r = self.reader
        quote = r.peek()
        if quote not in ("'", '"'):
            raise r.error("attribute value must be quoted")
        r.next()
        out: list[str] = []
        while True:
            ch = r.next()
            if ch == quote:
                break
            if ch == "<":
                raise r.error("'<' not allowed in attribute value")
            if ch == "&":
                out.append(self._parse_reference(in_attribute=True))
            elif ch in "\t\n":
                out.append(" ")  # attribute-value normalization
            else:
                if not chars.is_xml_char(ch):
                    raise r.error(
                        f"illegal character U+{ord(ch):04X} in attribute")
                out.append(ch)
        return "".join(out)

    def _parse_reference(self, in_attribute: bool) -> str:
        """Parse an entity or character reference; '&' already consumed."""
        r = self.reader
        body = r.read_until(";", "entity reference")
        if not body:
            raise r.error("empty entity reference '&;'")
        if body.startswith("#"):
            return decode_char_reference(body)
        if not chars.is_name(body):
            raise r.error(f"malformed entity reference &{body};")
        try:
            expansion = self.entities.resolve(body)
        except XMLWellFormednessError as exc:
            raise r.error(str(exc)) from None
        # XML 1.0 section 3.1 ("No < in Attribute Values"): a general
        # entity whose replacement text contains a literal '<' cannot
        # be referenced in an attribute; the predefined &lt; is exempt
        # (its spec-defined replacement is itself escaped).
        from repro.xmlcore.entities import PREDEFINED_ENTITIES
        if in_attribute and "<" in expansion and \
                body not in PREDEFINED_ENTITIES:
            raise r.error(
                f"entity &{body}; expands to '<' inside an attribute value")
        return expansion

    def _parse_content(self, elem: Element) -> None:
        """Parse element content until the matching '</' is consumed."""
        r = self.reader
        text_parts: list[str] = []

        def flush() -> None:
            if text_parts:
                elem.append(Text("".join(text_parts)))
                text_parts.clear()

        while True:
            if r.at_end:
                raise r.error(f"unterminated element <{elem.tag}>")
            ch = r.peek()
            if ch == "<":
                if r.match("</"):
                    flush()
                    return
                if r.match("<!--"):
                    flush()
                    elem.append(self._finish_comment())
                elif r.match("<![CDATA["):
                    data = r.read_until("]]>", "CDATA section")
                    self._check_chars(data)
                    flush()
                    elem.append(CData(data))
                elif r.peek(2) == "<?":
                    flush()
                    elem.append(self._parse_pi())
                elif r.peek(2) == "<!":
                    raise r.error(
                        "markup declarations not allowed in content")
                else:
                    flush()
                    elem.append(self._parse_element())
            elif ch == "&":
                r.next()
                text_parts.append(self._parse_reference(in_attribute=False))
            else:
                chunk = self._scan_char_data()
                if "]]>" in chunk:
                    raise r.error("']]>' not allowed in character data")
                self._check_chars(chunk)
                text_parts.append(chunk)

    def _scan_char_data(self) -> str:
        """Consume the maximal run of plain character data."""
        r = self.reader
        text = r.text
        n = len(text)
        start = r.pos
        pos = start
        while pos < n and text[pos] not in "<&":
            pos += 1
        r.pos = pos
        return text[start:pos]

    def _check_chars(self, data: str) -> None:
        for ch in data:
            if not chars.is_xml_char(ch):
                raise self.reader.error(
                    f"illegal character U+{ord(ch):04X} in content")

    def _finish_comment(self) -> Comment:
        """Parse a comment body; '<!--' already consumed."""
        r = self.reader
        data = r.read_until("-->", "comment")
        if "--" in data or data.endswith("-"):
            raise r.error("'--' not allowed within a comment")
        self._check_chars(data)
        return Comment(data)

    def _parse_pi(self) -> ProcessingInstruction:
        r = self.reader
        r.expect("<?")
        target = self._parse_name()
        if target.lower() == "xml":
            raise r.error("processing-instruction target 'xml' is reserved")
        if r.match("?>"):
            return ProcessingInstruction(target, "")
        r.require_whitespace("after PI target")
        data = r.read_until("?>", "processing instruction")
        self._check_chars(data)
        return ProcessingInstruction(target, data)
