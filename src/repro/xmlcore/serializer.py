"""DOM -> XML text serialization.

Round-trips documents produced by :mod:`repro.xmlcore.parser` and by
:class:`repro.xmlcore.builder.DocumentBuilder`.  Supports compact
(default) and indented pretty-printing; pretty-printing only inserts
whitespace around element-only content so mixed content survives a
round trip byte-for-byte in its character data.
"""

from __future__ import annotations

from io import StringIO

from repro.xmlcore.dom import (
    CData, Comment, Document, Element, Node, ProcessingInstruction, Text,
)
from repro.xmlcore.entities import escape_attribute, escape_text


def serialize(node: Node, *, indent: str | None = None,
              xml_declaration: bool = True) -> str:
    """Serialize *node* (a Document or any subtree) to a string.

    ``indent`` of e.g. ``"  "`` enables pretty printing.  The XML
    declaration is emitted only for Document nodes.
    """
    out = StringIO()
    writer = _Writer(out, indent)
    if isinstance(node, Document):
        if xml_declaration:
            encoding = f' encoding="{node.encoding}"' if node.encoding else ""
            out.write(f'<?xml version="{node.xml_version}"{encoding}?>')
            if indent is not None:
                out.write("\n")
        for i, child in enumerate(node.children):
            writer.write_node(child, 0)
            if indent is not None and i < len(node.children) - 1:
                out.write("\n")
        if indent is not None:
            out.write("\n")
    else:
        writer.write_node(node, 0)
    return out.getvalue()


class _Writer:
    def __init__(self, out: StringIO, indent: str | None) -> None:
        self.out = out
        self.indent = indent

    def write_node(self, node: Node, depth: int) -> None:
        if isinstance(node, Element):
            self._write_element(node, depth)
        elif isinstance(node, CData):
            self.out.write(f"<![CDATA[{node.data}]]>")
        elif isinstance(node, Text):
            self.out.write(escape_text(node.data))
        elif isinstance(node, Comment):
            self.out.write(f"<!--{node.data}-->")
        elif isinstance(node, ProcessingInstruction):
            sep = " " if node.data else ""
            self.out.write(f"<?{node.target}{sep}{node.data}?>")
        else:  # pragma: no cover - defensive
            raise TypeError(f"cannot serialize node of type {type(node)!r}")

    def _write_element(self, elem: Element, depth: int) -> None:
        out = self.out
        out.write(f"<{elem.tag}")
        for attr in elem.attributes.values():
            out.write(f' {attr.name}="{escape_attribute(attr.value)}"')
        if not elem.children:
            out.write(" />")
            return
        out.write(">")
        pretty = (self.indent is not None
                  and all(isinstance(c, (Element, Comment,
                                         ProcessingInstruction))
                          for c in elem.children))
        if pretty:
            pad = self.indent * (depth + 1)
            for child in elem.children:
                out.write(f"\n{pad}")
                self.write_node(child, depth + 1)
            out.write(f"\n{self.indent * depth}")
        else:
            for child in elem.children:
                self.write_node(child, depth)
        out.write(f"</{elem.tag}>")
