"""XML Namespaces (1.0) support.

Provides the :class:`QName` value object, the reserved namespace URIs,
and :func:`resolve_namespaces`, the post-parse pass that walks a DOM
tree, interprets ``xmlns``/``xmlns:prefix`` attributes, and fills in the
``namespace``/``prefix``/``local_name`` slots of every element and
attribute.
"""

from __future__ import annotations

from repro.errors import XMLNamespaceError
from repro.xmlcore.chars import is_ncname
from repro.xmlcore.dom import Document, Element

XML_NAMESPACE = "http://www.w3.org/XML/1998/namespace"
XMLNS_NAMESPACE = "http://www.w3.org/2000/xmlns/"

_BUILTIN_BINDINGS: dict[str, str] = {"xml": XML_NAMESPACE}


class QName:
    """A namespace-qualified name: ``(namespace URI or None, local)``.

    Displays in Clark notation (``{uri}local``) and compares/hashes by
    value, so it can key dictionaries of schema components.
    """

    __slots__ = ("namespace", "local")

    def __init__(self, namespace: str | None, local: str) -> None:
        self.namespace = namespace
        self.local = local

    @classmethod
    def from_clark(cls, text: str) -> "QName":
        """Parse Clark notation: ``{uri}local`` or plain ``local``."""
        if text.startswith("{"):
            uri, _, local = text[1:].partition("}")
            return cls(uri, local)
        return cls(None, text)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, QName):
            return (self.namespace, self.local) == (other.namespace,
                                                    other.local)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.namespace, self.local))

    def __repr__(self) -> str:
        return f"QName({str(self)!r})"

    def __str__(self) -> str:
        if self.namespace:
            return f"{{{self.namespace}}}{self.local}"
        return self.local


def split_qname(name: str) -> tuple[str | None, str]:
    """Split a raw qualified name into ``(prefix or None, local)``.

    Enforces the namespaces spec's QName shape: at most one colon, and
    both sides must be NCNames.
    """
    if ":" not in name:
        return None, name
    prefix, _, local = name.partition(":")
    if not prefix or not local or ":" in local:
        raise XMLNamespaceError(f"malformed qualified name {name!r}")
    if not is_ncname(prefix) or not is_ncname(local):
        raise XMLNamespaceError(f"malformed qualified name {name!r}")
    return prefix, local


def resolve_namespaces(doc: Document) -> Document:
    """Resolve namespace bindings in-place for the whole document.

    Raises :class:`XMLNamespaceError` for undeclared prefixes, illegal
    re-bindings of the reserved ``xml``/``xmlns`` prefixes, and empty
    prefixed-namespace undeclarations (not allowed in Namespaces 1.0).
    Returns *doc* for convenience.
    """
    try:
        root = doc.root
    except ValueError:
        return doc
    _resolve_element(root, dict(_BUILTIN_BINDINGS), "")
    return doc


def _resolve_element(elem: Element, bindings: dict[str, str],
                     default_ns: str) -> None:
    local_bindings = bindings
    local_default = default_ns
    declared_here: dict[str, str] = {}

    # First pass: collect namespace declarations on this element.
    for attr in elem.attributes.values():
        name = attr.name
        if name == "xmlns":
            local_default = attr.value
            declared_here[""] = attr.value
        elif name.startswith("xmlns:"):
            prefix = name[6:]
            if not is_ncname(prefix):
                raise XMLNamespaceError(
                    f"invalid namespace prefix declaration {name!r}")
            if prefix == "xmlns":
                raise XMLNamespaceError(
                    "the 'xmlns' prefix cannot be declared")
            if prefix == "xml" and attr.value != XML_NAMESPACE:
                raise XMLNamespaceError(
                    "the 'xml' prefix cannot be rebound")
            if not attr.value:
                raise XMLNamespaceError(
                    f"namespace prefix {prefix!r} cannot be undeclared "
                    "(empty URI) in Namespaces 1.0")
            if local_bindings is bindings:
                local_bindings = dict(bindings)
            local_bindings[prefix] = attr.value
            declared_here[prefix] = attr.value

    elem.ns_declarations = declared_here

    # Second pass: resolve the element name.
    prefix, local = split_qname(elem.tag)
    elem.prefix = prefix
    elem.local_name = local
    if prefix is not None:
        try:
            elem.namespace = local_bindings[prefix]
        except KeyError:
            raise XMLNamespaceError(
                f"undeclared namespace prefix {prefix!r} on element "
                f"<{elem.tag}>") from None
    else:
        elem.namespace = local_default or None

    # Third pass: resolve attribute names.  Unprefixed attributes are
    # in *no* namespace (not the default namespace), per the spec.
    seen: set[tuple[str | None, str]] = set()
    for attr in elem.attributes.values():
        if attr.name == "xmlns" or attr.name.startswith("xmlns:"):
            attr.namespace = XMLNS_NAMESPACE
            attr.prefix, attr.local_name = split_qname(attr.name)
            continue
        aprefix, alocal = split_qname(attr.name)
        attr.prefix = aprefix
        attr.local_name = alocal
        if aprefix is not None:
            try:
                attr.namespace = local_bindings[aprefix]
            except KeyError:
                raise XMLNamespaceError(
                    f"undeclared namespace prefix {aprefix!r} on "
                    f"attribute {attr.name!r}") from None
        else:
            attr.namespace = None
        key = (attr.namespace, attr.local_name)
        if key in seen:
            raise XMLNamespaceError(
                f"duplicate attribute {attr.local_name!r} in namespace "
                f"{attr.namespace!r} on <{elem.tag}>")
        seen.add(key)

    for child in elem:
        _resolve_element(child, local_bindings, local_default)
