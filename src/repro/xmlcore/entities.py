"""Entity and character-reference handling for the XML parser.

Supports the five predefined general entities, decimal and hexadecimal
character references, and user-declared internal general entities (as
declared in a DOCTYPE internal subset with ``<!ENTITY name "value">``).
"""

from __future__ import annotations

from repro.errors import XMLWellFormednessError
from repro.xmlcore.chars import is_name, is_xml_char

PREDEFINED_ENTITIES: dict[str, str] = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

# Inverse map used by the serializer for text content.  A literal
# carriage return in content would be normalized to "\n" by any
# conforming reader (XML 1.0 section 2.11), so it must be written as a
# character reference — references survive normalization — or text
# containing "\r" would not round-trip.
TEXT_ESCAPES: dict[str, str] = {
    "&": "&amp;",
    "<": "&lt;",
    ">": "&gt;",
    "\r": "&#13;",
}

ATTR_ESCAPES: dict[str, str] = {
    "&": "&amp;",
    "<": "&lt;",
    '"': "&quot;",
    "\n": "&#10;",
    "\t": "&#9;",
    "\r": "&#13;",
}


class EntityTable:
    """Resolves general entity references during a parse.

    Starts with the five predefined entities; DOCTYPE internal-subset
    declarations add to it.  Recursion in entity replacement text is
    expanded with a depth guard to reject circular declarations.
    """

    MAX_DEPTH = 16

    def __init__(self) -> None:
        self._entities: dict[str, str] = dict(PREDEFINED_ENTITIES)

    def declare(self, name: str, replacement: str) -> None:
        """Declare an internal general entity.

        Per XML 1.0 section 4.2, the first declaration of an entity is
        binding; later re-declarations are ignored (this also protects
        the predefined entities).
        """
        if not is_name(name):
            raise XMLWellFormednessError(f"invalid entity name {name!r}")
        self._entities.setdefault(name, replacement)

    def is_declared(self, name: str) -> bool:
        return name in self._entities

    def resolve(self, name: str, _depth: int = 0) -> str:
        """Return the fully expanded replacement text for entity *name*."""
        if _depth > self.MAX_DEPTH:
            raise XMLWellFormednessError(
                f"entity {name!r} expansion exceeds depth "
                f"{self.MAX_DEPTH} (circular reference?)")
        try:
            raw = self._entities[name]
        except KeyError:
            raise XMLWellFormednessError(
                f"reference to undeclared entity &{name};") from None
        # Predefined entities expand to their literal character even
        # though that character is itself markup-significant.
        if name in PREDEFINED_ENTITIES:
            return raw
        return self._expand(raw, _depth + 1)

    def _expand(self, text: str, depth: int) -> str:
        if "&" not in text:
            return text
        out: list[str] = []
        i = 0
        n = len(text)
        while i < n:
            ch = text[i]
            if ch != "&":
                out.append(ch)
                i += 1
                continue
            end = text.find(";", i + 1)
            if end == -1:
                raise XMLWellFormednessError(
                    "unterminated entity reference in replacement text")
            body = text[i + 1:end]
            if body.startswith("#"):
                out.append(decode_char_reference(body))
            else:
                out.append(self.resolve(body, depth))
            i = end + 1
        return "".join(out)


def decode_char_reference(body: str) -> str:
    """Decode the body of a character reference (without ``&`` / ``;``).

    *body* is e.g. ``#38`` or ``#x26``.  Raises on malformed syntax and
    on code points outside the XML ``Char`` production.
    """
    # strict CharRef production: '&#' [0-9]+ ';' | '&#x' [0-9a-fA-F]+
    # ';' — int() alone is too lenient (it accepts whitespace, sign
    # prefixes and non-ASCII digits, none of which are legal here)
    digits = body[1:]
    if digits[:1] in ("x", "X"):
        text, base = digits[1:], 16
        legal = all(c in "0123456789abcdefABCDEF" for c in text)
    else:
        text, base = digits, 10
        legal = text.isascii() and text.isdecimal()
    if not text or not legal:
        raise XMLWellFormednessError(
            f"malformed character reference &{body};")
    cp = int(text, base)
    if cp < 0 or cp > 0x10FFFF:
        raise XMLWellFormednessError(
            f"character reference &{body}; out of range")
    ch = chr(cp)
    if not is_xml_char(ch):
        raise XMLWellFormednessError(
            f"character reference &{body}; is not a legal XML character")
    return ch


def escape_text(text: str) -> str:
    """Escape character data for element content."""
    if not any(c in TEXT_ESCAPES for c in text):
        return text
    return "".join(TEXT_ESCAPES.get(c, c) for c in text)


def escape_attribute(text: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    if not any(c in ATTR_ESCAPES for c in text):
        return text
    return "".join(ATTR_ESCAPES.get(c, c) for c in text)
