"""Position-tracking character reader used by the XML parser.

Wraps the document string with line/column accounting (1-based, the
convention error messages use) and the small set of scanning primitives
the recursive-descent parser needs: peek, advance, literal matching,
and run-until scans.  XML 1.0 end-of-line normalization (section 2.11:
``\\r\\n`` and bare ``\\r`` become ``\\n``) is applied up front so the
rest of the parser only ever sees ``\\n``.
"""

from __future__ import annotations

from repro.errors import XMLWellFormednessError
from repro.xmlcore.chars import WHITESPACE


def normalize_line_endings(text: str) -> str:
    """Apply XML 1.0 end-of-line normalization."""
    if "\r" not in text:
        return text
    return text.replace("\r\n", "\n").replace("\r", "\n")


class Reader:
    """A forward-only scanner over normalized document text."""

    __slots__ = ("text", "pos", "_line_starts")

    def __init__(self, text: str) -> None:
        self.text = normalize_line_endings(text)
        self.pos = 0
        self._line_starts: list[int] | None = None

    # -- position ----------------------------------------------------------

    def location(self, pos: int | None = None) -> tuple[int, int]:
        """Return (line, column), both 1-based, for *pos* (default: here)."""
        if pos is None:
            pos = self.pos
        if self._line_starts is None:
            starts = [0]
            idx = self.text.find("\n")
            while idx != -1:
                starts.append(idx + 1)
                idx = self.text.find("\n", idx + 1)
            self._line_starts = starts
        starts = self._line_starts
        # binary search for the line containing pos
        lo, hi = 0, len(starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if starts[mid] <= pos:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1, pos - starts[lo] + 1

    def error(self, message: str) -> XMLWellFormednessError:
        line, col = self.location()
        return XMLWellFormednessError(message, line, col)

    # -- primitives ----------------------------------------------------------

    @property
    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self, length: int = 1) -> str:
        """Next *length* characters without consuming (may be short)."""
        return self.text[self.pos:self.pos + length]

    def next(self) -> str:
        """Consume and return one character; raise at end of input."""
        if self.pos >= len(self.text):
            raise self.error("unexpected end of document")
        ch = self.text[self.pos]
        self.pos += 1
        return ch

    def match(self, literal: str) -> bool:
        """Consume *literal* if it is next; return whether it matched."""
        if self.text.startswith(literal, self.pos):
            self.pos += len(literal)
            return True
        return False

    def expect(self, literal: str, what: str | None = None) -> None:
        """Consume *literal* or raise a well-formedness error."""
        if not self.match(literal):
            raise self.error(
                f"expected {what or literal!r}, found "
                f"{self.peek(8)!r}")

    def skip_whitespace(self) -> int:
        """Skip a run of XML whitespace; return how many chars skipped."""
        start = self.pos
        text = self.text
        n = len(text)
        pos = self.pos
        while pos < n and text[pos] in WHITESPACE:
            pos += 1
        self.pos = pos
        return pos - start

    def require_whitespace(self, context: str) -> None:
        if not self.skip_whitespace():
            raise self.error(f"whitespace required {context}")

    def read_until(self, terminator: str, what: str) -> str:
        """Consume up to (not including) *terminator*; consume it too.

        Raises if the terminator never appears.
        """
        idx = self.text.find(terminator, self.pos)
        if idx == -1:
            raise self.error(f"unterminated {what} (missing {terminator!r})")
        chunk = self.text[self.pos:idx]
        self.pos = idx + len(terminator)
        return chunk

    def read_while_in(self, allowed: frozenset[str] | set[str]) -> str:
        """Consume the maximal run of characters in *allowed*."""
        text = self.text
        n = len(text)
        start = self.pos
        pos = start
        while pos < n and text[pos] in allowed:
            pos += 1
        self.pos = pos
        return text[start:pos]
