"""XML 1.0 character classes.

Implements the character-class productions from the XML 1.0
specification (5th edition) that the parser needs:

* ``Char``          -- characters legal anywhere in a document
* ``S``             -- white space
* ``NameStartChar`` -- first character of a Name
* ``NameChar``      -- subsequent characters of a Name

Membership tests are hot inside the tokenizer, so the ASCII subsets are
precomputed into frozensets and the (rare) non-ASCII cases fall back to
range scans.
"""

from __future__ import annotations

# Production [3]: S ::= (#x20 | #x9 | #xD | #xA)+
WHITESPACE = frozenset(" \t\r\n")

# Non-ASCII ranges for NameStartChar, production [4].
_NAME_START_RANGES: tuple[tuple[int, int], ...] = (
    (0xC0, 0xD6), (0xD8, 0xF6), (0xF8, 0x2FF), (0x370, 0x37D),
    (0x37F, 0x1FFF), (0x200C, 0x200D), (0x2070, 0x218F),
    (0x2C00, 0x2FEF), (0x3001, 0xD7FF), (0xF900, 0xFDCF),
    (0xFDF0, 0xFFFD), (0x10000, 0xEFFFF),
)

# Additional non-ASCII ranges permitted in NameChar, production [4a].
_NAME_EXTRA_RANGES: tuple[tuple[int, int], ...] = (
    (0xB7, 0xB7), (0x300, 0x36F), (0x203F, 0x2040),
)

_ASCII_NAME_START = frozenset(
    ":_"
    "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    "abcdefghijklmnopqrstuvwxyz"
)
_ASCII_NAME = _ASCII_NAME_START | frozenset("-.0123456789")

# Production [2]: Char -- legal document characters.
_CHAR_RANGES: tuple[tuple[int, int], ...] = (
    (0x9, 0x9), (0xA, 0xA), (0xD, 0xD),
    (0x20, 0xD7FF), (0xE000, 0xFFFD), (0x10000, 0x10FFFF),
)


def _in_ranges(cp: int, ranges: tuple[tuple[int, int], ...]) -> bool:
    for lo, hi in ranges:
        if lo <= cp <= hi:
            return True
    return False


def is_whitespace(ch: str) -> bool:
    """True if *ch* matches the XML ``S`` production."""
    return ch in WHITESPACE


def is_xml_char(ch: str) -> bool:
    """True if *ch* is a legal XML 1.0 document character."""
    cp = ord(ch)
    if 0x20 <= cp <= 0xD7FF:  # overwhelmingly common case
        return True
    return _in_ranges(cp, _CHAR_RANGES)


def is_name_start_char(ch: str) -> bool:
    """True if *ch* may begin an XML Name."""
    if ch in _ASCII_NAME_START:
        return True
    cp = ord(ch)
    if cp < 0x80:
        return False
    return _in_ranges(cp, _NAME_START_RANGES)


def is_name_char(ch: str) -> bool:
    """True if *ch* may appear after the first character of a Name."""
    if ch in _ASCII_NAME:
        return True
    cp = ord(ch)
    if cp < 0x80:
        return False
    return (_in_ranges(cp, _NAME_START_RANGES)
            or _in_ranges(cp, _NAME_EXTRA_RANGES))


def is_name(text: str) -> bool:
    """True if *text* matches the ``Name`` production (non-empty)."""
    if not text or not is_name_start_char(text[0]):
        return False
    return all(is_name_char(c) for c in text[1:])


def is_ncname(text: str) -> bool:
    """True if *text* is a Name containing no colon (namespaces spec)."""
    return is_name(text) and ":" not in text
