"""From-scratch XML 1.0 substrate.

The paper's XMIT implementation used the Xerces-C parser to turn XML
Schema documents into DOM trees.  This package is our replacement: a
well-formedness-checking XML 1.0 (+ Namespaces) parser, a small DOM, a
serializer, and a programmatic document builder.

Public entry points
-------------------
parse(text)            -> Document          (namespace-aware)
parse_bytes(data)      -> Document          (honours encoding decl)
serialize(node, ...)   -> str
Document / Element / Text / Comment / CData / ProcessingInstruction
DocumentBuilder        -- fluent construction of documents
QName                  -- namespace-qualified name value object
"""

from repro.xmlcore.dom import (
    Attr,
    CData,
    Comment,
    Document,
    Element,
    Node,
    ProcessingInstruction,
    Text,
)
from repro.xmlcore.namespaces import QName, XML_NAMESPACE, XMLNS_NAMESPACE
from repro.xmlcore.parser import parse, parse_bytes
from repro.xmlcore.serializer import serialize
from repro.xmlcore.builder import DocumentBuilder

__all__ = [
    "Attr",
    "CData",
    "Comment",
    "Document",
    "DocumentBuilder",
    "Element",
    "Node",
    "ProcessingInstruction",
    "QName",
    "Text",
    "XML_NAMESPACE",
    "XMLNS_NAMESPACE",
    "parse",
    "parse_bytes",
    "serialize",
]
