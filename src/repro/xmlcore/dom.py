"""A small DOM for parsed XML documents.

Modeled on the W3C DOM the paper's XMIT used (Xerces-C produced DOM
trees that XMIT traversed selectively), but with a Pythonic surface:
elements are iterable over child elements, attributes are a mapping,
and common traversals (``find``, ``find_all``, ``iter``) are methods.

Namespace handling: after the namespace-resolution pass each
:class:`Element` carries ``namespace`` (URI or ``None``), ``local_name``
and ``prefix`` in addition to the raw ``tag`` as written.  Attribute
lookup supports both raw names and ``(namespace, local)`` pairs via
:class:`Attr` entries.
"""

from __future__ import annotations

from typing import Iterator, Optional


class Node:
    """Base class of every tree node."""

    __slots__ = ("parent",)

    def __init__(self) -> None:
        self.parent: Optional["Element | Document"] = None

    @property
    def document(self) -> Optional["Document"]:
        """The owning :class:`Document`, found by walking to the root."""
        node: Node | None = self
        while node is not None and not isinstance(node, Document):
            node = node.parent
        return node


class CharacterData(Node):
    """Common base for text-bearing leaf nodes."""

    __slots__ = ("data",)

    def __init__(self, data: str) -> None:
        super().__init__()
        self.data = data

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        preview = self.data if len(self.data) <= 32 else self.data[:29] + "..."
        return f"{type(self).__name__}({preview!r})"


class Text(CharacterData):
    """Character data appearing between markup."""

    __slots__ = ()


class CData(CharacterData):
    """A ``<![CDATA[...]]>`` section (text with verbatim serialization)."""

    __slots__ = ()


class Comment(CharacterData):
    """A ``<!-- ... -->`` comment."""

    __slots__ = ()


class ProcessingInstruction(Node):
    """A ``<?target data?>`` processing instruction."""

    __slots__ = ("target", "data")

    def __init__(self, target: str, data: str) -> None:
        super().__init__()
        self.target = target
        self.data = data

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ProcessingInstruction({self.target!r}, {self.data!r})"


class Attr:
    """A single attribute: raw name plus resolved namespace parts."""

    __slots__ = ("name", "value", "namespace", "prefix", "local_name")

    def __init__(self, name: str, value: str,
                 namespace: str | None = None,
                 prefix: str | None = None,
                 local_name: str | None = None) -> None:
        self.name = name
        self.value = value
        self.namespace = namespace
        self.prefix = prefix
        self.local_name = local_name if local_name is not None else name

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Attr({self.name!r}={self.value!r})"


class Element(Node):
    """An XML element.

    ``tag`` is the name exactly as written (possibly prefixed);
    ``namespace``/``local_name``/``prefix`` are filled in by the
    namespace pass.  ``children`` holds all child nodes in document
    order; iteration yields child *elements* only, which is the common
    traversal for data documents.
    """

    __slots__ = ("tag", "namespace", "prefix", "local_name",
                 "attributes", "children", "ns_declarations")

    def __init__(self, tag: str) -> None:
        super().__init__()
        self.tag = tag
        self.namespace: str | None = None
        self.prefix: str | None = None
        self.local_name: str = tag.split(":", 1)[-1]
        self.attributes: dict[str, Attr] = {}
        self.children: list[Node] = []
        # prefix -> URI declarations made *on this element* (after the
        # namespace pass); "" key is the default namespace.
        self.ns_declarations: dict[str, str] = {}

    # -- construction -----------------------------------------------------

    def append(self, node: Node) -> Node:
        """Append *node* as the last child and return it."""
        node.parent = self
        self.children.append(node)
        return node

    def set(self, name: str, value: str) -> None:
        """Set attribute *name* to *value* (raw, namespace-unresolved)."""
        self.attributes[name] = Attr(name, value)

    # -- attribute access --------------------------------------------------

    def get(self, name: str, default: str | None = None) -> str | None:
        """Return the value of attribute *name* (raw name) or *default*."""
        attr = self.attributes.get(name)
        return attr.value if attr is not None else default

    def get_ns(self, namespace: str | None, local: str,
               default: str | None = None) -> str | None:
        """Return an attribute value by (namespace URI, local name)."""
        for attr in self.attributes.values():
            if attr.local_name == local and attr.namespace == namespace:
                return attr.value
        return default

    def has(self, name: str) -> bool:
        return name in self.attributes

    # -- traversal ----------------------------------------------------------

    def __iter__(self) -> Iterator["Element"]:
        for child in self.children:
            if isinstance(child, Element):
                yield child

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def __bool__(self) -> bool:
        # ElementTree's classic footgun: with __len__ defined, leaf
        # elements would be falsy and `find(...) or default` silently
        # misbehaves.  An existing element is always truthy here.
        return True

    def iter(self, local_name: str | None = None,
             namespace: str | None = "*") -> Iterator["Element"]:
        """Depth-first iteration over this element and its descendants.

        ``local_name=None`` matches every element; ``namespace="*"``
        (default) matches any namespace.
        """
        if ((local_name is None or self.local_name == local_name)
                and (namespace == "*" or self.namespace == namespace)):
            yield self
        for child in self:
            yield from child.iter(local_name, namespace)

    def find(self, local_name: str,
             namespace: str | None = "*") -> Optional["Element"]:
        """First *direct child* element with the given local name."""
        for child in self:
            if child.local_name == local_name and (
                    namespace == "*" or child.namespace == namespace):
                return child
        return None

    def find_all(self, local_name: str,
                 namespace: str | None = "*") -> list["Element"]:
        """All *direct child* elements with the given local name."""
        return [c for c in self
                if c.local_name == local_name
                and (namespace == "*" or c.namespace == namespace)]

    # -- content -----------------------------------------------------------

    @property
    def text(self) -> str:
        """Concatenated character data of *direct* text/CDATA children."""
        return "".join(c.data for c in self.children
                       if isinstance(c, (Text, CData)))

    def text_content(self) -> str:
        """Concatenated character data of the whole subtree."""
        parts: list[str] = []
        for child in self.children:
            if isinstance(child, (Text, CData)):
                parts.append(child.data)
            elif isinstance(child, Element):
                parts.append(child.text_content())
        return "".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Element(<{self.tag}> attrs={list(self.attributes)})"


class Document(Node):
    """The document node: prolog items plus exactly one root element."""

    __slots__ = ("children", "xml_version", "encoding", "standalone",
                 "doctype_name")

    def __init__(self) -> None:
        super().__init__()
        self.children: list[Node] = []
        self.xml_version: str = "1.0"
        self.encoding: str | None = None
        self.standalone: bool | None = None
        self.doctype_name: str | None = None

    def append(self, node: Node) -> Node:
        node.parent = self
        self.children.append(node)
        return node

    @property
    def root(self) -> Element:
        """The single document element."""
        for child in self.children:
            if isinstance(child, Element):
                return child
        raise ValueError("document has no root element")

    def iter(self, local_name: str | None = None,
             namespace: str | None = "*") -> Iterator[Element]:
        return self.root.iter(local_name, namespace)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        try:
            root = f"<{self.root.tag}>"
        except ValueError:
            root = "(empty)"
        return f"Document(root={root})"
