"""Programmatic document construction.

:class:`DocumentBuilder` gives library code (the XML wire codec, the
schema emitters, tests) a concise way to build well-formed DOM trees
without going through text and the parser.

Example::

    b = DocumentBuilder()
    with b.element("SimpleData"):
        b.leaf("Timestep", "9999")
        b.leaf("Size", "3355")
    doc = b.document()
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Mapping

from repro.xmlcore.chars import is_name
from repro.xmlcore.dom import (
    CData, Comment, Document, Element, ProcessingInstruction, Text,
)
from repro.xmlcore.namespaces import resolve_namespaces


class DocumentBuilder:
    """Builds one :class:`Document` via nested ``element`` contexts."""

    def __init__(self) -> None:
        self._doc = Document()
        self._stack: list[Element] = []
        self._finished = False

    # -- structure -----------------------------------------------------------

    @contextmanager
    def element(self, tag: str,
                attrs: Mapping[str, str] | None = None,
                **kw_attrs: str) -> Iterator[Element]:
        """Open an element; children added inside the ``with`` nest in it."""
        elem = self.start(tag, attrs, **kw_attrs)
        try:
            yield elem
        finally:
            self.end()

    def start(self, tag: str,
              attrs: Mapping[str, str] | None = None,
              **kw_attrs: str) -> Element:
        """Open an element without the context-manager sugar."""
        if not is_name(tag):
            raise ValueError(f"invalid element name {tag!r}")
        if self._finished and not self._stack:
            raise ValueError("document already has a root element")
        elem = Element(tag)
        for name, value in {**(attrs or {}), **kw_attrs}.items():
            if not is_name(name):
                raise ValueError(f"invalid attribute name {name!r}")
            elem.set(name, str(value))
        if self._stack:
            self._stack[-1].append(elem)
        else:
            self._doc.append(elem)
            self._finished = True
        self._stack.append(elem)
        return elem

    def end(self) -> None:
        if not self._stack:
            raise ValueError("no open element to close")
        self._stack.pop()

    # -- leaves ----------------------------------------------------------------

    def leaf(self, tag: str, text: object = None,
             attrs: Mapping[str, str] | None = None,
             **kw_attrs: str) -> Element:
        """Add ``<tag>text</tag>`` (or an empty element) as a child."""
        elem = self.start(tag, attrs, **kw_attrs)
        if text is not None:
            elem.append(Text(str(text)))
        self.end()
        return elem

    def text(self, data: object) -> None:
        """Add character data to the open element."""
        self._require_open("text")
        self._stack[-1].append(Text(str(data)))

    def cdata(self, data: str) -> None:
        self._require_open("CDATA")
        if "]]>" in data:
            raise ValueError("']]>' cannot appear inside a CDATA section")
        self._stack[-1].append(CData(data))

    def comment(self, data: str) -> None:
        if "--" in data or data.endswith("-"):
            raise ValueError("'--' cannot appear inside a comment")
        node = Comment(data)
        if self._stack:
            self._stack[-1].append(node)
        else:
            self._doc.append(node)

    def processing_instruction(self, target: str, data: str = "") -> None:
        node = ProcessingInstruction(target, data)
        if self._stack:
            self._stack[-1].append(node)
        else:
            self._doc.append(node)

    def _require_open(self, what: str) -> None:
        if not self._stack:
            raise ValueError(f"{what} requires an open element")

    # -- completion ---------------------------------------------------------

    def document(self, *, namespaces: bool = True) -> Document:
        """Finish and return the document (namespace-resolved by default)."""
        if self._stack:
            raise ValueError(
                f"unclosed element <{self._stack[-1].tag}>")
        if not self._finished:
            raise ValueError("document has no root element")
        if namespaces:
            resolve_namespaces(self._doc)
        return self._doc
