"""Encode-once broadcast over the event loop.

The paper's Section 1 motivates binary metadata exactly here:
"server-based applications in which single servers must provide
information to large numbers of clients", where scalability "implies
the need to reduce per-client or per-source processing".
:class:`BroadcastPublisher` makes that reduction concrete: each record
is marshaled **once** through the context's fused encoder plan, framed
once, and the *same* immutable bytes object is queued to every
subscriber — per-client work is a queue append plus a share of a
scatter-gather ``sendmsg``, independent of record complexity.

Per-client costs that cannot be shared are amortized instead:

* **format announcement** — the first record of each format pushes one
  FMT_RSP frame (ID + canonical metadata) to each client before the
  data, so subscribers' :class:`~repro.transport.connection.Connection`
  objects import the format without ever sending a FMT_REQ;
* **backpressure** — per-client write queues are bounded by
  ``max_queue_bytes``, and a slow consumer triggers the configured
  :class:`BackpressurePolicy` without stalling healthy clients.

Counters are exposed like
:class:`~repro.http.retry.DiscoveryStats` — thread-safe, snapshot via
:attr:`BroadcastPublisher.stats`.
"""

from __future__ import annotations

import enum
import json
import threading

from repro.errors import (
    ProtocolError, SlowConsumerError, UnknownFormatError,
)
from repro.obs import runtime as _obs
from repro.obs.spans import observe_phase, sample_t0
from repro.pbio.context import IOContext
from repro.pbio.encode import parse_header
from repro.pbio.evolution import down_converter
from repro.pbio.format import FormatID, IOFormat
from repro.transport.connection import count_negotiation
from repro.transport.eventloop import ClientHandle, EventLoopServer
from repro.transport.messages import (
    MAX_FRAME, Frame, FrameType, decode_lineage_req,
    encode_lineage_rsp, frame_bytes,
)


class BackpressurePolicy(enum.Enum):
    """What to do when a subscriber's write queue is full.

    * ``BLOCK`` — the publisher waits (up to ``block_timeout``) for
      the queue to drain; a consumer still stuck after the wait is
      evicted so one dead peer cannot stall the broadcast forever.
    * ``DROP_OLDEST`` — the oldest queued data frames are discarded to
      make room (control frames are never dropped); the client stays
      connected but sees a gap.
    * ``DISCONNECT_SLOW`` — the client is evicted immediately with a
      :class:`~repro.errors.SlowConsumerError` close reason.
    """

    BLOCK = "block"
    DROP_OLDEST = "drop-oldest"
    DISCONNECT_SLOW = "disconnect-slow"

    @classmethod
    def coerce(cls, value) -> "BackpressurePolicy":
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            names = ", ".join(p.value for p in cls)
            raise ValueError(
                f"unknown backpressure policy {value!r} "
                f"(expected one of: {names})") from None


class BroadcastStats:
    """Publisher-lifetime counters and high-water marks.

    All mutation goes through :meth:`count` / :meth:`max_update`,
    which take one class-wide lock and bump the per-publisher value
    *and* the process-wide aggregate together — exact under concurrent
    publishers, and centrally snapshottable: the aggregates surface in
    the :mod:`repro.obs` registry as
    ``repro_broadcast_events_total{event=...}`` (counters summed over
    publishers) and ``repro_broadcast_*_high_water`` gauges (maxima
    over publishers) via a snapshot-time collector.
    """

    _COUNTERS = ("messages_broadcast", "frames_enqueued",
                 "bytes_queued", "bytes_encoded", "formats_announced",
                 "frames_dropped", "clients_evicted", "block_waits",
                 "lineage_negotiations", "frames_down_converted",
                 "cutovers")
    _HIGH_WATER = ("queue_high_water", "subscriber_high_water")
    _LOCK = threading.Lock()
    _TOTALS = {name: 0 for name in _COUNTERS}
    _MAXIMA = {name: 0 for name in _HIGH_WATER}

    __slots__ = tuple("_" + name for name in _COUNTERS + _HIGH_WATER)

    def __init__(self) -> None:
        for name in self._COUNTERS + self._HIGH_WATER:
            setattr(self, "_" + name, 0)

    def count(self, name: str, n: int = 1) -> None:
        attr = "_" + name
        with BroadcastStats._LOCK:
            setattr(self, attr, getattr(self, attr) + n)
            BroadcastStats._TOTALS[name] += n

    def max_update(self, name: str, value: int) -> None:
        attr = "_" + name
        with BroadcastStats._LOCK:
            if value > getattr(self, attr):
                setattr(self, attr, value)
            if value > BroadcastStats._MAXIMA[name]:
                BroadcastStats._MAXIMA[name] = value

    def __getattr__(self, name: str) -> int:
        if name in BroadcastStats._COUNTERS or \
                name in BroadcastStats._HIGH_WATER:
            return getattr(self, "_" + name)
        raise AttributeError(name)

    @classmethod
    def totals_snapshot(cls) -> dict[str, int]:
        """Process-wide counter totals (all publishers)."""
        with cls._LOCK:
            return dict(cls._TOTALS)

    @classmethod
    def high_water_snapshot(cls) -> dict[str, int]:
        """Process-wide high-water maxima (all publishers)."""
        with cls._LOCK:
            return dict(cls._MAXIMA)

    def as_dict(self) -> dict:
        with BroadcastStats._LOCK:
            return {name: getattr(self, "_" + name)
                    for name in self._COUNTERS + self._HIGH_WATER}

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in
                          self.as_dict().items())
        return f"BroadcastStats({inner})"


class BroadcastPublisher:
    """One-thread fan-out server: encode once, enqueue everywhere.

    Also serves the metadata protocol from the same loop: FMT_REQ (and
    FMT_REG) frames from subscribers are answered out of the context's
    :class:`~repro.pbio.format_server.FormatServer` via
    :meth:`~repro.pbio.format_server.FormatServer.handle_frame`, so a
    late subscriber that missed an announcement can still resolve IDs
    without a second server process.
    """

    def __init__(self, context: IOContext, *,
                 host: str = "127.0.0.1", port: int = 0,
                 policy: BackpressurePolicy | str =
                 BackpressurePolicy.BLOCK,
                 max_queue_bytes: int = 4 * 1024 * 1024,
                 block_timeout: float = 5.0,
                 max_frame_len: int = MAX_FRAME,
                 listener_socket=None, listen: bool = True) -> None:
        self.context = context
        self.policy = BackpressurePolicy.coerce(policy)
        self.max_queue_bytes = max_queue_bytes
        self.block_timeout = block_timeout
        self.stats = BroadcastStats()
        self._lock = threading.Lock()
        self._closed = False
        self._hello = Frame(
            FrameType.HELLO,
            context.architecture.name.encode("utf-8")).encode()
        #: digest -> IOFormat for older lineage versions subscribers
        #: negotiated down to (resolved once, reused every fan-out)
        self._version_formats: dict[FormatID, IOFormat] = {}
        self.server = EventLoopServer(host=host, port=port,
                                      handler=self,
                                      max_frame_len=max_frame_len,
                                      listener_socket=listener_socket,
                                      listen=listen)
        self.host, self.port = self.server.host, self.server.port

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "BroadcastPublisher":
        self.server.start()
        return self

    def close(self, timeout: float = 5.0) -> None:
        """Flush queues, announce end-of-stream (BYE) and shut down."""
        if self._closed:
            return
        self._closed = True
        bye = Frame(FrameType.BYE, b"").encode()
        for client in self.server.clients():
            self.server.enqueue(client, bye, droppable=False)
            self.server.request_close(client, None, graceful=True)
        self.server.flush(timeout)
        self.server.close(timeout)

    def __enter__(self) -> "BroadcastPublisher":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- publishing ---------------------------------------------------------

    def publish(self, format_name: str | IOFormat, record: dict) -> int:
        """Encode *record* once and fan it out; returns the number of
        subscribers the frame was queued to."""
        fmt = self._format(format_name)
        encoder = self.context.encoder_for(fmt)
        # all parts framed in a single join — bulk array payloads
        # arrive as zero-copy segments, so a 1 MB grid is copied
        # exactly once (by the join), never per layer
        t0 = sample_t0()
        parts = encoder.encode_wire_parts(record)
        if t0:
            observe_phase("marshal", t0)
        data = frame_bytes(FrameType.DATA, *parts)
        self.context.stats.count_encoded(1, sum(len(p) for p in parts))

        def down_convert(old_fmt: IOFormat) -> bytes:
            parts = down_converter(fmt, old_fmt).encode_record_parts(
                record)
            return frame_bytes(FrameType.DATA, *parts)

        return self._fan_out(fmt, data, records=1,
                             down_convert=down_convert)

    def publish_many(self, format_name: str | IOFormat,
                     records) -> int:
        """Encode *records* into one shared-header batch and fan the
        single DATA_BATCH frame out to every subscriber."""
        fmt = self._format(format_name)
        records = list(records)
        if not records:
            return 0
        wire = self.context.encode_many(fmt, records)
        data = frame_bytes(FrameType.DATA_BATCH, wire)

        def down_convert(old_fmt: IOFormat) -> bytes:
            batch = down_converter(fmt, old_fmt).encode_batch(records)
            return frame_bytes(FrameType.DATA_BATCH, batch)

        return self._fan_out(fmt, data, records=len(records),
                             down_convert=down_convert)

    def publish_encoded(self, wire: bytes) -> int:
        """Fan out an already-encoded record (bytes from
        :meth:`~repro.pbio.context.IOContext.encode`)."""
        fid, _ = parse_header(wire, require_body=True)
        fmt = self.context._resolve_wire_format(fid)
        data = frame_bytes(FrameType.DATA, wire)

        def down_convert(old_fmt: IOFormat) -> bytes:
            # relay path: only the wire bytes are in hand
            converted = down_converter(fmt, old_fmt).convert_wire(wire)
            return frame_bytes(FrameType.DATA, converted)

        return self._fan_out(fmt, data, records=1,
                             down_convert=down_convert)

    def cutover(self, new_fmt: IOFormat) -> int:
        """Upgrade the stream to *new_fmt* mid-flight, zero drops.

        The name's current binding becomes the previous lineage link
        (:meth:`~repro.pbio.context.IOContext.register_evolution`
        validates the restricted-evolution rule), then every connected
        subscriber is re-announced — the new metadata as FMT_RSP and
        the grown lineage as LIN_RSP — with **non-droppable** control
        frames on its FIFO write queue.  FIFO ordering is the zero-
        drop guarantee: the announcements land strictly before the
        first record published at the new version, so an un-negotiated
        subscriber resolves the new ID without a FMT_REQ round-trip,
        while subscribers pinned to an ancestor version keep receiving
        down-converted frames and never notice the cut.  Returns the
        number of subscribers re-announced.
        """
        self.context.register_evolution(new_fmt)
        chain = self.context.format_server.lineage(new_fmt.name)
        reached = 0
        for client in self.server.clients():
            if new_fmt.format_id not in client.announced:
                self._announce(client, new_fmt)
            pinned = client.negotiated.get(new_fmt.name)
            chosen = pinned if pinned is not None else \
                new_fmt.format_id
            payload = encode_lineage_rsp(
                new_fmt.name, chosen,
                chain if chosen in chain else ())
            if self.server.enqueue(
                    client, frame_bytes(FrameType.LIN_RSP, payload),
                    droppable=False):
                reached += 1
        self.stats.count("cutovers")
        if _obs.enabled:
            from repro.obs.metrics import EVOLUTION_EVENTS
            EVOLUTION_EVENTS.labels("cutovers").inc()
        return reached

    def flush(self, timeout: float | None = None) -> bool:
        """Wait until every subscriber's queue has drained."""
        return self.server.flush(timeout)

    def wait_for_subscribers(self, count: int,
                             timeout: float | None = None) -> bool:
        return self.server.wait_for_clients(count, timeout)

    @property
    def subscriber_count(self) -> int:
        return self.server.client_count

    def stats_dict(self) -> dict:
        out = self.stats.as_dict()
        out["subscribers"] = self.subscriber_count
        return out

    # -- internals ----------------------------------------------------------

    def _format(self, format_name: str | IOFormat) -> IOFormat:
        if isinstance(format_name, IOFormat):
            return format_name
        return self.context.lookup_format(format_name)

    def _version_format(self, name: str, fid: FormatID) -> IOFormat:
        """Resolve an older lineage version a subscriber negotiated."""
        fmt = self._version_formats.get(fid)
        if fmt is None:
            try:
                fmt = self.context.version_for(name, fid)
            except UnknownFormatError:
                fmt = self.context.format_server.lookup(fid)
            self._version_formats[fid] = fmt
        return fmt

    def _fan_out(self, fmt: IOFormat, data: bytes, records: int,
                 down_convert=None) -> int:
        t0 = sample_t0()
        clients = self.server.clients()
        reached = 0
        #: frames re-encoded for stale versions this fan-out: built at
        #: most once per *version*, shared by every subscriber on it
        variants: dict[FormatID, tuple[IOFormat, bytes]] = {}
        for client in clients:
            send_fmt, frame = fmt, data
            target = client.negotiated.get(fmt.name)
            if down_convert is not None and target is not None \
                    and target != fmt.format_id:
                cached = variants.get(target)
                if cached is None:
                    old_fmt = self._version_format(fmt.name, target)
                    cached = (old_fmt, down_convert(old_fmt))
                    variants[target] = cached
                    self.stats.count("frames_down_converted")
                send_fmt, frame = cached
            if send_fmt.format_id not in client.announced:
                self._announce(client, send_fmt)
            if self._offer(client, frame):
                reached += 1
        if t0:
            observe_phase("transport", t0)
        stats = self.stats
        stats.count("messages_broadcast", records)
        # one encode regardless of subscriber count — the whole
        # point; frame overhead (5 bytes) excluded
        stats.count("bytes_encoded", len(data) - 5)
        stats.count("frames_enqueued", reached)
        stats.count("bytes_queued", reached * len(data))
        stats.max_update("subscriber_high_water", len(clients))
        return reached

    def _announce(self, client: ClientHandle, fmt: IOFormat) -> None:
        """Push the format's metadata once per client, ahead of its
        first record — the lazy half of connection establishment."""
        self._announce_id(client, fmt.format_id)

    def _announce_id(self, client: ClientHandle, fid: FormatID) -> None:
        """ID-keyed announcement: shard workers announce formats they
        hold only as replicated metadata bytes, never as compiled
        :class:`~repro.pbio.format.IOFormat` objects."""
        metadata = self.context.format_server.lookup_bytes(fid)
        frame = frame_bytes(FrameType.FMT_RSP, fid.to_bytes(),
                            metadata)
        if self.server.enqueue(client, frame, droppable=False):
            client.announced.add(fid)
            self.stats.count("formats_announced")

    def _offer(self, client: ClientHandle, data: bytes) -> bool:
        """Enqueue under the bounded-queue policy.

        The publisher is the only thread enqueueing *data* frames, so
        the limit check followed by the enqueue cannot over-admit data.
        The loop thread also enqueues small control frames (HELLO on
        connect, FMT_RSP/FMT_ACK metadata replies) that bypass this
        policy, so ``max_queue_bytes`` is a data-frame bound that
        control traffic may briefly overshoot — never by more than the
        outstanding control frames' size."""
        over = client.queued_bytes + len(data) - self.max_queue_bytes
        if over > 0:
            if self.policy is BackpressurePolicy.DROP_OLDEST:
                freed, dropped = self.server.drop_oldest(client, over)
                self.stats.count("frames_dropped", dropped)
                if not freed:
                    # nothing droppable (all control frames / one giant
                    # in-flight frame): the client cannot make progress
                    return self._evict(client)
            elif self.policy is BackpressurePolicy.DISCONNECT_SLOW:
                return self._evict(client)
            else:  # BLOCK
                self.stats.count("block_waits")
                limit = max(self.max_queue_bytes - len(data), 0)
                if not self.server.wait_queue_below(
                        client, limit, self.block_timeout):
                    return self._evict(client)
                if not client.open:
                    return False
        queued = self.server.enqueue(client, data)
        if queued:
            self.stats.max_update("queue_high_water",
                                  client.queued_bytes)
        return queued

    def _evict(self, client: ClientHandle) -> bool:
        self.server.request_close(
            client,
            SlowConsumerError(
                f"subscriber {client.addr} exceeded "
                f"{self.max_queue_bytes}-byte write queue"))
        self.stats.count("clients_evicted")
        return False

    # -- event-loop handler callbacks (loop thread) -------------------------

    def on_connect(self, client: ClientHandle) -> None:
        self.server.enqueue(client, self._hello, droppable=False)

    def on_frame(self, client: ClientHandle, frame: Frame) -> None:
        if frame.type == FrameType.HELLO:
            client.peer_architecture = frame.payload.decode(
                "utf-8", errors="replace")
            return
        if frame.type == FrameType.BYE:
            self.server.request_close(client, None, graceful=True)
            return
        if frame.type == FrameType.LIN_REQ:
            self._handle_lineage_request(client, frame.payload)
            return
        if frame.type == FrameType.STATS_REQ:
            # live telemetry over the data channel: the process-wide
            # obs snapshot plus this publisher's own counters
            from repro.obs import snapshot
            payload = json.dumps(
                {"metrics": snapshot(),
                 "publisher": self.stats_dict()},
                sort_keys=True).encode("utf-8")
            self.server.enqueue(
                client, frame_bytes(FrameType.STATS_RSP, payload),
                droppable=False)
            return
        # metadata protocol served from the same loop
        reply = self.context.format_server.handle_frame(
            frame.type, frame.payload)
        if reply is not None:
            rtype, payload = reply
            self.server.enqueue(client, frame_bytes(rtype, payload),
                                droppable=False)

    def _handle_lineage_request(self, client: ClientHandle,
                                payload: bytes) -> None:
        """Serve one LIN_REQ (loop thread): pin the client to the
        newest mutually-decodable version and reply with the chain."""
        try:
            name, offered = decode_lineage_req(payload)
        except ProtocolError:
            if _obs.enabled:
                from repro.obs.metrics import MALFORMED_FRAMES
                MALFORMED_FRAMES.labels("broadcast",
                                        "bad_lin_req").inc()
            raise  # loop closes this client; peers keep running
        server = self.context.format_server
        chosen = server.negotiate(name, offered)
        chain = server.lineage(name)
        if chosen is not None:
            client.negotiated[name] = chosen
            if chain and chosen not in chain:
                chain = ()  # negotiated outside a recorded lineage
        count_negotiation(chosen, chain)
        self.stats.count("lineage_negotiations")
        self.server.enqueue(
            client,
            frame_bytes(FrameType.LIN_RSP,
                        encode_lineage_rsp(name, chosen, chain)),
            droppable=False)
        if chosen is not None:
            self._on_negotiated(client, name, chosen)

    def _on_negotiated(self, client: ClientHandle, name: str,
                       chosen: FormatID) -> None:
        """Hook: one client pinned itself to *chosen* for *name*.

        The sharded worker publisher overrides this to report the pin
        upstream, so the single marshaling process knows which older
        versions need a down-converted variant per fan-out."""

    def on_disconnect(self, client: ClientHandle,
                      reason: BaseException | None) -> None:
        pass  # counters live on the server; hook kept for subclasses
