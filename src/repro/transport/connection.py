"""Connection: PBIO records over a channel with on-demand metadata.

A :class:`Connection` binds an :class:`~repro.pbio.context.IOContext`
to a :class:`~repro.transport.base.Channel`.  Sending encodes a record
and ships a DATA frame.  Receiving resolves the record's format ID —
from the local context/server cache if the format has been seen, else
by a FMT_REQ/FMT_RSP exchange with the peer (the connection-
establishment cost the paper describes) — then decodes.

The receive loop also services the peer's FMT_REQ frames, so two
endpoints blocked in ``receive()``/negotiation cannot deadlock; DATA
frames that arrive while a metadata request is outstanding are queued
and delivered in order.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import (
    DecodeError, FormatRegistrationError, ProtocolError,
    TransportError, UnknownFormatError,
)
from repro.pbio.context import IOContext
from repro.pbio.encode import explode_batch, is_batch, parse_header
from repro.pbio.evolution import DownConverter, down_converter
from repro.pbio.format import FormatID, IOFormat
from repro.transport.base import Channel
from repro.transport.messages import (
    Frame, FrameType, decode_lineage_req, decode_lineage_rsp,
    encode_lineage_req, encode_lineage_rsp,
)


def _count_malformed(reason: str) -> None:
    """Record one rejected wire input; a peer sending garbage is an
    observable event, not a reason to tear the endpoint down."""
    from repro.obs import runtime as _obs
    if _obs.enabled:
        from repro.obs.metrics import MALFORMED_FRAMES
        MALFORMED_FRAMES.labels("connection", reason).inc()


def count_negotiation(chosen: FormatID | None, chain) -> None:
    """Record one resolved lineage handshake (responder side): outcome
    plus the negotiated position in the lineage chain."""
    from repro.obs import runtime as _obs
    if not _obs.enabled:
        return
    from repro.obs.metrics import EVOLUTION_EVENTS, NEGOTIATED_VERSIONS
    if chosen is None:
        EVOLUTION_EVENTS.labels("no_common_version").inc()
        return
    EVOLUTION_EVENTS.labels("negotiations").inc()
    chain = tuple(chain)
    version = (f"v{chain.index(chosen)}" if chosen in chain
               else "unversioned")
    NEGOTIATED_VERSIONS.labels(version).inc()


@dataclass(frozen=True)
class ReceivedMessage:
    """A decoded application record delivered by a connection."""

    format_name: str
    format_id: FormatID
    record: dict


class Connection:
    """One endpoint of a structured-data exchange.

    ``arrays`` selects the numeric-array representation every receive
    decodes to (``"list"`` default, ``"numpy"``, or zero-copy read-only
    ``"view"`` — see :class:`~repro.pbio.decode.RecordDecoder`).  With
    ``"view"``, records alias the received frame bytes; each frame is a
    private buffer, so views stay valid for the record's lifetime.
    """

    def __init__(self, context: IOContext, channel: Channel, *,
                 arrays: str = "list") -> None:
        self.context = context
        self.channel = channel
        self.arrays = arrays
        self._pending: deque[bytes] = deque()
        self._closed = False
        self.negotiations = 0  # metadata round-trips performed
        self.records_sent = 0
        self.records_received = 0
        #: name -> version the *peer* negotiated down to (we are the
        #: sender; send_negotiated encodes at this version)
        self._peer_versions: dict[str, FormatID] = {}
        #: name -> cached DownConverter serving _peer_versions
        self._converters: dict[str, DownConverter] = {}
        #: name -> version the peer announced it streams (we are the
        #: receiver; filled by negotiate_version and by unsolicited
        #: LIN_RSP re-announcements during a cutover)
        self.announced_versions: dict[str, FormatID] = {}
        channel.send(Frame(FrameType.HELLO,
                           context.architecture.name.encode("utf-8")))
        self.peer_architecture: str | None = None

    # -- sending ------------------------------------------------------------

    def send(self, format_name: str | IOFormat, record: dict) -> None:
        """Encode *record* under a locally registered format and send."""
        wire = self.context.encode(format_name, record)
        self.channel.send(Frame(FrameType.DATA, wire))
        self.records_sent += 1

    def send_many(self, format_name: str | IOFormat, records) -> int:
        """Encode *records* into one shared-header batch and ship it
        as a single DATA_BATCH frame — N records, one header, one
        transport send.  Returns the number of records sent."""
        records = list(records)
        wire = self.context.encode_many(format_name, records)
        self.channel.send(Frame(FrameType.DATA_BATCH, wire))
        self.records_sent += len(records)
        return len(records)

    def send_encoded(self, wire: bytes) -> None:
        """Send an already-encoded record (from
        :meth:`~repro.pbio.context.IOContext.encode`).

        Lets a server marshal once and fan the same bytes out to many
        clients — the per-client processing reduction the paper's
        intro motivates for "single servers [that] must provide
        information to large numbers of clients"."""
        # reject non-records (and lying body lengths) before they hit
        # peers
        parse_header(wire, require_body=True)
        self.channel.send(Frame(FrameType.DATA, wire))
        self.records_sent += 1

    # -- version negotiation -------------------------------------------------

    def negotiate_version(self, name: str,
                          timeout: float | None = None) \
            -> FormatID | None:
        """Lineage handshake (receiver side): offer every version of
        *name* this endpoint decodes natively, learn the newest one
        the peer will send.  Returns the negotiated digest, or None
        when the peer shares no decodable version.  DATA arriving
        while the handshake is in flight is queued, not dropped."""
        offered = self.context.decodable_versions(name)
        self.negotiations += 1
        self.channel.send(Frame(FrameType.LIN_REQ,
                                encode_lineage_req(name, offered)))
        while True:
            frame = self.channel.recv(timeout)
            if frame is None or frame.type == FrameType.BYE:
                raise TransportError(
                    "connection closed during version negotiation")
            if frame.type == FrameType.LIN_RSP:
                rsp_name, chosen, _chain = \
                    self._import_lineage_response(frame.payload)
                if rsp_name == name:
                    return chosen
                continue  # unrelated announcement, already recorded
            if frame.type in (FrameType.DATA, FrameType.DATA_BATCH):
                self._pending.append(frame.payload)
                continue
            self._service(frame)

    def peer_version(self, name: str) -> FormatID | None:
        """The version of *name* the peer negotiated down to (None if
        the peer never sent a LIN_REQ for it)."""
        return self._peer_versions.get(name)

    def send_negotiated(self, format_name: str | IOFormat,
                        record: dict) -> None:
        """Send *record*, down-converted to the version the peer
        negotiated when that is older than our current binding.

        Without a prior LIN_REQ from the peer (or when the peer keeps
        pace with our newest version) this is exactly :meth:`send`;
        after a peer pinned itself to an ancestor version, the record
        is projected through the cached
        :class:`~repro.pbio.evolution.DownConverter` and shipped as
        old-version wire bytes the peer decodes natively.
        """
        fmt = (format_name if isinstance(format_name, IOFormat)
               else self.context.lookup_format(format_name))
        target = self._peer_versions.get(fmt.name)
        if target is None or target == fmt.format_id:
            self.send(fmt, record)
            return
        converter = self._converter_for(fmt, target)
        self.channel.send(Frame(FrameType.DATA,
                                converter.encode_record(record)))
        self.records_sent += 1

    def _converter_for(self, fmt: IOFormat, target: FormatID):
        converter = self._converters.get(fmt.name)
        if converter is not None and \
                converter.new.format_id == fmt.format_id and \
                converter.old.format_id == target:
            return converter
        try:
            old = self.context.version_for(fmt.name, target)
        except UnknownFormatError:
            old = self.context.format_server.lookup(target)
        converter = down_converter(fmt, old)
        self._converters[fmt.name] = converter
        return converter

    # -- receiving ----------------------------------------------------------

    def receive(self, timeout: float | None = None) \
            -> ReceivedMessage | None:
        """Deliver the next application record (None on orderly close)."""
        wire = self._next_data(timeout)
        if wire is None:
            return None
        try:
            fid, _body_len = parse_header(wire, require_body=True)
            self._ensure_format(fid, timeout)
            decoded = self.context.decode(wire, arrays=self.arrays)
        except DecodeError:
            _count_malformed("bad_record")
            raise
        self.records_received += 1
        return ReceivedMessage(format_name=decoded.format_name,
                               format_id=decoded.format_id,
                               record=decoded.record)

    def receive_as(self, native_name: str,
                   timeout: float | None = None) -> dict | None:
        """Like :meth:`receive` but converted to the receiver's own
        registered format view (restricted evolution applies)."""
        wire = self._next_data(timeout)
        if wire is None:
            return None
        try:
            fid, _ = parse_header(wire, require_body=True)
            self._ensure_format(fid, timeout)
            record = self.context.decode_as(wire, native_name,
                                            arrays=self.arrays)
        except DecodeError:
            _count_malformed("bad_record")
            raise
        self.records_received += 1
        return record

    def receive_many(self, timeout: float | None = None) \
            -> list[ReceivedMessage] | None:
        """Deliver the next DATA_BATCH whole: one frame, one format
        resolution, one decoder for every record in it.  A plain DATA
        frame yields a one-element list; None means orderly close."""
        wire = self._next_payload(timeout)
        if wire is None:
            return None
        try:
            fid, _body_len = parse_header(wire)
            self._ensure_format(fid, timeout)
            if is_batch(wire):
                name, fid, records = \
                    self.context.decode_many_records(
                        wire, arrays=self.arrays)
                out = [ReceivedMessage(format_name=name, format_id=fid,
                                       record=record)
                       for record in records]
            else:
                d = self.context.decode(wire, arrays=self.arrays)
                out = [ReceivedMessage(format_name=d.format_name,
                                       format_id=d.format_id,
                                       record=d.record)]
        except DecodeError:
            _count_malformed("bad_record")
            raise
        self.records_received += len(out)
        return out

    # -- internals ----------------------------------------------------------

    def _next_payload(self, timeout: float | None) -> bytes | None:
        """The next DATA or DATA_BATCH payload, servicing metadata
        frames along the way."""
        if self._pending:
            return self._pending.popleft()
        while True:
            frame = self.channel.recv(timeout)
            if frame is None or frame.type == FrameType.BYE:
                return None
            if frame.type in (FrameType.DATA, FrameType.DATA_BATCH):
                return frame.payload
            self._service(frame)

    def _next_data(self, timeout: float | None) -> bytes | None:
        """The next single-record wire; batches are transparently
        exploded into per-record wires and queued."""
        wire = self._next_payload(timeout)
        while wire is not None and is_batch(wire):
            singles = explode_batch(wire)
            if singles:
                self._pending.extendleft(reversed(singles[1:]))
                return singles[0]
            wire = self._next_payload(timeout)  # empty batch: skip
        return wire

    def _ensure_format(self, fid: FormatID,
                       timeout: float | None) -> None:
        try:
            self.context.format_server.lookup_bytes(fid)
            return
        except UnknownFormatError:
            pass
        self.negotiations += 1
        self.channel.send(Frame(FrameType.FMT_REQ, fid.to_bytes()))
        while True:
            frame = self.channel.recv(timeout)
            if frame is None or frame.type == FrameType.BYE:
                raise TransportError(
                    "connection closed while awaiting format metadata")
            if frame.type == FrameType.FMT_RSP:
                got = self._import_format_response(frame.payload)
                if got == fid:
                    return
                continue
            if frame.type in (FrameType.DATA, FrameType.DATA_BATCH):
                self._pending.append(frame.payload)
                continue
            self._service(frame)

    def _import_format_response(self, payload: bytes) -> FormatID:
        """Validate and import one FMT_RSP payload (8-byte announced
        ID + canonical metadata); malformed frames from the peer raise
        :class:`~repro.errors.ProtocolError`, never escape as registry
        errors.  Returns the announced format ID."""
        if len(payload) < 8:
            _count_malformed("bad_fmt_rsp")
            raise ProtocolError(
                f"FMT_RSP payload too short: {len(payload)} bytes "
                "(need 8-byte format id + metadata)")
        announced = FormatID.from_bytes(payload[:8])
        try:
            imported = self.context.format_server.import_bytes(
                payload[8:])
        except (FormatRegistrationError, UnknownFormatError) as exc:
            _count_malformed("bad_fmt_rsp")
            raise ProtocolError(
                f"peer sent unimportable metadata for format "
                f"{announced}: {exc}") from exc
        if imported != announced:
            _count_malformed("bad_fmt_rsp")
            raise ProtocolError(
                f"FMT_RSP announced format {announced} but its "
                f"metadata deserialized to {imported}")
        return announced

    def _import_lineage_response(self, payload: bytes) \
            -> tuple[str, FormatID | None, tuple[FormatID, ...]]:
        """Decode one LIN_RSP and record what the peer now streams."""
        try:
            name, chosen, chain = decode_lineage_rsp(payload)
        except ProtocolError:
            _count_malformed("bad_lin_rsp")
            raise
        if chosen is not None:
            self.announced_versions[name] = chosen
        return name, chosen, chain

    def _service(self, frame: Frame) -> None:
        if frame.type == FrameType.FMT_REQ:
            try:
                fid = FormatID.from_bytes(frame.payload)
            except UnknownFormatError as exc:
                _count_malformed("bad_fmt_req")
                raise ProtocolError(
                    f"malformed FMT_REQ: {exc}") from None
            try:
                metadata = self.context.format_server.lookup_bytes(fid)
            except UnknownFormatError:
                _count_malformed("bad_fmt_req")
                raise ProtocolError(
                    f"peer requested unknown format {fid}") from None
            self.channel.send(Frame(FrameType.FMT_RSP,
                                    fid.to_bytes() + metadata))
        elif frame.type == FrameType.FMT_RSP:
            # Unsolicited pre-announcement: a broadcast server pushes
            # each format's metadata once per client before the first
            # record in it, so subscribers never pay a FMT_REQ
            # round-trip (negotiations stays 0 on the fan-out path).
            self._import_format_response(frame.payload)
        elif frame.type == FrameType.LIN_REQ:
            try:
                name, offered = decode_lineage_req(frame.payload)
            except ProtocolError:
                _count_malformed("bad_lin_req")
                raise
            chosen = self.context.format_server.negotiate(name, offered)
            chain = self.context.format_server.lineage(name)
            if chosen is not None:
                self._peer_versions[name] = chosen
                if chain and chosen not in chain:
                    chain = ()  # negotiated outside a recorded lineage
            count_negotiation(chosen, chain)
            self.channel.send(Frame(
                FrameType.LIN_RSP,
                encode_lineage_rsp(name, chosen, chain)))
        elif frame.type == FrameType.LIN_RSP:
            # Unsolicited announcement: a publisher cutting over to a
            # new version re-announces via LIN_RSP before the first
            # record at that version; record it so receive_as keeps
            # converting with no gap.
            self._import_lineage_response(frame.payload)
        elif frame.type == FrameType.HELLO:
            self.peer_architecture = frame.payload.decode(
                "utf-8", errors="replace")
        else:
            _count_malformed("unexpected_frame")
            raise ProtocolError(
                f"unexpected frame type {frame.type!r}")

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self.channel.send(Frame(FrameType.BYE, b""))
            except TransportError:
                pass
            self.channel.close()

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
