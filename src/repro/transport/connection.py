"""Connection: PBIO records over a channel with on-demand metadata.

A :class:`Connection` binds an :class:`~repro.pbio.context.IOContext`
to a :class:`~repro.transport.base.Channel`.  Sending encodes a record
and ships a DATA frame.  Receiving resolves the record's format ID —
from the local context/server cache if the format has been seen, else
by a FMT_REQ/FMT_RSP exchange with the peer (the connection-
establishment cost the paper describes) — then decodes.

The receive loop also services the peer's FMT_REQ frames, so two
endpoints blocked in ``receive()``/negotiation cannot deadlock; DATA
frames that arrive while a metadata request is outstanding are queued
and delivered in order.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import ProtocolError, TransportError, UnknownFormatError
from repro.pbio.context import IOContext
from repro.pbio.encode import parse_header
from repro.pbio.format import FormatID, IOFormat
from repro.transport.base import Channel
from repro.transport.messages import Frame, FrameType


@dataclass(frozen=True)
class ReceivedMessage:
    """A decoded application record delivered by a connection."""

    format_name: str
    format_id: FormatID
    record: dict


class Connection:
    """One endpoint of a structured-data exchange."""

    def __init__(self, context: IOContext, channel: Channel) -> None:
        self.context = context
        self.channel = channel
        self._pending: deque[bytes] = deque()
        self._closed = False
        self.negotiations = 0  # metadata round-trips performed
        self.records_sent = 0
        self.records_received = 0
        channel.send(Frame(FrameType.HELLO,
                           context.architecture.name.encode("utf-8")))
        self.peer_architecture: str | None = None

    # -- sending ------------------------------------------------------------

    def send(self, format_name: str | IOFormat, record: dict) -> None:
        """Encode *record* under a locally registered format and send."""
        wire = self.context.encode(format_name, record)
        self.channel.send(Frame(FrameType.DATA, wire))
        self.records_sent += 1

    def send_encoded(self, wire: bytes) -> None:
        """Send an already-encoded record (from
        :meth:`~repro.pbio.context.IOContext.encode`).

        Lets a server marshal once and fan the same bytes out to many
        clients — the per-client processing reduction the paper's
        intro motivates for "single servers [that] must provide
        information to large numbers of clients"."""
        parse_header(wire)  # reject non-records before they hit peers
        self.channel.send(Frame(FrameType.DATA, wire))
        self.records_sent += 1

    # -- receiving ----------------------------------------------------------

    def receive(self, timeout: float | None = None) \
            -> ReceivedMessage | None:
        """Deliver the next application record (None on orderly close)."""
        wire = self._next_data(timeout)
        if wire is None:
            return None
        fid, _body_len = parse_header(wire)
        self._ensure_format(fid, timeout)
        decoded = self.context.decode(wire)
        self.records_received += 1
        return ReceivedMessage(format_name=decoded.format_name,
                               format_id=decoded.format_id,
                               record=decoded.record)

    def receive_as(self, native_name: str,
                   timeout: float | None = None) -> dict | None:
        """Like :meth:`receive` but converted to the receiver's own
        registered format view (restricted evolution applies)."""
        wire = self._next_data(timeout)
        if wire is None:
            return None
        fid, _ = parse_header(wire)
        self._ensure_format(fid, timeout)
        self.records_received += 1
        return self.context.decode_as(wire, native_name)

    # -- internals ----------------------------------------------------------

    def _next_data(self, timeout: float | None) -> bytes | None:
        if self._pending:
            return self._pending.popleft()
        while True:
            frame = self.channel.recv(timeout)
            if frame is None or frame.type == FrameType.BYE:
                return None
            if frame.type == FrameType.DATA:
                return frame.payload
            self._service(frame)

    def _ensure_format(self, fid: FormatID,
                       timeout: float | None) -> None:
        try:
            self.context.format_server.lookup_bytes(fid)
            return
        except UnknownFormatError:
            pass
        self.negotiations += 1
        self.channel.send(Frame(FrameType.FMT_REQ, fid.to_bytes()))
        while True:
            frame = self.channel.recv(timeout)
            if frame is None or frame.type == FrameType.BYE:
                raise TransportError(
                    "connection closed while awaiting format metadata")
            if frame.type == FrameType.FMT_RSP:
                got = FormatID.from_bytes(frame.payload[:8])
                self.context.format_server.import_bytes(frame.payload[8:])
                if got == fid:
                    return
                continue
            if frame.type == FrameType.DATA:
                self._pending.append(frame.payload)
                continue
            self._service(frame)

    def _service(self, frame: Frame) -> None:
        if frame.type == FrameType.FMT_REQ:
            fid = FormatID.from_bytes(frame.payload)
            try:
                metadata = self.context.format_server.lookup_bytes(fid)
            except UnknownFormatError:
                raise ProtocolError(
                    f"peer requested unknown format {fid}") from None
            self.channel.send(Frame(FrameType.FMT_RSP,
                                    fid.to_bytes() + metadata))
        elif frame.type == FrameType.HELLO:
            self.peer_architecture = frame.payload.decode(
                "utf-8", errors="replace")
        else:
            raise ProtocolError(
                f"unexpected frame type {frame.type!r}")

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self.channel.send(Frame(FrameType.BYE, b""))
            except TransportError:
                pass
            self.channel.close()

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
