"""In-process channel pair.

Two queue-backed endpoints with channel semantics.  Used by unit tests,
the latency benches (where a simulated per-byte link cost can be
injected to model the paper's network, see ``byte_time``), and the
single-process Hydrology pipeline.
"""

from __future__ import annotations

import queue
import threading
import time

from repro.errors import TransportError
from repro.transport.base import Channel
from repro.transport.messages import Frame

_CLOSE = object()


class InProcChannel(Channel):
    """One endpoint of an in-process pair (build with
    :func:`channel_pair`)."""

    def __init__(self, inbox: "queue.Queue", outbox: "queue.Queue", *,
                 byte_time: float = 0.0) -> None:
        self._inbox = inbox
        self._outbox = outbox
        self._closed = threading.Event()
        self._peer_closed = threading.Event()
        #: simulated transmission seconds per payload byte; lets the
        #: application-latency bench model a finite-bandwidth link.
        self.byte_time = byte_time
        self.bytes_sent = 0
        self.frames_sent = 0

    def send(self, frame: Frame) -> None:
        if self._closed.is_set():
            raise TransportError("send on closed channel")
        if self.byte_time:
            time.sleep(self.byte_time * (len(frame.payload) + 5))
        self.bytes_sent += len(frame.payload) + 5
        self.frames_sent += 1
        self._outbox.put(frame)

    def recv(self, timeout: float | None = None) -> Frame | None:
        if self._peer_closed.is_set() and self._inbox.empty():
            return None
        try:
            item = self._inbox.get(timeout=timeout)
        except queue.Empty:
            raise TransportError(
                f"recv timed out after {timeout}s") from None
        if item is _CLOSE:
            self._peer_closed.set()
            return None
        return item

    def close(self) -> None:
        if not self._closed.is_set():
            self._closed.set()
            self._outbox.put(_CLOSE)


def channel_pair(*, byte_time: float = 0.0) \
        -> tuple[InProcChannel, InProcChannel]:
    """Create a connected pair of in-process channels."""
    a_to_b: queue.Queue = queue.Queue()
    b_to_a: queue.Queue = queue.Queue()
    a = InProcChannel(inbox=b_to_a, outbox=a_to_b, byte_time=byte_time)
    b = InProcChannel(inbox=a_to_b, outbox=b_to_a, byte_time=byte_time)
    return a, b
